#pragma once
// Sequential specification of the ordered Set-with-range-queries object.
//
// The checker replays candidate linearization orders against this model.
// `step()` answers whether an operation's recorded result is legal in the
// current state and mutates the state accordingly; `fingerprint()` hashes
// the state so the search can memoize (state, pending-set) pairs.

#include <cstdint>
#include <map>

#include "validation/history.h"

namespace bref::validation {

class SetModel {
 public:
  /// Apply `op` if its recorded result is consistent with the current
  /// state; returns false (leaving the state unchanged) otherwise.
  bool step(const Op& op) {
    switch (op.kind) {
      case OpKind::kInsert: {
        const bool absent = state_.find(op.key) == state_.end();
        if (op.result != absent) return false;
        if (absent) state_.emplace(op.key, op.val);
        return true;
      }
      case OpKind::kRemove: {
        auto it = state_.find(op.key);
        const bool present = it != state_.end();
        if (op.result != present) return false;
        if (present) state_.erase(it);
        return true;
      }
      case OpKind::kContains: {
        auto it = state_.find(op.key);
        const bool present = it != state_.end();
        if (op.result != present) return false;
        // A successful contains also reports the stored value.
        if (present && op.val != it->second) return false;
        return true;
      }
      case OpKind::kRangeQuery: {
        auto it = state_.lower_bound(op.key);
        size_t i = 0;
        for (; it != state_.end() && it->first <= op.hi; ++it, ++i) {
          if (i >= op.rq_result.size()) return false;
          if (op.rq_result[i].first != it->first ||
              op.rq_result[i].second != it->second)
            return false;
        }
        return i == op.rq_result.size();
      }
    }
    return false;
  }

  /// Undo support for the backtracking search: callers snapshot the entry
  /// that `step` may touch. Insert/remove mutate one key; contains/RQ are
  /// pure. (Cheaper than copying the whole map per branch.)
  struct Undo {
    bool mutated = false;
    bool was_present = false;
    KeyT key = 0;
    ValT old_val = 0;
  };

  Undo prepare_undo(const Op& op) const {
    Undo u;
    if (op.kind == OpKind::kInsert || op.kind == OpKind::kRemove) {
      u.mutated = true;
      u.key = op.key;
      auto it = state_.find(op.key);
      u.was_present = it != state_.end();
      if (u.was_present) u.old_val = it->second;
    }
    return u;
  }

  void apply_undo(const Undo& u) {
    if (!u.mutated) return;
    if (u.was_present)
      state_[u.key] = u.old_val;
    else
      state_.erase(u.key);
  }

  /// 64-bit state hash (FNV-1a over sorted contents) for memoization.
  uint64_t fingerprint() const {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t x) {
      h ^= x;
      h *= 1099511628211ull;
    };
    for (const auto& [k, v] : state_) {
      mix(static_cast<uint64_t>(k));
      mix(static_cast<uint64_t>(v));
    }
    return h;
  }

  const std::map<KeyT, ValT>& state() const { return state_; }

 private:
  std::map<KeyT, ValT> state_;
};

}  // namespace bref::validation
