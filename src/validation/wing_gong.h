#pragma once
// Wing & Gong linearizability checker with Lowe-style memoization.
//
// Given a recorded History, the checker searches for a total order of the
// operations that (a) respects the real-time order (an op that responded
// before another was invoked must precede it) and (b) replays legally
// against the sequential SetModel. The search memoizes (linearized-set,
// model-state) pairs. Histories whose per-thread operations are sequential
// — the invariant ThreadLog recording guarantees — use a width-bounded
// representation (per-thread progress counters), so capacity scales with
// history *length* and cost with concurrency *width*; adversarial
// histories with overlapping same-tid ops fall back to a 64-op mask
// search.
//
// For longer point-operation-only histories, per_key_projections() splits a
// history into independent per-key histories: point operations on distinct
// keys commute, so the set object is linearizable iff every per-key
// projection is. Range queries break that independence (their per-key reads
// must take effect at one common point), so for histories containing range
// queries the per-key check is a necessary condition only — the whole-
// history check remains the authority.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "validation/history.h"
#include "validation/model.h"

namespace bref::validation {

struct CheckResult {
  bool linearizable = false;
  /// Indices into the input history forming a witness order (valid only
  /// when linearizable).
  std::vector<int> witness;
  /// Diagnostic for failures.
  std::string message;

  explicit operator bool() const { return linearizable; }
};

namespace detail {

/// General searcher over arbitrary interval structures, linearized-set
/// tracked as a 64-bit mask; capacity 64 ops. Used only when the history's
/// per-thread sequencing assumption does not hold.
///
/// With `respect_rq_ts`, range queries carrying a reported snapshot
/// timestamp (Op::rq_ts) must additionally linearize in timestamp order:
/// the stamps come from one logical clock, so the execution's own
/// linearization already satisfies that order — constraining the search to
/// it never rejects a history the structure actually produced, but catches
/// stamps inconsistent with any legal replay (the @ts audits).
struct MaskSearcher {
  const History& h;
  SetModel model;
  std::vector<int> order;
  std::unordered_set<uint64_t> visited;
  uint64_t mask = 0;  // bit i set => h[i] linearized
  bool respect_rq_ts = false;

  explicit MaskSearcher(const History& hist, bool use_ts = false)
      : h(hist), respect_rq_ts(use_ts) {}

  /// h[i] may be linearized now only if no remaining stamped RQ carries a
  /// strictly smaller snapshot timestamp (ties may go in either order).
  bool ts_minimal(size_t i) const {
    if (!respect_rq_ts || h[i].rq_ts == kNoRqTs) return true;
    for (size_t j = 0; j < h.size(); ++j) {
      if (i == j || (mask & (1ull << j))) continue;
      if (h[j].rq_ts != kNoRqTs && h[j].rq_ts < h[i].rq_ts) return false;
    }
    return true;
  }

  uint64_t state_key() const {
    // Combine the linearized-set mask with the model fingerprint. The pair
    // identifies a search node: which ops remain and what state they see.
    uint64_t x = mask * 0x9e3779b97f4a7c15ull;
    x ^= model.fingerprint() + 0x517cc1b727220a95ull + (x << 6) + (x >> 2);
    return x;
  }

  bool dfs() {
    if (order.size() == h.size()) return true;
    if (!visited.insert(state_key()).second) return false;
    for (size_t i = 0; i < h.size(); ++i) {
      if (mask & (1ull << i)) continue;
      // h[i] is a candidate first among the remaining ops iff no other
      // remaining op completed before it was invoked.
      bool minimal = true;
      for (size_t j = 0; j < h.size(); ++j) {
        if (i == j || (mask & (1ull << j))) continue;
        if (h[j].happens_before(h[i])) {
          minimal = false;
          break;
        }
      }
      if (!minimal || !ts_minimal(i)) continue;
      SetModel::Undo undo = model.prepare_undo(h[i]);
      if (!model.step(h[i])) continue;
      mask |= (1ull << i);
      order.push_back(static_cast<int>(i));
      if (dfs()) return true;
      order.pop_back();
      mask &= ~(1ull << i);
      model.apply_undo(undo);
    }
    return false;
  }
};

/// Width-bounded searcher exploiting that each thread's operations are
/// totally ordered in real time (true for histories recorded by
/// ThreadLog). The linearized set is then always a per-thread *prefix*, so
/// the search state is a vector of progress counters instead of a mask —
/// capacity grows with history length, and cost is governed by the
/// concurrency width (thread count), the Knossos/JEPSEN-style optimization.
struct ThreadedSearcher {
  const History& h;
  std::vector<std::vector<int>> lanes;  // per-thread op indices, by invoke
  std::vector<uint32_t> progress;       // next unlinearized op per lane
  SetModel model;
  std::vector<int> order;
  std::unordered_set<uint64_t> visited;
  size_t done = 0;
  bool respect_rq_ts = false;
  // Per lane: min rq_ts over the lane's ops at index >= pos (kNoRqTs when
  // none) — makes the @ts admissibility check O(width) per candidate.
  std::vector<std::vector<uint64_t>> ts_suffix_min;

  explicit ThreadedSearcher(const History& hist,
                            std::vector<std::vector<int>> l,
                            bool use_ts = false)
      : h(hist),
        lanes(std::move(l)),
        progress(lanes.size(), 0),
        respect_rq_ts(use_ts) {
    if (respect_rq_ts) {
      ts_suffix_min.resize(lanes.size());
      for (size_t t = 0; t < lanes.size(); ++t) {
        ts_suffix_min[t].assign(lanes[t].size() + 1, kNoRqTs);
        for (size_t p = lanes[t].size(); p-- > 0;) {
          const uint64_t own = h[lanes[t][p]].rq_ts;
          ts_suffix_min[t][p] = std::min(own, ts_suffix_min[t][p + 1]);
        }
      }
    }
  }

  /// h[i] admissible under @ts iff no remaining stamped RQ (in any lane)
  /// carries a strictly smaller snapshot timestamp.
  bool ts_minimal(int i) const {
    if (!respect_rq_ts || h[i].rq_ts == kNoRqTs) return true;
    for (size_t u = 0; u < lanes.size(); ++u) {
      if (progress[u] >= lanes[u].size()) continue;
      if (ts_suffix_min[u][progress[u]] < h[i].rq_ts) return false;
    }
    return true;
  }

  uint64_t state_key() const {
    uint64_t x = 1469598103934665603ull;
    for (uint32_t c : progress) {
      x ^= c;
      x *= 1099511628211ull;
    }
    x ^= model.fingerprint() + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    return x;
  }

  bool dfs() {
    if (done == h.size()) return true;
    if (!visited.insert(state_key()).second) return false;
    for (size_t t = 0; t < lanes.size(); ++t) {
      if (progress[t] >= lanes[t].size()) continue;
      const int i = lanes[t][progress[t]];
      // Minimal iff no other lane's *next* op completed before h[i] was
      // invoked (later ops in a lane respond even later, so checking the
      // head of each lane suffices).
      bool minimal = true;
      for (size_t u = 0; u < lanes.size(); ++u) {
        if (u == t || progress[u] >= lanes[u].size()) continue;
        if (h[lanes[u][progress[u]]].happens_before(h[i])) {
          minimal = false;
          break;
        }
      }
      if (!minimal || !ts_minimal(i)) continue;
      SetModel::Undo undo = model.prepare_undo(h[i]);
      if (!model.step(h[i])) continue;
      ++progress[t];
      ++done;
      order.push_back(i);
      if (dfs()) return true;
      order.pop_back();
      --done;
      --progress[t];
      model.apply_undo(undo);
    }
    return false;
  }
};

/// Group op indices by tid, ordered by invocation; returns empty if any
/// thread's operations overlap in real time (per-thread sequencing broken),
/// in which case the caller falls back to the mask searcher.
inline std::vector<std::vector<int>> build_lanes(const History& h) {
  std::map<int, std::vector<int>> by_tid;
  for (size_t i = 0; i < h.size(); ++i)
    by_tid[h[i].tid].push_back(static_cast<int>(i));
  std::vector<std::vector<int>> lanes;
  for (auto& [tid, idxs] : by_tid) {
    std::sort(idxs.begin(), idxs.end(), [&](int a, int b) {
      return h[a].invoke_ns < h[b].invoke_ns;
    });
    for (size_t j = 1; j < idxs.size(); ++j)
      if (h[idxs[j - 1]].response_ns > h[idxs[j]].invoke_ns) return {};
    lanes.push_back(std::move(idxs));
  }
  return lanes;
}

}  // namespace detail

/// Check a history for linearizability against the Set model. Histories
/// whose per-thread operations are sequential (the normal case for
/// recorded runs) use the width-bounded search with no length cap; other
/// histories fall back to the general mask search (≤ 64 ops). With
/// `respect_rq_ts`, range queries carrying a snapshot timestamp must also
/// linearize in @ts order (see check_linearizable_with_ts).
inline CheckResult check_linearizable(const History& h,
                                      bool respect_rq_ts = false) {
  CheckResult r;
  auto lanes = detail::build_lanes(h);
  if (!lanes.empty() || h.empty()) {
    detail::ThreadedSearcher s(h, std::move(lanes), respect_rq_ts);
    if (s.dfs()) {
      r.linearizable = true;
      r.witness = std::move(s.order);
      return r;
    }
  } else {
    if (h.size() > 64) {
      r.message =
          "history has overlapping same-tid operations and exceeds the "
          "64-op capacity of the general search";
      return r;
    }
    detail::MaskSearcher s(h, respect_rq_ts);
    if (s.dfs()) {
      r.linearizable = true;
      r.witness = std::move(s.order);
      return r;
    }
  }
  r.message = "no legal linearization order exists";
  if (respect_rq_ts) r.message += " (with @ts-ordered range queries)";
  r.message += "; history:";
  for (const auto& op : h) r.message += "\n  " + describe(op);
  return r;
}

/// Real-time consistency of the reported snapshot timestamps alone: if
/// query A fixed a strictly smaller @ts than query B, then B cannot have
/// completed before A was invoked — the stamps come from one monotone
/// logical clock, so @ts order must embed into Herlihy-Wing real-time
/// order. A cheap necessary condition (no search), useful on histories too
/// wide for the full checker.
inline CheckResult check_rq_timestamps(const History& h) {
  CheckResult r;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i].kind != OpKind::kRangeQuery || h[i].rq_ts == kNoRqTs) continue;
    for (size_t j = 0; j < h.size(); ++j) {
      if (i == j || h[j].kind != OpKind::kRangeQuery ||
          h[j].rq_ts == kNoRqTs)
        continue;
      if (h[i].rq_ts < h[j].rq_ts && h[j].happens_before(h[i])) {
        r.message = "snapshot timestamps contradict real time: " +
                    describe(h[j]) + " completed before " + describe(h[i]) +
                    " was invoked, yet carries the larger @ts";
        return r;
      }
    }
  }
  r.linearizable = true;
  return r;
}

/// The @ts audit: timestamps must be real-time consistent AND a witness
/// linearization must exist in which stamped range queries take effect in
/// @ts order. Sound for histories recorded against one structure (all
/// stamps drawn from its single logical clock): the execution's actual
/// linearization order is such a witness, so a correct implementation can
/// never fail this where plain check_linearizable would pass.
inline CheckResult check_linearizable_with_ts(const History& h) {
  CheckResult pre = check_rq_timestamps(h);
  if (!pre) return pre;
  return check_linearizable(h, /*respect_rq_ts=*/true);
}

/// Project a history onto per-key sub-histories. Point operations project
/// onto their key. A range query projects onto every key it *returned*
/// (as a successful contains) and, via `touched_keys`, onto every key in
/// [lo, hi] that some update in the history mentions (as an unsuccessful
/// contains when absent from the result) — so missed-update violations
/// surface even for keys the query never reported.
inline std::map<KeyT, History> per_key_projections(const History& h) {
  // Keys any update touches; RQ absence is only meaningful for these.
  std::unordered_set<KeyT> touched;
  for (const auto& op : h)
    if (op.kind == OpKind::kInsert || op.kind == OpKind::kRemove)
      touched.insert(op.key);

  std::map<KeyT, History> out;
  for (const auto& op : h) {
    if (op.kind != OpKind::kRangeQuery) {
      out[op.key].push_back(op);
      continue;
    }
    std::unordered_set<KeyT> returned;
    for (const auto& [k, v] : op.rq_result) {
      returned.insert(k);
      Op proj;
      proj.kind = OpKind::kContains;
      proj.tid = op.tid;
      proj.key = k;
      proj.val = v;
      proj.result = true;
      proj.invoke_ns = op.invoke_ns;
      proj.response_ns = op.response_ns;
      out[k].push_back(proj);
    }
    for (KeyT k : touched) {
      if (k < op.key || k > op.hi || returned.count(k) != 0) continue;
      Op proj;
      proj.kind = OpKind::kContains;
      proj.tid = op.tid;
      proj.key = k;
      proj.result = false;
      proj.invoke_ns = op.invoke_ns;
      proj.response_ns = op.response_ns;
      out[k].push_back(proj);
    }
  }
  return out;
}

/// Per-key decomposition check. Exact for point-op histories; a necessary
/// condition when range queries are present (see file comment).
inline CheckResult check_per_key(const History& h) {
  for (auto& [key, sub] : per_key_projections(h)) {
    CheckResult r = check_linearizable(sub);
    if (!r) {
      r.message =
          "per-key projection for key " + std::to_string(key) + " failed: " +
          r.message;
      return r;
    }
  }
  CheckResult ok;
  ok.linearizable = true;
  return ok;
}

}  // namespace bref::validation
