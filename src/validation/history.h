#pragma once
// Concurrent-history recording for black-box linearizability checking.
//
// A History is a set of operation records, each carrying its real-time
// invocation/response window (steady_clock, globally monotonic) together
// with arguments and observed results. Threads record into private logs
// (no synchronization on the hot path beyond the clock reads); merge()
// collects them once the run is quiescent.
//
// The checker (wing_gong.h) treats two operations as ordered iff one's
// response precedes the other's invocation — the standard real-time order
// of Herlihy & Wing. Clock-read overhead only widens windows, which can
// only make a non-linearizable history look linearizable with lower
// probability, never flag a correct one.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/range_snapshot.h"
#include "api/session.h"

namespace bref::validation {

using KeyT = int64_t;
using ValT = int64_t;

enum class OpKind : uint8_t { kInsert, kRemove, kContains, kRangeQuery };

inline const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kRemove:
      return "remove";
    case OpKind::kContains:
      return "contains";
    case OpKind::kRangeQuery:
      return "range_query";
  }
  return "?";
}

/// Marks a range-query record whose implementation reports no snapshot
/// timestamp (same sentinel as RangeSnapshot::kNoTimestamp).
inline constexpr uint64_t kNoRqTs = ~uint64_t{0};

struct Op {
  OpKind kind;
  int tid = 0;
  KeyT key = 0;        // insert/remove/contains key, or range low
  KeyT hi = 0;         // range high (kRangeQuery only)
  ValT val = 0;        // insert argument / contains observed value
  bool result = false; // boolean result of point ops
  std::vector<std::pair<KeyT, ValT>> rq_result;  // kRangeQuery only
  uint64_t rq_ts = kNoRqTs;  // snapshot timestamp (kRangeQuery, if reported)
  uint64_t invoke_ns = 0;
  uint64_t response_ns = 0;

  /// Real-time (Herlihy-Wing) order: this op completed before `o` began.
  bool happens_before(const Op& o) const { return response_ns < o.invoke_ns; }
};

using History = std::vector<Op>;

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread operation log. One instance per worker thread; no sharing.
class ThreadLog {
 public:
  explicit ThreadLog(int tid) : tid_(tid) { ops_.reserve(1024); }

  void record_point(OpKind kind, KeyT key, ValT val, bool result,
                    uint64_t invoke, uint64_t response) {
    Op op;
    op.kind = kind;
    op.tid = tid_;
    op.key = key;
    op.val = val;
    op.result = result;
    op.invoke_ns = invoke;
    op.response_ns = response;
    ops_.push_back(std::move(op));
  }

  void record_rq(KeyT lo, KeyT hi, std::vector<std::pair<KeyT, ValT>> result,
                 uint64_t invoke, uint64_t response,
                 uint64_t rq_ts = kNoRqTs) {
    Op op;
    op.kind = OpKind::kRangeQuery;
    op.tid = tid_;
    op.key = lo;
    op.hi = hi;
    op.rq_result = std::move(result);
    op.rq_ts = rq_ts;
    op.invoke_ns = invoke;
    op.response_ns = response;
    ops_.push_back(std::move(op));
  }

  /// Snapshot-object form: the RangeSnapshot carries both the result and
  /// the timestamp it linearized at, so nothing is reconstructed by hand.
  void record_rq(const RangeSnapshot& snap, uint64_t invoke,
                 uint64_t response) {
    record_rq(snap.lo(), snap.hi(), snap.items(), invoke, response,
              snap.has_timestamp() ? snap.timestamp() : kNoRqTs);
  }

  const History& ops() const { return ops_; }
  History take() { return std::move(ops_); }

 private:
  int tid_;
  History ops_;
};

/// Merge per-thread logs into one history (any order; the checker uses the
/// recorded windows, not the vector order).
inline History merge(std::vector<ThreadLog>& logs) {
  History h;
  for (auto& l : logs) {
    History t = l.take();
    h.insert(h.end(), std::make_move_iterator(t.begin()),
             std::make_move_iterator(t.end()));
  }
  return h;
}

/// Transparent recording adapter: same call surface as the library's
/// ordered sets, forwarding to `DS` while logging every operation with its
/// real-time window into a caller-supplied ThreadLog.
template <typename DS>
class RecordedSet {
 public:
  explicit RecordedSet(DS& ds) : ds_(ds) {}

  bool insert(ThreadLog& log, int tid, KeyT k, ValT v) {
    const uint64_t t0 = now_ns();
    const bool r = ds_.insert(tid, k, v);
    log.record_point(OpKind::kInsert, k, v, r, t0, now_ns());
    return r;
  }

  bool remove(ThreadLog& log, int tid, KeyT k) {
    const uint64_t t0 = now_ns();
    const bool r = ds_.remove(tid, k);
    log.record_point(OpKind::kRemove, k, 0, r, t0, now_ns());
    return r;
  }

  bool contains(ThreadLog& log, int tid, KeyT k) {
    ValT v = 0;
    const uint64_t t0 = now_ns();
    const bool r = ds_.contains(tid, k, &v);
    log.record_point(OpKind::kContains, k, r ? v : 0, r, t0, now_ns());
    return r;
  }

  size_t range_query(ThreadLog& log, int tid, KeyT lo, KeyT hi,
                     std::vector<std::pair<KeyT, ValT>>& out) {
    const uint64_t t0 = now_ns();
    ds_.range_query(tid, lo, hi, out);
    log.record_rq(lo, hi, out, t0, now_ns());
    return out.size();
  }

 private:
  DS& ds_;
};

/// Session-era recording adapter: mirrors TypedSession's surface (no raw
/// tids) and logs every operation. Range queries go through RangeSnapshot,
/// so the record keeps the snapshot timestamp the old out-vector protocol
/// had to drop.
template <typename DS>
class RecordedSession {
 public:
  RecordedSession(DS& ds, ThreadLog& log, int tid)
      : s_(ds, tid), log_(log) {}

  bool insert(KeyT k, ValT v) {
    const uint64_t t0 = now_ns();
    const bool r = s_.insert(k, v);
    log_.record_point(OpKind::kInsert, k, v, r, t0, now_ns());
    return r;
  }

  bool remove(KeyT k) {
    const uint64_t t0 = now_ns();
    const bool r = s_.remove(k);
    log_.record_point(OpKind::kRemove, k, 0, r, t0, now_ns());
    return r;
  }

  bool contains(KeyT k) {
    ValT v = 0;
    const uint64_t t0 = now_ns();
    const bool r = s_.contains(k, &v);
    log_.record_point(OpKind::kContains, k, r ? v : 0, r, t0, now_ns());
    return r;
  }

  size_t range_query(KeyT lo, KeyT hi, RangeSnapshot& out) {
    const uint64_t t0 = now_ns();
    s_.range_query(lo, hi, out);
    log_.record_rq(out, t0, now_ns());
    return out.size();
  }

 private:
  TypedSession<DS> s_;
  ThreadLog& log_;
};

/// Human-readable rendering of one op (checker diagnostics).
inline std::string describe(const Op& op) {
  std::string s = "t" + std::to_string(op.tid) + " " + to_string(op.kind);
  if (op.kind == OpKind::kRangeQuery) {
    s += "[" + std::to_string(op.key) + "," + std::to_string(op.hi) +
         "] -> {";
    for (size_t i = 0; i < op.rq_result.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(op.rq_result[i].first);
    }
    s += "}";
    if (op.rq_ts != kNoRqTs) s += " @ts=" + std::to_string(op.rq_ts);
  } else {
    s += "(" + std::to_string(op.key) + ")";
    s += op.result ? " -> true" : " -> false";
  }
  return s;
}

}  // namespace bref::validation
