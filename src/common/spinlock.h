#pragma once
// Test-and-test-and-set spinlock with exponential backoff.
//
// Used as the per-node lock of the lazy list, skip list and Citrus tree
// (the originals use pthread spinlocks). Satisfies Lockable so it composes
// with std::lock_guard / std::scoped_lock (CP.20: RAII, never bare unlock).

#include <atomic>

#include "common/backoff.h"

namespace bref {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      Backoff bo;
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  /// Diagnostic only (used by asserts in tests); racy by nature.
  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace bref
