#pragma once
// Per-thread pseudo-random generators for workload drivers.
//
// xoshiro256** is used instead of std::mt19937 because the benchmark inner
// loop calls the generator 2-3 times per operation; the generator must be a
// few nanoseconds and have no shared state.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bref {

/// xoshiro256** by Blackman & Vigna (public domain algorithm), seeded via
/// splitmix64 so any 64-bit seed (including small integers) works.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // splitmix64 stream to initialise state; never all-zero.
    auto next_sm = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& word : s_) word = next_sm();
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  uint64_t next_u64() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t next_range(uint64_t bound) noexcept {
    assert(bound > 0);
    // 128-bit multiply avoids modulo bias well below measurable levels.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// Zipf-distributed integers in [0, n) using Gray's rejection-inversion
/// method; O(1) per sample after O(1) setup, suitable for large n.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n >= 1);
    zeta2_ = zeta(2, theta);
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t next() noexcept {
    // Standard YCSB-style zipfian sampling.
    double u = rng_.next_double();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double zeta(uint64_t n, double theta) {
    // Direct sum; called once per generator. Capped for very large n, where
    // the tail contributes negligibly to the distribution's shape.
    const uint64_t cap = n < (1ull << 22) ? n : (1ull << 22);
    double sum = 0;
    for (uint64_t i = 1; i <= cap; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Xoshiro256 rng_;
  double zeta2_, zetan_, alpha_, eta_;
};

}  // namespace bref
