#pragma once
// Monotonic-clock helpers shared by benches and the bundle cleaner thread.

#include <chrono>
#include <cstdint>

namespace bref {

using Clock = std::chrono::steady_clock;

inline Clock::time_point now() noexcept { return Clock::now(); }

inline double elapsed_ms(Clock::time_point start) noexcept {
  return std::chrono::duration<double, std::milli>(now() - start).count();
}

inline double elapsed_s(Clock::time_point start) noexcept {
  return std::chrono::duration<double>(now() - start).count();
}

}  // namespace bref
