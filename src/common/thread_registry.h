#pragma once
// Compile-time thread capacity and a small runtime registry.
//
// All substrates (EBR, RCU, RLU, the range-query tracker) keep fixed-size
// arrays of cache-padded per-thread slots indexed by a dense thread id. The
// paper evaluates up to 192 hyperthreads; we reserve the same capacity.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "common/spinlock.h"

namespace bref {

inline constexpr int kMaxThreads = 192;

/// Thrown by ThreadRegistry::acquire when every dense id slot is held.
/// Before this existed, exhaustion was an assert in debug builds and an
/// out-of-bounds substrate index (UB) in release builds — unacceptable for
/// a server multiplexing many connections over few sessions, where the
/// right response is a clean error frame, not a crash.
class ThreadSlotsExhaustedError : public std::runtime_error {
 public:
  ThreadSlotsExhaustedError()
      : std::runtime_error(
            "ThreadRegistry: all " + std::to_string(kMaxThreads) +
            " dense thread-id slots are in use (leaked sessions?)") {}
};

/// Hands out dense thread ids, recycling released ones. Benchmarks and
/// tests typically assign ids 0..n-1 themselves; the registry backs
/// ThreadSession (api/set.h) and the convenience tl_thread_id() helper.
///
/// An id may be release()d and handed to another thread only between
/// operations (RAII sessions guarantee this): per-thread substrate slots
/// (EBR epochs, RQ announcements) are quiescent at that point, so reuse is
/// indistinguishable from the original thread continuing.
class ThreadRegistry {
 public:
  /// Acquire a dense id; throws ThreadSlotsExhaustedError when all
  /// kMaxThreads slots are held (never returns an out-of-range id).
  int acquire() {
    const int tid = try_acquire();
    if (tid < 0) throw ThreadSlotsExhaustedError();
    return tid;
  }

  /// Non-throwing acquire: -1 when the id space is exhausted. The guard
  /// form for callers that must degrade gracefully (the network server's
  /// worker startup) instead of unwinding. Hands out the LOWEST free id,
  /// keeping application sessions away from the high end that
  /// try_acquire_high callers (background maintenance) live in.
  int try_acquire() noexcept {
    std::lock_guard<Spinlock> g(lock_);
    for (int i = 0; i < kMaxThreads; ++i)
      if (!used_[i]) return take(i);
    return -1;
  }

  /// Acquire from the TOP of the id space (highest free id, -1 when
  /// exhausted). Background services (MaintenanceService, BundleCleaner)
  /// use this so their ids are registry-tracked — a fresh try_acquire can
  /// never collide with them — while staying clear of the low ids that
  /// benchmark drivers hand-pin without consulting the registry.
  int try_acquire_high() noexcept {
    std::lock_guard<Spinlock> g(lock_);
    for (int i = kMaxThreads - 1; i >= 0; --i)
      if (!used_[i]) return take(i);
    return -1;
  }

  /// Return a tid to the pool. Callers must not release an id another
  /// in-flight operation still uses; ThreadSession's destructor is the
  /// intended call site.
  void release(int tid) noexcept {
    std::lock_guard<Spinlock> g(lock_);
    assert(tid >= 0 && tid < kMaxThreads && used_[tid]);
    used_[tid] = false;
    --in_use_;
  }

  /// High-water mark: one past the highest id ever handed out.
  int registered() const noexcept {
    std::lock_guard<Spinlock> g(lock_);
    return next_;
  }

  /// Ids currently held (acquired and not yet released).
  int in_use() const noexcept {
    std::lock_guard<Spinlock> g(lock_);
    return in_use_;
  }

  /// Global registry used by ThreadSession and tl_thread_id().
  static ThreadRegistry& instance() {
    static ThreadRegistry reg;
    return reg;
  }

 private:
  int take(int i) noexcept {
    used_[i] = true;
    ++in_use_;
    if (i >= next_) next_ = i + 1;
    return i;
  }

  mutable Spinlock lock_;
  int next_ = 0;
  int in_use_ = 0;
  bool used_[kMaxThreads] = {};
};

/// Lazily-assigned dense id for the calling thread, never released
/// (application convenience; prefer RAII sessions, which recycle ids, and
/// note the benchmark drivers pass explicit ids instead).
inline int tl_thread_id() {
  thread_local int id = ThreadRegistry::instance().acquire();
  return id;
}

/// High-water mark of thread ids that ever touched a substrate. Grace-period
/// and min-scans iterate only up to the mark instead of over all kMaxThreads
/// padded slots; threads must note() their id before any participation.
class TidHwm {
 public:
  void note(int tid) noexcept {
    int h = hwm_.load(std::memory_order_relaxed);
    while (tid >= h &&
           !hwm_.compare_exchange_weak(h, tid + 1, std::memory_order_seq_cst)) {
    }
  }
  int get() const noexcept { return hwm_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<int> hwm_{0};
};

}  // namespace bref
