#pragma once
// Compile-time thread capacity and a small runtime registry.
//
// All substrates (EBR, RCU, RLU, the range-query tracker) keep fixed-size
// arrays of cache-padded per-thread slots indexed by a dense thread id. The
// paper evaluates up to 192 hyperthreads; we reserve the same capacity.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "common/spinlock.h"

namespace bref {

inline constexpr int kMaxThreads = 192;

/// Hands out dense thread ids, recycling released ones. Benchmarks and
/// tests typically assign ids 0..n-1 themselves; the registry backs
/// ThreadSession (api/set.h) and the convenience tl_thread_id() helper.
///
/// An id may be release()d and handed to another thread only between
/// operations (RAII sessions guarantee this): per-thread substrate slots
/// (EBR epochs, RQ announcements) are quiescent at that point, so reuse is
/// indistinguishable from the original thread continuing.
class ThreadRegistry {
 public:
  int acquire() noexcept {
    std::lock_guard<Spinlock> g(lock_);
    if (free_top_ > 0) return free_[--free_top_];
    const int tid = next_++;
    assert(tid < kMaxThreads && "too many registered threads");
    return tid;
  }

  /// Return a tid to the pool. Callers must not release an id another
  /// in-flight operation still uses; ThreadSession's destructor is the
  /// intended call site.
  void release(int tid) noexcept {
    std::lock_guard<Spinlock> g(lock_);
    assert(tid >= 0 && tid < next_ && free_top_ < kMaxThreads);
    free_[free_top_++] = tid;
  }

  /// High-water mark of distinct ids ever handed out.
  int registered() const noexcept {
    std::lock_guard<Spinlock> g(lock_);
    return next_;
  }

  /// Ids currently held (acquired and not yet released).
  int in_use() const noexcept {
    std::lock_guard<Spinlock> g(lock_);
    return next_ - free_top_;
  }

  /// Global registry used by ThreadSession and tl_thread_id().
  static ThreadRegistry& instance() {
    static ThreadRegistry reg;
    return reg;
  }

 private:
  mutable Spinlock lock_;
  int next_ = 0;
  int free_top_ = 0;
  int free_[kMaxThreads] = {};
};

/// Lazily-assigned dense id for the calling thread, never released
/// (application convenience; prefer RAII sessions, which recycle ids, and
/// note the benchmark drivers pass explicit ids instead).
inline int tl_thread_id() {
  thread_local int id = ThreadRegistry::instance().acquire();
  return id;
}

/// High-water mark of thread ids that ever touched a substrate. Grace-period
/// and min-scans iterate only up to the mark instead of over all kMaxThreads
/// padded slots; threads must note() their id before any participation.
class TidHwm {
 public:
  void note(int tid) noexcept {
    int h = hwm_.load(std::memory_order_relaxed);
    while (tid >= h &&
           !hwm_.compare_exchange_weak(h, tid + 1, std::memory_order_seq_cst)) {
    }
  }
  int get() const noexcept { return hwm_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<int> hwm_{0};
};

}  // namespace bref
