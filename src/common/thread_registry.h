#pragma once
// Compile-time thread capacity and a small runtime registry.
//
// All substrates (EBR, RCU, RLU, the range-query tracker) keep fixed-size
// arrays of cache-padded per-thread slots indexed by a dense thread id. The
// paper evaluates up to 192 hyperthreads; we reserve the same capacity.

#include <atomic>
#include <cassert>
#include <cstdint>

namespace bref {

inline constexpr int kMaxThreads = 192;

/// Hands out dense thread ids. Benchmarks and tests typically assign ids
/// 0..n-1 themselves; the registry is for applications (see examples/) that
/// want automatic assignment per std::thread.
class ThreadRegistry {
 public:
  int acquire() noexcept {
    int tid = next_.fetch_add(1, std::memory_order_relaxed);
    assert(tid < kMaxThreads && "too many registered threads");
    return tid;
  }

  int registered() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Global registry used by the convenience `tl_thread_id()` helper.
  static ThreadRegistry& instance() {
    static ThreadRegistry reg;
    return reg;
  }

 private:
  std::atomic<int> next_{0};
};

/// Lazily-assigned dense id for the calling thread (application convenience;
/// the benchmark drivers pass explicit ids instead).
inline int tl_thread_id() {
  thread_local int id = ThreadRegistry::instance().acquire();
  return id;
}

/// High-water mark of thread ids that ever touched a substrate. Grace-period
/// and min-scans iterate only up to the mark instead of over all kMaxThreads
/// padded slots; threads must note() their id before any participation.
class TidHwm {
 public:
  void note(int tid) noexcept {
    int h = hwm_.load(std::memory_order_relaxed);
    while (tid >= h &&
           !hwm_.compare_exchange_weak(h, tid + 1, std::memory_order_seq_cst)) {
    }
  }
  int get() const noexcept { return hwm_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<int> hwm_{0};
};

}  // namespace bref
