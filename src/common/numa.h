#pragma once
// Minimal NUMA helpers for the entry-pool arenas (core/entry_pool.h).
//
// No libnuma dependency: the node count comes from sysfs and the binding
// is a raw mbind(2) syscall, compiled in only where the kernel headers are
// present. Everything degrades to a no-op — on non-Linux, on single-node
// machines, or when mbind fails (EPERM in restricted containers) the slab
// stays wherever first-touch put it, which is the right placement anyway
// because slabs are constructed on the acquiring (shard-affine) thread.

#include <cstddef>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#if __has_include(<linux/mempolicy.h>)
#include <linux/mempolicy.h>
#include <sys/syscall.h>
#define BREF_HAVE_MBIND 1
#endif
#endif

namespace bref {

/// Number of NUMA nodes with memory, per sysfs; 1 when undeterminable.
/// Cached after the first call (the topology does not change).
inline int numa_node_count() noexcept {
  static const int count = [] {
#if defined(__linux__)
    DIR* d = ::opendir("/sys/devices/system/node");
    if (d == nullptr) return 1;
    int n = 0;
    while (dirent* e = ::readdir(d)) {
      const char* name = e->d_name;
      if (name[0] == 'n' && name[1] == 'o' && name[2] == 'd' &&
          name[3] == 'e' && name[4] >= '0' && name[4] <= '9')
        ++n;
    }
    ::closedir(d);
    return n > 0 ? n : 1;
#else
    return 1;
#endif
  }();
  return count;
}

/// Best-effort: prefer placing `[p, p+len)` on `node`. Call before the
/// memory is first touched; errors (and node < 0) are ignored — see the
/// header comment for why the fallback is already correct.
inline void numa_bind_memory(void* p, size_t len, int node) noexcept {
#ifdef BREF_HAVE_MBIND
  if (node < 0 || node >= numa_node_count()) return;
  unsigned long mask = 1ul << node;
  (void)::syscall(__NR_mbind, p, len, MPOL_PREFERRED, &mask,
                  sizeof(mask) * 8, 0);
#else
  (void)p, (void)len, (void)node;
#endif
}

}  // namespace bref
