#pragma once
// Double-compare single-swap (DCSS) with helping.
//
// dcss(a1, e1, a2, e2, v2) atomically performs
//     if (*a1 == e1 && *a2 == e2) { *a2 = v2; return true; } return false;
// where only a2 is written. This is the primitive the lock-free EBR-RQ
// variant (Arbel-Raviv & Brown, PPoPP'18) uses to stamp a node's
// insert/delete timestamp only if the global range-query timestamp has not
// moved. The construction follows Harris et al.'s RDCSS: a descriptor is
// CAS-ed into a2, any thread that encounters it helps complete it, and a
// per-round verdict field makes the decision unique even when the control
// word a1 changes while helpers race.
//
// Descriptors are per-thread and recycled; a 48-bit sequence number embedded
// in the descriptor pointer defeats ABA on reuse. Values stored through DCSS
// words must keep bit 63 clear (timestamps in this codebase are far below
// 2^63).

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/thread_registry.h"

namespace bref {

class DcssProvider {
 public:
  /// Atomic double-compare single-swap; see file comment. `v2 != e2` is
  /// required (otherwise success and failure are indistinguishable to
  /// helpers). Caller identifies itself with its dense thread id.
  bool dcss(int tid, const std::atomic<uint64_t>& a1, uint64_t e1,
            std::atomic<uint64_t>& a2, uint64_t e2, uint64_t v2) {
    assert(tid >= 0 && tid < kMaxThreads);
    assert((e2 & kDescBit) == 0 && (v2 & kDescBit) == 0 && e2 != v2);
    Desc& d = *descs_[tid];
    const uint64_t s = d.seq.load(std::memory_order_relaxed) + 1;  // odd
    // Relaxed field stores: the release on seq below publishes them to
    // helpers, whose acquire load of seq == s is the license to read. A
    // stale helper of an older round may still read these concurrently —
    // that mixed snapshot is harmless (the versioned verdict RMW and the
    // never-reused packed pointer gate every effect), but the accesses
    // must be atomic for the race to be defined behaviour.
    d.addr1.store(&a1, std::memory_order_relaxed);
    d.exp1.store(e1, std::memory_order_relaxed);
    d.addr2.store(&a2, std::memory_order_relaxed);
    d.exp2.store(e2, std::memory_order_relaxed);
    d.val2.store(v2, std::memory_order_relaxed);
    d.verdict.store(pack_verdict(s, kUndecided), std::memory_order_relaxed);
    d.seq.store(s, std::memory_order_release);  // activate round s

    const uint64_t packed = pack_ptr(tid, s);
    Backoff bo;
    for (;;) {
      uint64_t cur = e2;
      if (a2.compare_exchange_strong(cur, packed, std::memory_order_acq_rel)) {
        break;  // descriptor installed
      }
      if (cur & kDescBit) {
        help(cur);  // someone else's op is in flight at a2
        continue;
      }
      // a2 holds a plain value != e2: the double-compare fails outright.
      d.seq.store(s + 1, std::memory_order_release);
      return false;
    }
    const bool ok = complete(d, s, packed);
    d.seq.store(s + 1, std::memory_order_release);  // retire round s
    return ok;
  }

  /// Read a DCSS word, helping any in-flight operation first so the caller
  /// always sees a plain value.
  uint64_t read(const std::atomic<uint64_t>& a2) {
    for (;;) {
      uint64_t v = a2.load(std::memory_order_acquire);
      if (!(v & kDescBit)) return v;
      help(v);
    }
  }

  /// Plain CAS on a DCSS word (used by operations that do not need the
  /// double-compare but share the word), helping descriptors out of the way.
  bool cas(std::atomic<uint64_t>& a2, uint64_t e2, uint64_t v2) {
    assert((e2 & kDescBit) == 0 && (v2 & kDescBit) == 0);
    for (;;) {
      uint64_t cur = e2;
      if (a2.compare_exchange_strong(cur, v2, std::memory_order_acq_rel))
        return true;
      if (cur & kDescBit) {
        help(cur);
        continue;
      }
      return false;
    }
  }

 private:
  static constexpr uint64_t kDescBit = 1ull << 63;
  static constexpr uint64_t kUndecided = 0, kSucceeded = 1, kFailed = 2;

  struct Desc {
    std::atomic<uint64_t> seq{0};  // odd = active round; even = quiescent
    // Operand fields are atomics accessed relaxed: written by the owner
    // before the seq release, read by helpers after a seq acquire, and
    // possibly read concurrently by stale helpers of a retired round
    // (benign — see dcss()).
    std::atomic<const std::atomic<uint64_t>*> addr1{nullptr};
    std::atomic<uint64_t> exp1{0};
    std::atomic<std::atomic<uint64_t>*> addr2{nullptr};
    std::atomic<uint64_t> exp2{0};
    std::atomic<uint64_t> val2{0};
    std::atomic<uint64_t> verdict{0};  // (seq << 2) | {UNDECIDED,SUCC,FAIL}
  };

  static uint64_t pack_ptr(int tid, uint64_t seq) {
    return kDescBit | (static_cast<uint64_t>(tid) << 48) |
           (seq & ((1ull << 48) - 1));
  }
  static uint64_t pack_verdict(uint64_t seq, uint64_t v) {
    return (seq << 2) | v;
  }

  /// Decide the round's verdict (exactly once across all helpers) and swing
  /// a2 accordingly. Returns whether the double-compare succeeded. Only the
  /// owner consumes the return value.
  bool complete(Desc& d, uint64_t s, uint64_t packed) {
    uint64_t ver = d.verdict.load(std::memory_order_acquire);
    if ((ver >> 2) == s && (ver & 3) == kUndecided) {
      const uint64_t decided =
          (d.addr1.load(std::memory_order_relaxed)
                   ->load(std::memory_order_seq_cst) ==
           d.exp1.load(std::memory_order_relaxed))
              ? kSucceeded
              : kFailed;
      uint64_t expect = pack_verdict(s, kUndecided);
      d.verdict.compare_exchange_strong(expect, pack_verdict(s, decided),
                                        std::memory_order_acq_rel);
      ver = d.verdict.load(std::memory_order_acquire);
    }
    if ((ver >> 2) != s) return false;  // round already retired (owner only)
    const bool ok = (ver & 3) == kSucceeded;
    uint64_t cur = packed;
    d.addr2.load(std::memory_order_relaxed)
        ->compare_exchange_strong(cur,
                                  ok ? d.val2.load(std::memory_order_relaxed)
                                     : d.exp2.load(std::memory_order_relaxed),
                                  std::memory_order_acq_rel);
    return ok;
  }

  void help(uint64_t packed) {
    const int tid = static_cast<int>((packed >> 48) & 0x7fff);
    const uint64_t s = packed & ((1ull << 48) - 1);
    Desc& d = *descs_[tid];
    if (d.seq.load(std::memory_order_acquire) != s) return;  // round over
    // Snapshot fields, then revalidate the round so we never act on a
    // half-written descriptor from a newer round.
    const std::atomic<uint64_t>* addr1 = d.addr1.load(std::memory_order_relaxed);
    const uint64_t exp1 = d.exp1.load(std::memory_order_relaxed);
    std::atomic<uint64_t>* addr2 = d.addr2.load(std::memory_order_relaxed);
    const uint64_t exp2 = d.exp2.load(std::memory_order_relaxed);
    const uint64_t val2 = d.val2.load(std::memory_order_relaxed);
    if (d.seq.load(std::memory_order_acquire) != s) return;

    uint64_t ver = d.verdict.load(std::memory_order_acquire);
    if ((ver >> 2) == s && (ver & 3) == kUndecided) {
      const uint64_t decided =
          (addr1->load(std::memory_order_seq_cst) == exp1) ? kSucceeded
                                                           : kFailed;
      uint64_t expect = pack_verdict(s, kUndecided);
      d.verdict.compare_exchange_strong(expect, pack_verdict(s, decided),
                                        std::memory_order_acq_rel);
      ver = d.verdict.load(std::memory_order_acquire);
    }
    if ((ver >> 2) != s) return;
    const bool ok = (ver & 3) == kSucceeded;
    uint64_t cur = packed;
    addr2->compare_exchange_strong(cur, ok ? val2 : exp2,
                                   std::memory_order_acq_rel);
  }

  CachePadded<Desc> descs_[kMaxThreads];
};

}  // namespace bref
