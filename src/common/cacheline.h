#pragma once
// Cache-line geometry and padding helpers.
//
// All per-thread hot state in this library (epoch slots, range-query announce
// slots, statistics counters) is padded to a cache line to prevent false
// sharing, which otherwise dominates measurements on multi-socket machines.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bref {

// std::hardware_destructive_interference_size is 64 on the x86_64 targets we
// care about but is not universally provided; pin it explicitly.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps a T in storage padded to a whole number of cache lines so adjacent
/// array elements never share a line.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  CachePadded() = default;
  explicit CachePadded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Round sizeof(T) up to the next multiple of kCacheLine.
  static constexpr std::size_t padded_size() {
    return ((sizeof(T) + kCacheLine - 1) / kCacheLine) * kCacheLine;
  }
  char pad_[padded_size() - sizeof(T) > 0 ? padded_size() - sizeof(T) : kCacheLine]{};
};

}  // namespace bref
