#pragma once
// CPU-relax and bounded exponential backoff used by all spin loops.

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace bref {

/// Hint to the CPU that we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Bounded exponential backoff. Spin counts double up to a cap; once the cap
/// is reached the thread yields so oversubscribed runs make progress.
class Backoff {
 public:
  explicit Backoff(uint32_t initial = 4, uint32_t cap = 1024)
      : limit_(initial), cap_(cap) {}

  void pause() noexcept {
    if (limit_ > cap_) {
      std::this_thread::yield();
      return;
    }
    for (uint32_t i = 0; i < limit_; ++i) cpu_relax();
    limit_ <<= 1;
  }

  void reset(uint32_t initial = 4) noexcept { limit_ = initial; }

 private:
  uint32_t limit_;
  uint32_t cap_;
};

}  // namespace bref
