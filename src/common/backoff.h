#pragma once
// CPU-relax and bounded exponential backoff used by all spin loops, plus
// the sleeping jittered variant retry loops over the wire use.

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace bref {

/// Hint to the CPU that we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Bounded exponential backoff. Spin counts double up to a cap; once the cap
/// is reached the thread yields so oversubscribed runs make progress.
class Backoff {
 public:
  explicit Backoff(uint32_t initial = 4, uint32_t cap = 1024)
      : limit_(initial), cap_(cap) {}

  void pause() noexcept {
    if (limit_ > cap_) {
      std::this_thread::yield();
      return;
    }
    for (uint32_t i = 0; i < limit_; ++i) cpu_relax();
    limit_ <<= 1;
  }

  void reset(uint32_t initial = 4) noexcept { limit_ = initial; }

 private:
  uint32_t limit_;
  uint32_t cap_;
};

/// Sleeping exponential backoff with full jitter, for retry loops over
/// milliseconds rather than spin loops over cycles (AWS's "full jitter":
/// each delay is uniform in [0, min(cap, base << attempt)], which
/// de-synchronizes a thundering herd of retriers far better than
/// deterministic doubling). Deterministic given the seed, so chaos tests
/// replay exactly.
class JitteredBackoff {
 public:
  explicit JitteredBackoff(uint64_t seed, uint32_t base_ms = 1,
                           uint32_t cap_ms = 128) noexcept
      : state_(seed ? seed : 0x9e3779b97f4a7c15ull),
        base_ms_(base_ms ? base_ms : 1),
        cap_ms_(cap_ms) {}

  /// Next delay in milliseconds (never exceeds cap; may be 0 — jitter).
  uint32_t next_ms() noexcept {
    uint64_t ceil = static_cast<uint64_t>(base_ms_) << attempt_;
    if (ceil > cap_ms_ || ceil == 0) ceil = cap_ms_;
    if (attempt_ < 31) ++attempt_;
    return static_cast<uint32_t>(next_random() % (ceil + 1));
  }

  /// next_ms(), but never below `floor_ms` (retry-after hints become the
  /// floor, jitter only stretches the wait).
  uint32_t next_ms(uint32_t floor_ms) noexcept {
    const uint32_t d = next_ms();
    return d < floor_ms ? floor_ms : d;
  }

  void sleep() { sleep_for(next_ms()); }

  static void sleep_for(uint32_t ms) {
    if (ms == 0)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  void reset() noexcept { attempt_ = 0; }
  uint32_t attempt() const noexcept { return attempt_; }

 private:
  uint64_t next_random() noexcept {  // splitmix64
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state_;
  uint32_t base_ms_;
  uint32_t cap_ms_;
  uint32_t attempt_ = 0;
};

}  // namespace bref
