#pragma once
// Writer-preference reader-writer spinlock.
//
// This is the lock the EBR-RQ (lock-based) range-query provider uses to
// protect its global timestamp: update operations take the lock in shared
// mode around their linearization point, range queries take it exclusively
// while incrementing the timestamp (Arbel-Raviv & Brown, PPoPP'18). Writer
// preference keeps range queries from starving under update-heavy loads.

#include <atomic>
#include <cstdint>

#include "common/backoff.h"

namespace bref {

class RWSpinlock {
 public:
  void lock_shared() noexcept {
    Backoff bo;
    for (;;) {
      while (writer_.load(std::memory_order_relaxed)) bo.pause();
      readers_.fetch_add(1, std::memory_order_acquire);
      if (!writer_.load(std::memory_order_acquire)) return;
      readers_.fetch_sub(1, std::memory_order_release);
    }
  }

  void unlock_shared() noexcept {
    readers_.fetch_sub(1, std::memory_order_release);
  }

  void lock() noexcept {
    Backoff bo;
    while (writer_.exchange(true, std::memory_order_acquire)) bo.pause();
    bo.reset();
    while (readers_.load(std::memory_order_acquire) != 0) bo.pause();
  }

  void unlock() noexcept { writer_.store(false, std::memory_order_release); }

 private:
  std::atomic<int64_t> readers_{0};
  std::atomic<bool> writer_{false};
};

}  // namespace bref
