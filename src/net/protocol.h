#pragma once
// bref wire protocol — the length-prefixed binary frames the network
// front-end (server.h) and client library (client.h) exchange. See
// PROTOCOL.md in this directory for the normative description; the short
// version:
//
//   request  frame: u32 len | u8 opcode | body        (len covers opcode+body)
//   response frame: u32 len | u8 status | body
//
// All integers are little-endian. Keys and values are the library's
// KeyT/ValT (int64), carried as their two's-complement bit pattern.
// Requests may be pipelined: a client may write any number of frames
// before reading; the server answers every frame of a connection in
// arrival order, so the k-th response always belongs to the k-th request.
//
// Framing errors vs op errors: a frame whose *declared length* is
// unusable (> max_frame, or too short to carry an opcode) poisons the
// byte stream — the server answers kErrTooLarge/kErrMalformed and closes
// the connection. A well-framed frame with an unusable *body* (unknown
// opcode, wrong body size, transaction-state misuse) gets an error
// response but the connection lives on: the stream is still in sync.

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/range_snapshot.h"
#include "api/types.h"

namespace bref::net {

// -- vocabulary --------------------------------------------------------------

enum class Op : uint8_t {
  kGet = 1,        // body: key                 -> kOk+val | kNo
  kInsert = 2,     // body: key val             -> kOk (inserted) | kNo (present)
  kRemove = 3,     // body: key                 -> kOk (removed) | kNo (absent)
  kRange = 4,      // body: lo hi               -> kOk + ts + n + n*(key,val)
  kTxnBegin = 5,   // body: -                   -> kOk | kErrTxnState
  kTxnOp = 6,      // body: u8 op key [val]     -> kOk (buffered) | kErr*
  kTxnCommit = 7,  // body: -                   -> kOk + n + n*(status,val)
  kTxnAbort = 8,   // body: -                   -> kOk | kErrTxnState
  kPing = 9,       // body: -                   -> kOk
  kStats = 10,     // body: -                   -> kOk + utf8 JSON text
  kMetrics = 11,   // body: -                   -> kOk + Prometheus text
  kTraceDump = 12, // body: - | u32 sample_every | u32 sample_every + u32
                   //       threshold_us         -> kOk + utf8 JSON text | kOk
  kTraceGet = 13,  // body: u64 trace_id         -> kOk + utf8 JSON text | kNo
};

enum class Status : uint8_t {
  kOk = 0,
  kNo = 1,             // successful op, negative answer (absent / no-op)
  kErrMalformed = 16,  // unknown opcode or body size mismatch
  kErrTooLarge = 17,   // declared frame length over the server's max_frame
  kErrTxnState = 18,   // TXN_OP/COMMIT/ABORT without BEGIN, BEGIN twice, ...
  kErrShutdown = 19,   // server draining; op not executed
  kErrOverloaded = 20, // shed by admission control; op NOT executed.
                       // body: u32 retry-after hint (milliseconds).
};

inline const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNo: return "no";
    case Status::kErrMalformed: return "malformed";
    case Status::kErrTooLarge: return "too-large";
    case Status::kErrTxnState: return "txn-state";
    case Status::kErrShutdown: return "shutdown";
    case Status::kErrOverloaded: return "overloaded";
  }
  return "?";
}

/// Default cap on one frame's declared length (opcode + body). A RANGE
/// *response* may legitimately exceed a request-sized cap, so the cap
/// applies to inbound requests only; responses are bounded by the range
/// width the client asked for.
inline constexpr uint32_t kDefaultMaxFrame = 1u << 20;

/// Frame length prefix size.
inline constexpr size_t kLenBytes = 4;

// -- trace context -----------------------------------------------------------
//
// A request frame may carry an 8-byte trace context between the length
// word and the opcode byte, announced by the top bit of the length word:
//
//   traced request frame: u32 (len | kTraceFlagBit) | u64 trace_id | u8 op | body
//
// `len` still counts opcode+body only (the context is header, not
// payload), so every length-derived rule (max_frame, body sizing) is
// untouched. The scheme is wire-compatible in the direction that matters:
// a client that never sets the bit speaks the PR 6 protocol byte-for-byte.
// The bit is free because max_frame caps any legal length far below 2^31;
// an old server that receives a flagged frame sees an impossible length
// and rejects it exactly like any other oversized garbage — so clients
// must only stamp trace contexts at servers that advertise this protocol
// (see PROTOCOL.md). Responses never carry the flag.

inline constexpr uint32_t kTraceFlagBit = 1u << 31;
inline constexpr uint32_t kLenMask = kTraceFlagBit - 1;
inline constexpr size_t kTraceCtxBytes = 8;

// -- little-endian scalar packing -------------------------------------------

inline void put_u32(std::vector<uint8_t>& b, uint32_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v >> 16));
  b.push_back(static_cast<uint8_t>(v >> 24));
}
inline void put_u64(std::vector<uint8_t>& b, uint64_t v) {
  put_u32(b, static_cast<uint32_t>(v));
  put_u32(b, static_cast<uint32_t>(v >> 32));
}
inline void put_i64(std::vector<uint8_t>& b, int64_t v) {
  put_u64(b, static_cast<uint64_t>(v));
}
inline uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
inline uint64_t get_u64(const uint8_t* p) {
  return static_cast<uint64_t>(get_u32(p)) |
         static_cast<uint64_t>(get_u32(p + 4)) << 32;
}
inline int64_t get_i64(const uint8_t* p) {
  return static_cast<int64_t>(get_u64(p));
}

/// Retrofit a trace context onto the already-encoded frame starting at
/// `frame_off` in `b` (sets the flag bit, splices the id after the length
/// word). Call right after the encode_* helper while the frame is still
/// the buffer tail and the splice is O(frame).
inline void stamp_trace_context(std::vector<uint8_t>& b, size_t frame_off,
                                uint64_t trace_id) {
  if (trace_id == 0) return;  // 0 means "no context"; nothing to stamp
  const uint32_t flagged = get_u32(b.data() + frame_off) | kTraceFlagBit;
  b[frame_off + 0] = static_cast<uint8_t>(flagged);
  b[frame_off + 1] = static_cast<uint8_t>(flagged >> 8);
  b[frame_off + 2] = static_cast<uint8_t>(flagged >> 16);
  b[frame_off + 3] = static_cast<uint8_t>(flagged >> 24);
  uint8_t ctx[kTraceCtxBytes];
  for (size_t i = 0; i < kTraceCtxBytes; ++i)
    ctx[i] = static_cast<uint8_t>(trace_id >> (8 * i));
  b.insert(b.begin() + static_cast<ptrdiff_t>(frame_off + kLenBytes), ctx,
           ctx + kTraceCtxBytes);
}

// -- request encoding --------------------------------------------------------
//
// Appends one complete frame to `b` (the pipelining-friendly shape: encode
// any number of requests into one buffer, write once).

inline void encode_header(std::vector<uint8_t>& b, Op op, uint32_t body_len) {
  put_u32(b, 1 + body_len);
  b.push_back(static_cast<uint8_t>(op));
}
inline void encode_get(std::vector<uint8_t>& b, KeyT key) {
  encode_header(b, Op::kGet, 8);
  put_i64(b, key);
}
inline void encode_insert(std::vector<uint8_t>& b, KeyT key, ValT val) {
  encode_header(b, Op::kInsert, 16);
  put_i64(b, key);
  put_i64(b, val);
}
inline void encode_remove(std::vector<uint8_t>& b, KeyT key) {
  encode_header(b, Op::kRemove, 8);
  put_i64(b, key);
}
inline void encode_range(std::vector<uint8_t>& b, KeyT lo, KeyT hi) {
  encode_header(b, Op::kRange, 16);
  put_i64(b, lo);
  put_i64(b, hi);
}
inline void encode_txn_begin(std::vector<uint8_t>& b) {
  encode_header(b, Op::kTxnBegin, 0);
}
inline void encode_txn_op(std::vector<uint8_t>& b, Op inner, KeyT key,
                          ValT val = 0) {
  const bool has_val = inner == Op::kInsert;
  encode_header(b, Op::kTxnOp, 1 + 8 + (has_val ? 8 : 0));
  b.push_back(static_cast<uint8_t>(inner));
  put_i64(b, key);
  if (has_val) put_i64(b, val);
}
inline void encode_txn_commit(std::vector<uint8_t>& b) {
  encode_header(b, Op::kTxnCommit, 0);
}
inline void encode_txn_abort(std::vector<uint8_t>& b) {
  encode_header(b, Op::kTxnAbort, 0);
}
inline void encode_ping(std::vector<uint8_t>& b) {
  encode_header(b, Op::kPing, 0);
}
inline void encode_stats(std::vector<uint8_t>& b) {
  encode_header(b, Op::kStats, 0);
}
inline void encode_metrics(std::vector<uint8_t>& b) {
  encode_header(b, Op::kMetrics, 0);
}
/// Empty body: dump the flight-recorder tail. With `sample_every`: set the
/// global trace sampling rate (0 disables) and answer a bare kOk.
inline void encode_trace_dump(std::vector<uint8_t>& b) {
  encode_header(b, Op::kTraceDump, 0);
}
inline void encode_trace_rate(std::vector<uint8_t>& b, uint32_t sample_every) {
  encode_header(b, Op::kTraceDump, 4);
  put_u32(b, sample_every);
}
/// 8-byte TRACE_DUMP body: set the reservoir rate AND the tail-commit
/// threshold in one shot. `threshold_us` semantics: 0 commits every traced
/// request, UINT32_MAX disables threshold commits, anything else is the
/// latency floor in microseconds.
inline void encode_trace_config(std::vector<uint8_t>& b, uint32_t sample_every,
                                uint32_t threshold_us) {
  encode_header(b, Op::kTraceDump, 8);
  put_u32(b, sample_every);
  put_u32(b, threshold_us);
}
/// Fetch one committed trace's span timeline by id (kNo when the id is
/// unknown — never committed, or already evicted from the ring window).
inline void encode_trace_get(std::vector<uint8_t>& b, uint64_t trace_id) {
  encode_header(b, Op::kTraceGet, 8);
  put_u64(b, trace_id);
}

// -- response encoding (server side) ----------------------------------------

inline void encode_status(std::vector<uint8_t>& b, Status st) {
  put_u32(b, 1);
  b.push_back(static_cast<uint8_t>(st));
}
inline void encode_val_response(std::vector<uint8_t>& b, ValT val) {
  put_u32(b, 1 + 8);
  b.push_back(static_cast<uint8_t>(Status::kOk));
  put_i64(b, val);
}
inline void encode_range_response(
    std::vector<uint8_t>& b, timestamp_t ts,
    const std::vector<std::pair<KeyT, ValT>>& items) {
  put_u32(b, static_cast<uint32_t>(1 + 8 + 4 + 16 * items.size()));
  b.push_back(static_cast<uint8_t>(Status::kOk));
  put_u64(b, ts);
  put_u32(b, static_cast<uint32_t>(items.size()));
  for (const auto& [k, v] : items) {
    put_i64(b, k);
    put_i64(b, v);
  }
}
inline void encode_text_response(std::vector<uint8_t>& b,
                                 const std::string& text) {
  put_u32(b, static_cast<uint32_t>(1 + text.size()));
  b.push_back(static_cast<uint8_t>(Status::kOk));
  b.insert(b.end(), text.begin(), text.end());
}
/// Shed reply: kErrOverloaded carrying the server's retry-after hint in
/// milliseconds. The op was NOT executed, so an immediate retry is always
/// safe — the hint just tells a well-behaved client when retrying is
/// likely to succeed.
inline void encode_overloaded(std::vector<uint8_t>& b,
                              uint32_t retry_after_ms) {
  put_u32(b, 1 + 4);
  b.push_back(static_cast<uint8_t>(Status::kErrOverloaded));
  put_u32(b, retry_after_ms);
}

// -- frame splitting ---------------------------------------------------------

/// One parsed frame: the leading tag byte (opcode or status) plus the rest
/// of the payload. Views into the caller's buffer; valid until it mutates.
struct FrameView {
  uint8_t tag = 0;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  uint64_t trace_id = 0;  ///< nonzero iff the frame carried a trace context

  Op op() const { return static_cast<Op>(tag); }
  Status status() const { return static_cast<Status>(tag); }
};

enum class SplitResult : uint8_t {
  kFrame,      // *out holds the next frame; consume advance bytes
  kNeedMore,   // buffer holds a partial frame
  kOversized,  // declared length exceeds max_frame (stream poisoned)
  kBadLength,  // declared length 0 (no tag byte; stream poisoned)
};

/// Try to split one frame off buf[off..len). On kFrame, `*advance` is the
/// total encoded size (prefix + payload) to consume. Never copies.
inline SplitResult split_frame(const uint8_t* buf, size_t len, size_t off,
                               uint32_t max_frame, FrameView* out,
                               size_t* advance) {
  if (len - off < kLenBytes) return SplitResult::kNeedMore;
  const uint32_t word = get_u32(buf + off);
  const bool traced = (word & kTraceFlagBit) != 0;
  const uint32_t flen = word & kLenMask;
  if (flen == 0) return SplitResult::kBadLength;
  if (flen > max_frame) return SplitResult::kOversized;
  const size_t hdr = kLenBytes + (traced ? kTraceCtxBytes : 0);
  if (len - off < hdr + flen) return SplitResult::kNeedMore;
  out->trace_id = traced ? get_u64(buf + off + kLenBytes) : 0;
  out->tag = buf[off + hdr];
  out->body = buf + off + hdr + 1;
  out->body_len = flen - 1;
  *advance = hdr + flen;
  return SplitResult::kFrame;
}

// -- response decoding (client side) ----------------------------------------

/// One transaction op's outcome as reported by TXN_COMMIT.
struct TxnOpResult {
  Status status = Status::kOk;
  ValT val = 0;  // GET result when status == kOk
};

/// Decoded response for the client library. `items`/`text`/`txn` are
/// filled only for the response kinds that carry them.
struct Reply {
  Status status = Status::kErrMalformed;
  ValT val = 0;
  timestamp_t ts = RangeSnapshot::kNoTimestamp;
  uint32_t retry_after_ms = 0;  // kErrOverloaded's hint; 0 otherwise
  std::vector<std::pair<KeyT, ValT>> items;
  std::string text;
  std::vector<TxnOpResult> txn;

  bool ok() const { return status == Status::kOk; }
  bool overloaded() const { return status == Status::kErrOverloaded; }
};

/// Decode a response frame's payload for the request kind `req`. Returns
/// false on a payload that does not match the protocol (client-side
/// defensive check; a healthy server never produces one).
inline bool decode_reply(Op req, const FrameView& f, Reply* r) {
  r->status = f.status();
  r->val = 0;
  r->ts = RangeSnapshot::kNoTimestamp;
  r->retry_after_ms = 0;
  r->items.clear();
  r->text.clear();
  r->txn.clear();
  if (r->status == Status::kErrOverloaded) {
    if (f.body_len == 4) r->retry_after_ms = get_u32(f.body);
    return true;  // hint optional: tag-only shed replies stay valid
  }
  if (r->status != Status::kOk) return true;  // error/negative: tag only
  switch (req) {
    case Op::kGet:
      if (f.body_len != 8) return false;
      r->val = get_i64(f.body);
      return true;
    case Op::kRange: {
      if (f.body_len < 12) return false;
      r->ts = get_u64(f.body);
      const uint32_t n = get_u32(f.body + 8);
      if (f.body_len != 12 + 16ull * n) return false;
      r->items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const uint8_t* p = f.body + 12 + 16ull * i;
        r->items.emplace_back(get_i64(p), get_i64(p + 8));
      }
      return true;
    }
    case Op::kTxnCommit: {
      if (f.body_len < 4) return false;
      const uint32_t n = get_u32(f.body);
      if (f.body_len != 4 + 9ull * n) return false;
      r->txn.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const uint8_t* p = f.body + 4 + 9ull * i;
        r->txn.push_back({static_cast<Status>(p[0]), get_i64(p + 1)});
      }
      return true;
    }
    case Op::kStats:
    case Op::kMetrics:
    case Op::kTraceDump:  // rate-set acks are tag-only; text stays empty
    case Op::kTraceGet:
      r->text.assign(reinterpret_cast<const char*>(f.body), f.body_len);
      return true;
    default:  // INSERT/REMOVE/PING/TXN_BEGIN/TXN_OP/TXN_ABORT: tag only
      return f.body_len == 0;
  }
}

}  // namespace bref::net
