#pragma once
// bref::net::Client — the client library for the bref wire protocol
// (protocol.h / PROTOCOL.md): a blocking TCP connection with a synchronous
// per-op surface and an explicit pipelined mode.
//
// Synchronous (one round trip per call):
//
//   net::Client c("127.0.0.1", port);
//   c.insert(10, 100);
//   std::optional<ValT> v = c.get(10);
//   RangeSnapshot snap;
//   c.range(5, 50, snap);          // snap.timestamp() = server-side stamp
//
// Pipelined (one write, one read wave for a whole batch — the shape the
// server's epoll-batched execution is built for):
//
//   net::Pipeline p(c);
//   for (KeyT k : keys) p.get(k);
//   std::vector<net::Reply> rs = p.collect();   // in request order
//
// Transactions mirror the wire ops: txn_begin()/txn_op()s/txn_commit()
// (per-op results) or txn_abort(). One client = one connection = one
// in-flight user; the class is not thread-safe (use one Client per
// thread, like sessions).
//
// Robustness contract (every failure is a typed NetError, never a hang):
//
//   * connect honors ClientOptions::connect_timeout_ms, retrying refused
//     connections with jittered backoff until the deadline — racing a
//     server that is still binding is safe.
//   * every read site is deadline-bounded (SO_RCVTIMEO per syscall,
//     op_deadline_ms per reply): a peer dying mid-pipeline, a black-holed
//     connection, or a half-open socket surfaces as kTimeout / kEof /
//     kReset within the deadline instead of blocking forever.
//   * synchronous ops transparently retry kErrOverloaded replies with
//     jittered exponential backoff floored at the server's retry-after
//     hint, up to overload_retries and within op_deadline_ms; past that
//     the NetError carries kOverloaded. Pipelined mode does NOT retry —
//     collect() surfaces shed replies (Reply::overloaded()) so batch
//     callers decide themselves.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/range_snapshot.h"
#include "api/types.h"
#include "common/backoff.h"
#include "net/protocol.h"
#include "net/testing/faultfd.h"

namespace bref::net {

/// Why a NetError was thrown — stable across what() wording changes, so
/// tests and retry policies can branch on it.
enum class NetErrorKind : uint8_t {
  kConnect,     // could not establish the connection within its deadline
  kTimeout,     // a read/write deadline expired (connection may be dead)
  kEof,         // orderly shutdown from the peer mid-conversation
  kReset,       // ECONNRESET / EPIPE — the peer vanished
  kProtocol,    // reply bytes do not parse / do not match the request
  kOverloaded,  // server kept shedding past every retry
  kIo,          // any other socket error
};

inline const char* to_string(NetErrorKind k) {
  switch (k) {
    case NetErrorKind::kConnect: return "connect";
    case NetErrorKind::kTimeout: return "timeout";
    case NetErrorKind::kEof: return "eof";
    case NetErrorKind::kReset: return "reset";
    case NetErrorKind::kProtocol: return "protocol";
    case NetErrorKind::kOverloaded: return "overloaded";
    case NetErrorKind::kIo: return "io";
  }
  return "?";
}

/// Thrown on connection failure, deadline expiry, unexpected EOF/reset,
/// shedding past every retry, or a reply that does not parse.
class NetError : public std::runtime_error {
 public:
  NetError(NetErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(net::to_string(kind)) + ": " + what),
        kind_(kind) {}
  NetErrorKind kind() const noexcept { return kind_; }

 private:
  NetErrorKind kind_;
};

/// Historical name; every throw site now carries a NetErrorKind.
using ClientError = NetError;

struct ClientOptions {
  uint32_t connect_timeout_ms = 5'000;  // total budget incl. refused-retries
  uint32_t recv_timeout_ms = 1'000;     // per-recv slice (SO_RCVTIMEO)
  uint32_t op_deadline_ms = 30'000;     // per-reply / per-op total budget
  uint32_t overload_retries = 8;        // sync ops only; 0 = never retry
  uint64_t backoff_seed = 0x9e3779b97f4a7c15ull;  // jitter determinism
  /// Stamp a trace context (PROTOCOL.md §trace context) onto every
  /// request, making each one traceable end-to-end; ids are reported via
  /// last_trace_id() / Pipeline::trace_ids() and resolved with
  /// trace_get(). Only enable against servers that speak this protocol
  /// revision — an old server rejects flagged frames as oversized.
  bool trace = false;
};

class Client {
 public:
  /// Connect to host:port within opt.connect_timeout_ms (refused
  /// connections are retried with jittered backoff — racing a server
  /// that is still binding its listener is safe). Throws NetError.
  Client(const std::string& host, uint16_t port, ClientOptions opt = {})
      : opt_(opt), backoff_(opt.backoff_seed) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
      throw NetError(NetErrorKind::kConnect, "bad address: " + host);
    const uint64_t deadline = now_ms() + opt_.connect_timeout_ms;
    JitteredBackoff bo(opt_.backoff_seed ^ 0xc0117ec7ull);  // connect jitter
    for (;;) {
      const int e = try_connect(addr, deadline);
      if (e == 0) break;
      if ((e != ECONNREFUSED && e != ETIMEDOUT && e != EINPROGRESS) ||
          now_ms() >= deadline)
        throw NetError(NetErrorKind::kConnect,
                       "connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(e));
      bo.sleep();
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_recv_timeout(opt_.recv_timeout_ms);
  }
  /// Loopback convenience.
  explicit Client(uint16_t port, ClientOptions opt = {})
      : Client("127.0.0.1", port, opt) {}

  ~Client() { close(); }
  Client(Client&& o) noexcept
      : opt_(o.opt_),
        backoff_(o.backoff_),
        fd_(std::exchange(o.fd_, -1)),
        trace_base_(o.trace_base_),
        trace_seq_(o.trace_seq_),
        last_trace_id_(o.last_trace_id_) {}
  Client& operator=(Client&& o) noexcept {
    if (this != &o) {
      close();
      opt_ = o.opt_;
      backoff_ = o.backoff_;
      fd_ = std::exchange(o.fd_, -1);
      trace_base_ = o.trace_base_;
      trace_seq_ = o.trace_seq_;
      last_trace_id_ = o.last_trace_id_;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  int fd() const noexcept { return fd_; }
  const ClientOptions& options() const noexcept { return opt_; }

  // -- synchronous surface (mirrors ThreadSession) -------------------------
  bool insert(KeyT key, ValT val) {
    buf_.clear();
    encode_insert(buf_, key, val);
    return call(Op::kInsert).status == Status::kOk;
  }
  bool remove(KeyT key) {
    buf_.clear();
    encode_remove(buf_, key);
    return call(Op::kRemove).status == Status::kOk;
  }
  std::optional<ValT> get(KeyT key) {
    buf_.clear();
    encode_get(buf_, key);
    const Reply r = call(Op::kGet);
    if (r.status != Status::kOk) return std::nullopt;
    return r.val;
  }
  /// Fill `out` with the server-side snapshot of [lo, hi], including the
  /// timestamp it linearized at (kNoTimestamp when the backing
  /// implementation reports none) — the same contract as
  /// ThreadSession::range_query, over the wire.
  size_t range(KeyT lo, KeyT hi, RangeSnapshot& out) {
    buf_.clear();
    encode_range(buf_, lo, hi);
    Reply r = call(Op::kRange);
    if (r.status != Status::kOk)
      throw NetError(NetErrorKind::kProtocol,
                     std::string("range: ") + to_string(r.status));
    out.reset(lo, hi) = std::move(r.items);
    out.set_timestamp(r.ts);
    return out.size();
  }
  bool ping() {
    buf_.clear();
    encode_ping(buf_);
    return call(Op::kPing).status == Status::kOk;
  }
  /// The server's stats document (JSON text; see Server::stats_json).
  std::string stats() {
    buf_.clear();
    encode_stats(buf_);
    return call(Op::kStats).text;
  }
  /// The process-wide metrics snapshot (Prometheus text exposition).
  std::string metrics() {
    buf_.clear();
    encode_metrics(buf_);
    return call(Op::kMetrics).text;
  }
  /// The committed-trace dump (JSON text; see Server::trace_dump_json).
  std::string trace_dump() {
    buf_.clear();
    encode_trace_dump(buf_);
    return call(Op::kTraceDump).text;
  }
  /// Set the trace reservoir rate (commit ~one trace per `sample_every`
  /// completions; 0 disables the reservoir).
  bool trace_rate(uint32_t sample_every) {
    buf_.clear();
    encode_trace_rate(buf_, sample_every);
    return call(Op::kTraceDump).status == Status::kOk;
  }
  /// Set the full capture policy: reservoir rate + latency threshold in
  /// microseconds (0 = commit every completed trace, UINT32_MAX = no
  /// threshold commits).
  bool trace_config(uint32_t sample_every, uint32_t threshold_us) {
    buf_.clear();
    encode_trace_config(buf_, sample_every, threshold_us);
    return call(Op::kTraceDump).status == Status::kOk;
  }
  /// Resolve a trace id to its committed span timeline (JSON), or
  /// std::nullopt when the server no longer (or never) holds it.
  std::optional<std::string> trace_get(uint64_t trace_id) {
    buf_.clear();
    encode_trace_get(buf_, trace_id);
    Reply r = call(Op::kTraceGet);
    if (r.status != Status::kOk) return std::nullopt;
    return std::move(r.text);
  }
  /// The id stamped on the most recent traced request (0 when tracing is
  /// off). With sync ops: the id of the op just issued.
  uint64_t last_trace_id() const noexcept { return last_trace_id_; }
  bool tracing() const noexcept { return opt_.trace; }

  /// Stamp the next trace id onto the frame starting at `frame_off` in
  /// `b` (Pipeline calls this per queued frame). Returns the id.
  uint64_t stamp_trace(std::vector<uint8_t>& b, size_t frame_off) {
    const uint64_t id = next_trace_id();
    stamp_trace_context(b, frame_off, id);
    last_trace_id_ = id;
    return id;
  }

  // -- transactions --------------------------------------------------------
  bool txn_begin() {
    buf_.clear();
    encode_txn_begin(buf_);
    return call(Op::kTxnBegin).status == Status::kOk;
  }
  bool txn_insert(KeyT key, ValT val) {
    buf_.clear();
    encode_txn_op(buf_, Op::kInsert, key, val);
    return call(Op::kTxnOp).status == Status::kOk;
  }
  bool txn_remove(KeyT key) {
    buf_.clear();
    encode_txn_op(buf_, Op::kRemove, key);
    return call(Op::kTxnOp).status == Status::kOk;
  }
  bool txn_get(KeyT key) {
    buf_.clear();
    encode_txn_op(buf_, Op::kGet, key);
    return call(Op::kTxnOp).status == Status::kOk;
  }
  /// Commit; per-op outcomes in buffer order (empty on state error).
  std::vector<TxnOpResult> txn_commit() {
    buf_.clear();
    encode_txn_commit(buf_);
    return call(Op::kTxnCommit).txn;
  }
  bool txn_abort() {
    buf_.clear();
    encode_txn_abort(buf_);
    return call(Op::kTxnAbort).status == Status::kOk;
  }

  // -- raw building blocks (Pipeline and the bench driver use these) -------
  /// Write `n` bytes, looping over short writes. Throws NetError.
  void write_all(const uint8_t* p, size_t n) {
    while (n > 0) {
      const ssize_t r = fault::send(fd_, p, n, MSG_NOSIGNAL);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          throw NetError(NetErrorKind::kTimeout, "send stalled");
        if (errno == ECONNRESET || errno == EPIPE)
          throw NetError(NetErrorKind::kReset, "send: " + errno_str());
        throw NetError(NetErrorKind::kIo, "send: " + errno_str());
      }
      p += static_cast<size_t>(r);
      n -= static_cast<size_t>(r);
    }
  }

  /// Read exactly one response frame and decode it for request kind
  /// `req`, bounded by opt_.op_deadline_ms. Throws NetError (kTimeout /
  /// kEof / kReset / kProtocol) — never blocks past the deadline even
  /// when the peer black-holes or dies mid-frame.
  Reply read_reply(Op req) { return read_reply(req, deadline_from_now()); }

  /// Same, against an explicit absolute deadline (steady ms).
  Reply read_reply(Op req, uint64_t deadline) {
    frame_.resize(kLenBytes);
    read_exact(frame_.data(), kLenBytes, deadline);
    const uint32_t len = get_u32(frame_.data());
    if (len == 0)
      throw NetError(NetErrorKind::kProtocol, "zero-length reply frame");
    frame_.resize(kLenBytes + len);
    read_exact(frame_.data() + kLenBytes, len, deadline);
    FrameView f;
    f.tag = frame_[kLenBytes];
    f.body = frame_.data() + kLenBytes + 1;
    f.body_len = len - 1;
    Reply r;
    if (!decode_reply(req, f, &r))
      throw NetError(NetErrorKind::kProtocol,
                     "reply payload does not match request kind");
    return r;
  }

  uint64_t deadline_from_now() const { return now_ms() + opt_.op_deadline_ms; }
  static uint64_t now_ms() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  /// One op: send the request, read the reply, transparently retrying
  /// kErrOverloaded with jittered backoff floored at the server's
  /// retry-after hint, within op_deadline_ms and overload_retries.
  Reply call(Op req) {
    // Sync ops encode exactly one frame at offset 0. An overload retry
    // re-sends the stamped bytes, so the retried attempt keeps its id —
    // one logical request, one trace.
    if (opt_.trace) stamp_trace(buf_, 0);
    const uint64_t deadline = deadline_from_now();
    backoff_.reset();
    for (uint32_t attempt = 0;; ++attempt) {
      write_all(buf_.data(), buf_.size());
      Reply r = read_reply(req, deadline);
      if (!r.overloaded()) return r;
      if (attempt >= opt_.overload_retries)
        throw NetError(NetErrorKind::kOverloaded,
                       "server still shedding after " +
                           std::to_string(attempt + 1) + " attempts");
      const uint32_t wait = backoff_.next_ms(r.retry_after_ms);
      if (now_ms() + wait >= deadline)
        throw NetError(NetErrorKind::kOverloaded,
                       "op deadline reached while backing off");
      JitteredBackoff::sleep_for(wait);
    }
  }

  /// recv() exactly n bytes. SO_RCVTIMEO slices the blocking recv so the
  /// absolute deadline is re-checked about once per recv_timeout_ms.
  void read_exact(uint8_t* p, size_t n, uint64_t deadline) {
    while (n > 0) {
      const ssize_t r = fault::recv(fd_, p, n, 0);
      if (r == 0)
        throw NetError(NetErrorKind::kEof, "server closed the connection");
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (now_ms() >= deadline)
            throw NetError(NetErrorKind::kTimeout,
                           "reply deadline expired mid-read");
          continue;  // slice elapsed; deadline still ahead
        }
        if (errno == ECONNRESET)
          throw NetError(NetErrorKind::kReset, "recv: " + errno_str());
        throw NetError(NetErrorKind::kIo, "recv: " + errno_str());
      }
      p += static_cast<size_t>(r);
      n -= static_cast<size_t>(r);
    }
  }

  /// One non-blocking connect attempt against the remaining deadline.
  /// Returns 0 on success (fd_ is connected and blocking again), else
  /// the errno-style failure code (fd_ closed).
  int try_connect(const sockaddr_in& addr, uint64_t deadline) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd_ < 0) return errno;
    int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd_, POLLOUT, 0};
      const uint64_t now = now_ms();
      const int wait =
          now >= deadline ? 0 : static_cast<int>(deadline - now);
      rc = ::poll(&pfd, 1, wait);
      if (rc == 0) return close_with(ETIMEDOUT);
      if (rc < 0) return close_with(errno);
      int soerr = 0;
      socklen_t slen = sizeof soerr;
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &slen);
      if (soerr != 0) return close_with(soerr);
    } else if (rc < 0) {
      return close_with(errno);
    }
    const int flags = ::fcntl(fd_, F_GETFL);
    ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
    return 0;
  }
  int close_with(int e) {
    ::close(fd_);
    fd_ = -1;
    return e;
  }

  void set_recv_timeout(uint32_t ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }

  static std::string errno_str() { return std::strerror(errno); }

  /// Client-side trace ids: a per-connection base (start time mixed with
  /// the object identity — unique enough to make exemplar lookups
  /// unambiguous within a run) plus a sequence. Never returns 0 ("no
  /// context").
  uint64_t next_trace_id() {
    if (trace_base_ == 0)
      trace_base_ = (now_ms() ^ reinterpret_cast<uintptr_t>(this)) << 24;
    uint64_t id = trace_base_ + ++trace_seq_;
    if (id == 0) id = ++trace_seq_;
    return id;
  }

  ClientOptions opt_;
  JitteredBackoff backoff_;
  int fd_ = -1;
  uint64_t trace_base_ = 0;
  uint64_t trace_seq_ = 0;
  uint64_t last_trace_id_ = 0;
  std::vector<uint8_t> buf_;    // request scratch
  std::vector<uint8_t> frame_;  // response scratch
};

/// Pipelined batch over a Client: queue any number of requests, flush()
/// them in one write, collect() the replies in request order. The server
/// executes the whole batch in one epoll wave and answers with one writev.
///
/// Overload: shed requests come back as replies with
/// Reply::overloaded() == true (retry_after_ms carries the hint); the
/// pipeline does NOT retry them — the caller owns batch retry policy.
/// A peer dying mid-batch surfaces as NetError (kEof/kReset/kTimeout)
/// from collect() within the client's op deadline.
class Pipeline {
 public:
  explicit Pipeline(Client& c) : c_(&c) {}

  void get(KeyT key) {
    const size_t off = buf_.size();
    encode_get(buf_, key);
    queue(Op::kGet, off);
  }
  void insert(KeyT key, ValT val) {
    const size_t off = buf_.size();
    encode_insert(buf_, key, val);
    queue(Op::kInsert, off);
  }
  void remove(KeyT key) {
    const size_t off = buf_.size();
    encode_remove(buf_, key);
    queue(Op::kRemove, off);
  }
  void range(KeyT lo, KeyT hi) {
    const size_t off = buf_.size();
    encode_range(buf_, lo, hi);
    queue(Op::kRange, off);
  }
  void ping() {
    const size_t off = buf_.size();
    encode_ping(buf_);
    queue(Op::kPing, off);
  }

  size_t queued() const noexcept { return ops_.size(); }

  /// Trace ids for the queued batch, parallel to request order (0 when
  /// the client is not tracing). Copy before collect() — collecting
  /// clears the batch. Correlate with collect()'s replies by index to
  /// map a slow reply to its TRACE_GET-able id.
  const std::vector<uint64_t>& trace_ids() const noexcept { return ids_; }

  /// Send every queued request in one write (does not read).
  void flush() {
    c_->write_all(buf_.data(), buf_.size());
    buf_.clear();
  }

  /// flush() if needed, then read every outstanding reply, in order.
  /// One deadline bounds the whole batch read.
  std::vector<Reply> collect() {
    if (!buf_.empty()) flush();
    const uint64_t deadline = c_->deadline_from_now();
    std::vector<Reply> out;
    out.reserve(ops_.size());
    for (Op op : ops_) out.push_back(c_->read_reply(op, deadline));
    ops_.clear();
    ids_.clear();
    return out;
  }

 private:
  void queue(Op op, size_t frame_off) {
    ops_.push_back(op);
    ids_.push_back(c_->tracing() ? c_->stamp_trace(buf_, frame_off) : 0);
  }

  Client* c_;
  std::vector<uint8_t> buf_;
  std::vector<Op> ops_;
  std::vector<uint64_t> ids_;
};

}  // namespace bref::net
