#pragma once
// bref::net::Client — the client library for the bref wire protocol
// (protocol.h / PROTOCOL.md): a blocking TCP connection with a synchronous
// per-op surface and an explicit pipelined mode.
//
// Synchronous (one round trip per call):
//
//   net::Client c("127.0.0.1", port);
//   c.insert(10, 100);
//   std::optional<ValT> v = c.get(10);
//   RangeSnapshot snap;
//   c.range(5, 50, snap);          // snap.timestamp() = server-side stamp
//
// Pipelined (one write, one read wave for a whole batch — the shape the
// server's epoll-batched execution is built for):
//
//   net::Pipeline p(c);
//   for (KeyT k : keys) p.get(k);
//   std::vector<net::Reply> rs = p.collect();   // in request order
//
// Transactions mirror the wire ops: txn_begin()/txn_op()s/txn_commit()
// (per-op results) or txn_abort(). One client = one connection = one
// in-flight user; the class is not thread-safe (use one Client per
// thread, like sessions).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/range_snapshot.h"
#include "api/types.h"
#include "net/protocol.h"

namespace bref::net {

/// Thrown on connection failure, unexpected EOF, or a reply that does not
/// parse — conditions where the byte stream is no longer trustworthy.
class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  /// Connect to host:port (blocking). Throws ClientError on failure.
  Client(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw ClientError("socket: " + errno_str());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd_);
      throw ClientError("bad address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const std::string e = errno_str();
      ::close(fd_);
      throw ClientError("connect " + host + ":" + std::to_string(port) +
                        ": " + e);
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  /// Loopback convenience.
  explicit Client(uint16_t port) : Client("127.0.0.1", port) {}

  ~Client() { close(); }
  Client(Client&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Client& operator=(Client&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  int fd() const noexcept { return fd_; }

  // -- synchronous surface (mirrors ThreadSession) -------------------------
  bool insert(KeyT key, ValT val) {
    buf_.clear();
    encode_insert(buf_, key, val);
    return call(Op::kInsert).status == Status::kOk;
  }
  bool remove(KeyT key) {
    buf_.clear();
    encode_remove(buf_, key);
    return call(Op::kRemove).status == Status::kOk;
  }
  std::optional<ValT> get(KeyT key) {
    buf_.clear();
    encode_get(buf_, key);
    const Reply r = call(Op::kGet);
    if (r.status != Status::kOk) return std::nullopt;
    return r.val;
  }
  /// Fill `out` with the server-side snapshot of [lo, hi], including the
  /// timestamp it linearized at (kNoTimestamp when the backing
  /// implementation reports none) — the same contract as
  /// ThreadSession::range_query, over the wire.
  size_t range(KeyT lo, KeyT hi, RangeSnapshot& out) {
    buf_.clear();
    encode_range(buf_, lo, hi);
    Reply r = call(Op::kRange);
    if (r.status != Status::kOk)
      throw ClientError(std::string("range: ") + to_string(r.status));
    out.reset(lo, hi) = std::move(r.items);
    out.set_timestamp(r.ts);
    return out.size();
  }
  bool ping() {
    buf_.clear();
    encode_ping(buf_);
    return call(Op::kPing).status == Status::kOk;
  }
  /// The server's stats document (JSON text; see Server::stats_json).
  std::string stats() {
    buf_.clear();
    encode_stats(buf_);
    return call(Op::kStats).text;
  }
  /// The process-wide metrics snapshot (Prometheus text exposition).
  std::string metrics() {
    buf_.clear();
    encode_metrics(buf_);
    return call(Op::kMetrics).text;
  }
  /// The flight-recorder tail (JSON text; see Server::trace_dump_json).
  std::string trace_dump() {
    buf_.clear();
    encode_trace_dump(buf_);
    return call(Op::kTraceDump).text;
  }
  /// Set the global trace sampling rate (one span per `sample_every`
  /// requests; 0 disables tracing).
  bool trace_rate(uint32_t sample_every) {
    buf_.clear();
    encode_trace_rate(buf_, sample_every);
    return call(Op::kTraceDump).status == Status::kOk;
  }

  // -- transactions --------------------------------------------------------
  bool txn_begin() {
    buf_.clear();
    encode_txn_begin(buf_);
    return call(Op::kTxnBegin).status == Status::kOk;
  }
  bool txn_insert(KeyT key, ValT val) {
    buf_.clear();
    encode_txn_op(buf_, Op::kInsert, key, val);
    return call(Op::kTxnOp).status == Status::kOk;
  }
  bool txn_remove(KeyT key) {
    buf_.clear();
    encode_txn_op(buf_, Op::kRemove, key);
    return call(Op::kTxnOp).status == Status::kOk;
  }
  bool txn_get(KeyT key) {
    buf_.clear();
    encode_txn_op(buf_, Op::kGet, key);
    return call(Op::kTxnOp).status == Status::kOk;
  }
  /// Commit; per-op outcomes in buffer order (empty on state error).
  std::vector<TxnOpResult> txn_commit() {
    buf_.clear();
    encode_txn_commit(buf_);
    return call(Op::kTxnCommit).txn;
  }
  bool txn_abort() {
    buf_.clear();
    encode_txn_abort(buf_);
    return call(Op::kTxnAbort).status == Status::kOk;
  }

  // -- raw building blocks (Pipeline and the bench driver use these) -------
  /// Write `n` bytes, looping over short writes. Throws on error.
  void write_all(const uint8_t* p, size_t n) {
    while (n > 0) {
      const ssize_t r = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw ClientError("send: " + errno_str());
      }
      p += static_cast<size_t>(r);
      n -= static_cast<size_t>(r);
    }
  }

  /// Read exactly one response frame into `frame_buf` (cleared first) and
  /// decode it for request kind `req`. Throws on EOF / malformed reply.
  Reply read_reply(Op req) {
    frame_.resize(kLenBytes);
    read_exact(frame_.data(), kLenBytes);
    const uint32_t len = get_u32(frame_.data());
    if (len == 0) throw ClientError("zero-length reply frame");
    frame_.resize(kLenBytes + len);
    read_exact(frame_.data() + kLenBytes, len);
    FrameView f;
    f.tag = frame_[kLenBytes];
    f.body = frame_.data() + kLenBytes + 1;
    f.body_len = len - 1;
    Reply r;
    if (!decode_reply(req, f, &r))
      throw ClientError("reply payload does not match request kind");
    return r;
  }

 private:
  Reply call(Op req) {
    write_all(buf_.data(), buf_.size());
    return read_reply(req);
  }

  void read_exact(uint8_t* p, size_t n) {
    while (n > 0) {
      const ssize_t r = ::recv(fd_, p, n, 0);
      if (r == 0) throw ClientError("server closed the connection");
      if (r < 0) {
        if (errno == EINTR) continue;
        throw ClientError("recv: " + errno_str());
      }
      p += static_cast<size_t>(r);
      n -= static_cast<size_t>(r);
    }
  }

  static std::string errno_str() { return std::strerror(errno); }

  int fd_ = -1;
  std::vector<uint8_t> buf_;    // request scratch
  std::vector<uint8_t> frame_;  // response scratch
};

/// Pipelined batch over a Client: queue any number of requests, flush()
/// them in one write, collect() the replies in request order. The server
/// executes the whole batch in one epoll wave and answers with one writev.
class Pipeline {
 public:
  explicit Pipeline(Client& c) : c_(&c) {}

  void get(KeyT key) {
    encode_get(buf_, key);
    ops_.push_back(Op::kGet);
  }
  void insert(KeyT key, ValT val) {
    encode_insert(buf_, key, val);
    ops_.push_back(Op::kInsert);
  }
  void remove(KeyT key) {
    encode_remove(buf_, key);
    ops_.push_back(Op::kRemove);
  }
  void range(KeyT lo, KeyT hi) {
    encode_range(buf_, lo, hi);
    ops_.push_back(Op::kRange);
  }
  void ping() {
    encode_ping(buf_);
    ops_.push_back(Op::kPing);
  }

  size_t queued() const noexcept { return ops_.size(); }

  /// Send every queued request in one write (does not read).
  void flush() {
    c_->write_all(buf_.data(), buf_.size());
    buf_.clear();
  }

  /// flush() if needed, then read every outstanding reply, in order.
  std::vector<Reply> collect() {
    if (!buf_.empty()) flush();
    std::vector<Reply> out;
    out.reserve(ops_.size());
    for (Op op : ops_) out.push_back(c_->read_reply(op));
    ops_.clear();
    return out;
  }

 private:
  Client* c_;
  std::vector<uint8_t> buf_;
  std::vector<Op> ops_;
};

}  // namespace bref::net
