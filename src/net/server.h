#pragma once
// bref::net::Server — the epoll-batched network front-end over
// ShardedSet / the registry's ordered sets.
//
// Architecture (one acceptor + N worker loops):
//
//   * The acceptor thread owns the listening socket; each accepted
//     connection is handed to a worker round-robin and stays pinned to it
//     for life (no cross-worker migration, so per-connection state needs
//     no locks).
//   * Each worker runs an edge-triggered epoll loop over its connections.
//     One epoll wave drains EVERYTHING readable: for each ready
//     connection the worker reads to EAGAIN, parses every complete frame,
//     executes the whole batch against the set, then flushes the
//     responses with one writev per connection (pending bytes from an
//     earlier short write + this wave's responses = two iovecs).
//     Pipelined clients therefore amortize both syscalls and the
//     session's cache warmth over the whole batch.
//   * Sessions: each worker holds ONE dense thread id (SessionGuard) for
//     its whole lifetime and executes every pinned connection's ops under
//     it. Connections never consume ThreadRegistry slots — the
//     connection:session mapping is many:1 by construction, so accepting
//     more connections than kMaxThreads is fine.
//   * Transactions: TXN_BEGIN/TXN_OP buffer ops per connection;
//     TXN_COMMIT executes the batch back-to-back under the worker's
//     session (mirroring MiniDB's db::Txn: one id over the batch, effects
//     applied eagerly, abort = discard the buffer). Ops of one
//     transaction are never interleaved with other ops *on this worker*,
//     but there is no cross-worker isolation — documented in PROTOCOL.md.
//
//   * Guard layer (net/guard.h): long RANGEs run as cooperative chunked
//     scans under a second, scan-dedicated session per worker (one
//     timestamp, bounded key-budget slices behind each wave); per-wave
//     admission budgets shed excess frames with kErrOverloaded +
//     retry-after; a timer wheel reaps idle connections and write
//     stalls; pending-write caps disconnect unrecoverably slow readers.
//     Policy in ServerOptions::guard, counters in ServerStats/obs.
//
// Lifecycle: construct -> start() -> stop() (idempotent; the destructor
// stops). start() spawns the MaintenanceService for the backing set;
// stop() closes the listener, lets every worker execute what it already
// buffered and flush pending writes (deadline-bounded drain — stragglers
// are counted in bref_net_stop_dropped), closes all connections, joins
// the loops, and stops maintenance — under ASan this is fd- and
// session-leak free (test_net asserts the ThreadRegistry high-water mark
// returns to baseline).
//
// All wire syscalls go through bref::net::fault wrappers
// (net/testing/faultfd.h): plain passthrough in production, seeded fault
// injection under the chaos suite.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "api/session.h"
#include "api/set_interface.h"
#include "common/cacheline.h"
#include "net/guard.h"
#include "net/protocol.h"
#include "net/testing/faultfd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/builtin_shards.h"
#include "shard/maintenance.h"
#include "shard/sharded_set.h"

namespace bref::net {

inline const char* op_name(uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kGet: return "get";
    case Op::kInsert: return "insert";
    case Op::kRemove: return "remove";
    case Op::kRange: return "range";
    case Op::kTxnBegin: return "txn_begin";
    case Op::kTxnOp: return "txn_op";
    case Op::kTxnCommit: return "txn_commit";
    case Op::kTxnAbort: return "txn_abort";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kTraceDump: return "trace_dump";
    case Op::kTraceGet: return "trace_get";
  }
  return "unknown";
}

/// Steady-clock nanoseconds for stage attribution; constant-folds to 0
/// when obs is compiled out, which dead-codes every duration math below.
inline uint64_t obs_now_ns() {
  if constexpr (!obs::kEnabled) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The wire path's tail-latency attribution (obs, net layer): where a
/// request's time goes between the epoll wakeup that surfaced it and the
/// writev that answered it. Process-wide; benches attribute per-scenario
/// via HistogramSnapshot deltas.
inline obs::Histogram& stage_hist(int stage) {  // 0 queue, 1 execute, 2 flush
  static obs::Histogram* h[3] = {
      &obs::registry().histogram(
          "bref_net_stage_seconds",
          "Worker-loop stage time per connection batch", "stage=\"queue\"",
          1e9),
      &obs::registry().histogram(
          "bref_net_stage_seconds",
          "Worker-loop stage time per connection batch", "stage=\"execute\"",
          1e9),
      &obs::registry().histogram(
          "bref_net_stage_seconds",
          "Worker-loop stage time per connection batch", "stage=\"flush\"",
          1e9)};
  return *h[stage];
}

inline obs::Histogram& op_hist(Op op) {
  auto make = [](const char* name) {
    return &obs::registry().histogram(
        "bref_net_op_seconds", "Per-op execute time on the worker loop",
        std::string("op=\"") + name + "\"", 1e9);
  };
  switch (op) {
    case Op::kGet: { static auto* h = make("get"); return *h; }
    case Op::kInsert: { static auto* h = make("insert"); return *h; }
    case Op::kRemove: { static auto* h = make("remove"); return *h; }
    case Op::kRange: { static auto* h = make("range"); return *h; }
    case Op::kTxnCommit: { static auto* h = make("txn_commit"); return *h; }
    default: { static auto* h = make("other"); return *h; }
  }
}

/// Server-level series aggregated over live Server instances (servers are
/// created and destroyed per bench scenario; RAII sources keep the
/// exposition honest). Index order matches Server::register_obs().
inline obs::GaugeSet& server_series(size_t i) {
  using GS = obs::GaugeSet;
  using MK = obs::MetricKind;
  static auto* v = [] {
    auto* u = new std::vector<GS*>();
    auto add = [&](GS::Agg a, const char* n, const char* h, MK k) {
      u->push_back(new GS(a, n, h, "", k));
    };
    add(GS::Agg::kSum, "bref_net_connections",
        "Connections currently adopted by worker loops", MK::kGauge);
    add(GS::Agg::kMax, "bref_net_connections_peak",
        "High-water mark of adopted connections (max over live servers)",
        MK::kGauge);
    add(GS::Agg::kSum, "bref_net_accepted_total",
        "Connections accepted", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_frames_total",
        "Request frames executed", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_batches_total",
        "Epoll waves that executed at least one frame", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_bytes_in_total",
        "Request bytes read", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_bytes_out_total",
        "Response bytes written", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_protocol_errors_total",
        "Error responses sent", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_txns_committed_total",
        "Wire transactions committed", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_txns_aborted_total",
        "Wire transactions aborted", MK::kCounter);
    return u;
  }();
  return *(*v)[i];
}
inline constexpr size_t kServerSeries = 10;

/// bref-trace series, aggregated over live servers like server_series().
/// Index order matches Server::register_obs().
inline obs::GaugeSet& trace_series(size_t i) {
  using GS = obs::GaugeSet;
  using MK = obs::MetricKind;
  static auto* v = [] {
    auto* u = new std::vector<GS*>();
    auto add = [&](const char* n, const char* h, MK k) {
      u->push_back(new GS(GS::Agg::kSum, n, h, "", k));
    };
    add("bref_trace_committed_total",
        "Request traces committed to the per-worker rings (tail threshold "
        "or reservoir)", MK::kCounter);
    add("bref_trace_dropped_total",
        "Committed trace records overwritten by ring-window churn",
        MK::kCounter);
    add("bref_trace_scratch_exhausted_total",
        "Requests not traced because the worker's scratch-slot pool was full",
        MK::kCounter);
    add("bref_trace_scratch_in_use",
        "Trace scratch slots currently held (live chunked scans when idle)",
        MK::kGauge);
    return u;
  }();
  return *(*v)[i];
}
inline constexpr size_t kTraceSeries = 4;

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker event loops; each holds one session for all its connections.
  int workers = 2;
  /// Registry name of the backing implementation.
  std::string impl = "Bundle-skiplist";
  /// Shard the keyspace over this many instances (<= 1 = unsharded).
  size_t shards = 4;
  /// Partition bounds when sharding (ShardOptions semantics).
  KeyT key_lo = 0;
  KeyT key_hi = 1 << 20;
  /// Reject request frames declaring more than this many payload bytes.
  uint32_t max_frame = kDefaultMaxFrame;
  /// Buffered ops per transaction before TXN_OP answers kErrTxnState.
  size_t max_txn_ops = 1024;
  /// Run the per-shard MaintenanceService while the server is up.
  bool maintenance = true;
  MaintenanceOptions maint{};
  int backlog = 128;
  /// Overload protection / graceful degradation policy (net/guard.h).
  GuardOptions guard{};
};

/// Monotonic server-wide counters (relaxed; exact once quiescent).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t frames = 0;          // requests executed
  uint64_t batches = 0;         // epoll waves that executed >= 1 frame
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0; // error responses sent
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t connections = 0;       // live right now (approximate under churn)
  uint64_t connections_peak = 0;  // sum of per-worker adoption high-waters
  // Guard layer (net/guard.h):
  uint64_t shed = 0;          // frames answered kErrOverloaded (not executed)
  uint64_t chunked_rqs = 0;   // RANGEs run as cooperative chunked scans
  uint64_t scan_slices = 0;   // slices executed across all chunked scans
  uint64_t reaped_idle = 0;         // connections reaped: idle timeout
  uint64_t reaped_write_stall = 0;  // connections reaped: write stall
  uint64_t reaped_slow_reader = 0;  // connections reaped: pending cap
  uint64_t stop_dropped = 0;  // conns closed at stop() with undelivered bytes
  uint64_t overloaded = 0;    // workers currently shedding (gauge)
  // bref-trace (obs/trace.h):
  uint64_t trace_committed = 0;          // records pushed to the rings
  uint64_t trace_dropped = 0;            // ring-window evictions
  uint64_t trace_scratch_exhausted = 0;  // requests untraced: pool full
  uint64_t trace_scratch_in_use = 0;     // slots held right now (gauge)
};

class Server {
 public:
  explicit Server(ServerOptions opt = {}) : opt_(std::move(opt)) {
    ImplDescriptor desc;
    if (!ImplRegistry::instance().find(opt_.impl, &desc))
      throw std::invalid_argument("unknown ordered-set implementation: " +
                                  opt_.impl);
    const SetOptions inner{.reclaim = desc.caps.reclamation};
    if (opt_.shards > 1) {
      ShardOptions so;
      so.shards = opt_.shards;
      so.key_lo = opt_.key_lo;
      so.key_hi = opt_.key_hi;
      so.inner = inner;
      sharded_ = std::make_unique<ShardedSet>(opt_.impl, so);
      set_ = sharded_.get();
    } else {
      plain_ = ImplRegistry::instance().create(opt_.impl, inner);
      set_ = plain_.get();
      // Chunked scans need a readable snapshot clock + an RQ tracker.
      // ShardedSet owns both; for an unsharded coordinated-capable set
      // the server plays the coordinator: redirect the set's clock onto
      // guard_clock_ (same single-shard shape ShardedSet uses).
      if (desc.caps.coordinated_rq && plain_->adopt_clock(guard_clock_) &&
          plain_->rq_tracker_hook() != nullptr)
        plain_scan_ok_ = true;
    }
    if (opt_.maintenance)
      maint_ = std::make_unique<MaintenanceService>(*set_, opt_.maint);
  }

  ~Server() { stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn acceptor + workers (+ maintenance). Throws on
  /// socket errors or session exhaustion; safe to call once per stop().
  void start() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (running_) return;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd_, opt_.backlog) < 0) {
      const int e = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error(std::string("bind/listen: ") +
                               std::strerror(e));
    }
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);

    stop_.store(false, std::memory_order_relaxed);
    workers_.clear();
    // Every step that can throw — worker session ids, epoll fds, the
    // maintenance service's registry ids — runs BEFORE any thread spawns,
    // so a failed start() unwinds to a fully stopped server (no half-live
    // acceptor to join, no leaked fds or ids) and can be retried.
    try {
      const int nworkers = opt_.workers < 1 ? 1 : opt_.workers;
      for (int i = 0; i < nworkers; ++i) {
        auto w = std::make_unique<Worker>();
        // Acquire the worker's sessions up front, on this thread, so
        // start() can fail with a clear error instead of a dead loop: the
        // guards are just dense ids, valid from any thread that uses them
        // exclusively, and this worker's loop is their only user. The
        // second id is scan-dedicated: a chunked scan holds EBR pins
        // across waves, and Ebr::pin/unpin is not reentrant per tid, so
        // point ops (worker session) and the held scan (scan session)
        // must not share one.
        if (!w->session.acquired() || !w->scan_session.acquired())
          throw ThreadSlotsExhaustedError();
        w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
        w->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (w->epoll_fd < 0 || w->wake_fd < 0) throw_errno("epoll/eventfd");
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = w->wake_fd;
        ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev);
        workers_.push_back(std::move(w));
      }
      if (maint_) maint_->start();
    } catch (...) {
      workers_.clear();  // releases acquired guards, closes epoll/wake fds
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
    // Register the obs sources only once workers_ is fully built: their
    // callbacks iterate it without the lifecycle lock (see the stats()
    // NOTE below), so registration brackets exactly the stable window —
    // stop() removes them before mutating the vector.
    register_obs();
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker* wp = workers_[i].get();
      wp->index = static_cast<uint8_t>(i);
      wp->thread = std::thread([this, wp] { worker_loop(*wp); });
    }
    acceptor_ = std::thread([this] { acceptor_loop(); });
    running_ = true;
  }

  /// Drain and shut down: stop accepting, execute every already-buffered
  /// frame, flush pending responses (bounded retry), close all fds, join
  /// all threads, stop maintenance. Idempotent; restartable.
  void stop() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (!running_) return;
    // Unregister the obs sources first: removal blocks on in-flight
    // snapshot reads, so no callback can observe workers_ mid-teardown.
    for (auto& s : obs_srcs_) s.reset();
    for (auto& s : obs_guard_srcs_) s.reset();
    for (auto& s : obs_trace_srcs_) s.reset();
    stop_.store(true, std::memory_order_release);
    // Closing the listener wakes the acceptor's epoll_wait with EPOLLHUP
    // semantics; the eventfd write is belt and braces.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (auto& w : workers_) wake(*w);
    for (auto& w : workers_)
      if (w->thread.joinable()) w->thread.join();
    workers_.clear();  // closes epoll/wake fds, releases session guards
    if (maint_) maint_->stop();
    running_ = false;
  }

  bool running() const {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    return running_;
  }
  uint16_t port() const { return port_; }
  AnyOrderedSet& set() { return *set_; }
  MaintenanceService* maintenance() { return maint_.get(); }

  /// NOTE on the stats accessors: they read workers_ without the
  /// lifecycle lock. workers_ is only mutated by start()/stop(), and a
  /// STATS request is *executed by a worker*, which would deadlock
  /// against stop() (it joins workers under the lock) if these locked.
  /// Between start() and stop() the vector is stable; after stop() it is
  /// empty — both safe to iterate. Counters themselves are relaxed
  /// atomics, exact once quiescent.
  ServerStats stats() const {
    ServerStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.closed = closed_.load(std::memory_order_relaxed);
    for (const auto& w : workers_) {
      s.frames += w->frames.load(std::memory_order_relaxed);
      s.batches += w->batches.load(std::memory_order_relaxed);
      s.bytes_in += w->bytes_in.load(std::memory_order_relaxed);
      s.bytes_out += w->bytes_out.load(std::memory_order_relaxed);
      s.protocol_errors += w->protocol_errors.load(std::memory_order_relaxed);
      s.txns_committed += w->txns_committed.load(std::memory_order_relaxed);
      s.txns_aborted += w->txns_aborted.load(std::memory_order_relaxed);
      s.connections += w->nconns.load(std::memory_order_relaxed);
      s.connections_peak += w->peak_conns.load(std::memory_order_relaxed);
      s.shed += w->shed.load(std::memory_order_relaxed);
      s.chunked_rqs += w->chunked.load(std::memory_order_relaxed);
      s.scan_slices += w->scan_slices.load(std::memory_order_relaxed);
      s.reaped_idle += w->reaped_idle.load(std::memory_order_relaxed);
      s.reaped_write_stall +=
          w->reaped_stall.load(std::memory_order_relaxed);
      s.reaped_slow_reader += w->reaped_slow.load(std::memory_order_relaxed);
      s.overloaded += w->overloaded.load(std::memory_order_relaxed) ? 1 : 0;
      s.trace_committed += w->trace.committed();
      s.trace_dropped += w->trace.dropped();
      s.trace_scratch_exhausted +=
          w->trace_scratch_exhausted.load(std::memory_order_relaxed);
      s.trace_scratch_in_use += static_cast<uint64_t>(w->tslots.in_use());
    }
    // Server-level (not per-worker) so it stays readable after stop()
    // tears the workers down — it is precisely a shutdown statistic.
    s.stop_dropped = stop_dropped_.load(std::memory_order_relaxed);
    return s;
  }

  /// Live connection count (approximate under churn).
  size_t connections() const {
    size_t n = 0;
    for (const auto& w : workers_)
      n += w->nconns.load(std::memory_order_relaxed);
    return n;
  }

  /// Sum of per-worker adoption high-waters. An upper bound on the true
  /// concurrent peak (workers peak independently), and — unlike the live
  /// gauge — nonzero in any post-run stats capture, which is what made
  /// BENCH_6's "connections: 0" unanswerable.
  size_t peak_connections() const {
    size_t n = 0;
    for (const auto& w : workers_)
      n += w->peak_conns.load(std::memory_order_relaxed);
    return n;
  }

  /// The STATS response body: server counters, routing counters when
  /// sharded, per-shard maintenance stats when the service runs.
  std::string stats_json() const {
    const ServerStats s = stats();
    char buf[512];
    std::string out = "{";
    std::snprintf(buf, sizeof buf,
                  "\"impl\": \"%s\", \"shards\": %zu, \"workers\": %zu, "
                  "\"connections\": %zu, \"connections_peak\": %zu, "
                  "\"accepted\": %llu, "
                  "\"frames\": %llu, \"batches\": %llu, "
                  "\"frames_per_batch\": %.2f, \"bytes_in\": %llu, "
                  "\"bytes_out\": %llu, \"protocol_errors\": %llu, "
                  "\"txns_committed\": %llu, \"txns_aborted\": %llu",
                  opt_.impl.c_str(), opt_.shards > 1 ? opt_.shards : 1,
                  workers_.size(), connections(), peak_connections(),
                  static_cast<unsigned long long>(s.accepted),
                  static_cast<unsigned long long>(s.frames),
                  static_cast<unsigned long long>(s.batches),
                  s.batches ? static_cast<double>(s.frames) / s.batches : 0.0,
                  static_cast<unsigned long long>(s.bytes_in),
                  static_cast<unsigned long long>(s.bytes_out),
                  static_cast<unsigned long long>(s.protocol_errors),
                  static_cast<unsigned long long>(s.txns_committed),
                  static_cast<unsigned long long>(s.txns_aborted));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ", \"guard\": {\"shed\": %llu, \"chunked_rqs\": %llu, "
                  "\"scan_slices\": %llu, \"reaped_idle\": %llu, "
                  "\"reaped_write_stall\": %llu, "
                  "\"reaped_slow_reader\": %llu, \"stop_dropped\": %llu, "
                  "\"overloaded\": %llu}",
                  static_cast<unsigned long long>(s.shed),
                  static_cast<unsigned long long>(s.chunked_rqs),
                  static_cast<unsigned long long>(s.scan_slices),
                  static_cast<unsigned long long>(s.reaped_idle),
                  static_cast<unsigned long long>(s.reaped_write_stall),
                  static_cast<unsigned long long>(s.reaped_slow_reader),
                  static_cast<unsigned long long>(s.stop_dropped),
                  static_cast<unsigned long long>(s.overloaded));
    out += buf;
    // Trace-slot accounting: the chaos suite asserts scratch_in_use
    // returns to the number of live chunked scans (0 when idle) after
    // fault storms and shed bursts — a leaked slot means some request
    // path forgot its terminal span.
    std::snprintf(buf, sizeof buf,
                  ", \"trace\": {\"committed\": %llu, \"dropped\": %llu, "
                  "\"scratch_exhausted\": %llu, \"scratch_in_use\": %llu}",
                  static_cast<unsigned long long>(s.trace_committed),
                  static_cast<unsigned long long>(s.trace_dropped),
                  static_cast<unsigned long long>(s.trace_scratch_exhausted),
                  static_cast<unsigned long long>(s.trace_scratch_in_use));
    out += buf;
    if (sharded_) {
      const ShardedSetStats r = sharded_->stats();
      std::snprintf(buf, sizeof buf,
                    ", \"routing\": {\"single_shard_rqs\": %llu, "
                    "\"coordinated_rqs\": %llu, \"fallback_rqs\": %llu, "
                    "\"timestamps_acquired\": %llu}",
                    static_cast<unsigned long long>(r.single_shard_rqs),
                    static_cast<unsigned long long>(r.coordinated_rqs),
                    static_cast<unsigned long long>(r.fallback_rqs),
                    static_cast<unsigned long long>(r.timestamps_acquired));
      out += buf;
    }
    if (maint_) {
      out += ", \"maintenance\": [";
      for (size_t i = 0; i < maint_->workers(); ++i) {
        const ShardMaintenanceStats m = maint_->stats(i);
        std::snprintf(buf, sizeof buf,
                      "%s{\"passes\": %llu, \"pruned\": %llu, "
                      "\"flushed\": %llu, \"idle_backoffs\": %llu, "
                      "\"backlog\": %llu}",
                      i > 0 ? ", " : "",
                      static_cast<unsigned long long>(m.passes),
                      static_cast<unsigned long long>(m.bundle_entries_pruned),
                      static_cast<unsigned long long>(m.limbo_flushed),
                      static_cast<unsigned long long>(m.idle_backoffs),
                      static_cast<unsigned long long>(m.backlog));
        out += buf;
      }
      out += "]";
    }
    // The registry view — counters, gauges and quantile summaries across
    // all four layers — spliced in whole, so STATS is the JSON twin of
    // the METRICS exposition.
    out += ", \"obs\": " + obs::registry().json();
    return out + "}";
  }

  /// One committed record as JSON — the TRACE_GET body, and one element
  /// of TRACE_DUMP's "records". Ids render as 16-hex (the exemplar form),
  /// stages by name; tools/trace2chrome consumes this shape.
  static std::string trace_record_json(const obs::TraceRecord& r) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"trace_id\": \"%016llx\", \"op\": \"%s\", "
                  "\"worker\": %u, \"start_ns\": %llu, \"total_ns\": %llu, "
                  "\"flags\": %u, \"spans\": [",
                  static_cast<unsigned long long>(r.trace_id), op_name(r.op),
                  r.worker, static_cast<unsigned long long>(r.start_ns),
                  static_cast<unsigned long long>(r.total_ns), r.flags);
    std::string out = buf;
    for (int i = 0; i < r.nspans; ++i) {
      const obs::TraceStageSpan& s = r.spans[i];
      std::snprintf(buf, sizeof buf,
                    "%s{\"stage\": \"%s\", \"start_ns\": %u, \"dur_ns\": %u, "
                    "\"aux8\": %u, \"aux16\": %u}",
                    i > 0 ? ", " : "", obs::trace_stage_name(s.stage),
                    s.start_ns, s.dur_ns, s.aux8, s.aux16);
      out += buf;
    }
    return out + "]}";
  }

  /// The TRACE_DUMP response body: every worker's committed records —
  /// ring window plus slowest board, deduplicated — with the active
  /// capture policy and drop accounting.
  std::string trace_dump_json() const {
    const uint64_t thr =
        obs::trace_threshold_ns().load(std::memory_order_relaxed);
    uint64_t committed = 0, dropped = 0;
    std::vector<obs::TraceRecord> recs;
    for (const auto& w : workers_) {
      committed += w->trace.committed();
      dropped += w->trace.dropped();
      w->trace.snapshot(recs);
      w->board.snapshot(recs);
    }
    std::string out =
        "{\"sample_every\": " +
        std::to_string(
            obs::trace_sample_every().load(std::memory_order_relaxed)) +
        ", \"threshold_ns\": " +
        (thr == obs::kTraceThresholdOff ? std::string("-1")
                                        : std::to_string(thr)) +
        ", \"committed\": " + std::to_string(committed) +
        ", \"dropped\": " + std::to_string(dropped) + ", \"records\": [";
    bool first = true;
    std::vector<uint64_t> seen;
    seen.reserve(recs.size());
    for (const obs::TraceRecord& r : recs) {
      if (std::find(seen.begin(), seen.end(), r.trace_id) != seen.end())
        continue;  // board entries also live in the ring until evicted
      seen.push_back(r.trace_id);
      if (!first) out += ", ";
      out += trace_record_json(r);
      first = false;
    }
    return out + "]}";
  }

  /// TRACE_GET lookup: boards first (the tail survives there even after
  /// ring churn), then ring windows, newest first.
  bool find_trace(uint64_t trace_id, obs::TraceRecord* out) const {
    if (trace_id == 0) return false;
    for (const auto& w : workers_)
      if (w->board.find(trace_id, *out)) return true;
    for (const auto& w : workers_)
      if (w->trace.find(trace_id, *out)) return true;
    return false;
  }

 private:
  // -- per-connection state (owned by exactly one worker) ------------------
  struct BufferedOp {
    Op op;
    KeyT key;
    ValT val;
  };
  struct Conn {
    explicit Conn(int fd_) : fd(fd_) {}
    ~Conn() {
      if (fd >= 0) ::close(fd);
    }
    int fd;
    std::vector<uint8_t> in;       // unparsed request bytes
    std::vector<uint8_t> pending;  // response bytes a short write left over
    size_t pending_off = 0;
    bool epollout = false;         // EPOLLOUT currently armed
    bool closing = false;          // poisoned stream: close once flushed
    bool in_txn = false;
    std::vector<BufferedOp> txn;
    // Guard state:
    uint32_t gen = 0;              // timer-wheel validity token
    uint64_t last_activity_ms = 0; // last byte read (idle reaping)
    uint64_t pending_since_ms = 0; // pending became nonempty (0 = empty)
    bool paused = false;   // a chunked scan owns the connection's ordering
    bool kicked = false;   // epoll events arrived while paused
    bool scan_queued = false;  // waiting for the worker's scan slot
    KeyT scan_lo = 0, scan_hi = 0;  // the queued/active scan's interval
    // Trace scratch held across waves by this connection's chunked scan
    // (null otherwise). Owned by the pinned worker's slot pool; every
    // path that ends the scan — completion, drop, stop() — must
    // terminate and release it (the chaos suite audits this).
    obs::TraceScratch* trace = nullptr;
  };

  struct Worker {
    SessionGuard session;
    // Scan-dedicated session: chunked scans hold EBR pins across waves,
    // and Ebr::pin/unpin is not reentrant per tid, so the held scan and
    // the wave's point ops must run under different ids.
    SessionGuard scan_session;
    int epoll_fd = -1;
    int wake_fd = -1;
    uint8_t index = 0;  // position in workers_ (trace span attribution)
    std::thread thread;
    // Handoff queue from the acceptor (the only cross-thread touch).
    std::mutex inbox_mu;
    std::vector<int> inbox;
    // -- loop-private state (only the worker thread touches these) ------
    std::vector<std::unique_ptr<Conn>> conns;  // indexed by fd
    TimerWheel wheel;        // idle + write-stall deadlines
    uint32_t next_gen = 0;   // timer-wheel generation source
    std::unique_ptr<SnapshotScan> scan;  // active chunked scan (<= 1)
    int scan_fd = -1;                    // its owning connection
    uint64_t scan_start_ns = 0;          // op_hist attribution
    std::vector<int> scan_waiters;       // conns queued for the scan slot
    std::atomic<size_t> nconns{0};
    // High-water of nconns; single-writer (the loop adopts), so a plain
    // load/store bump suffices.
    std::atomic<uint64_t> peak_conns{0};
    // Written by the loop, read by any STATS caller: relaxed atomics.
    std::atomic<uint64_t> frames{0}, batches{0}, bytes_in{0}, bytes_out{0};
    std::atomic<uint64_t> protocol_errors{0}, txns_committed{0},
        txns_aborted{0};
    // Guard counters (net/guard.h semantics; aggregated by stats()).
    std::atomic<uint64_t> shed{0}, chunked{0}, scan_slices{0};
    std::atomic<uint64_t> reaped_idle{0}, reaped_stall{0}, reaped_slow{0};
    std::atomic<bool> overloaded{false};  // last wave shed something
    // bref-trace (obs/trace.h): scratch slots for in-flight request
    // traces, the committed-record ring (recency window) and the slowest
    // board (all-time tail). The loop is the only writer; any worker
    // executing TRACE_DUMP/TRACE_GET reads via the slots' seqlocks.
    obs::TraceSlots tslots;
    obs::TraceRing trace;
    obs::TraceBoard board;
    uint64_t trace_seq = 0;  // loop-private server-side trace-id source
    std::atomic<uint64_t> trace_scratch_exhausted{0};

    ~Worker() {
      if (epoll_fd >= 0) ::close(epoll_fd);
      if (wake_fd >= 0) ::close(wake_fd);
      for (int fd : inbox) ::close(fd);  // accepted but never adopted
    }
  };

  [[noreturn]] static void throw_errno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " +
                             std::strerror(errno));
  }

  /// Register this instance's callback sources (see start()/stop() for
  /// the workers_-stability bracket). Indices follow server_series().
  void register_obs() {
    auto reg = [this](size_t i, double (Server::*read)() const) {
      obs_srcs_[i] =
          server_series(i).add([this, read] { return (this->*read)(); });
    };
    reg(0, &Server::obs_connections);
    reg(1, &Server::obs_peak);
    reg(2, &Server::obs_accepted);
    reg(3, &Server::obs_frames);
    reg(4, &Server::obs_batches);
    reg(5, &Server::obs_bytes_in);
    reg(6, &Server::obs_bytes_out);
    reg(7, &Server::obs_protocol_errors);
    reg(8, &Server::obs_txns_committed);
    reg(9, &Server::obs_txns_aborted);
    auto greg = [this](size_t i, double (Server::*read)() const) {
      obs_guard_srcs_[i] =
          guard_series(i).add([this, read] { return (this->*read)(); });
    };
    greg(0, &Server::obs_shed);
    greg(1, &Server::obs_chunked);
    greg(2, &Server::obs_scan_slices);
    greg(3, &Server::obs_reaped_idle);
    greg(4, &Server::obs_reaped_stall);
    greg(5, &Server::obs_reaped_slow);
    greg(6, &Server::obs_stop_dropped);
    greg(7, &Server::obs_overloaded);
    auto treg = [this](size_t i, double (Server::*read)() const) {
      obs_trace_srcs_[i] =
          trace_series(i).add([this, read] { return (this->*read)(); });
    };
    treg(0, &Server::obs_trace_committed);
    treg(1, &Server::obs_trace_dropped);
    treg(2, &Server::obs_trace_exhausted);
    treg(3, &Server::obs_trace_in_use);
  }
  double obs_connections() const { return static_cast<double>(connections()); }
  double obs_peak() const { return static_cast<double>(peak_connections()); }
  double obs_accepted() const {
    return static_cast<double>(accepted_.load(std::memory_order_relaxed));
  }
  double obs_frames() const { return static_cast<double>(stats().frames); }
  double obs_batches() const { return static_cast<double>(stats().batches); }
  double obs_bytes_in() const { return static_cast<double>(stats().bytes_in); }
  double obs_bytes_out() const {
    return static_cast<double>(stats().bytes_out);
  }
  double obs_protocol_errors() const {
    return static_cast<double>(stats().protocol_errors);
  }
  double obs_txns_committed() const {
    return static_cast<double>(stats().txns_committed);
  }
  double obs_txns_aborted() const {
    return static_cast<double>(stats().txns_aborted);
  }
  double obs_shed() const { return static_cast<double>(stats().shed); }
  double obs_chunked() const {
    return static_cast<double>(stats().chunked_rqs);
  }
  double obs_scan_slices() const {
    return static_cast<double>(stats().scan_slices);
  }
  double obs_reaped_idle() const {
    return static_cast<double>(stats().reaped_idle);
  }
  double obs_reaped_stall() const {
    return static_cast<double>(stats().reaped_write_stall);
  }
  double obs_reaped_slow() const {
    return static_cast<double>(stats().reaped_slow_reader);
  }
  double obs_stop_dropped() const {
    return static_cast<double>(stats().stop_dropped);
  }
  double obs_overloaded() const {
    return static_cast<double>(stats().overloaded);
  }
  double obs_trace_committed() const {
    return static_cast<double>(stats().trace_committed);
  }
  double obs_trace_dropped() const {
    return static_cast<double>(stats().trace_dropped);
  }
  double obs_trace_exhausted() const {
    return static_cast<double>(stats().trace_scratch_exhausted);
  }
  double obs_trace_in_use() const {
    return static_cast<double>(stats().trace_scratch_in_use);
  }

  static void wake(Worker& w) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(w.wake_fd, &one, sizeof one);
  }

  // -- acceptor ------------------------------------------------------------
  void acceptor_loop() {
    size_t next = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      for (;;) {
        const int fd = fault::accept4(listen_fd_, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EINTR) continue;
          // Out of fds: back off instead of spinning hot on a readable
          // listener; the pending connection is retried next poll.
          if (errno == EMFILE || errno == ENFILE)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          break;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        Worker& w = *workers_[next++ % workers_.size()];
        {
          std::lock_guard<std::mutex> g(w.inbox_mu);
          w.inbox.push_back(fd);
        }
        wake(w);
      }
    }
  }

  // -- worker loop ---------------------------------------------------------
  void worker_loop(Worker& w) {
    const int tid = w.session.tid();
    std::vector<epoll_event> events(256);
    std::vector<uint8_t> scratch;  // this wave's responses, per connection
    RangeSnapshot rq_out;

    for (;;) {
      // A live (or queued) chunked scan wants the loop back immediately
      // after servicing what's ready; otherwise sleep one timer-wheel
      // granularity so deadlines fire near their time.
      const int timeout =
          w.scan != nullptr || !w.scan_waiters.empty() ? 0 : 100;
      const int n = ::epoll_wait(w.epoll_fd, events.data(),
                                 static_cast<int>(events.size()), timeout);
      // Queue-wait attribution starts here: everything a request waits
      // for past this point is this loop's doing, not the kernel's.
      const uint64_t wake_ns = obs_now_ns();
      const uint64_t now_ms = steady_ms();
      const bool stopping = stop_.load(std::memory_order_acquire);
      // Adopt connections handed over by the acceptor.
      {
        std::vector<int> fresh;
        {
          std::lock_guard<std::mutex> g(w.inbox_mu);
          fresh.swap(w.inbox);
        }
        for (int fd : fresh) {
          if (stopping) {
            ::close(fd);
            closed_.fetch_add(1, std::memory_order_relaxed);
          } else {
            adopt_conn(w, fd, now_ms);
          }
        }
      }
      // Admission control: one budget per wave, shared by every
      // connection the wave services (and the scan resume below).
      WaveBudget budget = WaveBudget::of(opt_.guard);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == w.wake_fd) {
          uint64_t drainv;
          while (::read(w.wake_fd, &drainv, sizeof drainv) > 0) {
          }
          continue;
        }
        Conn* c = static_cast<size_t>(fd) < w.conns.size()
                      ? w.conns[static_cast<size_t>(fd)].get()
                      : nullptr;
        if (c == nullptr) continue;
        if (c->paused) {
          // The connection's response ordering is parked behind its
          // chunked scan: leave the socket unread (the kernel buffer
          // fills and TCP backpressure throttles the peer) and remember
          // to service it on resume — the edge won't refire (EPOLLET).
          c->kicked = true;
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0 && !flush(w, *c, nullptr)) {
          drop_conn(w, *c);
          continue;
        }
        if ((events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
          if (!service(w, tid, *c, scratch, rq_out, wake_ns, &budget))
            drop_conn(w, *c);
        }
      }
      if (stopping) {
        drain_and_close(w, tid, scratch, rq_out, wake_ns);
        return;
      }
      // Behind the wave: one slice of the active chunked scan, then the
      // wheel's connection deadlines.
      pump_scan(w, tid, scratch, rq_out, wake_ns, &budget);
      advance_timers(w, steady_ms());
      w.overloaded.store(budget.exhausted, std::memory_order_relaxed);
    }
  }

  void adopt_conn(Worker& w, int fd, uint64_t now_ms) {
    if (static_cast<size_t>(fd) >= w.conns.size())
      w.conns.resize(static_cast<size_t>(fd) + 1);
    auto& c = w.conns[static_cast<size_t>(fd)];
    c = std::make_unique<Conn>(fd);
    c->gen = ++w.next_gen;
    c->last_activity_ms = now_ms;
    if (opt_.guard.idle_timeout_ms > 0)
      w.wheel.schedule(now_ms, opt_.guard.idle_timeout_ms, fd, c->gen,
                       TimerWheel::Kind::kIdle);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    const size_t nc = w.nconns.fetch_add(1, std::memory_order_relaxed) + 1;
    if (nc > w.peak_conns.load(std::memory_order_relaxed))
      w.peak_conns.store(nc, std::memory_order_relaxed);
  }

  void drop_conn(Worker& w, Conn& c) {
    const int fd = c.fd;
    if (c.trace != nullptr) {  // dying mid-scan: terminate, don't leak
      trace_abort(w, c.trace);
      c.trace = nullptr;
    }
    if (w.scan_fd == fd) {  // abandon the owner's scan; pins released
      w.scan.reset();
      w.scan_fd = -1;
    }
    if (c.scan_queued)
      w.scan_waiters.erase(
          std::remove(w.scan_waiters.begin(), w.scan_waiters.end(), fd),
          w.scan_waiters.end());
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    w.conns[static_cast<size_t>(fd)].reset();  // closes the fd
    w.nconns.fetch_sub(1, std::memory_order_relaxed);
    closed_.fetch_add(1, std::memory_order_relaxed);
  }

  // -- guard layer ---------------------------------------------------------

  /// True when [lo, hi] should run as a chunked scan: chunking enabled,
  /// a coordinated snapshot path exists, and the interval spans more
  /// keys than one slice covers.
  bool chunkable(KeyT lo, KeyT hi) const {
    const size_t chunk = opt_.guard.scan_chunk_keys;
    if (chunk == 0 || lo > hi) return false;
    if (sharded_ ? !sharded_->coordinated() : !plain_scan_ok_) return false;
    const uint64_t width_minus_1 =
        ((static_cast<uint64_t>(hi) ^ (uint64_t{1} << 63)) -
         (static_cast<uint64_t>(lo) ^ (uint64_t{1} << 63)));
    return width_minus_1 >= chunk;
  }

  /// Introspection ops stay admitted past the wave budget: overload is
  /// exactly when PING/STATS/METRICS must keep answering (and TXN_ABORT
  /// lets a shed-mid-transaction client always clean up).
  static bool exempt_from_shedding(Op op) {
    return op == Op::kPing || op == Op::kStats || op == Op::kMetrics ||
           op == Op::kTraceDump || op == Op::kTraceGet ||
           op == Op::kTxnAbort;
  }

  std::vector<ShardedSet::ScanPart> scan_plan(KeyT lo, KeyT hi) {
    if (sharded_) return sharded_->scan_plan(lo, hi);
    std::vector<ShardedSet::ScanPart> plan;
    plan.push_back({plain_.get(), plain_->rq_tracker_hook(), lo, hi});
    return plan;
  }
  GlobalTimestamp& scan_clock() {
    return sharded_ ? sharded_->coordination_clock() : guard_clock_;
  }

  void begin_scan(Worker& w, Conn& c) {
    // The pin/announce fan-out inside the SnapshotScan constructor stamps
    // through the current-trace hook. On the inline path (RANGE frame in
    // this wave) the hook is already set by service(); a promoted waiter
    // re-arms it from the trace riding its connection.
    obs::CurrentTraceScope scope(c.trace != nullptr ? c.trace
                                                    : obs::current_trace());
    w.scan = std::make_unique<SnapshotScan>(
        scan_plan(c.scan_lo, c.scan_hi), scan_clock(), w.scan_session.tid(),
        c.scan_lo, c.scan_hi);
    w.scan_fd = c.fd;
    w.scan_start_ns = obs_now_ns();
    w.chunked.fetch_add(1, std::memory_order_relaxed);
    if (sharded_) sharded_->note_external_scan(w.scan_session.tid());
  }

  void start_or_queue_scan(Worker& w, Conn& c, KeyT lo, KeyT hi) {
    c.scan_lo = lo;
    c.scan_hi = hi;
    if (w.scan == nullptr) {
      begin_scan(w, c);
    } else {  // one active scan per worker; FIFO for the rest
      c.scan_queued = true;
      w.scan_waiters.push_back(c.fd);
    }
  }

  void promote_waiter(Worker& w) {
    while (!w.scan_waiters.empty() && w.scan == nullptr) {
      const int fd = w.scan_waiters.front();
      w.scan_waiters.erase(w.scan_waiters.begin());
      Conn* nc = w.conns[static_cast<size_t>(fd)].get();
      if (nc != nullptr) {
        nc->scan_queued = false;
        begin_scan(w, *nc);
      }
    }
  }

  /// Advance the active chunked scan by one key-budget slice (called
  /// once per wave, after ready connections were serviced — point ops
  /// never wait on scan progress). On completion: encode the reply
  /// (stamped with the scan's ONE timestamp), resume the owner (flush +
  /// service its parked backlog), and hand the slot to the next waiter.
  void pump_scan(Worker& w, int tid, std::vector<uint8_t>& scratch,
                 RangeSnapshot& rq_out, uint64_t wake_ns,
                 WaveBudget* budget) {
    if (w.scan == nullptr) {
      promote_waiter(w);
      if (w.scan == nullptr) return;
    }
    w.scan_slices.fetch_add(1, std::memory_order_relaxed);
    Conn* owner = w.conns[static_cast<size_t>(w.scan_fd)].get();
    const uint64_t slice_t0 = obs_now_ns();
    bool complete;
    {
      obs::CurrentTraceScope scope(owner != nullptr ? owner->trace : nullptr);
      complete = w.scan->step(opt_.guard.scan_chunk_keys);
    }
    if constexpr (obs::kEnabled) {
      // One coalesced scan_chunk span per scan: slices extend it and
      // bump its aux16 slice count, so a 500-slice scan costs one span.
      if (owner != nullptr && owner->trace != nullptr)
        owner->trace->stamp_coalesce(obs::TraceStage::kScanChunk, slice_t0,
                                     obs_now_ns());
    }
    if (!complete) return;
    // Snapshot complete: answer the owner.
    Conn* c = owner;
    std::unique_ptr<SnapshotScan> done = std::move(w.scan);
    w.scan_fd = -1;
    scratch.clear();
    encode_range_response(scratch, done->ts(), done->items());
    w.frames.fetch_add(1, std::memory_order_relaxed);
    w.batches.fetch_add(1, std::memory_order_relaxed);
    const uint64_t scan_hist_ns = obs_now_ns() - w.scan_start_ns;
    if constexpr (obs::kEnabled)
      op_hist(Op::kRange).record(tid, scan_hist_ns);
    c->paused = false;
    const uint64_t flush_t0 = obs_now_ns();
    bool alive = flush(w, *c, &scratch);
    if constexpr (obs::kEnabled) {
      if (c->trace != nullptr) {
        const uint64_t end_ns = obs_now_ns();
        c->trace->stamp(obs::TraceStage::kFlush, flush_t0, end_ns);
        trace_close(w, c->trace, end_ns, scan_hist_ns);
        c->trace = nullptr;
      }
    }
    if (alive) alive = within_pending_cap(w, *c);
    // Next waiter BEFORE resuming the owner: a connection streaming
    // whole-keyspace scans queues its next one behind everyone else's.
    promote_waiter(w);
    if (alive && (c->kicked || !c->in.empty())) {
      c->kicked = false;
      alive = service(w, tid, *c, scratch, rq_out, wake_ns, budget);
    }
    if (!alive) drop_conn(w, *c);
  }

  /// False when the connection's unflushed backlog exceeds the cap — an
  /// unrecoverably slow reader the server disconnects rather than OOMs
  /// behind.
  bool within_pending_cap(Worker& w, Conn& c) {
    const size_t cap = opt_.guard.max_conn_pending;
    if (cap == 0 || c.pending.size() - c.pending_off <= cap) return true;
    w.reaped_slow.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Fire due connection deadlines with lazy revalidation: the wheel
  /// only wakes us; real activity is re-checked here and merely-slow
  /// connections are re-armed for the remainder. Paused (scan-owning)
  /// connections are never reaped — the server is the one delaying them.
  void advance_timers(Worker& w, uint64_t now_ms) {
    w.wheel.advance(now_ms, [&](int fd, uint32_t gen, TimerWheel::Kind k) {
      Conn* c = static_cast<size_t>(fd) < w.conns.size()
                    ? w.conns[static_cast<size_t>(fd)].get()
                    : nullptr;
      if (c == nullptr || c->gen != gen) return;  // closed / fd reused
      const bool shielded = c->paused || c->scan_queued;
      if (k == TimerWheel::Kind::kIdle) {
        const uint32_t limit = opt_.guard.idle_timeout_ms;
        if (limit == 0) return;
        const uint64_t idle = now_ms - c->last_activity_ms;
        if (idle >= limit && !shielded) {
          w.reaped_idle.fetch_add(1, std::memory_order_relaxed);
          drop_conn(w, *c);
          return;
        }
        w.wheel.schedule(now_ms, idle >= limit ? limit : limit - idle, fd,
                         gen, k);
      } else {  // kWriteStall
        const uint32_t limit = opt_.guard.write_stall_ms;
        if (limit == 0 || c->pending_since_ms == 0) return;
        const uint64_t stuck = now_ms - c->pending_since_ms;
        if (stuck >= limit && !shielded) {
          w.reaped_stall.fetch_add(1, std::memory_order_relaxed);
          drop_conn(w, *c);
          return;
        }
        w.wheel.schedule(now_ms, stuck >= limit ? limit : limit - stuck, fd,
                         gen, k);
      }
    });
  }

  /// stop() drain: finish held scans inline (their snapshots are already
  /// pinned; the owners get replies), execute whatever every connection
  /// already sent, then flush pending responses until drained or the
  /// drain deadline passes. The old fixed 100-spin retry silently
  /// dropped tail responses to slow clients; the deadline makes the
  /// bound explicit and the drops observable (bref_net_stop_dropped).
  void drain_and_close(Worker& w, int tid, std::vector<uint8_t>& scratch,
                       RangeSnapshot& rq_out, uint64_t wake_ns) {
    const uint64_t deadline =
        steady_ms() + opt_.guard.drain_deadline_ms;
    for (auto& cp : w.conns) {
      if (!cp || cp->paused) continue;  // parked backlogs run below
      service(w, tid, *cp, scratch, rq_out, wake_ns, nullptr);
    }
    while ((w.scan != nullptr || !w.scan_waiters.empty()) &&
           steady_ms() < deadline)
      pump_scan(w, tid, scratch, rq_out, wake_ns, nullptr);
    for (;;) {
      bool any = false;
      for (auto& cp : w.conns) {
        if (!cp || !has_pending(*cp)) continue;
        if (!flush(w, *cp, nullptr)) {
          cp->pending.clear();  // dead peer: nothing left deliverable
          cp->pending_off = 0;
        } else if (has_pending(*cp)) {
          any = true;
        }
      }
      if (!any || steady_ms() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (auto& cp : w.conns) {
      if (!cp) continue;
      if (has_pending(*cp) || cp->paused || cp->scan_queued)
        stop_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (cp->trace != nullptr) {  // scan straggler past the deadline
        trace_abort(w, cp->trace);
        cp->trace = nullptr;
      }
      closed_.fetch_add(1, std::memory_order_relaxed);
    }
    w.scan.reset();
    w.scan_fd = -1;
    w.scan_waiters.clear();
    w.conns.clear();
  }

  static bool has_pending(const Conn& c) {
    return c.pending.size() > c.pending_off;
  }

  // -- bref-trace plumbing -------------------------------------------------

  /// Open a scratch trace for one frame. A client-stamped id wins;
  /// otherwise the worker mints one (top byte = worker+1, so ids are
  /// process-unique without coordination). nullptr = pool exhausted
  /// (counted, request simply untraced) — never blocks, never allocates.
  obs::TraceScratch* trace_open(Worker& w, const FrameView& f,
                                uint64_t start_ns) {
    obs::TraceScratch* t = w.tslots.acquire();
    if (t == nullptr) {
      w.trace_scratch_exhausted.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    uint64_t id = f.trace_id;
    uint8_t flags = 0;
    if (id != 0)
      flags |= obs::kTraceClientStamped;
    else
      id = (static_cast<uint64_t>(w.index) + 1) << 56 | ++w.trace_seq;
    t->open(id, f.tag, w.index, start_ns, flags);
    return t;
  }

  /// Terminate a trace: total latency becomes known, the retroactive
  /// keep/discard policy runs, and on commit the record lands in the ring
  /// + slowest board and becomes the op histogram's exemplar for the
  /// bucket `hist_ns` (the exact value op_hist recorded) fell in — that
  /// is what keeps exemplar and histogram mutually consistent. Always
  /// releases the slot.
  void trace_close(Worker& w, obs::TraceScratch* t, uint64_t end_ns,
                   uint64_t hist_ns) {
    t->finish(end_ns);
    const obs::TraceRecord& r = t->record();
    if (obs::trace_should_commit(r.total_ns)) {
      w.trace.push(r);
      w.board.offer(r);
      if (hist_ns > 0)
        op_hist(static_cast<Op>(r.op)).set_exemplar(hist_ns, r.trace_id);
    }
    w.tslots.release(t);
  }

  /// Terminal path for a trace whose request never completes normally
  /// (dead connection, stop()-drain straggler): stamp an error span so
  /// the timeline says why it ended, then close. No exemplar.
  void trace_abort(Worker& w, obs::TraceScratch* t) {
    const uint64_t now_ns = obs_now_ns();
    t->stamp(obs::TraceStage::kError, now_ns, now_ns);
    t->add_flags(obs::kTraceError);
    trace_close(w, t, now_ns, 0);
  }

  /// Read to EAGAIN, execute every complete frame, flush. False = close.
  /// `wake_ns` is the epoll wakeup that surfaced this connection (0 when
  /// obs is compiled out) — the zero point for stage attribution.
  /// `budget` is the wave's admission budget (nullptr = unlimited, used
  /// by the stop() drain); frames past it are shed with kErrOverloaded.
  bool service(Worker& w, int tid, Conn& c, std::vector<uint8_t>& scratch,
               RangeSnapshot& rq_out, uint64_t wake_ns, WaveBudget* budget) {
    bool peer_closed = false;
    char buf[64 * 1024];
    for (;;) {
      const ssize_t r = fault::recv(c.fd, buf, sizeof buf, 0);
      if (r > 0) {
        c.in.insert(c.in.end(), buf, buf + r);
        w.bytes_in.fetch_add(static_cast<uint64_t>(r),
                              std::memory_order_relaxed);
        c.last_activity_ms = steady_ms();
        continue;
      }
      if (r == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;  // ECONNRESET and friends
    }

    // Execute the wave's whole batch, building responses in scratch.
    scratch.clear();
    size_t off = 0;
    uint64_t executed = 0;
    bool pause = false;  // a chunked scan started; park the rest
    // Traces opened this batch, parked until the flush terminates them.
    // Retroactive capture: every frame records (when armed, or when the
    // client stamped a context), and the keep/discard decision runs in
    // trace_close() once total latency is known.
    obs::TraceScratch* traces[obs::TraceSlots::kSlots];
    uint64_t trace_hist_ns[obs::TraceSlots::kSlots];
    int ntraces = 0;
    const bool armed = obs::trace_armed();
    const uint64_t exec_start_ns = obs_now_ns();
    uint64_t prev_ns = exec_start_ns;
    while (!c.closing) {
      FrameView f;
      size_t advance = 0;
      const SplitResult s = split_frame(c.in.data(), c.in.size(), off,
                                        opt_.max_frame, &f, &advance);
      if (s == SplitResult::kNeedMore) break;
      if (s == SplitResult::kOversized || s == SplitResult::kBadLength) {
        encode_status(scratch, s == SplitResult::kOversized
                                   ? Status::kErrTooLarge
                                   : Status::kErrMalformed);
        w.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c.closing = true;  // framing lost; close after the flush
        break;
      }
      const bool traced = obs::kEnabled && (armed || f.trace_id != 0);
      // Load shedding: past the wave budget every non-exempt frame is
      // answered kErrOverloaded WITHOUT executing (retrying one is
      // always safe), with the retry-after hint in the body. Sheds are
      // deliberately cheap — 9 reply bytes, no set access — so a deep
      // pipeline burst costs the wave almost nothing. A shed trace
      // terminates right here with a shed span: the timeline's answer to
      // "why was my request slow" is "it wasn't executed at all".
      if (budget != nullptr && budget->spent() &&
          !exempt_from_shedding(f.op())) {
        encode_overloaded(scratch, opt_.guard.retry_after_ms);
        w.shed.fetch_add(1, std::memory_order_relaxed);
        budget->exhausted = true;
        if (traced) {
          if (obs::TraceScratch* t = trace_open(w, f, wake_ns)) {
            const uint64_t now_ns = obs_now_ns();
            t->stamp(obs::TraceStage::kQueue, wake_ns, prev_ns);
            t->stamp(obs::TraceStage::kAdmission, now_ns, now_ns, 0, 1);
            t->stamp(obs::TraceStage::kShed, now_ns, now_ns);
            t->add_flags(obs::kTraceShed);
            trace_close(w, t, now_ns, 0);
          }
        }
        off += advance;
        continue;
      }
      obs::TraceScratch* t = traced ? trace_open(w, f, wake_ns) : nullptr;
      if (t != nullptr) {
        t->stamp(obs::TraceStage::kQueue, wake_ns, prev_ns);
        t->stamp(obs::TraceStage::kAdmission, prev_ns, prev_ns, 0, 0);
      }
      const size_t scratch_before = scratch.size();
      ExecResult er;
      {
        // Park the scratch in the thread-local hook: the shard fan-out
        // (ShardedSet coordinated path) and the scan pin path
        // (SnapshotScan) stamp their spans through it.
        obs::CurrentTraceScope scope(t);
        er = execute(w, tid, c, f, scratch, rq_out);
      }
      if (er == ExecResult::kStartScan) {
        // Frame consumed, but its response arrives when the scan
        // completes (pump_scan counts it then). Stop parsing: response
        // order must match request order, so everything behind the
        // RANGE parks with the connection. The trace rides the
        // connection until the scan terminates it.
        if (t != nullptr) {
          t->stamp(obs::TraceStage::kExecute, prev_ns, obs_now_ns(), 0,
                   span_shard(f));
          c.trace = t;
        }
        off += advance;
        pause = true;
        break;
      }
      if (budget != nullptr) {
        budget->charge_frame();
        budget->charge_bytes(scratch.size() - scratch_before);
      }
      if constexpr (obs::kEnabled) {
        const uint64_t now_ns = obs_now_ns();
        op_hist(f.op()).record(tid, now_ns - prev_ns);
        if (t != nullptr) {
          t->stamp(obs::TraceStage::kExecute, prev_ns, now_ns, 0,
                   span_shard(f));
          traces[ntraces] = t;
          trace_hist_ns[ntraces] = now_ns - prev_ns;
          ++ntraces;
        }
        prev_ns = now_ns;
      }
      off += advance;
      ++executed;
    }
    if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
    if (executed > 0) {
      w.frames.fetch_add(executed, std::memory_order_relaxed);
      w.batches.fetch_add(1, std::memory_order_relaxed);
    }
    const bool flushed = flush(w, c, &scratch);
    if constexpr (obs::kEnabled) {
      if (executed > 0) {
        const uint64_t end_ns = obs_now_ns();
        stage_hist(0).record(tid, exec_start_ns - wake_ns);
        stage_hist(1).record(tid, prev_ns - exec_start_ns);
        stage_hist(2).record(tid, end_ns - prev_ns);
        for (int i = 0; i < ntraces; ++i) {
          traces[i]->stamp(obs::TraceStage::kFlush, prev_ns, end_ns);
          if (!flushed) {
            traces[i]->stamp(obs::TraceStage::kError, end_ns, end_ns);
            traces[i]->add_flags(obs::kTraceError);
          }
          trace_close(w, traces[i], end_ns, trace_hist_ns[i]);
        }
      }
    }
    if (!flushed) return false;
    if (!within_pending_cap(w, c)) return false;  // slow-reader cap
    if (pause) c.paused = true;
    if (c.closing && !has_pending(c)) return false;
    return !peer_closed;
  }

  /// Shard a traced frame's key routes to (0 when unsharded or keyless).
  uint16_t span_shard(const FrameView& f) const {
    if (!sharded_) return 0;
    switch (f.op()) {
      case Op::kGet:
      case Op::kRemove:
      case Op::kInsert:
      case Op::kRange:
        if (f.body_len >= 8)
          return static_cast<uint16_t>(sharded_->shard_index(get_i64(f.body)));
        return 0;
      default:
        return 0;
    }
  }

  /// How a frame's execution resolved: response appended now, or a
  /// chunked scan was started/queued and the response arrives later.
  enum class ExecResult : uint8_t { kDone, kStartScan };

  /// Execute one request frame; append the response to `out` (kDone), or
  /// park the connection behind a chunked scan (kStartScan).
  ExecResult execute(Worker& w, int tid, Conn& c, const FrameView& f,
                     std::vector<uint8_t>& out, RangeSnapshot& rq_out) {
    auto err = [&](Status st) {
      encode_status(out, st);
      w.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      return ExecResult::kDone;
    };
    switch (f.op()) {
      case Op::kGet: {
        if (f.body_len != 8) return err(Status::kErrMalformed);
        ValT v = 0;
        if (set_->contains(tid, get_i64(f.body), &v))
          encode_val_response(out, v);
        else
          encode_status(out, Status::kNo);
        return ExecResult::kDone;
      }
      case Op::kInsert: {
        if (f.body_len != 16) return err(Status::kErrMalformed);
        encode_status(out, set_->insert(tid, get_i64(f.body),
                                        get_i64(f.body + 8))
                               ? Status::kOk
                               : Status::kNo);
        return ExecResult::kDone;
      }
      case Op::kRemove: {
        if (f.body_len != 8) return err(Status::kErrMalformed);
        encode_status(
            out, set_->remove(tid, get_i64(f.body)) ? Status::kOk
                                                    : Status::kNo);
        return ExecResult::kDone;
      }
      case Op::kRange: {
        if (f.body_len != 16) return err(Status::kErrMalformed);
        const KeyT lo = get_i64(f.body), hi = get_i64(f.body + 8);
        // Wide scans run chunked behind the wave when a coordinated
        // snapshot path exists; the inline path keeps serving narrow
        // ranges (and every range when chunking is unavailable).
        if (chunkable(lo, hi) && !c.closing) {
          start_or_queue_scan(w, c, lo, hi);
          return ExecResult::kStartScan;
        }
        set_->range_query(tid, lo, hi, rq_out);
        encode_range_response(out,
                              rq_out.has_timestamp()
                                  ? rq_out.timestamp()
                                  : RangeSnapshot::kNoTimestamp,
                              rq_out.items());
        return ExecResult::kDone;
      }
      case Op::kTxnBegin: {
        if (c.in_txn) return err(Status::kErrTxnState);
        c.in_txn = true;
        c.txn.clear();
        encode_status(out, Status::kOk);
        return ExecResult::kDone;
      }
      case Op::kTxnOp: {
        if (!c.in_txn) return err(Status::kErrTxnState);
        if (f.body_len < 9) return err(Status::kErrMalformed);
        const Op inner = static_cast<Op>(f.body[0]);
        const size_t want = inner == Op::kInsert ? 17 : 9;
        if ((inner != Op::kGet && inner != Op::kInsert &&
             inner != Op::kRemove) ||
            f.body_len != want)
          return err(Status::kErrMalformed);
        if (c.txn.size() >= opt_.max_txn_ops) return err(Status::kErrTxnState);
        c.txn.push_back({inner, get_i64(f.body + 1),
                         inner == Op::kInsert ? get_i64(f.body + 9) : 0});
        encode_status(out, Status::kOk);
        return ExecResult::kDone;
      }
      case Op::kTxnCommit: {
        if (!c.in_txn) return err(Status::kErrTxnState);
        // The batch runs back-to-back under this worker's one session —
        // the wire analogue of db::Txn's "one dense id over every index
        // the transaction touches".
        put_u32(out, static_cast<uint32_t>(1 + 4 + 9 * c.txn.size()));
        out.push_back(static_cast<uint8_t>(Status::kOk));
        put_u32(out, static_cast<uint32_t>(c.txn.size()));
        for (const BufferedOp& op : c.txn) {
          ValT v = 0;
          bool r = false;
          switch (op.op) {
            case Op::kGet: r = set_->contains(tid, op.key, &v); break;
            case Op::kInsert: r = set_->insert(tid, op.key, op.val); break;
            case Op::kRemove: r = set_->remove(tid, op.key); break;
            default: break;
          }
          out.push_back(static_cast<uint8_t>(r ? Status::kOk : Status::kNo));
          put_i64(out, v);
        }
        c.in_txn = false;
        c.txn.clear();
        w.txns_committed.fetch_add(1, std::memory_order_relaxed);
        return ExecResult::kDone;
      }
      case Op::kTxnAbort: {
        if (!c.in_txn) return err(Status::kErrTxnState);
        c.in_txn = false;
        c.txn.clear();
        w.txns_aborted.fetch_add(1, std::memory_order_relaxed);
        encode_status(out, Status::kOk);
        return ExecResult::kDone;
      }
      case Op::kPing:
        encode_status(out, Status::kOk);
        return ExecResult::kDone;
      case Op::kStats:
        encode_text_response(out, stats_json());
        return ExecResult::kDone;
      case Op::kMetrics:
        encode_text_response(out, obs::registry().prometheus());
        return ExecResult::kDone;
      case Op::kTraceDump: {
        if (f.body_len == 4) {  // set the global sampling rate, ack
          obs::trace_sample_every().store(get_u32(f.body),
                                          std::memory_order_relaxed);
          encode_status(out, Status::kOk);
          return ExecResult::kDone;
        }
        if (f.body_len == 8) {  // set rate + tail-commit threshold, ack
          obs::trace_sample_every().store(get_u32(f.body),
                                          std::memory_order_relaxed);
          const uint32_t us = get_u32(f.body + 4);
          obs::trace_threshold_ns().store(
              us == UINT32_MAX ? obs::kTraceThresholdOff
                               : static_cast<uint64_t>(us) * 1000,
              std::memory_order_relaxed);
          encode_status(out, Status::kOk);
          return ExecResult::kDone;
        }
        if (f.body_len != 0) return err(Status::kErrMalformed);
        encode_text_response(out, trace_dump_json());
        return ExecResult::kDone;
      }
      case Op::kTraceGet: {
        if (f.body_len != 8) return err(Status::kErrMalformed);
        obs::TraceRecord rec;
        if (find_trace(get_u64(f.body), &rec))
          encode_text_response(out, trace_record_json(rec));
        else
          encode_status(out, Status::kNo);  // never committed, or evicted
        return ExecResult::kDone;
      }
    }
    return err(Status::kErrMalformed);  // unknown opcode; framing intact
  }

  /// Normally one writev per connection per wave: leftover bytes from an
  /// earlier short write + this wave's scratch. Remainder (if any) is
  /// kept in c.pending and EPOLLOUT armed. False = fatal write error.
  ///
  /// EINTR and short writes that are NOT a kernel EAGAIN are retried in
  /// place: after either, the socket is still writable, so under EPOLLET
  /// no new EPOLLOUT edge would ever fire for the deferred bytes — they
  /// would sit in c.pending until the write-stall reaper killed a
  /// perfectly healthy connection. Only a real EAGAIN (socket genuinely
  /// unwritable — a future edge is guaranteed) defers to EPOLLOUT.
  bool flush(Worker& w, Conn& c, std::vector<uint8_t>* scratch) {
    size_t scratch_sent = 0;  // bytes of scratch handed to the kernel
    for (;;) {
      iovec iov[2];
      int iovcnt = 0;
      if (has_pending(c)) {
        iov[iovcnt].iov_base = c.pending.data() + c.pending_off;
        iov[iovcnt].iov_len = c.pending.size() - c.pending_off;
        ++iovcnt;
      }
      if (scratch != nullptr && scratch_sent < scratch->size()) {
        iov[iovcnt].iov_base = scratch->data() + scratch_sent;
        iov[iovcnt].iov_len = scratch->size() - scratch_sent;
        ++iovcnt;
      }
      if (iovcnt == 0) break;  // everything out
      const ssize_t sent = fault::writev(c.fd, iov, iovcnt);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
        break;  // genuinely unwritable; EPOLLOUT will fire
      }
      w.bytes_out.fetch_add(static_cast<uint64_t>(sent),
                            std::memory_order_relaxed);
      size_t s = static_cast<size_t>(sent);
      const size_t pend = c.pending.size() - c.pending_off;
      const size_t from_pending = s < pend ? s : pend;
      c.pending_off += from_pending;
      s -= from_pending;
      scratch_sent += s;
      if (c.pending_off >= c.pending.size()) {
        c.pending.clear();
        c.pending_off = 0;
      }
    }
    if (scratch != nullptr && scratch_sent < scratch->size())
      c.pending.insert(c.pending.end(), scratch->begin() + scratch_sent,
                       scratch->end());
    const bool want_out = has_pending(c);
    if (want_out != c.epollout) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP |
                  (want_out ? EPOLLOUT : 0u);
      ev.data.fd = c.fd;
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
      c.epollout = want_out;
    }
    // Write-stall deadline: stamp when bytes first back up; clear when
    // the backlog drains. The wheel fires later and re-checks the stamp.
    if (want_out) {
      if (c.pending_since_ms == 0) {
        c.pending_since_ms = steady_ms();
        if (opt_.guard.write_stall_ms > 0)
          w.wheel.schedule(c.pending_since_ms, opt_.guard.write_stall_ms,
                           c.fd, c.gen, TimerWheel::Kind::kWriteStall);
      }
    } else {
      c.pending_since_ms = 0;
    }
    return true;
  }

  ServerOptions opt_;
  // Chunked-scan coordination for the unsharded path: the server owns
  // the clock an adopted coordinated-capable plain set redirects onto.
  // Declared before plain_ so it outlives the set pointing at it (the
  // same ordering ShardedSet documents for its gts_).
  GlobalTimestamp guard_clock_;
  bool plain_scan_ok_ = false;
  std::unique_ptr<AnyOrderedSet> plain_;
  std::unique_ptr<ShardedSet> sharded_;
  AnyOrderedSet* set_ = nullptr;
  std::unique_ptr<MaintenanceService> maint_;

  mutable std::mutex lifecycle_mu_;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> stop_dropped_{0};  // survives worker teardown
  // Registered by start() after workers_ is built, removed by stop()
  // before it is torn down (their callbacks iterate workers_ unlocked).
  obs::GaugeSet::Source obs_srcs_[kServerSeries];
  obs::GaugeSet::Source obs_guard_srcs_[kGuardSeries];
  obs::GaugeSet::Source obs_trace_srcs_[kTraceSeries];
};

}  // namespace bref::net
