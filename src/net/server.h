#pragma once
// bref::net::Server — the epoll-batched network front-end over
// ShardedSet / the registry's ordered sets.
//
// Architecture (one acceptor + N worker loops):
//
//   * The acceptor thread owns the listening socket; each accepted
//     connection is handed to a worker round-robin and stays pinned to it
//     for life (no cross-worker migration, so per-connection state needs
//     no locks).
//   * Each worker runs an edge-triggered epoll loop over its connections.
//     One epoll wave drains EVERYTHING readable: for each ready
//     connection the worker reads to EAGAIN, parses every complete frame,
//     executes the whole batch against the set, then flushes the
//     responses with one writev per connection (pending bytes from an
//     earlier short write + this wave's responses = two iovecs).
//     Pipelined clients therefore amortize both syscalls and the
//     session's cache warmth over the whole batch.
//   * Sessions: each worker holds ONE dense thread id (SessionGuard) for
//     its whole lifetime and executes every pinned connection's ops under
//     it. Connections never consume ThreadRegistry slots — the
//     connection:session mapping is many:1 by construction, so accepting
//     more connections than kMaxThreads is fine.
//   * Transactions: TXN_BEGIN/TXN_OP buffer ops per connection;
//     TXN_COMMIT executes the batch back-to-back under the worker's
//     session (mirroring MiniDB's db::Txn: one id over the batch, effects
//     applied eagerly, abort = discard the buffer). Ops of one
//     transaction are never interleaved with other ops *on this worker*,
//     but there is no cross-worker isolation — documented in PROTOCOL.md.
//
// Lifecycle: construct -> start() -> stop() (idempotent; the destructor
// stops). start() spawns the MaintenanceService for the backing set;
// stop() closes the listener, lets every worker execute what it already
// buffered and flush pending writes, closes all connections, joins the
// loops, and stops maintenance — under ASan this is fd- and session-leak
// free (test_net asserts the ThreadRegistry high-water mark returns to
// baseline).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "api/session.h"
#include "api/set_interface.h"
#include "common/cacheline.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/builtin_shards.h"
#include "shard/maintenance.h"
#include "shard/sharded_set.h"

namespace bref::net {

inline const char* op_name(uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kGet: return "get";
    case Op::kInsert: return "insert";
    case Op::kRemove: return "remove";
    case Op::kRange: return "range";
    case Op::kTxnBegin: return "txn_begin";
    case Op::kTxnOp: return "txn_op";
    case Op::kTxnCommit: return "txn_commit";
    case Op::kTxnAbort: return "txn_abort";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kTraceDump: return "trace_dump";
  }
  return "unknown";
}

/// Steady-clock nanoseconds for stage attribution; constant-folds to 0
/// when obs is compiled out, which dead-codes every duration math below.
inline uint64_t obs_now_ns() {
  if constexpr (!obs::kEnabled) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The wire path's tail-latency attribution (obs, net layer): where a
/// request's time goes between the epoll wakeup that surfaced it and the
/// writev that answered it. Process-wide; benches attribute per-scenario
/// via HistogramSnapshot deltas.
inline obs::Histogram& stage_hist(int stage) {  // 0 queue, 1 execute, 2 flush
  static obs::Histogram* h[3] = {
      &obs::registry().histogram(
          "bref_net_stage_seconds",
          "Worker-loop stage time per connection batch", "stage=\"queue\"",
          1e9),
      &obs::registry().histogram(
          "bref_net_stage_seconds",
          "Worker-loop stage time per connection batch", "stage=\"execute\"",
          1e9),
      &obs::registry().histogram(
          "bref_net_stage_seconds",
          "Worker-loop stage time per connection batch", "stage=\"flush\"",
          1e9)};
  return *h[stage];
}

inline obs::Histogram& op_hist(Op op) {
  auto make = [](const char* name) {
    return &obs::registry().histogram(
        "bref_net_op_seconds", "Per-op execute time on the worker loop",
        std::string("op=\"") + name + "\"", 1e9);
  };
  switch (op) {
    case Op::kGet: { static auto* h = make("get"); return *h; }
    case Op::kInsert: { static auto* h = make("insert"); return *h; }
    case Op::kRemove: { static auto* h = make("remove"); return *h; }
    case Op::kRange: { static auto* h = make("range"); return *h; }
    case Op::kTxnCommit: { static auto* h = make("txn_commit"); return *h; }
    default: { static auto* h = make("other"); return *h; }
  }
}

/// Server-level series aggregated over live Server instances (servers are
/// created and destroyed per bench scenario; RAII sources keep the
/// exposition honest). Index order matches Server::register_obs().
inline obs::GaugeSet& server_series(size_t i) {
  using GS = obs::GaugeSet;
  using MK = obs::MetricKind;
  static auto* v = [] {
    auto* u = new std::vector<GS*>();
    auto add = [&](GS::Agg a, const char* n, const char* h, MK k) {
      u->push_back(new GS(a, n, h, "", k));
    };
    add(GS::Agg::kSum, "bref_net_connections",
        "Connections currently adopted by worker loops", MK::kGauge);
    add(GS::Agg::kMax, "bref_net_connections_peak",
        "High-water mark of adopted connections (max over live servers)",
        MK::kGauge);
    add(GS::Agg::kSum, "bref_net_accepted_total",
        "Connections accepted", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_frames_total",
        "Request frames executed", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_batches_total",
        "Epoll waves that executed at least one frame", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_bytes_in_total",
        "Request bytes read", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_bytes_out_total",
        "Response bytes written", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_protocol_errors_total",
        "Error responses sent", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_txns_committed_total",
        "Wire transactions committed", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_txns_aborted_total",
        "Wire transactions aborted", MK::kCounter);
    return u;
  }();
  return *(*v)[i];
}
inline constexpr size_t kServerSeries = 10;

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker event loops; each holds one session for all its connections.
  int workers = 2;
  /// Registry name of the backing implementation.
  std::string impl = "Bundle-skiplist";
  /// Shard the keyspace over this many instances (<= 1 = unsharded).
  size_t shards = 4;
  /// Partition bounds when sharding (ShardOptions semantics).
  KeyT key_lo = 0;
  KeyT key_hi = 1 << 20;
  /// Reject request frames declaring more than this many payload bytes.
  uint32_t max_frame = kDefaultMaxFrame;
  /// Buffered ops per transaction before TXN_OP answers kErrTxnState.
  size_t max_txn_ops = 1024;
  /// Run the per-shard MaintenanceService while the server is up.
  bool maintenance = true;
  MaintenanceOptions maint{};
  int backlog = 128;
};

/// Monotonic server-wide counters (relaxed; exact once quiescent).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t frames = 0;          // requests executed
  uint64_t batches = 0;         // epoll waves that executed >= 1 frame
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0; // error responses sent
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t connections = 0;       // live right now (approximate under churn)
  uint64_t connections_peak = 0;  // sum of per-worker adoption high-waters
};

class Server {
 public:
  explicit Server(ServerOptions opt = {}) : opt_(std::move(opt)) {
    ImplDescriptor desc;
    if (!ImplRegistry::instance().find(opt_.impl, &desc))
      throw std::invalid_argument("unknown ordered-set implementation: " +
                                  opt_.impl);
    const SetOptions inner{.reclaim = desc.caps.reclamation};
    if (opt_.shards > 1) {
      ShardOptions so;
      so.shards = opt_.shards;
      so.key_lo = opt_.key_lo;
      so.key_hi = opt_.key_hi;
      so.inner = inner;
      sharded_ = std::make_unique<ShardedSet>(opt_.impl, so);
      set_ = sharded_.get();
    } else {
      plain_ = ImplRegistry::instance().create(opt_.impl, inner);
      set_ = plain_.get();
    }
    if (opt_.maintenance)
      maint_ = std::make_unique<MaintenanceService>(*set_, opt_.maint);
  }

  ~Server() { stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn acceptor + workers (+ maintenance). Throws on
  /// socket errors or session exhaustion; safe to call once per stop().
  void start() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (running_) return;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd_, opt_.backlog) < 0) {
      const int e = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error(std::string("bind/listen: ") +
                               std::strerror(e));
    }
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);

    stop_.store(false, std::memory_order_relaxed);
    workers_.clear();
    // Every step that can throw — worker session ids, epoll fds, the
    // maintenance service's registry ids — runs BEFORE any thread spawns,
    // so a failed start() unwinds to a fully stopped server (no half-live
    // acceptor to join, no leaked fds or ids) and can be retried.
    try {
      const int nworkers = opt_.workers < 1 ? 1 : opt_.workers;
      for (int i = 0; i < nworkers; ++i) {
        auto w = std::make_unique<Worker>();
        // Acquire the worker's session up front, on this thread, so
        // start() can fail with a clear error instead of a dead loop: the
        // guard is just a dense id, valid from any thread that uses it
        // exclusively, and this worker's loop is its only user.
        if (!w->session.acquired()) throw ThreadSlotsExhaustedError();
        w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
        w->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (w->epoll_fd < 0 || w->wake_fd < 0) throw_errno("epoll/eventfd");
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = w->wake_fd;
        ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev);
        workers_.push_back(std::move(w));
      }
      if (maint_) maint_->start();
    } catch (...) {
      workers_.clear();  // releases acquired guards, closes epoll/wake fds
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
    // Register the obs sources only once workers_ is fully built: their
    // callbacks iterate it without the lifecycle lock (see the stats()
    // NOTE below), so registration brackets exactly the stable window —
    // stop() removes them before mutating the vector.
    register_obs();
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker* wp = workers_[i].get();
      wp->index = static_cast<uint8_t>(i);
      wp->thread = std::thread([this, wp] { worker_loop(*wp); });
    }
    acceptor_ = std::thread([this] { acceptor_loop(); });
    running_ = true;
  }

  /// Drain and shut down: stop accepting, execute every already-buffered
  /// frame, flush pending responses (bounded retry), close all fds, join
  /// all threads, stop maintenance. Idempotent; restartable.
  void stop() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (!running_) return;
    // Unregister the obs sources first: removal blocks on in-flight
    // snapshot reads, so no callback can observe workers_ mid-teardown.
    for (auto& s : obs_srcs_) s.reset();
    stop_.store(true, std::memory_order_release);
    // Closing the listener wakes the acceptor's epoll_wait with EPOLLHUP
    // semantics; the eventfd write is belt and braces.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (auto& w : workers_) wake(*w);
    for (auto& w : workers_)
      if (w->thread.joinable()) w->thread.join();
    workers_.clear();  // closes epoll/wake fds, releases session guards
    if (maint_) maint_->stop();
    running_ = false;
  }

  bool running() const {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    return running_;
  }
  uint16_t port() const { return port_; }
  AnyOrderedSet& set() { return *set_; }
  MaintenanceService* maintenance() { return maint_.get(); }

  /// NOTE on the stats accessors: they read workers_ without the
  /// lifecycle lock. workers_ is only mutated by start()/stop(), and a
  /// STATS request is *executed by a worker*, which would deadlock
  /// against stop() (it joins workers under the lock) if these locked.
  /// Between start() and stop() the vector is stable; after stop() it is
  /// empty — both safe to iterate. Counters themselves are relaxed
  /// atomics, exact once quiescent.
  ServerStats stats() const {
    ServerStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.closed = closed_.load(std::memory_order_relaxed);
    for (const auto& w : workers_) {
      s.frames += w->frames.load(std::memory_order_relaxed);
      s.batches += w->batches.load(std::memory_order_relaxed);
      s.bytes_in += w->bytes_in.load(std::memory_order_relaxed);
      s.bytes_out += w->bytes_out.load(std::memory_order_relaxed);
      s.protocol_errors += w->protocol_errors.load(std::memory_order_relaxed);
      s.txns_committed += w->txns_committed.load(std::memory_order_relaxed);
      s.txns_aborted += w->txns_aborted.load(std::memory_order_relaxed);
      s.connections += w->nconns.load(std::memory_order_relaxed);
      s.connections_peak += w->peak_conns.load(std::memory_order_relaxed);
    }
    return s;
  }

  /// Live connection count (approximate under churn).
  size_t connections() const {
    size_t n = 0;
    for (const auto& w : workers_)
      n += w->nconns.load(std::memory_order_relaxed);
    return n;
  }

  /// Sum of per-worker adoption high-waters. An upper bound on the true
  /// concurrent peak (workers peak independently), and — unlike the live
  /// gauge — nonzero in any post-run stats capture, which is what made
  /// BENCH_6's "connections: 0" unanswerable.
  size_t peak_connections() const {
    size_t n = 0;
    for (const auto& w : workers_)
      n += w->peak_conns.load(std::memory_order_relaxed);
    return n;
  }

  /// The STATS response body: server counters, routing counters when
  /// sharded, per-shard maintenance stats when the service runs.
  std::string stats_json() const {
    const ServerStats s = stats();
    char buf[512];
    std::string out = "{";
    std::snprintf(buf, sizeof buf,
                  "\"impl\": \"%s\", \"shards\": %zu, \"workers\": %zu, "
                  "\"connections\": %zu, \"connections_peak\": %zu, "
                  "\"accepted\": %llu, "
                  "\"frames\": %llu, \"batches\": %llu, "
                  "\"frames_per_batch\": %.2f, \"bytes_in\": %llu, "
                  "\"bytes_out\": %llu, \"protocol_errors\": %llu, "
                  "\"txns_committed\": %llu, \"txns_aborted\": %llu",
                  opt_.impl.c_str(), opt_.shards > 1 ? opt_.shards : 1,
                  workers_.size(), connections(), peak_connections(),
                  static_cast<unsigned long long>(s.accepted),
                  static_cast<unsigned long long>(s.frames),
                  static_cast<unsigned long long>(s.batches),
                  s.batches ? static_cast<double>(s.frames) / s.batches : 0.0,
                  static_cast<unsigned long long>(s.bytes_in),
                  static_cast<unsigned long long>(s.bytes_out),
                  static_cast<unsigned long long>(s.protocol_errors),
                  static_cast<unsigned long long>(s.txns_committed),
                  static_cast<unsigned long long>(s.txns_aborted));
    out += buf;
    if (sharded_) {
      const ShardedSetStats r = sharded_->stats();
      std::snprintf(buf, sizeof buf,
                    ", \"routing\": {\"single_shard_rqs\": %llu, "
                    "\"coordinated_rqs\": %llu, \"fallback_rqs\": %llu, "
                    "\"timestamps_acquired\": %llu}",
                    static_cast<unsigned long long>(r.single_shard_rqs),
                    static_cast<unsigned long long>(r.coordinated_rqs),
                    static_cast<unsigned long long>(r.fallback_rqs),
                    static_cast<unsigned long long>(r.timestamps_acquired));
      out += buf;
    }
    if (maint_) {
      out += ", \"maintenance\": [";
      for (size_t i = 0; i < maint_->workers(); ++i) {
        const ShardMaintenanceStats m = maint_->stats(i);
        std::snprintf(buf, sizeof buf,
                      "%s{\"passes\": %llu, \"pruned\": %llu, "
                      "\"flushed\": %llu, \"idle_backoffs\": %llu, "
                      "\"backlog\": %llu}",
                      i > 0 ? ", " : "",
                      static_cast<unsigned long long>(m.passes),
                      static_cast<unsigned long long>(m.bundle_entries_pruned),
                      static_cast<unsigned long long>(m.limbo_flushed),
                      static_cast<unsigned long long>(m.idle_backoffs),
                      static_cast<unsigned long long>(m.backlog));
        out += buf;
      }
      out += "]";
    }
    // The registry view — counters, gauges and quantile summaries across
    // all four layers — spliced in whole, so STATS is the JSON twin of
    // the METRICS exposition.
    out += ", \"obs\": " + obs::registry().json();
    return out + "}";
  }

  /// The TRACE_DUMP response body: every worker ring's tail, oldest first
  /// per worker, plus the active sampling rate.
  std::string trace_dump_json() const {
    std::string out = "{\"sample_every\": " +
                      std::to_string(obs::trace_sample_every().load(
                          std::memory_order_relaxed)) +
                      ", \"spans\": [";
    char buf[192];
    bool first = true;
    for (const auto& w : workers_) {
      uint64_t total = 0;
      for (const obs::TraceSpan& sp : w->trace.dump(&total)) {
        std::snprintf(
            buf, sizeof buf,
            "%s{\"worker\": %u, \"op\": \"%s\", \"shard\": %u, "
            "\"end_ns\": %llu, \"queue_ns\": %u, \"exec_ns\": %u, "
            "\"flush_ns\": %u}",
            first ? "" : ", ", w->index, op_name(sp.op), sp.shard,
            static_cast<unsigned long long>(sp.end_ns), sp.queue_ns,
            sp.exec_ns, sp.flush_ns);
        out += buf;
        first = false;
      }
    }
    return out + "]}";
  }

 private:
  // -- per-connection state (owned by exactly one worker) ------------------
  struct BufferedOp {
    Op op;
    KeyT key;
    ValT val;
  };
  struct Conn {
    explicit Conn(int fd_) : fd(fd_) {}
    ~Conn() {
      if (fd >= 0) ::close(fd);
    }
    int fd;
    std::vector<uint8_t> in;       // unparsed request bytes
    std::vector<uint8_t> pending;  // response bytes a short write left over
    size_t pending_off = 0;
    bool epollout = false;         // EPOLLOUT currently armed
    bool closing = false;          // poisoned stream: close once flushed
    bool in_txn = false;
    std::vector<BufferedOp> txn;
  };

  struct Worker {
    SessionGuard session;
    int epoll_fd = -1;
    int wake_fd = -1;
    uint8_t index = 0;  // position in workers_ (trace span attribution)
    std::thread thread;
    // Handoff queue from the acceptor (the only cross-thread touch).
    std::mutex inbox_mu;
    std::vector<int> inbox;
    std::atomic<size_t> nconns{0};
    // High-water of nconns; single-writer (the loop adopts), so a plain
    // load/store bump suffices.
    std::atomic<uint64_t> peak_conns{0};
    // Written by the loop, read by any STATS caller: relaxed atomics.
    std::atomic<uint64_t> frames{0}, batches{0}, bytes_in{0}, bytes_out{0};
    std::atomic<uint64_t> protocol_errors{0}, txns_committed{0},
        txns_aborted{0};
    // Flight-recorder ring (obs/trace.h); written by the loop for sampled
    // requests, drained by any worker executing TRACE_DUMP.
    obs::TraceRing trace;

    ~Worker() {
      if (epoll_fd >= 0) ::close(epoll_fd);
      if (wake_fd >= 0) ::close(wake_fd);
      for (int fd : inbox) ::close(fd);  // accepted but never adopted
    }
  };

  [[noreturn]] static void throw_errno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " +
                             std::strerror(errno));
  }

  /// Register this instance's callback sources (see start()/stop() for
  /// the workers_-stability bracket). Indices follow server_series().
  void register_obs() {
    auto reg = [this](size_t i, double (Server::*read)() const) {
      obs_srcs_[i] =
          server_series(i).add([this, read] { return (this->*read)(); });
    };
    reg(0, &Server::obs_connections);
    reg(1, &Server::obs_peak);
    reg(2, &Server::obs_accepted);
    reg(3, &Server::obs_frames);
    reg(4, &Server::obs_batches);
    reg(5, &Server::obs_bytes_in);
    reg(6, &Server::obs_bytes_out);
    reg(7, &Server::obs_protocol_errors);
    reg(8, &Server::obs_txns_committed);
    reg(9, &Server::obs_txns_aborted);
  }
  double obs_connections() const { return static_cast<double>(connections()); }
  double obs_peak() const { return static_cast<double>(peak_connections()); }
  double obs_accepted() const {
    return static_cast<double>(accepted_.load(std::memory_order_relaxed));
  }
  double obs_frames() const { return static_cast<double>(stats().frames); }
  double obs_batches() const { return static_cast<double>(stats().batches); }
  double obs_bytes_in() const { return static_cast<double>(stats().bytes_in); }
  double obs_bytes_out() const {
    return static_cast<double>(stats().bytes_out);
  }
  double obs_protocol_errors() const {
    return static_cast<double>(stats().protocol_errors);
  }
  double obs_txns_committed() const {
    return static_cast<double>(stats().txns_committed);
  }
  double obs_txns_aborted() const {
    return static_cast<double>(stats().txns_aborted);
  }

  static void wake(Worker& w) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(w.wake_fd, &one, sizeof one);
  }

  // -- acceptor ------------------------------------------------------------
  void acceptor_loop() {
    size_t next = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        Worker& w = *workers_[next++ % workers_.size()];
        {
          std::lock_guard<std::mutex> g(w.inbox_mu);
          w.inbox.push_back(fd);
        }
        wake(w);
      }
    }
  }

  // -- worker loop ---------------------------------------------------------
  void worker_loop(Worker& w) {
    const int tid = w.session.tid();
    std::vector<std::unique_ptr<Conn>> conns;  // indexed by fd
    std::vector<epoll_event> events(256);
    std::vector<uint8_t> scratch;  // this wave's responses, per connection
    RangeSnapshot rq_out;

    auto adopt = [&](int fd) {
      if (static_cast<size_t>(fd) >= conns.size())
        conns.resize(static_cast<size_t>(fd) + 1);
      conns[static_cast<size_t>(fd)] = std::make_unique<Conn>(fd);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
      ev.data.fd = fd;
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      const size_t nc = w.nconns.fetch_add(1, std::memory_order_relaxed) + 1;
      if (nc > w.peak_conns.load(std::memory_order_relaxed))
        w.peak_conns.store(nc, std::memory_order_relaxed);
    };
    auto drop = [&](Conn& c) {
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
      conns[static_cast<size_t>(c.fd)].reset();  // closes the fd
      w.nconns.fetch_sub(1, std::memory_order_relaxed);
      closed_.fetch_add(1, std::memory_order_relaxed);
    };

    for (;;) {
      const int n = ::epoll_wait(w.epoll_fd, events.data(),
                                 static_cast<int>(events.size()), 100);
      // Queue-wait attribution starts here: everything a request waits
      // for past this point is this loop's doing, not the kernel's.
      const uint64_t wake_ns = obs_now_ns();
      const bool stopping = stop_.load(std::memory_order_acquire);
      // Adopt connections handed over by the acceptor.
      {
        std::vector<int> fresh;
        {
          std::lock_guard<std::mutex> g(w.inbox_mu);
          fresh.swap(w.inbox);
        }
        for (int fd : fresh) {
          if (stopping) {
            ::close(fd);
            closed_.fetch_add(1, std::memory_order_relaxed);
          } else {
            adopt(fd);
          }
        }
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == w.wake_fd) {
          uint64_t drainv;
          while (::read(w.wake_fd, &drainv, sizeof drainv) > 0) {
          }
          continue;
        }
        Conn* c = static_cast<size_t>(fd) < conns.size()
                      ? conns[static_cast<size_t>(fd)].get()
                      : nullptr;
        if (c == nullptr) continue;
        if ((events[i].events & EPOLLOUT) != 0 && !flush(w, *c, nullptr)) {
          drop(*c);
          continue;
        }
        if ((events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
          if (!service(w, tid, *c, scratch, rq_out, wake_ns)) drop(*c);
        }
      }
      if (stopping) {
        // Drain pass: execute whatever each connection already sent,
        // flush best-effort, then close everything and leave.
        for (auto& cp : conns) {
          if (!cp) continue;
          service(w, tid, *cp, scratch, rq_out, wake_ns);
          for (int spin = 0; spin < 100 && has_pending(*cp); ++spin) {
            if (!flush(w, *cp, nullptr)) break;
            if (has_pending(*cp))
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          closed_.fetch_add(1, std::memory_order_relaxed);
        }
        conns.clear();
        return;
      }
    }
  }

  static bool has_pending(const Conn& c) {
    return c.pending.size() > c.pending_off;
  }

  /// Read to EAGAIN, execute every complete frame, flush. False = close.
  /// `wake_ns` is the epoll wakeup that surfaced this connection (0 when
  /// obs is compiled out) — the zero point for stage attribution.
  bool service(Worker& w, int tid, Conn& c, std::vector<uint8_t>& scratch,
               RangeSnapshot& rq_out, uint64_t wake_ns) {
    bool peer_closed = false;
    char buf[64 * 1024];
    for (;;) {
      const ssize_t r = ::read(c.fd, buf, sizeof buf);
      if (r > 0) {
        c.in.insert(c.in.end(), buf, buf + r);
        w.bytes_in.fetch_add(static_cast<uint64_t>(r),
                              std::memory_order_relaxed);
        continue;
      }
      if (r == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;  // ECONNRESET and friends
    }

    // Execute the wave's whole batch, building responses in scratch.
    scratch.clear();
    size_t off = 0;
    uint64_t executed = 0;
    // Spans sampled this batch, parked until the flush stamps them.
    obs::TraceSpan spans[8];
    int nspans = 0;
    const uint64_t exec_start_ns = obs_now_ns();
    uint64_t prev_ns = exec_start_ns;
    while (!c.closing) {
      FrameView f;
      size_t advance = 0;
      const SplitResult s = split_frame(c.in.data(), c.in.size(), off,
                                        opt_.max_frame, &f, &advance);
      if (s == SplitResult::kNeedMore) break;
      if (s == SplitResult::kOversized || s == SplitResult::kBadLength) {
        encode_status(scratch, s == SplitResult::kOversized
                                   ? Status::kErrTooLarge
                                   : Status::kErrMalformed);
        w.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c.closing = true;  // framing lost; close after the flush
        break;
      }
      execute(w, tid, c, f, scratch, rq_out);
      if constexpr (obs::kEnabled) {
        const uint64_t now_ns = obs_now_ns();
        op_hist(f.op()).record(tid, now_ns - prev_ns);
        if (nspans < 8 && obs::trace_should_sample()) {
          obs::TraceSpan& sp = spans[nspans++];
          sp.op = f.tag;
          sp.worker = w.index;
          sp.shard = span_shard(f);
          sp.queue_ns = clamp32(exec_start_ns - wake_ns);
          sp.exec_ns = clamp32(now_ns - prev_ns);
        }
        prev_ns = now_ns;
      }
      off += advance;
      ++executed;
    }
    if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
    if (executed > 0) {
      w.frames.fetch_add(executed, std::memory_order_relaxed);
      w.batches.fetch_add(1, std::memory_order_relaxed);
    }
    const bool flushed = flush(w, c, &scratch);
    if constexpr (obs::kEnabled) {
      if (executed > 0) {
        const uint64_t end_ns = obs_now_ns();
        stage_hist(0).record(tid, exec_start_ns - wake_ns);
        stage_hist(1).record(tid, prev_ns - exec_start_ns);
        stage_hist(2).record(tid, end_ns - prev_ns);
        for (int i = 0; i < nspans; ++i) {
          spans[i].flush_ns = clamp32(end_ns - prev_ns);
          spans[i].end_ns = end_ns;
          w.trace.push(spans[i]);
        }
      }
    }
    if (!flushed) return false;
    if (c.closing && !has_pending(c)) return false;
    return !peer_closed;
  }

  static uint32_t clamp32(uint64_t ns) {
    return ns > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(ns);
  }

  /// Shard a sampled frame's key routes to (0 when unsharded or keyless).
  uint16_t span_shard(const FrameView& f) const {
    if (!sharded_) return 0;
    switch (f.op()) {
      case Op::kGet:
      case Op::kRemove:
      case Op::kInsert:
      case Op::kRange:
        if (f.body_len >= 8)
          return static_cast<uint16_t>(sharded_->shard_index(get_i64(f.body)));
        return 0;
      default:
        return 0;
    }
  }

  /// Execute one request frame; append the response to `out`.
  void execute(Worker& w, int tid, Conn& c, const FrameView& f,
               std::vector<uint8_t>& out, RangeSnapshot& rq_out) {
    auto err = [&](Status st) {
      encode_status(out, st);
      w.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    };
    switch (f.op()) {
      case Op::kGet: {
        if (f.body_len != 8) return err(Status::kErrMalformed);
        ValT v = 0;
        if (set_->contains(tid, get_i64(f.body), &v))
          encode_val_response(out, v);
        else
          encode_status(out, Status::kNo);
        return;
      }
      case Op::kInsert: {
        if (f.body_len != 16) return err(Status::kErrMalformed);
        encode_status(out, set_->insert(tid, get_i64(f.body),
                                        get_i64(f.body + 8))
                               ? Status::kOk
                               : Status::kNo);
        return;
      }
      case Op::kRemove: {
        if (f.body_len != 8) return err(Status::kErrMalformed);
        encode_status(
            out, set_->remove(tid, get_i64(f.body)) ? Status::kOk
                                                    : Status::kNo);
        return;
      }
      case Op::kRange: {
        if (f.body_len != 16) return err(Status::kErrMalformed);
        set_->range_query(tid, get_i64(f.body), get_i64(f.body + 8), rq_out);
        encode_range_response(out,
                              rq_out.has_timestamp()
                                  ? rq_out.timestamp()
                                  : RangeSnapshot::kNoTimestamp,
                              rq_out.items());
        return;
      }
      case Op::kTxnBegin: {
        if (c.in_txn) return err(Status::kErrTxnState);
        c.in_txn = true;
        c.txn.clear();
        encode_status(out, Status::kOk);
        return;
      }
      case Op::kTxnOp: {
        if (!c.in_txn) return err(Status::kErrTxnState);
        if (f.body_len < 9) return err(Status::kErrMalformed);
        const Op inner = static_cast<Op>(f.body[0]);
        const size_t want = inner == Op::kInsert ? 17 : 9;
        if ((inner != Op::kGet && inner != Op::kInsert &&
             inner != Op::kRemove) ||
            f.body_len != want)
          return err(Status::kErrMalformed);
        if (c.txn.size() >= opt_.max_txn_ops) return err(Status::kErrTxnState);
        c.txn.push_back({inner, get_i64(f.body + 1),
                         inner == Op::kInsert ? get_i64(f.body + 9) : 0});
        encode_status(out, Status::kOk);
        return;
      }
      case Op::kTxnCommit: {
        if (!c.in_txn) return err(Status::kErrTxnState);
        // The batch runs back-to-back under this worker's one session —
        // the wire analogue of db::Txn's "one dense id over every index
        // the transaction touches".
        put_u32(out, static_cast<uint32_t>(1 + 4 + 9 * c.txn.size()));
        out.push_back(static_cast<uint8_t>(Status::kOk));
        put_u32(out, static_cast<uint32_t>(c.txn.size()));
        for (const BufferedOp& op : c.txn) {
          ValT v = 0;
          bool r = false;
          switch (op.op) {
            case Op::kGet: r = set_->contains(tid, op.key, &v); break;
            case Op::kInsert: r = set_->insert(tid, op.key, op.val); break;
            case Op::kRemove: r = set_->remove(tid, op.key); break;
            default: break;
          }
          out.push_back(static_cast<uint8_t>(r ? Status::kOk : Status::kNo));
          put_i64(out, v);
        }
        c.in_txn = false;
        c.txn.clear();
        w.txns_committed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case Op::kTxnAbort: {
        if (!c.in_txn) return err(Status::kErrTxnState);
        c.in_txn = false;
        c.txn.clear();
        w.txns_aborted.fetch_add(1, std::memory_order_relaxed);
        encode_status(out, Status::kOk);
        return;
      }
      case Op::kPing:
        encode_status(out, Status::kOk);
        return;
      case Op::kStats:
        encode_text_response(out, stats_json());
        return;
      case Op::kMetrics:
        encode_text_response(out, obs::registry().prometheus());
        return;
      case Op::kTraceDump: {
        if (f.body_len == 4) {  // set the global sampling rate, ack
          obs::trace_sample_every().store(get_u32(f.body),
                                          std::memory_order_relaxed);
          encode_status(out, Status::kOk);
          return;
        }
        if (f.body_len != 0) return err(Status::kErrMalformed);
        encode_text_response(out, trace_dump_json());
        return;
      }
    }
    err(Status::kErrMalformed);  // unknown opcode; framing is intact
  }

  /// One writev per connection per wave: leftover bytes from an earlier
  /// short write + this wave's scratch. Remainder (if any) is kept in
  /// c.pending and EPOLLOUT armed. False = fatal write error.
  bool flush(Worker& w, Conn& c, std::vector<uint8_t>* scratch) {
    iovec iov[2];
    int iovcnt = 0;
    if (has_pending(c)) {
      iov[iovcnt].iov_base = c.pending.data() + c.pending_off;
      iov[iovcnt].iov_len = c.pending.size() - c.pending_off;
      ++iovcnt;
    }
    if (scratch != nullptr && !scratch->empty()) {
      iov[iovcnt].iov_base = scratch->data();
      iov[iovcnt].iov_len = scratch->size();
      ++iovcnt;
    }
    size_t scratch_sent = scratch != nullptr ? scratch->size() : 0;
    if (iovcnt > 0) {
      const ssize_t sent = ::writev(c.fd, iov, iovcnt);
      if (sent < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          return false;
        scratch_sent = 0;
      } else {
        w.bytes_out.fetch_add(static_cast<uint64_t>(sent),
                              std::memory_order_relaxed);
        size_t s = static_cast<size_t>(sent);
        const size_t pend = c.pending.size() - c.pending_off;
        const size_t from_pending = s < pend ? s : pend;
        c.pending_off += from_pending;
        s -= from_pending;
        scratch_sent = s;  // bytes of scratch that made it out
      }
    }
    if (c.pending_off >= c.pending.size()) {
      c.pending.clear();
      c.pending_off = 0;
    }
    if (scratch != nullptr && scratch_sent < scratch->size())
      c.pending.insert(c.pending.end(), scratch->begin() + scratch_sent,
                       scratch->end());
    const bool want_out = has_pending(c);
    if (want_out != c.epollout) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP |
                  (want_out ? EPOLLOUT : 0u);
      ev.data.fd = c.fd;
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
      c.epollout = want_out;
    }
    return true;
  }

  ServerOptions opt_;
  std::unique_ptr<AnyOrderedSet> plain_;
  std::unique_ptr<ShardedSet> sharded_;
  AnyOrderedSet* set_ = nullptr;
  std::unique_ptr<MaintenanceService> maint_;

  mutable std::mutex lifecycle_mu_;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  // Registered by start() after workers_ is built, removed by stop()
  // before it is torn down (their callbacks iterate workers_ unlocked).
  obs::GaugeSet::Source obs_srcs_[kServerSeries];
};

}  // namespace bref::net
