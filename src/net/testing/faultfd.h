#pragma once
// Deterministic fault injection for the wire path's syscalls.
//
// The server and client never call recv/send/writev/accept4 directly;
// they go through the thin wrappers in bref::net::fault below. With no
// injector installed (the default, and the only state production code
// ever sees) each wrapper is a branch on a relaxed atomic load and the
// real syscall — nothing else. Tests install a seeded FaultInjector via
// FaultScope, and every wrapped call then rolls against the plan's
// per-mille probabilities to inject, deterministically from the seed and
// a global call sequence:
//
//   * EINTR        — fail before any I/O (the retry loops' diet)
//   * short I/O    — perform the real transfer, but truncated to a
//                    random 1..7 bytes (recv/send; writev degrades to a
//                    short send of its first iovec's prefix)
//   * ECONNRESET   — fail as if the peer vanished mid-stream
//   * EMFILE       — accept4 only: the fd table is "full"
//
// "Deterministic" means: a fixed seed fixes the decision sequence. Under
// multiple threads the interleaving of rolls still varies run to run, so
// chaos tests assert properties (linearizable survivors, clean errors,
// bounded time), not exact fault placements.
//
// Lossy vs lossless faults: EINTR, short I/O and EMFILE never lose
// bytes — a workload under them must complete with unchanged semantics,
// so its RANGEs can feed the linearizability checker. ECONNRESET makes
// op outcomes unknowable (the op may or may not have executed), so
// reset-injecting tests assert survival and clean client errors only.

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>

#include <atomic>
#include <cerrno>
#include <cstdint>

namespace bref::net::testing {

struct FaultPlan {
  uint64_t seed = 1;
  // Injection probabilities in per-mille (0..1000) of wrapped calls.
  uint32_t eintr_permille = 0;     // recv/send/writev
  uint32_t short_io_permille = 0;  // recv/send/writev
  uint32_t reset_permille = 0;     // recv/send/writev
  uint32_t emfile_permille = 0;    // accept4
};

class FaultInjector {
 public:
  enum class Action : uint8_t { kNone, kEintr, kShort, kReset };

  explicit FaultInjector(const FaultPlan& p) noexcept : plan_(p) {}

  Action decide_io(int fd) noexcept {
    uint64_t x = roll(fd) % 1000;
    if (x < plan_.eintr_permille) return count(eintr_), Action::kEintr;
    x -= plan_.eintr_permille;
    if (x < plan_.short_io_permille) return count(short_io_), Action::kShort;
    x -= plan_.short_io_permille;
    if (x < plan_.reset_permille) return count(resets_), Action::kReset;
    return Action::kNone;
  }

  bool decide_emfile(int fd) noexcept {
    if (roll(fd) % 1000 >= plan_.emfile_permille) return false;
    count(emfiles_);
    return true;
  }

  /// Truncated transfer size for a short-I/O fault: 1..min(n, 7).
  size_t short_len(int fd, size_t n) noexcept {
    const size_t cap = n < 7 ? n : 7;
    return cap <= 1 ? 1 : 1 + roll(fd) % cap;
  }

  uint64_t injected() const noexcept {
    return eintr_.load(std::memory_order_relaxed) +
           short_io_.load(std::memory_order_relaxed) +
           resets_.load(std::memory_order_relaxed) +
           emfiles_.load(std::memory_order_relaxed);
  }
  uint64_t eintr_injected() const noexcept {
    return eintr_.load(std::memory_order_relaxed);
  }
  uint64_t short_io_injected() const noexcept {
    return short_io_.load(std::memory_order_relaxed);
  }
  uint64_t resets_injected() const noexcept {
    return resets_.load(std::memory_order_relaxed);
  }
  uint64_t emfiles_injected() const noexcept {
    return emfiles_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t roll(int fd) noexcept {  // splitmix64 over seed ^ fd ^ sequence
    const uint64_t n = seq_.fetch_add(1, std::memory_order_relaxed);
    uint64_t z = plan_.seed ^ (static_cast<uint64_t>(fd) << 40) ^
                 (n * 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static void count(std::atomic<uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  const FaultPlan plan_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> eintr_{0}, short_io_{0}, resets_{0}, emfiles_{0};
};

/// The process-global injector slot the wrappers consult. Null (the
/// default) = passthrough.
inline std::atomic<FaultInjector*>& injector_slot() noexcept {
  static std::atomic<FaultInjector*> g{nullptr};
  return g;
}

/// RAII install/uninstall. One scope at a time; nesting replaces (tests
/// run scopes sequentially). Uninstall happens before the injector is
/// destroyed, so in-flight wrapped calls racing the destructor are the
/// test's responsibility — quiesce (stop servers/clients) before the
/// scope ends, or leak the scope past them.
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& p) : inj_(p) {
    injector_slot().store(&inj_, std::memory_order_release);
  }
  ~FaultScope() { injector_slot().store(nullptr, std::memory_order_release); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultInjector& injector() noexcept { return inj_; }

 private:
  FaultInjector inj_;
};

}  // namespace bref::net::testing

namespace bref::net::fault {

/// recv(2), possibly faulted. Socket-only (short faults re-issue recv).
inline ssize_t recv(int fd, void* buf, size_t n, int flags) noexcept {
  auto* inj = testing::injector_slot().load(std::memory_order_acquire);
  if (inj != nullptr && n > 0) {
    switch (inj->decide_io(fd)) {
      case testing::FaultInjector::Action::kEintr:
        errno = EINTR;
        return -1;
      case testing::FaultInjector::Action::kReset:
        errno = ECONNRESET;
        return -1;
      case testing::FaultInjector::Action::kShort:
        n = inj->short_len(fd, n);
        break;
      case testing::FaultInjector::Action::kNone:
        break;
    }
  }
  return ::recv(fd, buf, n, flags);
}

/// send(2), possibly faulted.
inline ssize_t send(int fd, const void* buf, size_t n, int flags) noexcept {
  auto* inj = testing::injector_slot().load(std::memory_order_acquire);
  if (inj != nullptr && n > 0) {
    switch (inj->decide_io(fd)) {
      case testing::FaultInjector::Action::kEintr:
        errno = EINTR;
        return -1;
      case testing::FaultInjector::Action::kReset:
        errno = ECONNRESET;
        return -1;
      case testing::FaultInjector::Action::kShort:
        n = inj->short_len(fd, n);
        break;
      case testing::FaultInjector::Action::kNone:
        break;
    }
  }
  return ::send(fd, buf, n, flags);
}

/// writev(2) via sendmsg(MSG_NOSIGNAL), possibly faulted. A short fault
/// degrades to a short send of the first iovec's prefix — semantically a
/// legal short writev. MSG_NOSIGNAL matters: a peer that disappears with
/// bytes in flight must surface as EPIPE, not a process-killing SIGPIPE
/// (plain writev has no per-call way to suppress it).
inline ssize_t writev(int fd, const struct iovec* iov, int iovcnt) noexcept {
  auto* inj = testing::injector_slot().load(std::memory_order_acquire);
  if (inj != nullptr && iovcnt > 0 && iov[0].iov_len > 0) {
    switch (inj->decide_io(fd)) {
      case testing::FaultInjector::Action::kEintr:
        errno = EINTR;
        return -1;
      case testing::FaultInjector::Action::kReset:
        errno = ECONNRESET;
        return -1;
      case testing::FaultInjector::Action::kShort:
        return ::send(fd, iov[0].iov_base,
                      inj->short_len(fd, iov[0].iov_len), MSG_NOSIGNAL);
      case testing::FaultInjector::Action::kNone:
        break;
    }
  }
  msghdr mh{};
  mh.msg_iov = const_cast<struct iovec*>(iov);
  mh.msg_iovlen = static_cast<size_t>(iovcnt);
  return ::sendmsg(fd, &mh, MSG_NOSIGNAL);
}

/// accept4(2), possibly answering EMFILE without accepting.
inline int accept4(int fd, struct sockaddr* addr, socklen_t* len,
                   int flags) noexcept {
  auto* inj = testing::injector_slot().load(std::memory_order_acquire);
  if (inj != nullptr && inj->decide_emfile(fd)) {
    errno = EMFILE;
    return -1;
  }
  return ::accept4(fd, addr, len, flags);
}

}  // namespace bref::net::fault
