#pragma once
// bref::net guard layer — overload protection and graceful degradation
// for the wire path (server.h). Three mechanisms, one policy surface
// (GuardOptions):
//
//   * Cooperative scan chunking. A RANGE wider than `scan_chunk_keys`
//     would monopolize its worker's epoll wave; instead the worker takes
//     the snapshot ONCE (SnapshotScan pins + announces every overlapping
//     shard, reads the shared clock once, publishes — exactly
//     ShardedSet::coordinated_collect's protocol) and then collects the
//     interval in bounded key-budget slices, one slice per wave, behind
//     the wave's point ops. `range_query_at` is restart-free against a
//     held announce+pin, so slicing never re-reads the clock: the reply
//     is still one linearization point (DESIGN.md §8).
//
//   * Admission control. Each wave gets a frame + response-byte budget
//     (WaveBudget); frames past it are answered kErrOverloaded with a
//     retry-after hint instead of executed — shedding keeps the p99 of
//     *accepted* ops flat while excess load is pushed back to clients.
//
//   * Timeouts. A TimerWheel drives idle-connection reaping and
//     write-stall deadlines; per-connection pending-write caps disconnect
//     unrecoverably slow readers before they OOM the server.
//
// This header owns the policy types, the wheel, the chunked-scan state
// machine, and the guard metric series; server.h wires them into the
// worker loops.

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/set_interface.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_set.h"

namespace bref::net {

/// Steady-clock milliseconds (unconditional — guard deadlines exist with
/// or without the obs layer).
inline uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct GuardOptions {
  /// A RANGE spanning more than this many keys runs as a cooperative
  /// chunked scan (one slice of this many keys per epoll wave). 0
  /// disables chunking entirely.
  size_t scan_chunk_keys = 4096;
  /// Admission control: request frames executed per worker per epoll
  /// wave; the excess is answered kErrOverloaded. 0 = unlimited.
  uint32_t max_wave_frames = 4096;
  /// Admission control: response bytes built per worker per wave before
  /// further frames are shed. 0 = unlimited.
  size_t max_wave_bytes = 8u << 20;
  /// Retry-after hint (ms) carried in kErrOverloaded replies.
  uint32_t retry_after_ms = 2;
  /// Disconnect a connection whose unflushed response backlog exceeds
  /// this many bytes (an unrecoverably slow reader). Must exceed the
  /// largest expected single response. 0 = unlimited.
  size_t max_conn_pending = 8u << 20;
  /// Reap connections idle (no bytes read) this long. 0 disables.
  uint32_t idle_timeout_ms = 60'000;
  /// Disconnect when pending response bytes have been stuck unflushed
  /// this long. 0 disables.
  uint32_t write_stall_ms = 5'000;
  /// stop(): flush pending responses for at most this long, then count
  /// the stragglers in bref_net_stop_dropped and close.
  uint32_t drain_deadline_ms = 1'000;
};

/// One epoll wave's admission budget. Decremented per executed frame /
/// per response byte built; a frame arriving after exhaustion is shed.
struct WaveBudget {
  uint32_t frames = 0;  // 0 = exhausted (when limited)
  size_t bytes = 0;
  bool frames_limited = false;
  bool bytes_limited = false;
  bool exhausted = false;  // at least one frame was shed this wave

  static WaveBudget of(const GuardOptions& g) {
    WaveBudget b;
    b.frames = g.max_wave_frames;
    b.bytes = g.max_wave_bytes;
    b.frames_limited = g.max_wave_frames > 0;
    b.bytes_limited = g.max_wave_bytes > 0;
    return b;
  }
  bool spent() const noexcept {
    return (frames_limited && frames == 0) || (bytes_limited && bytes == 0);
  }
  void charge_frame() noexcept {
    if (frames_limited && frames > 0) --frames;
  }
  void charge_bytes(size_t n) noexcept {
    if (bytes_limited) bytes = n >= bytes ? 0 : bytes - n;
  }
};

/// A hashed timer wheel for connection deadlines (idle reaping, write
/// stalls). Entries are (fd, generation, kind); the generation lets the
/// owner ignore stale timers after an fd is closed and reused. Firing is
/// *lazy revalidation*: the wheel only says "this deadline elapsed" —
/// the callback re-checks real activity and re-arms when the connection
/// was merely slow, so one schedule per state transition suffices.
/// Single-threaded (one wheel per worker loop). Resolution is
/// `granularity_ms` plus however long the loop's epoll_wait slept.
class TimerWheel {
 public:
  enum class Kind : uint8_t { kIdle, kWriteStall };

  explicit TimerWheel(uint32_t granularity_ms = 100, size_t slots = 128)
      : granularity_(granularity_ms == 0 ? 1 : granularity_ms),
        buckets_(slots == 0 ? 1 : slots) {}

  void schedule(uint64_t now_ms, uint64_t delay_ms, int fd, uint32_t gen,
                Kind kind) {
    if (cursor_ == 0) cursor_ = now_ms / granularity_;  // anchor lazily
    uint64_t tick = (now_ms + delay_ms) / granularity_ + 1;
    if (tick <= cursor_) tick = cursor_ + 1;
    buckets_[tick % buckets_.size()].push_back(
        {now_ms + delay_ms, fd, gen, kind});
    ++size_;
  }

  /// Fire every entry whose deadline elapsed: fire(fd, gen, kind).
  /// Entries further than one revolution out are re-bucketed, not fired.
  template <typename Fn>
  void advance(uint64_t now_ms, Fn&& fire) {
    const uint64_t target = now_ms / granularity_;
    if (cursor_ == 0 || size_ == 0 || target <= cursor_) {
      if (cursor_ < target) cursor_ = target;
      return;
    }
    uint64_t steps = target - cursor_;
    if (steps > buckets_.size()) steps = buckets_.size();
    for (uint64_t s = 0; s < steps; ++s) {
      ++cursor_;
      auto& b = buckets_[cursor_ % buckets_.size()];
      if (b.empty()) continue;
      scratch_.swap(b);
      for (const Entry& e : scratch_) {
        --size_;
        if (e.due_ms > now_ms)  // lapped or early bucket: not due yet
          schedule(now_ms, e.due_ms - now_ms, e.fd, e.gen, e.kind);
        else
          fire(e.fd, e.gen, e.kind);
      }
      scratch_.clear();
    }
    cursor_ = target;  // every bucket was visited at most once; jump
  }

  size_t size() const noexcept { return size_; }

 private:
  struct Entry {
    uint64_t due_ms;
    int fd;
    uint32_t gen;
    Kind kind;
  };

  const uint64_t granularity_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> scratch_;
  uint64_t cursor_ = 0;  // last processed tick; 0 = not yet anchored
  size_t size_ = 0;
};

/// A coordinated snapshot scan, sliceable into bounded chunks.
///
/// Construction replicates ShardedSet::coordinated_collect's ordering:
/// every part's epoch pin AND tracker announce precede the ONE shared
/// clock read, then the timestamp is published to every part. From then
/// on `range_query_at(ts)` is restart-free against the held announce+pin
/// — so step() may collect the interval in as many slices as it likes,
/// interleaved with anything else, and the result is still the set's
/// state at exactly `ts`: one linearization point, one clock read.
///
/// IMPORTANT: the pins are EBR pins on `tid`, and Ebr::pin/unpin is not
/// reentrant per tid — the owner must not run other set operations under
/// `tid` while a SnapshotScan is alive (server workers dedicate a second
/// session id to scans for exactly this reason).
class SnapshotScan {
 public:
  SnapshotScan(std::vector<ShardedSet::ScanPart> parts,
               GlobalTimestamp& clock, int tid, KeyT lo, KeyT hi)
      : parts_(std::move(parts)), tid_(tid), pos_(lo), hi_(hi) {
    // Same fan-out span the inline coordinated path stamps: the active
    // request trace (if any) sees pin+announce through publish as one
    // kShardPin span with the part count.
    obs::TraceScratch* const tr = obs::current_trace();
    const uint64_t pin_t0 = tr != nullptr ? obs::trace_now_ns() : 0;
    for (auto& p : parts_) {
      p.set->rq_pin(tid_);
      p.tracker->announce_pending(tid_);
    }
    ts_ = clock.read();  // the ONE timestamp acquisition
    for (auto& p : parts_) p.tracker->publish(tid_, ts_);
    if (tr != nullptr)
      tr->stamp(obs::TraceStage::kShardPin, pin_t0, obs::trace_now_ns(), 0,
                static_cast<uint16_t>(parts_.size()));
  }
  ~SnapshotScan() { finish(); }
  SnapshotScan(const SnapshotScan&) = delete;
  SnapshotScan& operator=(const SnapshotScan&) = delete;

  /// Collect the next slice of at most `chunk_keys` keys (0 = the whole
  /// remaining interval) into items(). Returns true when [lo, hi] is
  /// fully collected — the announces and pins are released at that
  /// point; items() stays valid.
  bool step(size_t chunk_keys) {
    if (done_) return true;
    ++slices_;
    KeyT slice_hi = hi_;
    const uint64_t remaining = biased(hi_) - biased(pos_);  // = width - 1
    if (chunk_keys > 0 && remaining >= chunk_keys)
      slice_hi = unbias(biased(pos_) + chunk_keys - 1);
    obs::TraceScratch* const tr = obs::current_trace();
    for (auto& p : parts_)
      if (p.lo <= slice_hi && p.hi >= pos_) {
        const uint64_t c0 = tr != nullptr ? obs::trace_now_ns() : 0;
        p.set->range_query_at(tid_, ts_, pos_ < p.lo ? p.lo : pos_,
                              slice_hi > p.hi ? p.hi : slice_hi, items_);
        // Coalesced: a long chunked scan touches parts slice after slice;
        // one growing span (aux16 = merged collects) instead of one span
        // per part per slice, which would exhaust kTraceMaxSpans.
        if (tr != nullptr)
          tr->stamp_coalesce(obs::TraceStage::kShardCollect, c0,
                             obs::trace_now_ns());
      }
    if (slice_hi >= hi_) {
      finish();
      return true;
    }
    pos_ = slice_hi + 1;
    return false;
  }

  /// Release announces and pins early (abandoned scan). Idempotent.
  void finish() {
    if (done_) return;
    done_ = true;
    for (auto& p : parts_) {
      p.tracker->end(tid_);
      p.set->rq_unpin(tid_);
    }
  }

  timestamp_t ts() const noexcept { return ts_; }
  uint32_t slices() const noexcept { return slices_; }
  bool done() const noexcept { return done_; }
  std::vector<std::pair<KeyT, ValT>>& items() noexcept { return items_; }

 private:
  static uint64_t biased(KeyT k) noexcept {
    return static_cast<uint64_t>(k) ^ (uint64_t{1} << 63);
  }
  static KeyT unbias(uint64_t b) noexcept {
    return static_cast<KeyT>(b ^ (uint64_t{1} << 63));
  }

  std::vector<ShardedSet::ScanPart> parts_;
  std::vector<std::pair<KeyT, ValT>> items_;
  const int tid_;
  KeyT pos_;
  const KeyT hi_;
  timestamp_t ts_ = 0;
  uint32_t slices_ = 0;
  bool done_ = false;
};

/// Guard-layer series aggregated over live Server instances (same RAII
/// pattern as server_series in server.h). Index order matches
/// Server::register_obs().
inline obs::GaugeSet& guard_series(size_t i) {
  using GS = obs::GaugeSet;
  using MK = obs::MetricKind;
  static auto* v = [] {
    auto* u = new std::vector<GS*>();
    auto add = [&](GS::Agg a, const char* n, const char* h, const char* l,
                   MK k) { u->push_back(new GS(a, n, h, l, k)); };
    add(GS::Agg::kSum, "bref_net_shed_total",
        "Request frames answered kErrOverloaded by admission control", "",
        MK::kCounter);
    add(GS::Agg::kSum, "bref_net_chunked_total",
        "RANGE queries executed as cooperative chunked scans", "",
        MK::kCounter);
    add(GS::Agg::kSum, "bref_net_scan_slices_total",
        "Chunk slices executed across all chunked scans", "", MK::kCounter);
    add(GS::Agg::kSum, "bref_net_reaped_total",
        "Connections closed by the guard layer", "reason=\"idle\"",
        MK::kCounter);
    add(GS::Agg::kSum, "bref_net_reaped_total",
        "Connections closed by the guard layer", "reason=\"write_stall\"",
        MK::kCounter);
    add(GS::Agg::kSum, "bref_net_reaped_total",
        "Connections closed by the guard layer", "reason=\"slow_reader\"",
        MK::kCounter);
    add(GS::Agg::kSum, "bref_net_stop_dropped_total",
        "Connections closed at stop() with undelivered response bytes", "",
        MK::kCounter);
    add(GS::Agg::kSum, "bref_net_overloaded",
        "Worker loops currently shedding (admission budget exhausted)", "",
        MK::kGauge);
    return u;
  }();
  return *(*v)[i];
}
inline constexpr size_t kGuardSeries = 8;

}  // namespace bref::net
