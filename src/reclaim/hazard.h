#pragma once
// Hazard pointers (Michael, TPDS'04) — the classic pointer-based safe
// memory reclamation scheme, implemented as a standalone substrate.
//
// The paper (Section 7 / supplementary B) chooses DEBRA-style EBR over
// hazard pointers because a range query must keep an unbounded set of
// nodes (its whole snapshot path) alive, which pointer-based schemes
// cannot express with a fixed number of slots, and because per-hop
// protect() fences cost more than an epoch pin (citing [10]). This module
// exists to back that design choice with measurements
// (bench/micro_reclaim) and to document the API mismatch: protect() is a
// per-pointer operation, EBR's Guard is a per-operation one.
//
// Usage:
//   HazardPointers<Node, 2> hp;            // 2 slots per thread
//   Node* n = hp.protect(tid, 0, src);     // validated acquire of src
//   ... use n ...
//   hp.clear(tid);                         // drop all slots
//   hp.retire(tid, victim);                // deferred delete
//
// retire() scans all threads' slots once the local retire list exceeds a
// threshold proportional to the total slot count, freeing every node no
// slot protects. Amortized O(1) per retire; a protected node is never
// freed (validated by tests/test_reclaim_hazard.cpp).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "common/cacheline.h"
#include "common/thread_registry.h"

namespace bref {

template <typename T, int kSlotsPerThread = 2>
class HazardPointers {
 public:
  HazardPointers() = default;
  HazardPointers(const HazardPointers&) = delete;
  HazardPointers& operator=(const HazardPointers&) = delete;

  ~HazardPointers() {
    // Quiescent teardown: free everything still parked.
    for (auto& shard : retired_)
      for (T* p : shard.value) delete p;
  }

  /// Publish slot `idx` as protecting the current value of `src`,
  /// re-validating until the announcement is visible before the pointer
  /// could have been retired (the standard protect loop).
  T* protect(int tid, int idx, const std::atomic<T*>& src) {
    hwm_.note(tid);
    std::atomic<T*>& slot = slots_[tid].value.hp[idx];
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      slot.store(p, std::memory_order_seq_cst);
      T* again = src.load(std::memory_order_acquire);
      if (again == p) return p;
      p = again;
    }
  }

  /// Protect a pointer already read by the caller, who must re-validate
  /// its source afterwards (raw variant for hand-over-hand traversals).
  void announce(int tid, int idx, T* p) {
    hwm_.note(tid);
    slots_[tid].value.hp[idx].store(p, std::memory_order_seq_cst);
  }

  void clear_slot(int tid, int idx) {
    slots_[tid].value.hp[idx].store(nullptr, std::memory_order_release);
  }

  void clear(int tid) {
    for (auto& s : slots_[tid].value.hp)
      s.store(nullptr, std::memory_order_release);
  }

  /// Defer deletion of `p` until no slot protects it.
  void retire(int tid, T* p) {
    hwm_.note(tid);
    auto& bag = retired_[tid].value;
    bag.push_back(p);
    if (bag.size() >= scan_threshold()) scan(tid);
  }

  /// Free every retired node not currently protected. Normally triggered
  /// by retire(); public for tests and quiescent flushes.
  void scan(int tid) {
    const int n = hwm_.get();
    std::vector<T*> live;
    live.reserve(static_cast<size_t>(n) * kSlotsPerThread);
    for (int t = 0; t < n; ++t)
      for (const auto& s : slots_[t].value.hp) {
        T* p = s.load(std::memory_order_seq_cst);
        if (p != nullptr) live.push_back(p);
      }
    std::sort(live.begin(), live.end());
    auto& bag = retired_[tid].value;
    size_t kept = 0;
    for (T* p : bag) {
      if (std::binary_search(live.begin(), live.end(), p)) {
        bag[kept++] = p;  // still hazardous; keep parked
      } else {
        delete p;
        ++freed_[tid].value;
      }
    }
    bag.resize(kept);
  }

  // -- introspection (tests, benches) ------------------------------------
  size_t retired_count(int tid) const { return retired_[tid].value.size(); }
  uint64_t freed_count() const {
    uint64_t n = 0;
    for (const auto& f : freed_) n += f.value;
    return n;
  }
  size_t scan_threshold() const {
    // R = 2 * H, the usual amortization constant (H = total slots).
    return 2 * static_cast<size_t>(std::max(hwm_.get(), 1)) *
           kSlotsPerThread;
  }

 private:
  struct Slots {
    std::atomic<T*> hp[kSlotsPerThread] = {};
  };
  TidHwm hwm_;
  CachePadded<Slots> slots_[kMaxThreads];
  CachePadded<std::vector<T*>> retired_[kMaxThreads];
  CachePadded<uint64_t> freed_[kMaxThreads] = {};
};

}  // namespace bref
