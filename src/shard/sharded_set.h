#pragma once
// bref::ShardedSet — range-partitioned shards with single-timestamp
// cross-shard linearizable range queries.
//
// The bundled-references insight — fix ONE global timestamp, then traverse
// every bundle at it — is not tied to a single structure. Any number of
// instances whose updates are ordered by the SAME seq_cst clock can serve
// one coordinated range query that is linearizable at a single instant:
//
//   1. announce PENDING in every overlapping shard's RqTracker;
//   2. read the shared clock ONCE — this value T is the linearization
//      instant, and the read is the query's linearization point;
//   3. publish T in every tracker, then collect each shard's range at T
//      via its bundle walk (range_query_at).
//
// Why one fetch-free clock read linearizes K shards: every update in every
// shard increments the one shared counter at its linearization point
// (GlobalTimestamp::share_with redirects each shard's clock onto the
// coordinator's), so "state at clock value T" is a well-defined global
// instant. Each shard's bundle traversal at T returns exactly that shard's
// state at T (the paper's single-structure guarantee, whose seq_cst
// clock-ordering argument only needs the counter to be shared); the
// concatenation is therefore the whole set's state at T. Per-shard cleaner
// safety is begin()'s argument, run per tracker: a cleaner pass that
// missed our PENDING announce read its prune bound from the clock before
// we read T, so it pruned only entries no query at >= T can need.
//
// When the inner technique cannot coordinate (no shareable clock / no
// fixed-timestamp collection — anything without the coordinated_rq
// capability), multi-shard queries degrade gracefully to a per-shard merge:
// each shard's own linearizable snapshot, concatenated. That result is NOT
// a single-instant snapshot, so it carries no timestamp and the sharded
// set does not advertise linearizable_rq / rq_timestamp / coordinated_rq.
//
// Point operations route to the owning shard (single-shard fast path), as
// do range queries whose bounds fall inside one shard — those delegate the
// whole query, snapshot stamp included (coordinated family only; fallback
// families' per-shard clocks are not mutually comparable, so their stamps
// are stripped to match the advertised capability).
//
// ShardedSet implements AnyOrderedSet, so it sits behind the bref::Set
// facade, RAII sessions and SessionPool unchanged; builtin_shards.h
// registers the coordinated Sharded-Bundle-* configurations in the
// ImplRegistry. Background work (bundle pruning, limbo drain, epoch
// pushes) is owned by the per-shard MaintenanceService in maintenance.h.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "api/set_interface.h"
#include "common/cacheline.h"
#include "common/numa.h"
#include "common/thread_registry.h"
#include "core/entry_pool.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bref {

/// Construction options for a ShardedSet. The keyspace [key_lo, key_hi] is
/// split into `shards` uniform ranges; the first and last shard absorb
/// anything outside the bounds, so routing is total over KeyT.
struct ShardOptions {
  size_t shards = 4;
  KeyT key_lo = std::numeric_limits<KeyT>::min();
  KeyT key_hi = std::numeric_limits<KeyT>::max();
  /// Forwarded to every inner set (validated against the inner
  /// implementation's capabilities by the registry).
  SetOptions inner;
};

/// Range-query routing counters, as returned by ShardedSet::stats().
/// Safe to read concurrently with operations (the per-thread slots are
/// relaxed atomics); the aggregate is approximate under concurrency.
struct ShardedSetStats {
  uint64_t single_shard_rqs = 0;   // delegated whole to one shard
  uint64_t coordinated_rqs = 0;    // multi-shard, one shared timestamp
  uint64_t fallback_rqs = 0;       // multi-shard, per-shard merge
  uint64_t timestamps_acquired = 0;  // shared-clock reads by coordinated RQs
  /// Epoch pins + PENDING announces taken by coordinated RQs — exactly the
  /// shards each query's span overlaps, never all of them. The elision
  /// invariant is `coordinated_shards_pinned <= coordinated_rqs * nshards`
  /// with equality only for whole-keyspace scans; single-shard queries
  /// contribute ZERO (they devolve to the unsharded fast path).
  uint64_t coordinated_shards_pinned = 0;

  ShardedSetStats& operator+=(const ShardedSetStats& o) {
    single_shard_rqs += o.single_shard_rqs;
    coordinated_rqs += o.coordinated_rqs;
    fallback_rqs += o.fallback_rqs;
    timestamps_acquired += o.timestamps_acquired;
    coordinated_shards_pinned += o.coordinated_shards_pinned;
    return *this;
  }
};

/// Cross-instance routing counters (obs, shard layer), summed over live
/// ShardedSets. Registered as counter-kind callbacks: the per-thread
/// StatSlots stay the source of truth, obs only reads stats().
inline obs::GaugeSet& sharded_routing_counter(int which) {
  static auto* single = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_shard_rqs_total",
      "Range queries by routing decision", "route=\"single\"",
      obs::MetricKind::kCounter);
  static auto* coord = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_shard_rqs_total",
      "Range queries by routing decision", "route=\"coordinated\"",
      obs::MetricKind::kCounter);
  static auto* fallback = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_shard_rqs_total",
      "Range queries by routing decision", "route=\"fallback\"",
      obs::MetricKind::kCounter);
  static auto* stamps = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_shard_timestamps_acquired_total",
      "Shared-clock reads by coordinated cross-shard range queries", "",
      obs::MetricKind::kCounter);
  switch (which) {
    case 0: return *single;
    case 1: return *coord;
    case 2: return *fallback;
    default: return *stamps;
  }
}

class ShardedSet final : public AnyOrderedSet {
 public:
  /// Build `opt.shards` inner sets of the registry implementation
  /// `inner_name` (e.g. "Bundle-skiplist"). Throws what the registry
  /// throws for unknown names / unsupported inner options. When every
  /// shard is coordinated_rq-capable, their clocks are redirected onto
  /// this set's coordination clock and cross-shard queries run the
  /// single-timestamp protocol.
  explicit ShardedSet(const std::string& inner_name,
                      const ShardOptions& opt = {})
      : inner_name_(inner_name),
        nshards_(opt.shards == 0 ? 1 : opt.shards),
        lo_b_(biased(opt.key_lo)),
        width_(std::max<uint64_t>(
            (biased(opt.key_hi) - biased(opt.key_lo)) / nshards_, 1)) {
    ImplDescriptor desc;
    if (!ImplRegistry::instance().find(inner_name, &desc))
      throw std::invalid_argument("unknown ordered-set implementation: " +
                                  inner_name);
    inner_caps_ = desc.caps;
    shards_.reserve(nshards_);
    for (size_t i = 0; i < nshards_; ++i)
      shards_.push_back(ImplRegistry::instance().create(inner_name, opt.inner));
    coordinated_ = inner_caps_.coordinated_rq;
    trackers_.resize(nshards_, nullptr);
    if (coordinated_) {
      for (size_t i = 0; i < nshards_; ++i) {
        const bool adopted = shards_[i]->adopt_clock(gts_);
        trackers_[i] = shards_[i]->rq_tracker_hook();
        coordinated_ = coordinated_ && adopted && trackers_[i] != nullptr;
      }
    }
    pools_.reserve(nshards_);
    for (size_t i = 0; i < nshards_; ++i)
      pools_.emplace_back(std::make_unique<SessionPool>(*shards_[i]));
    // One entry-pool arena per shard index, find-or-create by name so
    // every ShardedSet in the process shares "shard<i>" (arenas, like the
    // pools underneath, are process-lifetime). On multi-node machines the
    // arenas round-robin the nodes so a shard's slabs stay on one socket.
    arena_ids_.resize(nshards_, 0);
    const int nodes = numa_node_count();
    for (size_t i = 0; i < nshards_; ++i)
      arena_ids_[i] = ArenaRegistry::instance().acquire(
          "shard" + std::to_string(i),
          nodes > 1 ? static_cast<int>(i % static_cast<size_t>(nodes)) : -1);
    obs_srcs_[0] = sharded_routing_counter(0).add(
        [this] { return static_cast<double>(stats().single_shard_rqs); });
    obs_srcs_[1] = sharded_routing_counter(1).add(
        [this] { return static_cast<double>(stats().coordinated_rqs); });
    obs_srcs_[2] = sharded_routing_counter(2).add(
        [this] { return static_cast<double>(stats().fallback_rqs); });
    obs_srcs_[3] = sharded_routing_counter(3).add(
        [this] { return static_cast<double>(stats().timestamps_acquired); });
  }

  // -- point operations: single-shard fast path ---------------------------
  // Updates run under the owning shard's arena scope, so every entry/node
  // they allocate comes from (and recycles to) that shard's slabs.
  // contains() allocates nothing and skips the scope.
  bool insert(int tid, KeyT key, ValT val) override {
    const size_t s = shard_index(key);
    ArenaScope arena(arena_ids_[s]);
    return shards_[s]->insert(tid, key, val);
  }
  bool remove(int tid, KeyT key) override {
    const size_t s = shard_index(key);
    ArenaScope arena(arena_ids_[s]);
    return shards_[s]->remove(tid, key);
  }
  bool contains(int tid, KeyT key, ValT* out) override {
    return shards_[shard_index(key)]->contains(tid, key, out);
  }

  // -- range queries ------------------------------------------------------
  size_t range_query(int tid, KeyT lo, KeyT hi,
                     std::vector<std::pair<KeyT, ValT>>& out) override {
    out.clear();
    if (lo > hi) return 0;
    const size_t a = shard_index(lo);
    const size_t b = shard_index(hi);
    if (a == b) {
      bump(stats_[tid]->single_shard_rqs);
      return shards_[a]->range_query(tid, lo, hi, out);
    }
    if (coordinated_) {
      coordinated_collect(tid, a, b, lo, hi, out);
    } else {
      fallback_collect(tid, a, b, lo, hi, out);
    }
    return out.size();
  }

  /// Snapshot form: a coordinated multi-shard result is stamped with the
  /// single shared timestamp it linearized at; a single-shard query
  /// delegates (stamp included only when this set advertises
  /// rq_timestamp); a fallback merge is never stamped.
  size_t range_query(int tid, KeyT lo, KeyT hi, RangeSnapshot& out) override {
    out.reset(lo, hi);
    if (lo > hi) {
      // Trivially empty: linearizes anywhere, so stamp "now" off the
      // shared clock when we have one.
      if (coordinated_) out.set_timestamp(gts_.read());
      return 0;
    }
    const size_t a = shard_index(lo);
    const size_t b = shard_index(hi);
    if (a == b) {
      bump(stats_[tid]->single_shard_rqs);
      const size_t n = shards_[a]->range_query(tid, lo, hi, out);
      // A non-coordinated family stamps from its per-shard clock; those
      // values are not comparable across shards, so honor the advertised
      // capability and strip them.
      if (!coordinated_) out.set_timestamp(RangeSnapshot::kNoTimestamp);
      return n;
    }
    if (coordinated_) {
      out.set_timestamp(coordinated_collect(tid, a, b, lo, hi, out.buffer()));
    } else {
      fallback_collect(tid, a, b, lo, hi, out.buffer());
    }
    return out.size();
  }

  // -- quiescent introspection --------------------------------------------
  std::vector<std::pair<KeyT, ValT>> to_vector() const override {
    std::vector<std::pair<KeyT, ValT>> v;
    for (const auto& s : shards_) {
      auto part = s->to_vector();
      v.insert(v.end(), part.begin(), part.end());
    }
    return v;
  }
  size_t size_slow() const override {
    size_t n = 0;
    for (const auto& s : shards_) n += s->size_slow();
    return n;
  }
  bool check_invariants() const override {
    for (size_t i = 0; i < nshards_; ++i) {
      if (!shards_[i]->check_invariants()) return false;
      // Partition discipline: every key a shard holds routes back to it.
      for (const auto& [k, v] : shards_[i]->to_vector())
        if (shard_index(k) != i) return false;
    }
    return true;
  }

  // -- identity / capabilities --------------------------------------------
  const char* technique() const override { return "Sharded"; }
  const char* structure() const override { return inner_name_.c_str(); }
  Capabilities capabilities() const override {
    Capabilities c;
    // A multi-shard merge without coordination is not a single-instant
    // snapshot, so every RQ-atomicity claim keys on coordinated_.
    c.linearizable_rq = inner_caps_.linearizable_rq && coordinated_;
    c.relaxation = inner_caps_.relaxation;
    c.reclamation = inner_caps_.reclamation;
    c.rq_timestamp = coordinated_;
    c.coordinated_rq = coordinated_;
    return c;
  }

  // -- maintenance (see maintenance.h for the background service) ---------
  MaintenanceWork maintain(int tid) override {
    MaintenanceWork w;
    for (auto& s : shards_) w += s->maintain(tid);
    return w;
  }
  size_t maintenance_backlog() const override {
    size_t n = 0;
    for (const auto& s : shards_) n += s->maintenance_backlog();
    return n;
  }
  /// One signal fanned out to every shard's producers (for a single
  /// worker maintaining the whole sharded set; the per-shard service
  /// attaches one signal per maintenance_targets() entry instead).
  void set_maintenance_signal(MaintenanceSignal* s) override {
    for (auto& sh : shards_) sh->set_maintenance_signal(s);
  }
  /// Per-shard maintenance targets (MaintenanceService spawns one worker
  /// per entry).
  std::vector<AnyOrderedSet*> maintenance_targets() {
    std::vector<AnyOrderedSet*> t;
    t.reserve(nshards_);
    for (auto& s : shards_) t.push_back(s.get());
    return t;
  }

  // -- shard access -------------------------------------------------------
  size_t num_shards() const noexcept { return nshards_; }
  AnyOrderedSet& shard(size_t i) { return *shards_[i]; }
  const AnyOrderedSet& shard(size_t i) const { return *shards_[i]; }
  /// A SessionPool bound to shard `i`, for callers that drive one shard
  /// directly with pooled per-OS-thread ids — the partition-aware
  /// bulk-load pattern (one loader thread per shard, each inserting only
  /// keys with shard_index(k) == i; examples/sharded_store.cpp). Writing
  /// a key to the wrong shard breaks the routing invariant
  /// check_invariants() pins, so direct shard access must respect the
  /// partition.
  SessionPool& shard_pool(size_t i) { return *pools_[i]; }
  /// The entry-pool arena shard `i`'s updates allocate under (for callers
  /// driving shards directly — bulk loaders via shard_pool(i) should wrap
  /// their inserts in ArenaScope(shard_arena(i)) to keep the placement
  /// discipline the routed path gets automatically).
  int shard_arena(size_t i) const noexcept { return arena_ids_[i]; }

  /// The shard owning `key` (total over KeyT: out-of-bounds keys clamp to
  /// the first/last shard).
  size_t shard_index(KeyT key) const noexcept {
    const uint64_t b = biased(key);
    if (b <= lo_b_) return 0;
    const uint64_t idx = (b - lo_b_) / width_;
    return idx >= nshards_ ? nshards_ - 1 : static_cast<size_t>(idx);
  }

  /// True when cross-shard queries run the single-timestamp protocol.
  bool coordinated() const noexcept { return coordinated_; }
  /// The shared clock every shard's updates advance (coordinated mode).
  GlobalTimestamp& coordination_clock() noexcept { return gts_; }

  /// One shard's slice of an externally-driven coordinated scan: the set,
  /// its RQ tracker, and the key interval the partition assigns it
  /// (clamped to [lo, hi]). Callers replicate coordinated_collect()'s
  /// protocol — pin+announce every part, ONE clock read, publish, then
  /// range_query_at per part — but may slice the collection step into
  /// bounded chunks (range_query_at is restart-free against a held
  /// announce+pin, so the timestamp stays one clock read no matter how
  /// many slices the walk is cut into). See net/guard.h.
  struct ScanPart {
    AnyOrderedSet* set = nullptr;
    RqTracker* tracker = nullptr;
    KeyT lo = 0;  // first key of [lo, hi] this shard can hold
    KeyT hi = 0;  // last key (inclusive)
  };

  /// The shards [lo, hi] overlaps, in key order, with per-part key bounds.
  /// Empty when this set is not coordinated (no shared clock to scan at)
  /// or the interval is empty.
  std::vector<ScanPart> scan_plan(KeyT lo, KeyT hi) {
    std::vector<ScanPart> plan;
    if (!coordinated_ || lo > hi) return plan;
    const size_t a = shard_index(lo);
    const size_t b = shard_index(hi);
    plan.reserve(b - a + 1);
    for (size_t i = a; i <= b; ++i) {
      ScanPart p;
      p.set = shards_[i].get();
      p.tracker = trackers_[i];
      p.lo = i == a ? lo : unbias(lo_b_ + i * width_);
      p.hi = i == b ? hi : unbias(lo_b_ + (i + 1) * width_ - 1);
      plan.push_back(p);
    }
    return plan;
  }

  /// Account a coordinated scan driven externally via scan_plan() (one
  /// clock read), so the routing counters stay truthful about how many
  /// single-timestamp snapshots were taken and by which path.
  void note_external_scan(int tid) {
    auto& st = *stats_[tid];
    bump(st.coordinated_rqs);
    bump(st.timestamps_acquired);
  }

  ShardedSetStats stats() const {
    ShardedSetStats t;
    for (int i = 0; i < kMaxThreads; ++i) {
      const StatSlot& s = *stats_[i];
      t.single_shard_rqs += s.single_shard_rqs.load(std::memory_order_relaxed);
      t.coordinated_rqs += s.coordinated_rqs.load(std::memory_order_relaxed);
      t.fallback_rqs += s.fallback_rqs.load(std::memory_order_relaxed);
      t.timestamps_acquired +=
          s.timestamps_acquired.load(std::memory_order_relaxed);
      t.coordinated_shards_pinned +=
          s.coordinated_shards_pinned.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  /// Order-preserving map from KeyT to uint64_t (so partition arithmetic
  /// never overflows signed math).
  static uint64_t biased(KeyT k) noexcept {
    return static_cast<uint64_t>(k) ^ (uint64_t{1} << 63);
  }
  static KeyT unbias(uint64_t b) noexcept {
    return static_cast<KeyT>(b ^ (uint64_t{1} << 63));
  }

  /// Per-thread slot: each thread bumps only its own, so relaxed
  /// increments suffice and stats() may read concurrently.
  struct StatSlot {
    std::atomic<uint64_t> single_shard_rqs{0};
    std::atomic<uint64_t> coordinated_rqs{0};
    std::atomic<uint64_t> fallback_rqs{0};
    std::atomic<uint64_t> timestamps_acquired{0};
    std::atomic<uint64_t> coordinated_shards_pinned{0};
  };

  static void bump(std::atomic<uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  /// The single-timestamp protocol (header comment), in its batched
  /// two-phase form. Returns T, the one shared-clock value every
  /// overlapping shard was snapshot at.
  ///
  /// Announce phase, overlapped across shards instead of sequential
  /// pin->announce per shard:
  ///   1a. every shard's epoch-pin announce store (rq_pin_prepare — one
  ///       store each, no validation loads);
  ///   1b. every tracker's PENDING store (announce_pending_all — one
  ///       cache-line write each, back-to-back, no interleaved loads);
  ///   1c. every pin's validation (rq_pin_confirm — the announce/advance
  ///       re-read loops, all the round-trip latency in one pass).
  /// Then the ONE clock read, one publish pass, and collection.
  ///
  /// Why reordering the per-shard steps preserves §6's argument
  /// (DESIGN.md §9): both safety properties are per shard and only
  /// require shard i's pin AND its PENDING announce to precede the clock
  /// read. A concurrent cleaner observes one slot, not the batch, so
  /// interleaving shard j's stores between shard i's prepare and confirm
  /// is indistinguishable from scheduler timing under the old loop. The
  /// pin is established when confirm returns — before the clock read —
  /// and no shared pointer is read between prepare and confirm.
  ///
  /// Elision: only shards in [a, b] — the span [lo, hi] provably overlaps
  /// under the contiguous partition (shard_index is monotone) — pay any
  /// coordination; shards outside it are never touched, and a == b never
  /// reaches here (the callers devolve single-shard queries to the
  /// unsharded fast path: zero pins, zero announces, zero shared-clock
  /// reads). coordinated_shards_pinned makes the invariant observable.
  timestamp_t coordinated_collect(int tid, size_t a, size_t b, KeyT lo,
                                  KeyT hi,
                                  std::vector<std::pair<KeyT, ValT>>& out) {
    // An active request trace (thread-local, parked by the net worker
    // before execute) gets the fan-out spans; untraced callers pay one
    // thread-local load and zero clock reads.
    obs::TraceScratch* const tr = obs::current_trace();
    const uint64_t pin_t0 = tr != nullptr ? obs::trace_now_ns() : 0;
    for (size_t i = a; i <= b; ++i) shards_[i]->rq_pin_prepare(tid);
    RqTracker::announce_pending_all(tid, &trackers_[a], b - a + 1);
    for (size_t i = a; i <= b; ++i) shards_[i]->rq_pin_confirm(tid);
    const timestamp_t ts = gts_.read();  // the ONE timestamp acquisition
    for (size_t i = a; i <= b; ++i) trackers_[i]->publish(tid, ts);
    if (tr != nullptr)
      tr->stamp(obs::TraceStage::kShardPin, pin_t0, obs::trace_now_ns(), 0,
                static_cast<uint16_t>(b - a + 1));
    for (size_t i = a; i <= b; ++i) {
      const uint64_t c0 = tr != nullptr ? obs::trace_now_ns() : 0;
      shards_[i]->range_query_at(tid, ts, lo, hi, out);
      trackers_[i]->end(tid);
      shards_[i]->rq_unpin(tid);
      if (tr != nullptr)
        tr->stamp(obs::TraceStage::kShardCollect, c0, obs::trace_now_ns(),
                  static_cast<uint8_t>(i < 255 ? i : 255), 0);
    }
    auto& st = *stats_[tid];
    bump(st.coordinated_rqs);
    bump(st.timestamps_acquired);
    st.coordinated_shards_pinned.fetch_add(b - a + 1,
                                           std::memory_order_relaxed);
    return ts;
  }

  /// Graceful degradation: each overlapping shard's own linearizable
  /// snapshot, concatenated in shard (= key) order. Atomic per shard, not
  /// across shards.
  void fallback_collect(int tid, size_t a, size_t b, KeyT lo, KeyT hi,
                        std::vector<std::pair<KeyT, ValT>>& out) {
    auto& scratch = *scratch_[tid];
    for (size_t i = a; i <= b; ++i) {
      shards_[i]->range_query(tid, lo, hi, scratch);
      out.insert(out.end(), scratch.begin(), scratch.end());
    }
    bump(stats_[tid]->fallback_rqs);
  }

  // Declared before shards_ so it outlives them (shards' redirected clocks
  // point here until destruction).
  GlobalTimestamp gts_;
  const std::string inner_name_;
  Capabilities inner_caps_;
  const size_t nshards_;
  const uint64_t lo_b_;
  const uint64_t width_;
  bool coordinated_ = false;
  std::vector<std::unique_ptr<AnyOrderedSet>> shards_;
  std::vector<RqTracker*> trackers_;
  std::vector<std::unique_ptr<SessionPool>> pools_;
  std::vector<int> arena_ids_;
  mutable CachePadded<std::vector<std::pair<KeyT, ValT>>>
      scratch_[kMaxThreads];
  mutable CachePadded<StatSlot> stats_[kMaxThreads] = {};
  // Last members: unregistered before the StatSlots they read go away.
  obs::GaugeSet::Source obs_srcs_[4];
};

}  // namespace bref
