#pragma once
// Background maintenance service — the generalization of BundleCleaner
// (core/bundle_cleaner.h) to the type-erased, sharded world.
//
// BundleCleaner drives exactly one duty (bundle pruning) on exactly one
// typed structure from one dedicated thread. This service owns one worker
// thread PER SHARD of a ShardedSet (or a single worker for a plain set)
// and drives every background duty the implementation exposes through
// AnyOrderedSet::maintain(): bundle reconciliation (prune_bundles, only
// when the instance reclaims), the EBR-RQ limbo drain (flush_limbo — the
// ROADMAP's "nothing calls it unprompted" item), and Ebr::quiesce so long
// prune pins never starve epoch advancement.
//
// Rate control: each worker sleeps `interval` between passes; with
// `adaptive` set, a pass that found no work doubles the sleep up to
// `max_interval` and any productive pass snaps it back — idle shards cost
// ~zero CPU while hot shards are serviced at the base rate.
//
// Backlog-driven wakeups (`backlog_wake`): each worker owns a
// MaintenanceSignal attached to its target's retire/park path. Producers
// count retired items and notify the service's cv_ when `backlog_wake`
// items accumulate, so the limbo bound is HARD (work starts within one
// scheduler hop of the threshold, not at the next poll tick) and an idle
// shard costs zero wakeups. With `interval == 0` the signal is the only
// wake source: the worker blocks until notified instead of polling.
// Lost-wakeup safety: the worker arms the signal while holding mu_ and
// re-checks `due()` inside the wait predicate; notify() takes mu_ before
// cv_.notify_all(), so a producer crossing the threshold after the arm
// cannot slip between the worker's check and its sleep.
//
// Worker thread ids: by default start() claims a registry-tracked id from
// the TOP of the id space (ThreadRegistry::try_acquire_high) per worker,
// released by stop(). High ids stay clear of benchmark drivers that pin
// dense ids from 0 without consulting the registry, and because the slot
// is *tracked*, a concurrent try_acquire (sessions, server workers) can
// never be handed the same id — the untracked kMaxThreads-1-index
// convention this replaces could collide with recycled session ids.
// `pooled_tids` switches to SessionPool-backed per-OS-thread ids, the
// right mode when every other participant also acquires ids
// (applications, run_pooled tests); do not mix pooled workers with
// hand-pinned workload ids that could collide.
//
// Lifecycle: construct -> start() -> stop() (idempotent, restartable);
// the destructor stops. stats(i) exposes per-shard counters.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/set_interface.h"
#include "common/cacheline.h"
#include "common/thread_registry.h"
#include "common/timing.h"
#include "obs/metrics.h"
#include "shard/sharded_set.h"

namespace bref {

/// Per-shard-index backlog gauges (obs, shard layer): `bref_maintenance_
/// backlog{shard="i"}`, summed over live services driving that shard
/// index. Created lazily so only shard indices that actually run workers
/// appear in the exposition. Leaky, like every obs aggregation point.
inline obs::GaugeSet& maintenance_backlog_gauge(size_t shard) {
  static Spinlock lock;
  static auto* gauges = new std::vector<obs::GaugeSet*>();
  std::lock_guard<Spinlock> g(lock);
  while (gauges->size() <= shard) {
    gauges->push_back(new obs::GaugeSet(
        obs::GaugeSet::Agg::kSum, "bref_maintenance_backlog",
        "Reclaimable items (limbo nodes + prunable bundle entries) behind "
        "the maintenance worker, as of its last pass",
        "shard=\"" + std::to_string(gauges->size()) + "\""));
  }
  return *(*gauges)[shard];
}

/// Wakeup-cause counters, one series per reason: `bref_maintenance_
/// wakeups_total{reason="backlog"|"timer"}`. Backlog wakeups are passes
/// the producers' signal started; timer wakeups are interval expiries.
/// An idle service with backlog_wake set should show both flat.
inline obs::GaugeSet& maintenance_wakeups_counter(bool backlog) {
  static auto* by_backlog = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_maintenance_wakeups_total",
      "Maintenance worker wakeups by cause", "reason=\"backlog\"",
      obs::MetricKind::kCounter);
  static auto* by_timer = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_maintenance_wakeups_total",
      "Maintenance worker wakeups by cause", "reason=\"timer\"",
      obs::MetricKind::kCounter);
  return backlog ? *by_backlog : *by_timer;
}

struct MaintenanceOptions {
  /// Base pause between passes (0 = back-to-back, Table 1's d=0).
  std::chrono::milliseconds interval{2};
  /// Ceiling for the adaptive back-off.
  std::chrono::milliseconds max_interval{64};
  /// Back off while passes find no work; snap back when one does.
  bool adaptive = true;
  /// Take worker ids from SessionPool (see header) instead of dedicated
  /// top-of-range slots.
  bool pooled_tids = false;
  /// Warn (one rate-limited stderr line) when a worker's post-pass backlog
  /// exceeds this bound; 0 disables. The precursor to backlog-driven
  /// wakeups: the signal exists and is visible before it steers anything.
  size_t backlog_warn = 0;
  /// Minimum spacing between warnings per worker.
  std::chrono::milliseconds backlog_warn_interval{5000};
  /// Wake a worker as soon as this many items were retired/parked on its
  /// target since the last pass (0 disables the signal: pure interval
  /// polling). With interval == 0 this is the ONLY wake source.
  size_t backlog_wake = 0;
};

struct ShardMaintenanceStats {
  uint64_t passes = 0;
  uint64_t bundle_entries_pruned = 0;
  uint64_t limbo_flushed = 0;
  uint64_t idle_backoffs = 0;
  uint64_t backlog = 0;  // reclaimables behind the worker, last pass
  uint64_t backlog_wakeups = 0;  // passes triggered by the backlog signal
  uint64_t timer_wakeups = 0;    // passes triggered by interval expiry
};

class MaintenanceService {
 public:
  /// One worker per shard when `set` is a ShardedSet; one worker total
  /// otherwise.
  explicit MaintenanceService(AnyOrderedSet& set,
                              MaintenanceOptions opt = {})
      : opt_(opt) {
    if (auto* sharded = dynamic_cast<ShardedSet*>(&set)) {
      for (AnyOrderedSet* s : sharded->maintenance_targets())
        workers_.push_back(std::make_unique<Worker>(s));
    } else {
      workers_.push_back(std::make_unique<Worker>(&set));
    }
    register_gauges();
  }
  /// Explicit target list (advanced: several plain sets under one service).
  explicit MaintenanceService(std::vector<AnyOrderedSet*> targets,
                              MaintenanceOptions opt = {})
      : opt_(opt) {
    for (AnyOrderedSet* s : targets)
      workers_.push_back(std::make_unique<Worker>(s));
    register_gauges();
  }

  ~MaintenanceService() { stop(); }
  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  /// Spawns the workers. In the default (non-pooled) mode every worker's
  /// registry id is claimed HERE, before any thread starts — callers see
  /// deterministic ThreadRegistry::in_use() accounting, and exhaustion
  /// surfaces as ThreadSlotsExhaustedError from start() (nothing spawned,
  /// already-claimed ids rolled back) instead of a silently dead worker.
  void start() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (running_) return;
    if (!opt_.pooled_tids) {
      for (auto& w : workers_) {
        w->tid = ThreadRegistry::instance().try_acquire_high();
        if (w->tid < 0) {
          release_tids();
          throw ThreadSlotsExhaustedError();
        }
      }
    }
    stop_.store(false, std::memory_order_relaxed);
    if (opt_.backlog_wake != 0) {
      for (auto& w : workers_) {
        w->signal.pending.store(0, std::memory_order_relaxed);
        w->signal.armed.store(false, std::memory_order_relaxed);
        w->signal.threshold.store(opt_.backlog_wake,
                                  std::memory_order_relaxed);
        w->signal.notify = [](void* p) {
          static_cast<MaintenanceService*>(p)->wake();
        };
        w->signal.arg = this;
        w->target->set_maintenance_signal(&w->signal);
      }
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      w.thread = std::thread([this, &w, i] { run(w, i); });
    }
    running_ = true;
  }

  void stop() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (!running_) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    cv_.notify_all();
    for (auto& w : workers_)
      if (w->thread.joinable()) w->thread.join();
    // Detach the signals so producers stop bumping dead thresholds. The
    // Worker (and its signal) outlives this to service dtor, so a racing
    // producer that loaded the pointer before the detach stays safe.
    if (opt_.backlog_wake != 0)
      for (auto& w : workers_) w->target->set_maintenance_signal(nullptr);
    if (!opt_.pooled_tids) release_tids();
    running_ = false;
  }

  bool running() const {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    return running_;
  }

  size_t workers() const { return workers_.size(); }

  ShardMaintenanceStats stats(size_t worker) const {
    const Worker& w = *workers_[worker];
    ShardMaintenanceStats s;
    s.passes = w.passes->load(std::memory_order_relaxed);
    s.bundle_entries_pruned = w.pruned->load(std::memory_order_relaxed);
    s.limbo_flushed = w.flushed->load(std::memory_order_relaxed);
    s.idle_backoffs = w.idle_backoffs->load(std::memory_order_relaxed);
    s.backlog = w.backlog->load(std::memory_order_relaxed);
    s.backlog_wakeups = w.backlog_wakeups->load(std::memory_order_relaxed);
    s.timer_wakeups = w.timer_wakeups->load(std::memory_order_relaxed);
    return s;
  }
  ShardMaintenanceStats total() const {
    ShardMaintenanceStats t;
    for (size_t i = 0; i < workers_.size(); ++i) {
      const ShardMaintenanceStats s = stats(i);
      t.passes += s.passes;
      t.bundle_entries_pruned += s.bundle_entries_pruned;
      t.limbo_flushed += s.limbo_flushed;
      t.idle_backoffs += s.idle_backoffs;
      t.backlog += s.backlog;
      t.backlog_wakeups += s.backlog_wakeups;
      t.timer_wakeups += s.timer_wakeups;
    }
    return t;
  }

 private:
  struct Worker {
    explicit Worker(AnyOrderedSet* t) : target(t) {}
    AnyOrderedSet* target;
    std::thread thread;
    int tid = -1;  // registry-tracked id (non-pooled mode), set by start()
    CachePadded<std::atomic<uint64_t>> passes{};
    CachePadded<std::atomic<uint64_t>> pruned{};
    CachePadded<std::atomic<uint64_t>> flushed{};
    CachePadded<std::atomic<uint64_t>> idle_backoffs{};
    CachePadded<std::atomic<uint64_t>> backlog{};
    CachePadded<std::atomic<uint64_t>> backlog_wakeups{};
    CachePadded<std::atomic<uint64_t>> timer_wakeups{};
    MaintenanceSignal signal;  // producers' backlog counter (backlog_wake)
    Clock::time_point last_warn{};  // worker-thread private
    obs::GaugeSet::Source backlog_src;  // reads `backlog` above only
    obs::GaugeSet::Source wake_backlog_src;
    obs::GaugeSet::Source wake_timer_src;
  };

  void register_gauges() {
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker* w = workers_[i].get();
      w->backlog_src = maintenance_backlog_gauge(i).add([w] {
        return static_cast<double>(
            w->backlog->load(std::memory_order_relaxed));
      });
      w->wake_backlog_src = maintenance_wakeups_counter(true).add([w] {
        return static_cast<double>(
            w->backlog_wakeups->load(std::memory_order_relaxed));
      });
      w->wake_timer_src = maintenance_wakeups_counter(false).add([w] {
        return static_cast<double>(
            w->timer_wakeups->load(std::memory_order_relaxed));
      });
    }
  }

  /// Producers' notify target. The empty critical section pairs with the
  /// worker arming its signal under mu_: either the worker sees the
  /// crossing in its due() predicate, or this notify happens after the
  /// worker parked and wakes it.
  void wake() {
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
  }

  void release_tids() noexcept {
    for (auto& w : workers_) {
      if (w->tid >= 0) ThreadRegistry::instance().release(w->tid);
      w->tid = -1;
    }
  }

  void run(Worker& w, size_t shard) {
    const int tid = opt_.pooled_tids ? SessionPool::thread_tid() : w.tid;
    auto interval = opt_.interval;
    const bool timed = opt_.interval.count() > 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      const auto due = [this, &w] {
        return stop_.load(std::memory_order_relaxed) || w.signal.due();
      };
      if (!due()) {
        // Arm under mu_; on_produce()'s notify path locks mu_ before
        // cv_.notify_all(), so a threshold crossing after this store
        // cannot fire before we are parked in the wait (see header).
        w.signal.armed.store(true, std::memory_order_relaxed);
        if (timed)
          cv_.wait_for(lk, interval, due);
        else
          cv_.wait(lk, due);  // interval==0: block until notified
        w.signal.armed.store(false, std::memory_order_relaxed);
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      const bool backlog_wake = w.signal.due();
      w.signal.drain();
      lk.unlock();
      (backlog_wake ? w.backlog_wakeups : w.timer_wakeups)
          ->fetch_add(1, std::memory_order_relaxed);
      const MaintenanceWork work = w.target->maintain(tid);
      w.passes->fetch_add(1, std::memory_order_relaxed);
      w.pruned->fetch_add(work.bundle_entries_pruned,
                          std::memory_order_relaxed);
      w.flushed->fetch_add(work.limbo_flushed, std::memory_order_relaxed);
      // What the pass left behind: the live signal for the obs gauge, the
      // warning below, and (next) backlog-driven wakeups.
      const size_t backlog = w.target->maintenance_backlog();
      w.backlog->store(backlog, std::memory_order_relaxed);
      if (opt_.backlog_warn != 0 && backlog > opt_.backlog_warn) {
        const auto now = Clock::now();
        if (w.last_warn.time_since_epoch().count() == 0 ||
            now - w.last_warn >= opt_.backlog_warn_interval) {
          w.last_warn = now;
          std::fprintf(stderr,
                       "[bref-maintenance] shard %zu backlog %zu exceeds "
                       "bound %zu (pass %llu)\n",
                       shard, backlog, opt_.backlog_warn,
                       static_cast<unsigned long long>(
                           w.passes->load(std::memory_order_relaxed)));
        }
      }
      if (opt_.adaptive && timed) {
        if (work.reclaimed() == 0) {
          interval = std::min(interval * 2, opt_.max_interval);
          w.idle_backoffs->fetch_add(1, std::memory_order_relaxed);
        } else {
          interval = opt_.interval;
        }
      }
      lk.lock();
    }
  }

  MaintenanceOptions opt_;
  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex lifecycle_mu_;
  bool running_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace bref
