#pragma once
// Background maintenance service — the generalization of BundleCleaner
// (core/bundle_cleaner.h) to the type-erased, sharded world.
//
// BundleCleaner drives exactly one duty (bundle pruning) on exactly one
// typed structure from one dedicated thread. This service owns one worker
// thread PER SHARD of a ShardedSet (or a single worker for a plain set)
// and drives every background duty the implementation exposes through
// AnyOrderedSet::maintain(): bundle reconciliation (prune_bundles, only
// when the instance reclaims), the EBR-RQ limbo drain (flush_limbo — the
// ROADMAP's "nothing calls it unprompted" item), and Ebr::quiesce so long
// prune pins never starve epoch advancement.
//
// Rate control: each worker sleeps `interval` between passes; with
// `adaptive` set, a pass that found no work doubles the sleep up to
// `max_interval` and any productive pass snaps it back — idle shards cost
// ~zero CPU while hot shards are serviced at the base rate.
//
// Worker thread ids: by default start() claims a registry-tracked id from
// the TOP of the id space (ThreadRegistry::try_acquire_high) per worker,
// released by stop(). High ids stay clear of benchmark drivers that pin
// dense ids from 0 without consulting the registry, and because the slot
// is *tracked*, a concurrent try_acquire (sessions, server workers) can
// never be handed the same id — the untracked kMaxThreads-1-index
// convention this replaces could collide with recycled session ids.
// `pooled_tids` switches to SessionPool-backed per-OS-thread ids, the
// right mode when every other participant also acquires ids
// (applications, run_pooled tests); do not mix pooled workers with
// hand-pinned workload ids that could collide.
//
// Lifecycle: construct -> start() -> stop() (idempotent, restartable);
// the destructor stops. stats(i) exposes per-shard counters.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/set_interface.h"
#include "common/cacheline.h"
#include "common/thread_registry.h"
#include "shard/sharded_set.h"

namespace bref {

struct MaintenanceOptions {
  /// Base pause between passes (0 = back-to-back, Table 1's d=0).
  std::chrono::milliseconds interval{2};
  /// Ceiling for the adaptive back-off.
  std::chrono::milliseconds max_interval{64};
  /// Back off while passes find no work; snap back when one does.
  bool adaptive = true;
  /// Take worker ids from SessionPool (see header) instead of dedicated
  /// top-of-range slots.
  bool pooled_tids = false;
};

struct ShardMaintenanceStats {
  uint64_t passes = 0;
  uint64_t bundle_entries_pruned = 0;
  uint64_t limbo_flushed = 0;
  uint64_t idle_backoffs = 0;
};

class MaintenanceService {
 public:
  /// One worker per shard when `set` is a ShardedSet; one worker total
  /// otherwise.
  explicit MaintenanceService(AnyOrderedSet& set,
                              MaintenanceOptions opt = {})
      : opt_(opt) {
    if (auto* sharded = dynamic_cast<ShardedSet*>(&set)) {
      for (AnyOrderedSet* s : sharded->maintenance_targets())
        workers_.push_back(std::make_unique<Worker>(s));
    } else {
      workers_.push_back(std::make_unique<Worker>(&set));
    }
  }
  /// Explicit target list (advanced: several plain sets under one service).
  explicit MaintenanceService(std::vector<AnyOrderedSet*> targets,
                              MaintenanceOptions opt = {})
      : opt_(opt) {
    for (AnyOrderedSet* s : targets)
      workers_.push_back(std::make_unique<Worker>(s));
  }

  ~MaintenanceService() { stop(); }
  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  /// Spawns the workers. In the default (non-pooled) mode every worker's
  /// registry id is claimed HERE, before any thread starts — callers see
  /// deterministic ThreadRegistry::in_use() accounting, and exhaustion
  /// surfaces as ThreadSlotsExhaustedError from start() (nothing spawned,
  /// already-claimed ids rolled back) instead of a silently dead worker.
  void start() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (running_) return;
    if (!opt_.pooled_tids) {
      for (auto& w : workers_) {
        w->tid = ThreadRegistry::instance().try_acquire_high();
        if (w->tid < 0) {
          release_tids();
          throw ThreadSlotsExhaustedError();
        }
      }
    }
    stop_.store(false, std::memory_order_relaxed);
    for (auto& worker : workers_) {
      Worker& w = *worker;
      w.thread = std::thread([this, &w] { run(w); });
    }
    running_ = true;
  }

  void stop() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (!running_) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    cv_.notify_all();
    for (auto& w : workers_)
      if (w->thread.joinable()) w->thread.join();
    if (!opt_.pooled_tids) release_tids();
    running_ = false;
  }

  bool running() const {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    return running_;
  }

  size_t workers() const { return workers_.size(); }

  ShardMaintenanceStats stats(size_t worker) const {
    const Worker& w = *workers_[worker];
    ShardMaintenanceStats s;
    s.passes = w.passes->load(std::memory_order_relaxed);
    s.bundle_entries_pruned = w.pruned->load(std::memory_order_relaxed);
    s.limbo_flushed = w.flushed->load(std::memory_order_relaxed);
    s.idle_backoffs = w.idle_backoffs->load(std::memory_order_relaxed);
    return s;
  }
  ShardMaintenanceStats total() const {
    ShardMaintenanceStats t;
    for (size_t i = 0; i < workers_.size(); ++i) {
      const ShardMaintenanceStats s = stats(i);
      t.passes += s.passes;
      t.bundle_entries_pruned += s.bundle_entries_pruned;
      t.limbo_flushed += s.limbo_flushed;
      t.idle_backoffs += s.idle_backoffs;
    }
    return t;
  }

 private:
  struct Worker {
    explicit Worker(AnyOrderedSet* t) : target(t) {}
    AnyOrderedSet* target;
    std::thread thread;
    int tid = -1;  // registry-tracked id (non-pooled mode), set by start()
    CachePadded<std::atomic<uint64_t>> passes{};
    CachePadded<std::atomic<uint64_t>> pruned{};
    CachePadded<std::atomic<uint64_t>> flushed{};
    CachePadded<std::atomic<uint64_t>> idle_backoffs{};
  };

  void release_tids() noexcept {
    for (auto& w : workers_) {
      if (w->tid >= 0) ThreadRegistry::instance().release(w->tid);
      w->tid = -1;
    }
  }

  void run(Worker& w) {
    const int tid = opt_.pooled_tids ? SessionPool::thread_tid() : w.tid;
    auto interval = opt_.interval;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (interval.count() > 0)
        cv_.wait_for(lk, interval,
                     [this] { return stop_.load(std::memory_order_relaxed); });
      if (stop_.load(std::memory_order_relaxed)) return;
      lk.unlock();
      const MaintenanceWork work = w.target->maintain(tid);
      w.passes->fetch_add(1, std::memory_order_relaxed);
      w.pruned->fetch_add(work.bundle_entries_pruned,
                          std::memory_order_relaxed);
      w.flushed->fetch_add(work.limbo_flushed, std::memory_order_relaxed);
      if (opt_.adaptive) {
        if (work.reclaimed() == 0) {
          interval = std::min(
              interval.count() > 0 ? interval * 2 : opt_.max_interval,
              opt_.max_interval);
          w.idle_backoffs->fetch_add(1, std::memory_order_relaxed);
        } else {
          interval = opt_.interval;
        }
      }
      lk.lock();
    }
  }

  MaintenanceOptions opt_;
  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex lifecycle_mu_;
  bool running_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace bref
