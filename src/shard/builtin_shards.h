#pragma once
// Registry hookup for the sharded configurations.
//
// Each coordinated-capable inner type contributes one "Sharded-<inner>"
// descriptor whose factory builds a ShardedSet of kDefaultShards
// registry-created inner sets (custom shard counts / key ranges construct
// ShardedSet directly — see bench/fig6_sharded.cpp). Capabilities are
// derived at compile time from the inner implementation type, mirroring
// ShardedSet::capabilities(): every RQ-atomicity flag keys on the inner
// type's coordinated_rq trait, while the relaxation/reclamation knobs pass
// through (the factory forwards SetOptions into every shard).
//
// Only coordinated inner families are registered: a sharded set over a
// non-coordinated technique serves multi-shard queries as a per-shard
// merge, which is not linearizable — such configurations exist (construct
// ShardedSet directly) but do not belong in a registry whose non-Unsafe
// entries all promise linearizable range queries.
//
// Registration is deliberately lookup-free (ImplRegistry::add only), so it
// cannot race the builtin registrations' static-initialization order; the
// factory's registry lookup of the inner name happens at create() time.

#include <memory>
#include <string>

#include "api/ordered_set.h"
#include "api/registry.h"
#include "shard/sharded_set.h"

namespace bref::shard {

inline constexpr size_t kDefaultShards = 4;

template <typename InnerDS>
std::unique_ptr<AnyOrderedSet> make_sharded(const SetOptions& opt) {
  ShardOptions so;
  so.shards = kDefaultShards;
  so.inner = opt;
  return std::make_unique<ShardedSet>(
      std::string(InnerDS::kName) + "-" + InnerDS::kStructure, so);
}

/// Descriptor caps for Sharded-<Inner>, from the inner type (compile
/// time, so registration never needs the inner descriptor to exist yet).
template <typename InnerDS>
constexpr Capabilities sharded_caps() {
  constexpr Capabilities inner = caps_of<InnerDS>();
  constexpr bool coord = detail::coordinated_rq_v<InnerDS>;
  return Capabilities{inner.linearizable_rq && coord, inner.relaxation,
                      inner.reclamation, coord, coord};
}

template <typename InnerDS>
struct RegisterSharded {
  static_assert(detail::coordinated_rq_v<InnerDS>,
                "register only coordinated inner families (see header)");
  RegisterSharded() {
    const std::string inner =
        std::string(InnerDS::kName) + "-" + InnerDS::kStructure;
    ImplRegistry::instance().add(
        ImplDescriptor{"Sharded-" + inner, "Sharded", inner,
                       sharded_caps<InnerDS>(), /*builtin=*/false},
        &make_sharded<InnerDS>);
  }
};

inline const RegisterSharded<BundleListSet> kShardedBundleList{};
inline const RegisterSharded<BundleSkipListSet> kShardedBundleSkipList{};
inline const RegisterSharded<BundleCitrusSet> kShardedBundleCitrus{};

}  // namespace bref::shard
