#pragma once
// Userspace RCU with per-thread grace-period counters.
//
// Substrate for the Citrus tree (Arbel & Attiya, PODC'14): lookups and the
// traversal phase of updates run inside wait-free read-side critical
// sections, and the two-children remove calls synchronize() before unlinking
// the moved successor so no reader can be left traversing it.
//
// Scheme: each thread keeps a counter that is odd while inside a read-side
// section. synchronize() snapshots all counters and waits for every odd one
// to change — i.e. for every reader that was in flight at the start of the
// grace period to leave (a later re-entry implies it started after the
// writer's updates and is safe).

#include <atomic>
#include <cstdint>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/thread_registry.h"

namespace bref {

class Urcu {
 public:
  void read_lock(int tid) noexcept {
    hwm_.note(tid);
    // seq_cst: the parity flip must be ordered before the section's loads.
    counters_[tid]->fetch_add(1, std::memory_order_seq_cst);
  }

  void read_unlock(int tid) noexcept {
    counters_[tid]->fetch_add(1, std::memory_order_release);
  }

  /// Wait for all read-side critical sections in flight at the call to end.
  void synchronize() noexcept {
    const int n = hwm_.get();
    uint64_t snap[kMaxThreads];
    for (int i = 0; i < n; ++i)
      snap[i] = counters_[i]->load(std::memory_order_seq_cst);
    for (int i = 0; i < n; ++i) {
      if ((snap[i] & 1) == 0) continue;  // quiescent at snapshot
      Backoff bo;
      while (counters_[i]->load(std::memory_order_acquire) == snap[i])
        bo.pause();
    }
  }

  /// RAII read-side section.
  class ReadGuard {
   public:
    ReadGuard(Urcu& u, int tid) : u_(u), tid_(tid) { u_.read_lock(tid_); }
    ~ReadGuard() { u_.read_unlock(tid_); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    Urcu& u_;
    int tid_;
  };

 private:
  TidHwm hwm_;
  CachePadded<std::atomic<uint64_t>> counters_[kMaxThreads];
};

}  // namespace bref
