#pragma once
// Read-Log-Update (RLU) — Matveev, Shavit, Felber, Marlier (SOSP'15).
//
// Baseline substrate for the paper's evaluation. RLU generalises RCU to
// multi-object updates: writers clone each object they lock into a private
// write log, readers run against a clock snapshot and "steal" committed
// copies whose writer's write-clock is within their snapshot, and commit
// waits (rlu_synchronize) for all older readers before writing copies back.
//
// Range queries on RLU structures are linearized at reader_lock (the clock
// snapshot), like bundling — but updates pay a full synchronize() on every
// commit, which is exactly the bottleneck the paper measures in
// update-heavy workloads.
//
// Implementation notes:
//  * Every RLU-managed object is allocated through Rlu::alloc<T>() and
//    carries a hidden one-word header (pointer to its active copy).
//  * Copies live in per-thread logs; a copy block is [CopyHeader][ObjHeader]
//    [payload]. Copy blocks and freed originals are reclaimed one commit
//    late (double-buffered logs) so concurrent stealers never touch freed
//    memory.
//  * T must be trivially copyable (objects move via memcpy, as in the
//    original C implementation).

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/thread_registry.h"

namespace bref {

class Rlu {
 private:
  static constexpr uintptr_t kCopyMark = 1;
  static constexpr uint64_t kInfClock = ~0ull;

  struct ObjHeader {
    std::atomic<uintptr_t> copy{0};
  };
  struct CopyHeader {
    void* orig;
    size_t size;
    int owner_tid;
    int pad_;
  };
  static_assert(sizeof(ObjHeader) == 8);
  static_assert(sizeof(CopyHeader) == 24);

  struct LogEntry {
    ObjHeader* obj_header;  // header of the original
    void* block;            // copy block start
    CopyHeader* copy_header;
  };

  struct RluThread {
    std::atomic<uint64_t> run_cnt{0};
    std::atomic<uint64_t> local_clock{0};
    std::atomic<uint64_t> write_clock{kInfClock};
    // True while this thread executes commit(); a committing writer has
    // finished its read phase, so other writers' synchronize() may skip it.
    // Without this, two concurrent commits deadlock waiting on each other's
    // run counters.
    std::atomic<bool> in_sync{false};
    std::vector<LogEntry> log;
    std::vector<void*> old_blocks;   // copy blocks awaiting one grace period
    std::vector<void*> defer_free;   // original blocks freed this commit
    std::vector<void*> defer_ready;  // original blocks free at next commit
    uint64_t aborts{0};
    uint64_t commits{0};
  };

  // Header arithmetic goes through uintptr_t: the payload pointer's
  // allocation provenance (original block vs copy block) is only known at
  // run time via the kCopyMark tag, and GCC's -Warray-bounds would otherwise
  // flag the copy-header offset on paths it cannot prove dead for originals.
  template <typename T>
  static ObjHeader* header_of(T* p) {
    return reinterpret_cast<ObjHeader*>(reinterpret_cast<uintptr_t>(p) -
                                        sizeof(ObjHeader));
  }
  template <typename T>
  static const CopyHeader* copy_header_of(const T* copy_payload) {
    return reinterpret_cast<const CopyHeader*>(
        reinterpret_cast<uintptr_t>(copy_payload) - sizeof(ObjHeader) -
        sizeof(CopyHeader));
  }
  static void* payload_of(ObjHeader* h) {
    return reinterpret_cast<char*>(h) + sizeof(ObjHeader);
  }

  static void release_blocks(std::vector<void*>& blocks) {
    for (void* b : blocks) ::operator delete(b);
    blocks.clear();
  }

  std::atomic<uint64_t> g_clock_{0};
  TidHwm hwm_;
  CachePadded<RluThread> threads_[kMaxThreads];

 public:
  Rlu() = default;
  ~Rlu() {
    for (auto& t : threads_) {
      for (auto& e : t->log) ::operator delete(e.block);
      t->log.clear();
      release_blocks(t->old_blocks);
      release_blocks(t->defer_free);
      release_blocks(t->defer_ready);
    }
  }
  Rlu(const Rlu&) = delete;
  Rlu& operator=(const Rlu&) = delete;

  /// Allocate an RLU-managed object. Must be freed via Session::free_obj
  /// (deferred) or Rlu::dealloc_unsafe (quiescent teardown only).
  template <typename T, typename... Args>
  T* alloc(Args&&... args) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= sizeof(ObjHeader),
                  "payload must be 8-byte alignable");
    void* block = ::operator new(sizeof(ObjHeader) + sizeof(T));
    auto* h = new (block) ObjHeader{};
    T* obj = new (payload_of(h)) T(std::forward<Args>(args)...);
    return obj;
  }

  /// Immediate free; only valid when no thread can reach the object
  /// (e.g. destroying a whole data structure).
  template <typename T>
  static void dealloc_unsafe(T* p) {
    ::operator delete(header_of(p));
  }

  uint64_t clock() const { return g_clock_.load(std::memory_order_acquire); }

  /// One RLU-protected operation (read-side or write-side). Construct to
  /// enter, then either unlock() (commits if objects were locked) or
  /// abort() + retry. The destructor unlocks if the caller did neither.
  class Session {
   public:
    Session(Rlu& rlu, int tid) : rlu_(rlu), t_(*rlu.threads_[tid]), tid_(tid) {
      rlu_.hwm_.note(tid);
      t_.run_cnt.fetch_add(1, std::memory_order_seq_cst);  // odd: active
      t_.local_clock.store(rlu_.g_clock_.load(std::memory_order_seq_cst),
                           std::memory_order_release);
      active_ = true;
    }

    ~Session() {
      if (active_) unlock();
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// RLU dereference: returns the version of `p` this session must read.
    template <typename T>
    T* dereference(T* p) const {
      if (p == nullptr) return nullptr;
      ObjHeader* h = header_of(p);
      uintptr_t c = h->copy.load(std::memory_order_acquire);
      if (c == 0) return p;           // unlocked original
      if (c == kCopyMark) return p;   // p is already a copy (ours, via log)
      T* cp = reinterpret_cast<T*>(c);
      const CopyHeader* ch = copy_header_of(cp);
      if (ch->owner_tid == tid_) return cp;  // our own working copy
      uint64_t wc = rlu_.threads_[ch->owner_tid]->write_clock.load(
          std::memory_order_acquire);
      // Steal the copy iff its writer committed within our snapshot.
      return (wc <= t_.local_clock.load(std::memory_order_relaxed)) ? cp : p;
    }

    /// Lock `p` for writing; returns the private copy to mutate, or null if
    /// another thread holds it (caller must abort() and retry).
    template <typename T>
    T* try_lock(T* p) {
      ObjHeader* h = header_of(p);
      uintptr_t c = h->copy.load(std::memory_order_acquire);
      if (c == kCopyMark) {  // p itself is a copy pointer
        return (copy_header_of(p)->owner_tid == tid_) ? p : nullptr;
      }
      if (c != 0) {
        T* cp = reinterpret_cast<T*>(c);
        return (copy_header_of(cp)->owner_tid == tid_) ? cp : nullptr;
      }
      // Unlocked original: clone it into our log.
      void* block =
          ::operator new(sizeof(CopyHeader) + sizeof(ObjHeader) + sizeof(T));
      auto* ch = new (block) CopyHeader{p, sizeof(T), tid_, 0};
      auto* hh =
          new (static_cast<char*>(block) + sizeof(CopyHeader)) ObjHeader{};
      hh->copy.store(kCopyMark, std::memory_order_relaxed);
      T* cp = reinterpret_cast<T*>(payload_of(hh));
      std::memcpy(static_cast<void*>(cp), static_cast<const void*>(p),
                  sizeof(T));
      uintptr_t expect = 0;
      if (!h->copy.compare_exchange_strong(expect,
                                           reinterpret_cast<uintptr_t>(cp),
                                           std::memory_order_acq_rel)) {
        ::operator delete(block);
        return nullptr;
      }
      t_.log.push_back({h, block, ch});
      writer_ = true;
      return cp;
    }

    /// Convert a (possibly copy) pointer into the stable original pointer;
    /// all pointers *stored into* RLU objects must be passed through this.
    template <typename T>
    static T* unwrap(T* p) {
      if (p == nullptr) return nullptr;
      ObjHeader* h = header_of(p);
      if (h->copy.load(std::memory_order_relaxed) == kCopyMark)
        return reinterpret_cast<T*>(
            const_cast<CopyHeader*>(copy_header_of(p))->orig);
      return p;
    }

    /// Deferred free of an object being unlinked (original or our copy of
    /// it); reclaimed after the commit's grace period.
    template <typename T>
    void free_obj(T* p) {
      T* orig = unwrap(p);
      pending_free_.push_back(header_of(orig));
    }

    bool is_writer() const { return writer_; }

    /// End the session, committing any locked objects (rlu_commit).
    void unlock() {
      assert(active_);
      if (writer_) commit();
      t_.run_cnt.fetch_add(1, std::memory_order_release);  // even: quiescent
      active_ = false;
    }

    /// Abandon the session: unlock copies without publishing them.
    void abort() {
      assert(active_);
      for (auto& e : t_.log)
        e.obj_header->copy.store(0, std::memory_order_release);
      // Copy blocks may still be inspected by concurrent dereferences that
      // loaded the copy pointer just before we detached; retire them one
      // grace period late like committed blocks.
      move_blocks_to_old();
      pending_free_.clear();
      t_.run_cnt.fetch_add(1, std::memory_order_release);
      t_.aborts++;
      active_ = false;
      writer_ = false;
    }

   private:
    void commit() {
      // Publish intent: readers with local_clock >= write_clock steal our
      // copies; everyone older must be drained before write-back. Two
      // subtleties, both load-bearing for the synchronize() early-exit:
      //  * The write clock must be *unique* — the fetch-add result, not
      //    the seed's shared `g_clock+1`. With a shared value, a reader
      //    could satisfy local_clock >= wc through another writer's tick,
      //    with no happens-before edge to OUR locks: it reads a stale
      //    unlocked header, takes the master, and races with the
      //    write-back below (reachable even under SC; TSan caught it once
      //    the suppressions came off). With the unique value, local_clock
      //    >= wc implies the reader's clock load synchronized with our
      //    fetch-add (release sequence through the RMW chain), which
      //    happens-after every lock we hold — so it must see them and
      //    steal.
      //  * A lower bound must be visible *before* the tick: a reader
      //    synced with our fetch-add could otherwise read a stale
      //    kInfClock here, conclude it must not steal, and fall back to
      //    the master mid-write-back. Stealing against the lower bound is
      //    safe — the log is final by now, only the final timestamp may
      //    still grow.
      t_.write_clock.store(rlu_.g_clock_.load(std::memory_order_acquire) + 1,
                           std::memory_order_seq_cst);
      t_.in_sync.store(true, std::memory_order_seq_cst);
      const uint64_t wc =
          rlu_.g_clock_.fetch_add(1, std::memory_order_seq_cst) + 1;
      t_.write_clock.store(wc, std::memory_order_seq_cst);
      synchronize(wc);
      // Write back copies into originals, then detach.
      for (auto& e : t_.log) {
        void* orig = e.copy_header->orig;
        const void* payload = static_cast<const char*>(e.block) +
                              sizeof(CopyHeader) + sizeof(ObjHeader);
        std::memcpy(orig, payload, e.copy_header->size);
      }
      for (auto& e : t_.log)
        e.obj_header->copy.store(0, std::memory_order_release);
      t_.write_clock.store(kInfClock, std::memory_order_release);
      // Unlinked originals: post-sync readers cannot reach them, but defer
      // one extra commit (symmetry with copy blocks) out of caution.
      for (ObjHeader* h : pending_free_) t_.defer_free.push_back(h);
      pending_free_.clear();
      // Reclaim blocks parked by the *previous* commit (double buffering),
      // then park this commit's blocks and deferred frees.
      release_blocks(t_.old_blocks);
      release_blocks(t_.defer_ready);
      move_blocks_to_old();
      t_.defer_ready.swap(t_.defer_free);
      t_.in_sync.store(false, std::memory_order_release);
      t_.commits++;
    }

    void synchronize(uint64_t wc) {
      const int n = rlu_.hwm_.get();
      uint64_t snap[kMaxThreads];
      for (int i = 0; i < n; ++i)
        snap[i] = rlu_.threads_[i]->run_cnt.load(std::memory_order_seq_cst);
      for (int i = 0; i < n; ++i) {
        if (i == tid_ || (snap[i] & 1) == 0) continue;
        RluThread& other = *rlu_.threads_[i];
        Backoff bo;
        for (;;) {
          if (other.run_cnt.load(std::memory_order_acquire) != snap[i]) break;
          if (other.local_clock.load(std::memory_order_acquire) >= wc)
            break;  // reader already sees our copies; no need to wait
          if (other.in_sync.load(std::memory_order_acquire))
            break;  // a committing writer reads nothing more of ours
          bo.pause();
        }
      }
    }

    void move_blocks_to_old() {
      for (auto& e : t_.log) t_.old_blocks.push_back(e.block);
      t_.log.clear();
    }

    Rlu& rlu_;
    RluThread& t_;
    int tid_;
    bool active_ = false;
    bool writer_ = false;
    std::vector<ObjHeader*> pending_free_;
  };

  // -- statistics -------------------------------------------------------
  uint64_t total_aborts() const {
    uint64_t n = 0;
    for (auto& t : threads_) n += t->aborts;
    return n;
  }
  uint64_t total_commits() const {
    uint64_t n = 0;
    for (auto& t : threads_) n += t->commits;
    return n;
  }
};

}  // namespace bref
