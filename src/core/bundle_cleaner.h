#pragma once
// Background bundle-entry recycler (supplementary B, Table 1).
//
// A dedicated thread periodically computes the oldest timestamp any active
// or future range query can observe (via the RqTracker announce array) and
// asks the data structure to prune every bundle down to the entries that
// snapshot still needs. Pruned entries are retired through EBR because
// in-flight range queries may still be walking them.
//
// DS duck-typing requirement: `size_t prune_bundles(int tid)`.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/thread_registry.h"
#include "core/entry_pool.h"

namespace bref {

template <typename DS>
class BundleCleaner {
 public:
  /// `delay` is the pause between cleanup passes (Table 1's d parameter).
  /// The cleaner occupies the dedicated thread slot kMaxThreads-1; workload
  /// threads must use smaller ids.
  explicit BundleCleaner(DS& ds,
                         std::chrono::milliseconds delay =
                             std::chrono::milliseconds(10))
      : ds_(&ds), delay_(delay) {
    thread_ = std::thread([this] { run(); });
  }

  ~BundleCleaner() { stop(); }

  BundleCleaner(const BundleCleaner&) = delete;
  BundleCleaner& operator=(const BundleCleaner&) = delete;

  void stop() {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  uint64_t entries_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

  /// Entry-pool counters for the structure being cleaned (pool hits,
  /// misses = slab/bypass allocations, recycles). An entry this cleaner
  /// prunes shows up as `recycled` once its EBR grace period elapses and
  /// the drain pushes it back to its owner's pool. Zero-initialized for DS
  /// types without a pooled entry path.
  EntryPoolStats pool_stats() const {
    if constexpr (requires(const DS& d) { d.entry_pool_stats(); }) {
      return ds_->entry_pool_stats();
    } else {
      return {};
    }
  }

  static constexpr int kCleanerTid = kMaxThreads - 1;

 private:
  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (delay_.count() > 0)
        cv_.wait_for(lk, delay_, [this] { return stopped_; });
      if (stopped_) return;
      lk.unlock();
      reclaimed_.fetch_add(ds_->prune_bundles(kCleanerTid),
                           std::memory_order_relaxed);
      // A prune pass holds one long EBR pin, which blocks every epoch
      // advance for its duration; with small delays that starves
      // reclamation (bags never ripen, entry recycling stalls, pools
      // re-allocate). Between passes, push the epoch and drain our own
      // bags so pruned entries reach the owners' pools within ~a pass.
      if constexpr (requires(DS& d) { d.ebr(); }) {
        ds_->ebr().quiesce(kCleanerTid);
      }
      passes_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
      if (stopped_) return;
    }
  }

  DS* ds_;
  std::chrono::milliseconds delay_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> passes_{0};
};

}  // namespace bref
