#pragma once
// The global logical clock ordering all update operations (Section 3).
//
// Every successful update operation increments `globalTs` at its
// linearization point; range queries read (without incrementing) it to fix
// their snapshot. The paper's supplementary material (Fig. 5) additionally
// evaluates a *relaxed* mode where each thread increments the clock only
// every T-th update, trading snapshot freshness for less contention on the
// counter; that policy lives here as well.

#include <atomic>
#include <cstdint>
#include <limits>

#include "common/cacheline.h"
#include "common/thread_registry.h"

namespace bref {

using timestamp_t = uint64_t;

/// Timestamp marking a bundle entry whose update is between its
/// linearization point and its finalization (Algorithm 2, PENDING_TS).
inline constexpr timestamp_t kPendingTs =
    std::numeric_limits<timestamp_t>::max();

class GlobalTimestamp {
 public:
  /// `relax_threshold` T: 1 = fully linearizable (every update increments);
  /// T > 1 = each thread increments only every T-th update (Fig. 5);
  /// kRelaxInfinite = never increments (the paper's T = ∞ extreme).
  static constexpr uint64_t kRelaxInfinite =
      std::numeric_limits<uint64_t>::max();

  explicit GlobalTimestamp(uint64_t relax_threshold = 1)
      : relax_threshold_(relax_threshold) {}

  /// Current value; used by range queries to fix their snapshot (Alg. 3
  /// line 4) and by relaxed-mode updates. seq_cst: the coordinated
  /// cross-shard protocol (sharded_set.h) orders ALL of its PENDING
  /// announce stores and epoch pins before this single load — the one
  /// total order is what lets one read() serve every shard's snapshot.
  timestamp_t read() const noexcept {
    return ts_->load(std::memory_order_seq_cst);
  }

  /// Redirect this clock onto `leader`'s counter, so several structures
  /// order their updates on ONE seq_cst timeline — the property the shard
  /// layer's single-timestamp cross-shard range queries rest on
  /// (src/shard/sharded_set.h). Quiescent-only: call before the owning
  /// structure is shared with other threads (the pointer itself is not
  /// atomic), and the leader must outlive every follower. Per-thread relax
  /// counters stay local, so Fig. 5 relaxation composes per structure.
  void share_with(GlobalTimestamp& leader) noexcept { ts_ = leader.ts_; }

  /// True when share_with redirected this instance onto another clock.
  bool is_shared() const noexcept { return ts_ != &own_; }

  /// Timestamp for an update operation reaching its linearization point.
  /// Linearizable mode: atomic fetch-and-add, returning the new value
  /// (Alg. 1 line 4). Relaxed mode: only every T-th call per thread
  /// advances the clock; others reuse the current value.
  timestamp_t update_ts(int tid) noexcept {
    if (relax_threshold_ == 1) return advance();
    if (relax_threshold_ == kRelaxInfinite) return read();
    uint64_t& c = *counters_[tid];
    if (++c >= relax_threshold_) {
      c = 0;
      return advance();
    }
    return read();
  }

  /// Unconditional increment; returns the new value.
  timestamp_t advance() noexcept {
    return ts_->fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  uint64_t relax_threshold() const noexcept { return relax_threshold_; }

 private:
  std::atomic<timestamp_t> own_{0};
  std::atomic<timestamp_t>* ts_ = &own_;  // redirected by share_with()
  const uint64_t relax_threshold_;
  CachePadded<uint64_t> counters_[kMaxThreads];
};

}  // namespace bref
