#pragma once
// Test-only synchronization hooks.
//
// The linearizability argument in Section 3.3 hinges on one narrow window:
// an update that has executed its linearization point but has not yet
// finalized its (pending) bundle entries. The paper's worked example — T1
// inserts x and stalls right before finalization; T2 then sees x via
// contains() and must also see it in a subsequent range query — is only
// testable if we can force a thread to stall in that window. These hooks are
// no-ops (one relaxed load) unless a test installs a callback.

#include <atomic>

namespace bref {

struct SyncHooks {
  using Fn = void (*)();

  /// Fired inside linearize_update() after all bundles are prepared
  /// (pending) but before the global timestamp is advanced.
  inline static std::atomic<Fn> after_prepare{nullptr};

  /// Fired after the linearization point executes but before any pending
  /// bundle entry is finalized — the window the pending protocol protects.
  inline static std::atomic<Fn> before_finalize{nullptr};

  /// Fired inside RqTracker::begin() after the query has read the global
  /// timestamp but before it replaces its PENDING announce with that value —
  /// the window oldest_active() must wait out.
  inline static std::atomic<Fn> rq_mid_announce{nullptr};

  static void run(std::atomic<Fn>& slot) {
    if (Fn f = slot.load(std::memory_order_relaxed)) f();
  }

  static void reset() {
    after_prepare.store(nullptr, std::memory_order_relaxed);
    before_finalize.store(nullptr, std::memory_order_relaxed);
    rq_mid_announce.store(nullptr, std::memory_order_relaxed);
  }
};

}  // namespace bref
