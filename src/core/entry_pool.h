#pragma once
// Per-thread pooled allocation for bundle entries (the update hot path).
//
// Every update in every bundled structure creates one BundleEntry per
// changed bundle (Algorithm 2 line 2), and the background cleaner retires
// each pruned entry through EBR. With plain new/delete the allocator — not
// the algorithm — bounds update throughput in update-heavy mixes (the TR
// follow-up, arXiv:2201.00874, singles out entry overheads as the cost to
// beat). This pool makes the steady-state entry path allocation-free:
//
//   * acquire(tid) pops from the calling thread's cache-padded free list;
//     an empty list first drains the thread's inbox of recycled entries,
//     and only then touches the allocator (one slab of kSlabEntries).
//   * Entries are stamped at slab construction with the pool slot that
//     allocated them (pool_tid). release() routes an entry back to its
//     *owner's* inbox no matter which thread frees it — the cleaner thread
//     drains EBR bags, so recycled entries flow cleaner -> updater without
//     any thread ever pushing to a list another thread pops from
//     (single-producer free list + MPSC inbox; the inbox push is a CAS
//     prepend, which is ABA-safe because nothing ever pops a single node).
//   * Entry objects are constructed once per slab and never destructed;
//     "free" entries are live objects whose `next` atomic doubles as the
//     free-list link. No placement-new churn, no aliasing tricks, and the
//     atomics stay valid objects for stale readers racing a recycle (which
//     EBR's grace period is what makes safe in the first place).
//
// The malloc bypass (set_pooling_enabled(false), or per-pool) keeps the
// old new/delete behaviour so benches can ablate pooled vs malloc with the
// same binary; entries remember their origin (pool_tid == kPoolMalloced),
// so the toggle may only be flipped while no operations are in flight.
//
// Under AddressSanitizer the payload words of a pooled-free entry (ptr and
// ts — everything except the link and the owner tag) are poisoned while
// the entry sits in a free list, so a reader that reaches a recycled entry
// *before* its EBR grace period has elapsed faults loudly instead of
// reading a stale-but-plausible timestamp (exercised by
// tests/test_entry_pool.cpp's churn test).
//
// Duck-typing requirements on T:
//   * constructor T(int32_t owner_tid);
//   * a free-list link: either a member `std::atomic<T*> next` (the
//     BundleEntry pattern — the chain link doubles as the pool link), or,
//     for types whose `next` is an array or must stay live while pooled
//     (the EBR-RQ nodes), a member function `std::atomic<T*>& pool_link()`
//     returning the atomic to thread the free list / inbox through;
//   * member `const int32_t pool_tid`;
//   * `static constexpr size_t kPoolPoisonBytes` — leading bytes safe to
//     poison while pooled (must not cover the link or `pool_tid`);
//   * optional `static constexpr size_t kPoolSlabEntries` — overrides the
//     default slab granularity (512) for bulky types like skip-list nodes.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "common/cacheline.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"

#if defined(__SANITIZE_ADDRESS__)
#define BREF_ENTRY_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BREF_ENTRY_POOL_ASAN 1
#endif
#endif
#ifdef BREF_ENTRY_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace bref {

/// Owner tag for entries handed out by the malloc bypass.
inline constexpr int32_t kPoolMalloced = -1;

/// Aggregated counters for one pool (or, via EntryPoolRegistry::totals(),
/// every pool in the process). `hits` are acquires served without touching
/// the allocator; `misses` are acquires that allocated (a slab, or a
/// bypass malloc); `recycled` counts entries returned to an inbox.
struct EntryPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t recycled = 0;
  uint64_t slabs = 0;     // slab allocations (one malloc each)
  uint64_t malloced = 0;  // bypass allocations (one malloc each)

  /// Heap allocations attributable to the entry path.
  uint64_t allocs() const { return slabs + malloced; }

  EntryPoolStats& operator-=(const EntryPoolStats& o) {
    hits -= o.hits;
    misses -= o.misses;
    recycled -= o.recycled;
    slabs -= o.slabs;
    malloced -= o.malloced;
    return *this;
  }
  EntryPoolStats& operator+=(const EntryPoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    recycled += o.recycled;
    slabs += o.slabs;
    malloced += o.malloced;
    return *this;
  }
};

/// Process-wide directory of every instantiated EntryPool<T>. The bench
/// harness reads aggregate allocation counters here without naming entry
/// types, and the pooled-vs-malloc ablation flips every pool at once.
class EntryPoolRegistry {
 public:
  using StatsFn = EntryPoolStats (*)();
  using EnableFn = void (*)(bool);

  static EntryPoolRegistry& instance() {
    static EntryPoolRegistry reg;
    return reg;
  }

  void register_pool(StatsFn stats, EnableFn enable) {
    std::lock_guard<Spinlock> g(lock_);
    pools_.push_back({stats, enable});
  }

  /// Sum of every pool's counters (pools are never unregistered).
  EntryPoolStats totals() const {
    std::lock_guard<Spinlock> g(lock_);
    EntryPoolStats s;
    for (const auto& p : pools_) s += p.stats();
    return s;
  }

  /// Flip every pool (and pools created later) between pooled and malloc
  /// mode. Only call while no structure operations are in flight.
  void set_pooling_enabled(bool on) {
    std::lock_guard<Spinlock> g(lock_);
    default_enabled_ = on;
    for (const auto& p : pools_) p.enable(on);
  }

  bool pooling_default() const {
    std::lock_guard<Spinlock> g(lock_);
    return default_enabled_;
  }

 private:
  EntryPoolRegistry() {
    // Pool-path counters for the obs exposition (core layer). Pools are
    // never unregistered, so callbacks summing totals() stay valid for
    // the registry's whole lifetime; the handles unregister them at exit
    // (MetricsRegistry is leaky, so the order is safe).
    using obs::MetricKind;
    auto cb = [](std::string name, std::string help,
                 uint64_t EntryPoolStats::* field) {
      return obs::registry().add_callback(
          MetricKind::kCounter, std::move(name), std::move(help), "",
          [field] {
            return static_cast<double>(instance().totals().*field);
          });
    };
    obs_handles_[0] = cb("bref_entry_pool_hits_total",
                         "Entry acquires served from a per-thread free list",
                         &EntryPoolStats::hits);
    obs_handles_[1] = cb("bref_entry_pool_misses_total",
                         "Entry acquires that touched the allocator",
                         &EntryPoolStats::misses);
    obs_handles_[2] = cb("bref_entry_pool_recycled_total",
                         "Entries returned to a pool inbox after EBR grace",
                         &EntryPoolStats::recycled);
    obs_handles_[3] = obs::registry().add_callback(
        MetricKind::kCounter, "bref_entry_pool_allocs_total",
        "Heap allocations on the entry path (slabs + bypass)", "",
        [] { return static_cast<double>(instance().totals().allocs()); });
  }

  struct PoolRef {
    StatsFn stats;
    EnableFn enable;
  };
  mutable Spinlock lock_;
  bool default_enabled_ = true;
  std::vector<PoolRef> pools_;
  obs::MetricsRegistry::Handle obs_handles_[4];
};

template <typename T>
class EntryPool {
 public:
  /// Entries per slab: one miss buys this many subsequent local hits. The
  /// default — 512 32-byte bundle entries = 16 KiB per slab — is small
  /// enough that a thread that only ever needs a handful of entries wastes
  /// little; bulkier types (skip-list nodes carry a kMaxHeight link array)
  /// dial it down via T::kPoolSlabEntries.
  static constexpr size_t kSlabEntries = [] {
    if constexpr (requires { T::kPoolSlabEntries; })
      return size_t{T::kPoolSlabEntries};
    else
      return size_t{512};
  }();

  /// Leaky singleton: never destroyed, so a structure destroyed during
  /// static teardown can still recycle its chains. Slabs stay reachable
  /// through the instance pointer, so LeakSanitizer does not report them.
  static EntryPool& instance() {
    static EntryPool* pool = new EntryPool();
    return *pool;
  }

  /// Pop an entry for thread `tid`. The returned entry's fields (other
  /// than pool_tid) are unspecified; the caller initializes them before
  /// publication.
  T* acquire(int tid) {
    assert(tid >= 0 && tid < kMaxThreads);
    if (!enabled_.load(std::memory_order_relaxed)) {
      PerThread& pt = *slots_[tid];
      bump(pt.misses);
      bump(pt.malloced);
      return new T(kPoolMalloced);
    }
    PerThread& pt = *slots_[tid];
    T* e = pt.free_head;
    if (e == nullptr) {
      // Acquire pairs with the release CAS in release_pooled: everything
      // the recycler did before pushing (EBR drain included) is visible
      // before we hand the entry out for reuse.
      e = pt.inbox.exchange(nullptr, std::memory_order_acquire);
    }
    if (e == nullptr) {
      e = new_slab(pt, tid);
      bump(pt.misses);
    } else {
      bump(pt.hits);
    }
    pt.free_head = link_of(e).load(std::memory_order_relaxed);
    unpoison(e);
    return e;
  }

  /// Return an entry from any thread. Routes to the owner slot's inbox;
  /// bypass entries go back to the heap.
  static void release(T* e) {
    if (e->pool_tid == kPoolMalloced) {
      delete e;
      return;
    }
    instance().release_pooled(e);
  }

  /// Pooled vs malloc toggle (ablation baseline). Entries remember their
  /// origin, so flipping never mismatches acquire/release — but only flip
  /// while no operations are in flight (the flag is read unsynchronized).
  void set_pooling_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool pooling_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  EntryPoolStats stats() const {
    EntryPoolStats s;
    for (int i = 0; i < kMaxThreads; ++i) {
      const PerThread& pt = *slots_[i];
      s.hits += pt.hits.load(std::memory_order_relaxed);
      s.misses += pt.misses.load(std::memory_order_relaxed);
      s.recycled += pt.recycled.load(std::memory_order_relaxed);
      s.slabs += pt.slabs.load(std::memory_order_relaxed);
      s.malloced += pt.malloced.load(std::memory_order_relaxed);
    }
    return s;
  }

  EntryPool(const EntryPool&) = delete;
  EntryPool& operator=(const EntryPool&) = delete;

 private:
  struct PerThread {
    T* free_head = nullptr;          // owner-only LIFO, linked via T::next
    std::atomic<T*> inbox{nullptr};  // MPSC: any thread pushes, owner drains
    // Single-writer counters (owner thread) except `recycled` (any
    // pusher); all atomic so aggregation never races the hot path.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> recycled{0};
    std::atomic<uint64_t> slabs{0};
    std::atomic<uint64_t> malloced{0};
  };

  EntryPool() {
    enabled_.store(EntryPoolRegistry::instance().pooling_default(),
                   std::memory_order_relaxed);
    EntryPoolRegistry::instance().register_pool(
        [] { return instance().stats(); },
        [](bool on) { instance().set_pooling_enabled(on); });
  }

  /// Single-writer increment: a plain add, not a locked RMW.
  static void bump(std::atomic<uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  /// The free-list/inbox link of an entry: `T::pool_link()` when the type
  /// provides one (nodes whose `next` is an array or carries structure
  /// state the pool must not clobber), else the `next` atomic itself.
  static std::atomic<T*>& link_of(T* e) {
    if constexpr (requires { e->pool_link(); })
      return e->pool_link();
    else
      return e->next;
  }

  void release_pooled(T* e) {
    PerThread& pt = *slots_[e->pool_tid];
    poison(e);
    T* head = pt.inbox.load(std::memory_order_relaxed);
    do {
      link_of(e).store(head, std::memory_order_relaxed);
      // Release pairs with the acquire drain in acquire(); CAS-prepend is
      // ABA-safe (no one pops individual nodes from the inbox).
    } while (!pt.inbox.compare_exchange_weak(head, e,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    pt.recycled.fetch_add(1, std::memory_order_relaxed);
  }

  /// Allocate and link one slab into tid's free list; returns the head.
  T* new_slab(PerThread& pt, int tid) {
    T* slab = static_cast<T*>(::operator new(
        kSlabEntries * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t i = 0; i < kSlabEntries; ++i) {
      T* e = ::new (static_cast<void*>(slab + i)) T(static_cast<int32_t>(tid));
      link_of(e).store(i + 1 < kSlabEntries ? slab + i + 1 : nullptr,
                       std::memory_order_relaxed);
    }
    {
      std::lock_guard<Spinlock> g(slabs_lock_);
      slab_list_.push_back(slab);
    }
    bump(pt.slabs);
    pt.free_head = slab;
    return slab;
  }

  static void poison(T* e) {
#ifdef BREF_ENTRY_POOL_ASAN
    __asan_poison_memory_region(e, T::kPoolPoisonBytes);
#else
    (void)e;
#endif
  }
  static void unpoison(T* e) {
#ifdef BREF_ENTRY_POOL_ASAN
    __asan_unpoison_memory_region(e, T::kPoolPoisonBytes);
#else
    (void)e;
#endif
  }

  std::atomic<bool> enabled_{true};
  Spinlock slabs_lock_;
  std::vector<T*> slab_list_;  // retained for reachability; never freed
  CachePadded<PerThread> slots_[kMaxThreads];
};

}  // namespace bref
