#pragma once
// Per-thread pooled allocation for bundle entries (the update hot path).
//
// Every update in every bundled structure creates one BundleEntry per
// changed bundle (Algorithm 2 line 2), and the background cleaner retires
// each pruned entry through EBR. With plain new/delete the allocator — not
// the algorithm — bounds update throughput in update-heavy mixes (the TR
// follow-up, arXiv:2201.00874, singles out entry overheads as the cost to
// beat). This pool makes the steady-state entry path allocation-free:
//
//   * acquire(tid) pops from the calling thread's cache-padded free list;
//     an empty list first drains the thread's inbox of recycled entries,
//     and only then touches the allocator (one slab of kSlabEntries).
//   * Entries are stamped at slab construction with the pool slot that
//     allocated them (pool_tid). release() routes an entry back to its
//     *owner's* inbox no matter which thread frees it — the cleaner thread
//     drains EBR bags, so recycled entries flow cleaner -> updater without
//     any thread ever pushing to a list another thread pops from
//     (single-producer free list + MPSC inbox; the inbox push is a CAS
//     prepend, which is ABA-safe because nothing ever pops a single node).
//   * Entry objects are constructed once per slab and never destructed;
//     "free" entries are live objects whose `next` atomic doubles as the
//     free-list link. No placement-new churn, no aliasing tricks, and the
//     atomics stay valid objects for stale readers racing a recycle (which
//     EBR's grace period is what makes safe in the first place).
//
// The malloc bypass (set_pooling_enabled(false), or per-pool) keeps the
// old new/delete behaviour so benches can ablate pooled vs malloc with the
// same binary; entries remember their origin (pool_tid == kPoolMalloced),
// so the toggle may only be flipped while no operations are in flight.
//
// Under AddressSanitizer the payload words of a pooled-free entry (ptr and
// ts — everything except the link and the owner tag) are poisoned while
// the entry sits in a free list, so a reader that reaches a recycled entry
// *before* its EBR grace period has elapsed faults loudly instead of
// reading a stale-but-plausible timestamp (exercised by
// tests/test_entry_pool.cpp's churn test).
//
// Duck-typing requirements on T:
//   * constructor T(int32_t owner_tid);
//   * a free-list link: either a member `std::atomic<T*> next` (the
//     BundleEntry pattern — the chain link doubles as the pool link), or,
//     for types whose `next` is an array or must stay live while pooled
//     (the EBR-RQ nodes), a member function `std::atomic<T*>& pool_link()`
//     returning the atomic to thread the free list / inbox through;
//   * member `const int32_t pool_tid`;
//   * `static constexpr size_t kPoolPoisonBytes` — leading bytes safe to
//     poison while pooled (must not cover the link or `pool_tid`);
//   * optional `static constexpr size_t kPoolSlabEntries` — overrides the
//     default slab granularity (512) for bulky types like skip-list nodes.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "common/cacheline.h"
#include "common/numa.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "obs/metrics.h"

#if defined(__SANITIZE_ADDRESS__)
#define BREF_ENTRY_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BREF_ENTRY_POOL_ASAN 1
#endif
#endif
#ifdef BREF_ENTRY_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace bref {

/// Owner tag for entries handed out by the malloc bypass.
inline constexpr int32_t kPoolMalloced = -1;

/// Arena slots per pool, including arena 0 (the default). 64 named arenas
/// is comfortably past any shard count this repo sweeps; exhaustion
/// degrades to the default arena, never fails.
inline constexpr int kMaxArenas = 64;

/// Owner tag encoding: an entry allocated by thread `tid` under arena `a`
/// is stamped `a * kMaxThreads + tid`, so release() can route it home to
/// the exact (arena, thread) free list that owns its slab no matter which
/// thread or arena context frees it. Arena 0 keeps the historical tag ==
/// tid.
inline constexpr int32_t pool_owner_tag(int arena, int tid) noexcept {
  return static_cast<int32_t>(arena) * kMaxThreads + tid;
}

/// Aggregated counters for one pool (or, via EntryPoolRegistry::totals(),
/// every pool in the process). `hits` are acquires served without touching
/// the allocator; `misses` are acquires that allocated (a slab, or a
/// bypass malloc); `recycled` counts entries returned to an inbox.
struct EntryPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t recycled = 0;
  uint64_t slabs = 0;     // slab allocations (one malloc each)
  uint64_t malloced = 0;  // bypass allocations (one malloc each)

  /// Heap allocations attributable to the entry path.
  uint64_t allocs() const { return slabs + malloced; }

  EntryPoolStats& operator-=(const EntryPoolStats& o) {
    hits -= o.hits;
    misses -= o.misses;
    recycled -= o.recycled;
    slabs -= o.slabs;
    malloced -= o.malloced;
    return *this;
  }
  EntryPoolStats& operator+=(const EntryPoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    recycled += o.recycled;
    slabs += o.slabs;
    malloced += o.malloced;
    return *this;
  }
};

/// Process-wide directory of every instantiated EntryPool<T>. The bench
/// harness reads aggregate allocation counters here without naming entry
/// types, and the pooled-vs-malloc ablation flips every pool at once.
class EntryPoolRegistry {
 public:
  using StatsFn = EntryPoolStats (*)();
  using ArenaStatsFn = EntryPoolStats (*)(int);
  using EnableFn = void (*)(bool);

  static EntryPoolRegistry& instance() {
    static EntryPoolRegistry reg;
    return reg;
  }

  void register_pool(StatsFn stats, ArenaStatsFn arena_stats, EnableFn enable) {
    std::lock_guard<Spinlock> g(lock_);
    pools_.push_back({stats, arena_stats, enable});
  }

  /// Sum of every pool's counters (pools are never unregistered).
  EntryPoolStats totals() const {
    std::lock_guard<Spinlock> g(lock_);
    EntryPoolStats s;
    for (const auto& p : pools_) s += p.stats();
    return s;
  }

  /// Sum of every pool's counters for one arena (the per-arena obs gauges
  /// in ArenaRegistry read this).
  EntryPoolStats arena_totals(int arena) const {
    std::lock_guard<Spinlock> g(lock_);
    EntryPoolStats s;
    for (const auto& p : pools_) s += p.arena_stats(arena);
    return s;
  }

  /// Flip every pool (and pools created later) between pooled and malloc
  /// mode. Only call while no structure operations are in flight.
  void set_pooling_enabled(bool on) {
    std::lock_guard<Spinlock> g(lock_);
    default_enabled_ = on;
    for (const auto& p : pools_) p.enable(on);
  }

  bool pooling_default() const {
    std::lock_guard<Spinlock> g(lock_);
    return default_enabled_;
  }

 private:
  EntryPoolRegistry() {
    // Pool-path counters for the obs exposition (core layer). Pools are
    // never unregistered, so callbacks summing totals() stay valid for
    // the registry's whole lifetime; the handles unregister them at exit
    // (MetricsRegistry is leaky, so the order is safe).
    using obs::MetricKind;
    auto cb = [](std::string name, std::string help,
                 uint64_t EntryPoolStats::* field) {
      return obs::registry().add_callback(
          MetricKind::kCounter, std::move(name), std::move(help), "",
          [field] {
            return static_cast<double>(instance().totals().*field);
          });
    };
    obs_handles_[0] = cb("bref_entry_pool_hits_total",
                         "Entry acquires served from a per-thread free list",
                         &EntryPoolStats::hits);
    obs_handles_[1] = cb("bref_entry_pool_misses_total",
                         "Entry acquires that touched the allocator",
                         &EntryPoolStats::misses);
    obs_handles_[2] = cb("bref_entry_pool_recycled_total",
                         "Entries returned to a pool inbox after EBR grace",
                         &EntryPoolStats::recycled);
    obs_handles_[3] = obs::registry().add_callback(
        MetricKind::kCounter, "bref_entry_pool_allocs_total",
        "Heap allocations on the entry path (slabs + bypass)", "",
        [] { return static_cast<double>(instance().totals().allocs()); });
  }

  struct PoolRef {
    StatsFn stats;
    ArenaStatsFn arena_stats;
    EnableFn enable;
  };
  mutable Spinlock lock_;
  bool default_enabled_ = true;
  std::vector<PoolRef> pools_;
  obs::MetricsRegistry::Handle obs_handles_[4];
};

/// Process-wide directory of named slab arenas. An arena is a partition of
/// every EntryPool's per-thread slots: entries acquired while an arena is
/// current (ArenaScope) come from slabs owned by that (arena, thread)
/// slot, are stamped with the encoded owner tag, and recycle back to the
/// same slot through the existing MPSC inboxes no matter who frees them.
/// The ShardedSet names one arena per shard index ("shard0", "shard1",
/// ...), so a shard's entries live in shard-owned slabs — first-touch
/// placed by the acquiring thread and, when the arena carries a NUMA node,
/// mbind-preferred onto it (common/numa.h).
///
/// Arenas are find-or-create by name and never destroyed (ids are stable
/// process-wide, like the pools themselves), so repeated ShardedSet
/// construction reuses "shard<i>" rather than leaking table slots. Each
/// arena registers two obs gauges at creation: slab count and the recycle-
/// locality hit ratio (acquires served from the arena's own free lists /
/// inboxes over all its acquires).
class ArenaRegistry {
 public:
  static ArenaRegistry& instance() {
    static auto* reg = new ArenaRegistry();
    return *reg;
  }

  /// Find-or-create by name; `numa_node >= 0` asks slabs to prefer that
  /// node (recorded on first creation; later callers inherit it). Returns
  /// the arena id, or 0 (the default arena) when the table is full.
  int acquire(const std::string& name, int numa_node = -1) {
    std::lock_guard<Spinlock> g(lock_);
    for (int i = 0; i < count_; ++i)
      if (names_[i] == name) return i;
    if (count_ >= kMaxArenas) return 0;
    const int id = count_++;
    names_[id] = name;
    nodes_[id] = numa_node;
    register_gauges(id);
    return id;
  }

  /// Preferred NUMA node for `arena`'s slabs; -1 = unbound.
  int numa_node(int arena) const {
    std::lock_guard<Spinlock> g(lock_);
    return arena >= 0 && arena < count_ ? nodes_[arena] : -1;
  }

  std::string name(int arena) const {
    std::lock_guard<Spinlock> g(lock_);
    return arena >= 0 && arena < count_ ? names_[arena] : std::string();
  }

  int count() const {
    std::lock_guard<Spinlock> g(lock_);
    return count_;
  }

  ArenaRegistry(const ArenaRegistry&) = delete;
  ArenaRegistry& operator=(const ArenaRegistry&) = delete;

 private:
  ArenaRegistry() {
    names_[0] = "default";
    nodes_[0] = -1;
    count_ = 1;
    register_gauges(0);
  }

  void register_gauges(int id) {
    using obs::MetricKind;
    const std::string label = "arena=\"" + names_[id] + "\"";
    slab_handles_[id] = obs::registry().add_callback(
        MetricKind::kGauge, "bref_entry_pool_arena_slabs",
        "Slabs allocated under this arena (sum over pools)", label, [id] {
          return static_cast<double>(
              EntryPoolRegistry::instance().arena_totals(id).slabs);
        });
    ratio_handles_[id] = obs::registry().add_callback(
        MetricKind::kGauge, "bref_entry_pool_arena_hit_ratio",
        "Share of this arena's acquires served from its own free lists / "
        "recycle inboxes (locality: no allocator, no foreign slab)",
        label, [id] {
          const EntryPoolStats s =
              EntryPoolRegistry::instance().arena_totals(id);
          const uint64_t total = s.hits + s.misses;
          return total == 0 ? 1.0
                            : static_cast<double>(s.hits) /
                                  static_cast<double>(total);
        });
  }

  mutable Spinlock lock_;
  int count_ = 0;
  std::string names_[kMaxArenas];
  int nodes_[kMaxArenas] = {};
  obs::MetricsRegistry::Handle slab_handles_[kMaxArenas];
  obs::MetricsRegistry::Handle ratio_handles_[kMaxArenas];
};

namespace detail {
/// The calling thread's current arena; 0 (default) unless an ArenaScope is
/// live. Thread-local so shard routing can set it around delegation
/// without threading a parameter through every structure's update path.
inline thread_local int tls_arena = 0;
}  // namespace detail

inline int current_arena() noexcept { return detail::tls_arena; }

/// RAII arena selection: every EntryPool::acquire on this thread inside
/// the scope allocates from `arena`'s slots. Scopes nest (the previous
/// arena is restored); release() ignores the scope entirely — entries
/// always route home by their owner tag.
class ArenaScope {
 public:
  explicit ArenaScope(int arena) noexcept : prev_(detail::tls_arena) {
    detail::tls_arena =
        arena >= 0 && arena < kMaxArenas ? arena : 0;
  }
  ~ArenaScope() { detail::tls_arena = prev_; }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  int prev_;
};

template <typename T>
class EntryPool {
 public:
  /// Entries per slab: one miss buys this many subsequent local hits. The
  /// default — 512 32-byte bundle entries = 16 KiB per slab — is small
  /// enough that a thread that only ever needs a handful of entries wastes
  /// little; bulkier types (skip-list nodes carry a kMaxHeight link array)
  /// dial it down via T::kPoolSlabEntries.
  static constexpr size_t kSlabEntries = [] {
    if constexpr (requires { T::kPoolSlabEntries; })
      return size_t{T::kPoolSlabEntries};
    else
      return size_t{512};
  }();

  /// Leaky singleton: never destroyed, so a structure destroyed during
  /// static teardown can still recycle its chains. Slabs stay reachable
  /// through the instance pointer, so LeakSanitizer does not report them.
  static EntryPool& instance() {
    static EntryPool* pool = new EntryPool();
    return *pool;
  }

  /// Pop an entry for thread `tid`, from the current arena's slots (the
  /// default arena unless an ArenaScope is live). The returned entry's
  /// fields (other than pool_tid) are unspecified; the caller initializes
  /// them before publication.
  T* acquire(int tid) {
    assert(tid >= 0 && tid < kMaxThreads);
    const int arena = current_arena();
    PerThread& pt = slot(arena, tid);
    if (!enabled_.load(std::memory_order_relaxed)) {
      bump(pt.misses);
      bump(pt.malloced);
      return new T(kPoolMalloced);
    }
    T* e = pt.free_head;
    if (e == nullptr) {
      // Acquire pairs with the release CAS in release_pooled: everything
      // the recycler did before pushing (EBR drain included) is visible
      // before we hand the entry out for reuse.
      e = pt.inbox.exchange(nullptr, std::memory_order_acquire);
    }
    if (e == nullptr) {
      e = new_slab(pt, arena, tid);
      bump(pt.misses);
    } else {
      bump(pt.hits);
    }
    pt.free_head = link_of(e).load(std::memory_order_relaxed);
    unpoison(e);
    return e;
  }

  /// Return an entry from any thread. Routes to the owner slot's inbox;
  /// bypass entries go back to the heap.
  static void release(T* e) {
    if (e->pool_tid == kPoolMalloced) {
      delete e;
      return;
    }
    instance().release_pooled(e);
  }

  /// Pooled vs malloc toggle (ablation baseline). Entries remember their
  /// origin, so flipping never mismatches acquire/release — but only flip
  /// while no operations are in flight (the flag is read unsynchronized).
  void set_pooling_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool pooling_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  EntryPoolStats stats() const {
    EntryPoolStats s;
    for (int a = 0; a < kMaxArenas; ++a) s += arena_stats(a);
    return s;
  }

  /// Counters for one arena's slots of this pool (never-created arenas
  /// read as zero without materializing them).
  EntryPoolStats arena_stats(int arena) const {
    EntryPoolStats s;
    if (arena < 0 || arena >= kMaxArenas) return s;
    const ArenaSlots* as =
        arena == 0 ? &base_ : extra_[arena].load(std::memory_order_acquire);
    if (as == nullptr) return s;
    for (int i = 0; i < kMaxThreads; ++i) {
      const PerThread& pt = *as->slots[i];
      s.hits += pt.hits.load(std::memory_order_relaxed);
      s.misses += pt.misses.load(std::memory_order_relaxed);
      s.recycled += pt.recycled.load(std::memory_order_relaxed);
      s.slabs += pt.slabs.load(std::memory_order_relaxed);
      s.malloced += pt.malloced.load(std::memory_order_relaxed);
    }
    return s;
  }

  EntryPool(const EntryPool&) = delete;
  EntryPool& operator=(const EntryPool&) = delete;

 private:
  struct PerThread {
    T* free_head = nullptr;          // owner-only LIFO, linked via T::next
    std::atomic<T*> inbox{nullptr};  // MPSC: any thread pushes, owner drains
    // Single-writer counters (owner thread) except `recycled` (any
    // pusher); all atomic so aggregation never races the hot path.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> recycled{0};
    std::atomic<uint64_t> slabs{0};
    std::atomic<uint64_t> malloced{0};
  };

  /// Per-arena block of per-thread slots, materialized lazily the first
  /// time a thread acquires under that arena (and never freed: the tag on
  /// a live entry must stay routable for the process lifetime, like the
  /// pool itself).
  struct ArenaSlots {
    CachePadded<PerThread> slots[kMaxThreads];
  };

  EntryPool() {
    enabled_.store(EntryPoolRegistry::instance().pooling_default(),
                   std::memory_order_relaxed);
    EntryPoolRegistry::instance().register_pool(
        [] { return instance().stats(); },
        [](int arena) { return instance().arena_stats(arena); },
        [](bool on) { instance().set_pooling_enabled(on); });
  }

  /// Single-writer increment: a plain add, not a locked RMW.
  static void bump(std::atomic<uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  /// The free-list/inbox link of an entry: `T::pool_link()` when the type
  /// provides one (nodes whose `next` is an array or carries structure
  /// state the pool must not clobber), else the `next` atomic itself.
  static std::atomic<T*>& link_of(T* e) {
    if constexpr (requires { e->pool_link(); })
      return e->pool_link();
    else
      return e->next;
  }

  /// The (arena, tid) slot block, creating the arena's block on first use.
  /// Lock-free fast path: one acquire load when the block exists.
  PerThread& slot(int arena, int tid) {
    if (arena == 0) return *base_.slots[tid];
    ArenaSlots* as = extra_[arena].load(std::memory_order_acquire);
    if (as == nullptr) {
      auto* fresh = new ArenaSlots();
      ArenaSlots* expect = nullptr;
      if (extra_[arena].compare_exchange_strong(expect, fresh,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        as = fresh;
      } else {
        delete fresh;
        as = expect;
      }
    }
    return *as->slots[tid];
  }

  void release_pooled(T* e) {
    // Decode the owner tag (pool_owner_tag): the slot the entry's slab
    // belongs to, independent of the releasing thread's arena scope.
    const int32_t tag = e->pool_tid;
    PerThread& pt = slot(tag / kMaxThreads, tag % kMaxThreads);
    poison(e);
    T* head = pt.inbox.load(std::memory_order_relaxed);
    do {
      link_of(e).store(head, std::memory_order_relaxed);
      // Release pairs with the acquire drain in acquire(); CAS-prepend is
      // ABA-safe (no one pops individual nodes from the inbox).
    } while (!pt.inbox.compare_exchange_weak(head, e,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    pt.recycled.fetch_add(1, std::memory_order_relaxed);
  }

  /// Allocate and link one slab into (arena, tid)'s free list; returns the
  /// head. Placement: the mbind preference (when the arena carries a NUMA
  /// node) is applied BEFORE the construction loop below first-touches
  /// every entry on the acquiring thread, so the pages land on the arena's
  /// node either way the kernel honors.
  T* new_slab(PerThread& pt, int arena, int tid) {
    T* slab = static_cast<T*>(::operator new(
        kSlabEntries * sizeof(T), std::align_val_t(alignof(T))));
    numa_bind_memory(slab, kSlabEntries * sizeof(T),
                     ArenaRegistry::instance().numa_node(arena));
    const int32_t tag = pool_owner_tag(arena, tid);
    for (size_t i = 0; i < kSlabEntries; ++i) {
      T* e = ::new (static_cast<void*>(slab + i)) T(tag);
      link_of(e).store(i + 1 < kSlabEntries ? slab + i + 1 : nullptr,
                       std::memory_order_relaxed);
    }
    {
      std::lock_guard<Spinlock> g(slabs_lock_);
      slab_list_.push_back(slab);
    }
    bump(pt.slabs);
    pt.free_head = slab;
    return slab;
  }

  static void poison(T* e) {
#ifdef BREF_ENTRY_POOL_ASAN
    __asan_poison_memory_region(e, T::kPoolPoisonBytes);
#else
    (void)e;
#endif
  }
  static void unpoison(T* e) {
#ifdef BREF_ENTRY_POOL_ASAN
    __asan_unpoison_memory_region(e, T::kPoolPoisonBytes);
#else
    (void)e;
#endif
  }

  std::atomic<bool> enabled_{true};
  Spinlock slabs_lock_;
  std::vector<T*> slab_list_;  // retained for reachability; never freed
  ArenaSlots base_;            // arena 0: the default (unscoped) slots
  std::atomic<ArenaSlots*> extra_[kMaxArenas] = {};  // lazily materialized
};

}  // namespace bref
