#pragma once
// The bundle building block (Section 3, Listings 1-2, Algorithms 1-2).
//
// A Bundle is the history of one link in a linked data structure: a stack of
// (pointer, timestamp) entries, newest first, strictly ordered by timestamp.
// Update operations prepend a PENDING entry before their linearization point
// and stamp it with the new global timestamp right after (Algorithm 1);
// range queries dereference the newest entry whose timestamp does not exceed
// their snapshot (Section 3.3), waiting out a pending head so no linearized-
// but-unfinalized update is missed.
//
// Entry chains are only ever (a) prepended to at the head by updates and
// (b) truncated at the tail by the cleaner (reclaim_older). Readers may walk
// a truncated tail; reclamation is therefore routed through EBR, and entries
// themselves come from per-thread pools (core/entry_pool.h) so the
// steady-state update path never touches the allocator: prepare() pops from
// the calling thread's pool, EBR's drain recycles pruned entries back to
// their owner's pool.
//
// Memory-order audit (DESIGN.md §2 has the table form):
//   The chain obeys one structural rule — an entry is prepended only after
//   the previous head is finalized — and every acquire in this file exists
//   to found the same transitivity argument: each preparer ACQUIRE-reads
//   the head it prepends to and RELEASE-publishes its own entry, so a
//   reader that acquire-loads the head happens-after the publication (and
//   finalization) of *every* entry currently reachable from it. Everything
//   deeper in the chain can therefore be read relaxed: the values are
//   pinned by coherence once the happens-before edge from the head load
//   exists. The only seq_cst in the protocol lives in GlobalTimestamp —
//   an update's entry is prepended before the clock ticks, so a range
//   query that reads clock value T is ordered after every update stamped
//   <= T and must find its entry at or below the head it loads.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "core/entry_pool.h"
#include "core/global_timestamp.h"
#include "core/sync_hooks.h"
#include "epoch/ebr.h"
#include "obs/metrics.h"

namespace bref {

/// Chain-depth histogram (obs, core layer): how many entries a bundle
/// dereference walks before finding its timestamp — the runtime view of
/// the technical report's depth-vs-cost breakdown. One histogram across
/// all Bundle instantiations (free function, not a template member).
/// Sampled 1-in-64 so the hot walk pays one thread-local countdown, no
/// atomic, in the unsampled case.
inline void obs_sample_bundle_depth(size_t hops) {
  if constexpr (!obs::kEnabled) return;
  thread_local uint32_t countdown = 0;
  if (countdown-- != 0) return;
  countdown = 63;
  static obs::Histogram& h = obs::registry().histogram(
      "bref_bundle_chain_depth",
      "Entries walked per bundle dereference (sampled 1-in-64)");
  h.observe(hops);
}

inline obs::Counter& obs_bundle_pruned_counter() {
  static obs::Counter& c = obs::registry().counter(
      "bref_bundle_entries_pruned_total",
      "Bundle entries retired by reclaim_older (cleaner/maintenance)");
  return c;
}

/// One link version: 32 bytes, 32-byte aligned, so `ts` and `next` — the
/// two fields a dereference touches per hop — always share one cache line
/// with the pointer payload (a 24-byte unaligned entry could straddle).
/// `pool_tid` rides in what would otherwise be padding: the pool slot the
/// entry was allocated from (recycles route back there), or kPoolMalloced
/// when the pooled path is ablated away.
template <typename NodeT>
struct alignas(32) BundleEntry {
  NodeT* ptr;
  std::atomic<timestamp_t> ts;
  std::atomic<BundleEntry*> next;  // next-older entry; free-list link while pooled
  const int32_t pool_tid;

  explicit BundleEntry(int32_t owner)
      : ptr(nullptr), ts(0), next(nullptr), pool_tid(owner) {}

  /// Leading bytes (ptr, ts) ASan-poisoned while the entry sits in a free
  /// list; `next` and `pool_tid` stay readable for the pool itself.
  static constexpr size_t kPoolPoisonBytes =
      sizeof(NodeT*) + sizeof(std::atomic<timestamp_t>);

  /// EBR recycle hook (Ebr::retire_recycle): hand the entry back to its
  /// owning pool — or the heap, for malloc-bypass entries.
  static void recycle(BundleEntry* e) { EntryPool<BundleEntry>::release(e); }
};

/// Result of dereferencing a bundle at a snapshot timestamp. `found` is
/// false when no entry satisfies the timestamp (the link did not exist at
/// snapshot time — Algorithm 3 line 7 restarts the range query).
template <typename NodeT>
struct BundleDeref {
  NodeT* ptr = nullptr;
  bool found = false;
};

template <typename NodeT>
class Bundle {
 public:
  using Entry = BundleEntry<NodeT>;

  static_assert(sizeof(Entry) == alignof(Entry),
                "entry must tile exactly so ts/next never straddle a line");
  static_assert(kCacheLine % sizeof(Entry) == 0,
                "whole entries per cache line");

  Bundle() = default;
  Bundle(const Bundle&) = delete;
  Bundle& operator=(const Bundle&) = delete;

  ~Bundle() {
    // Quiescent teardown only: chains go straight back to their pools.
    Entry* e = head_.load(std::memory_order_relaxed);
    while (e != nullptr) {
      Entry* n = e->next.load(std::memory_order_relaxed);
      Entry::recycle(e);
      e = n;
    }
  }

  /// Install the very first entry with a known timestamp; used when
  /// initializing sentinel links before the structure is shared (e.g. the
  /// head sentinel's timestamp-0 entry in Figure 1). Runs on the
  /// constructing thread, whose dense id is unknown — so it must NOT
  /// touch any pool slot (free lists are single-consumer; popping another
  /// thread's slot would race). Sentinel entries are rare (a handful per
  /// structure), so they take the heap path and are tagged accordingly.
  void init(NodeT* ptr, timestamp_t ts) {
    assert(head_.load(std::memory_order_relaxed) == nullptr);
    Entry* e = new Entry(kPoolMalloced);
    e->ptr = ptr;
    e->ts.store(ts, std::memory_order_relaxed);
    head_.store(e, std::memory_order_release);
  }

  /// Algorithm 2 (PrepareBundle): atomically prepend a PENDING entry for
  /// `ptr`, first waiting for any concurrent update's pending head to be
  /// finalized so entries stay ordered. The entry comes from `tid`'s pool
  /// slot — zero heap traffic in steady state. Returns the entry for
  /// finalize().
  Entry* prepare(int tid, NodeT* ptr) {
    Entry* fresh = acquire_entry(tid, ptr, kPendingTs);
    Backoff bo;
    for (;;) {
      // Acquire: founds the transitivity argument (header comment) — our
      // release-CAS below passes on everything this load saw.
      Entry* expected = head_.load(std::memory_order_acquire);
      fresh->next.store(expected, std::memory_order_relaxed);
      if (expected != nullptr) {
        // Block behind an in-flight update on this same link (Alg. 2
        // line 8). Acquire pairs with finalize()'s release so the clamp
        // below may reread the stamp relaxed (same-thread coherence).
        while (expected->ts.load(std::memory_order_acquire) == kPendingTs)
          bo.pause();
      }
      // Success = release: publishes fresh's fields and, transitively, the
      // finalized chain behind it. Failure needs no ordering — the loop
      // reloads the head with acquire before using anything.
      if (head_.compare_exchange_weak(expected, fresh,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return fresh;
      }
    }
  }

  /// Stamp a prepared entry, making it visible to range queries. The clamp
  /// against the next-older entry keeps the chain ordered under the relaxed
  /// timestamp policy (Fig. 5), where two threads may hold the same clock
  /// value; with the linearizable policy it never fires.
  static void finalize(Entry* e, timestamp_t ts) {
    // Both relaxed loads reread values this thread already read with
    // acquire in prepare() (its own stores, and the pending-wait on the
    // older entry); coherence pins them.
    Entry* older = e->next.load(std::memory_order_relaxed);
    if (older != nullptr) {
      timestamp_t floor = older->ts.load(std::memory_order_relaxed);
      if (ts < floor) ts = floor;
    }
    // Release, not seq_cst: a range query is ordered relative to this
    // update by the seq_cst global-timestamp accesses (it reads the clock
    // *after* our fetch-add if its snapshot covers us), and the entry
    // itself was already published by prepare()'s CAS. The stamp only has
    // to release the waiting readers spinning in dereference().
    e->ts.store(ts, std::memory_order_release);
  }

  /// DereferenceBundle (Section 3.3): wait out a pending head, then return
  /// the newest link whose timestamp is <= `ts`.
  BundleDeref<NodeT> dereference(timestamp_t ts) const {
    // Acquire: happens-after the publication of every entry reachable from
    // this head (transitivity argument, header comment) — which is what
    // lets every per-hop load below be relaxed.
    Entry* e = head_.load(std::memory_order_acquire);
    if (e != nullptr) {
      Backoff bo;
      // Acquire pairs with finalize()'s release; only the head can be
      // pending (prepare() waits before prepending).
      while (e->ts.load(std::memory_order_acquire) == kPendingTs) bo.pause();
    }
    // Relaxed hops: each entry's fields were written before its
    // publication, each publication happens-before the head we
    // acquire-loaded, and coherence forbids reading anything older.
    size_t hops = 0;
    for (; e != nullptr; e = e->next.load(std::memory_order_relaxed)) {
      ++hops;
      if (e->ts.load(std::memory_order_relaxed) <= ts) {
        obs_sample_bundle_depth(hops);
        return {e->ptr, true};
      }
    }
    obs_sample_bundle_depth(hops);
    return {nullptr, false};
  }

  /// Newest finalized link (waits out a pending head). Equivalent to
  /// dereference(∞) but cheaper; used by asserts and the cleaner.
  NodeT* newest() const {
    Entry* e = head_.load(std::memory_order_acquire);
    assert(e != nullptr);
    Backoff bo;
    timestamp_t t;
    while ((t = e->ts.load(std::memory_order_acquire)) == kPendingTs)
      bo.pause();
    (void)t;
    return e->ptr;
  }

  /// Prune entries no active range query can need: keep everything newer
  /// than `oldest_active` plus the one entry that satisfies it; retire the
  /// rest through EBR's recycle path (supplementary B), which returns them
  /// to their owners' pools after the grace period. Returns #entries
  /// retired. Skips (returns 0) if the head is pending.
  size_t reclaim_older(timestamp_t oldest_active, Ebr& ebr, int tid) {
    Entry* e = head_.load(std::memory_order_acquire);
    if (e == nullptr) return 0;
    if (e->ts.load(std::memory_order_acquire) == kPendingTs) return 0;
    // Find the newest entry satisfying oldest_active; entries strictly
    // older than it are unreachable by any current or future range query.
    // Relaxed hops for the same reason as dereference(); everything below
    // the (finalized) head is finalized.
    while (e != nullptr &&
           e->ts.load(std::memory_order_relaxed) > oldest_active) {
      e = e->next.load(std::memory_order_relaxed);
    }
    if (e == nullptr) return 0;
    // Acquire half orders the truncation against our reads of the stale
    // chain; release half is for readers mid-walk that load the nullptr.
    Entry* stale = e->next.exchange(nullptr, std::memory_order_acq_rel);
    size_t n = 0;
    while (stale != nullptr) {
      Entry* next = stale->next.load(std::memory_order_relaxed);
      ebr.retire_recycle(tid, stale);
      stale = next;
      ++n;
    }
    if (n != 0) obs_bundle_pruned_counter().add(tid, n);
    return n;
  }

  // -- introspection (tests, space-overhead accounting) -----------------
  size_t size() const {
    size_t n = 0;
    for (Entry* e = head_.load(std::memory_order_acquire); e != nullptr;
         e = e->next.load(std::memory_order_relaxed))
      ++n;
    return n;
  }

  std::vector<std::pair<timestamp_t, NodeT*>> snapshot_entries() const {
    std::vector<std::pair<timestamp_t, NodeT*>> out;
    for (Entry* e = head_.load(std::memory_order_acquire); e != nullptr;
         e = e->next.load(std::memory_order_relaxed))
      out.emplace_back(e->ts.load(std::memory_order_acquire), e->ptr);
    return out;
  }

 private:
  /// Pool pop + field reset (the caller publishes; no ordering needed on
  /// the stores — prepare()'s release-CAS or init()'s release covers them).
  static Entry* acquire_entry(int tid, NodeT* ptr, timestamp_t ts) {
    Entry* e = EntryPool<Entry>::instance().acquire(tid);
    e->ptr = ptr;
    e->ts.store(ts, std::memory_order_relaxed);
    e->next.store(nullptr, std::memory_order_relaxed);
    return e;
  }

  std::atomic<Entry*> head_{nullptr};
};

/// Algorithm 1 (LinearizeUpdateOperation): prepare every bundle, advance the
/// global timestamp, run the linearization point, finalize. `bundles` pairs
/// each bundle with the new link value it must record; `linearize` is the
/// data-structure-specific linearization action (pointer swing or flag set).
///
/// Note on the paper text: Alg. 1 line 7 reads FinalizeBundle(b, ts+1), but
/// Figure 1's worked example requires entries to carry the post-increment
/// value `ts` itself (first insert -> entries stamped 1 with globalTs
/// starting at 0); we follow the figure. See DESIGN.md §1.
template <typename NodeT, typename LinearizeFn>
timestamp_t linearize_update(
    GlobalTimestamp& gts, int tid,
    std::initializer_list<std::pair<Bundle<NodeT>*, NodeT*>> bundles,
    LinearizeFn&& linearize) {
  BundleEntry<NodeT>* prepared[4];
  int n = 0;
  for (const auto& [bundle, ptr] : bundles) {
    assert(n < 4);
    prepared[n++] = bundle->prepare(tid, ptr);
  }
  SyncHooks::run(SyncHooks::after_prepare);
  const timestamp_t ts = gts.update_ts(tid);
  linearize();  // the operation's linearization point
  SyncHooks::run(SyncHooks::before_finalize);
  for (int i = 0; i < n; ++i) Bundle<NodeT>::finalize(prepared[i], ts);
  return ts;
}

}  // namespace bref
