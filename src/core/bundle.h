#pragma once
// The bundle building block (Section 3, Listings 1-2, Algorithms 1-2).
//
// A Bundle is the history of one link in a linked data structure: a stack of
// (pointer, timestamp) entries, newest first, strictly ordered by timestamp.
// Update operations prepend a PENDING entry before their linearization point
// and stamp it with the new global timestamp right after (Algorithm 1);
// range queries dereference the newest entry whose timestamp does not exceed
// their snapshot (Section 3.3), waiting out a pending head so no linearized-
// but-unfinalized update is missed.
//
// Entry chains are only ever (a) prepended to at the head by updates and
// (b) truncated at the tail by the cleaner (reclaim_older). Readers may walk
// a truncated tail; reclamation is therefore routed through EBR.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "core/global_timestamp.h"
#include "core/sync_hooks.h"
#include "epoch/ebr.h"

namespace bref {

template <typename NodeT>
struct BundleEntry {
  NodeT* ptr;
  std::atomic<timestamp_t> ts;
  std::atomic<BundleEntry*> next;  // next-older entry

  BundleEntry(NodeT* p, timestamp_t t, BundleEntry* n)
      : ptr(p), ts(t), next(n) {}
};

/// Result of dereferencing a bundle at a snapshot timestamp. `found` is
/// false when no entry satisfies the timestamp (the link did not exist at
/// snapshot time — Algorithm 3 line 7 restarts the range query).
template <typename NodeT>
struct BundleDeref {
  NodeT* ptr = nullptr;
  bool found = false;
};

template <typename NodeT>
class Bundle {
 public:
  using Entry = BundleEntry<NodeT>;

  Bundle() = default;
  Bundle(const Bundle&) = delete;
  Bundle& operator=(const Bundle&) = delete;

  ~Bundle() {
    // Quiescent teardown only.
    Entry* e = head_.load(std::memory_order_relaxed);
    while (e != nullptr) {
      Entry* n = e->next.load(std::memory_order_relaxed);
      delete e;
      e = n;
    }
  }

  /// Install the very first entry with a known timestamp; used when
  /// initializing sentinel links before the structure is shared (e.g. the
  /// head sentinel's timestamp-0 entry in Figure 1).
  void init(NodeT* ptr, timestamp_t ts) {
    assert(head_.load(std::memory_order_relaxed) == nullptr);
    head_.store(new Entry(ptr, ts, nullptr), std::memory_order_release);
  }

  /// Algorithm 2 (PrepareBundle): atomically prepend a PENDING entry for
  /// `ptr`, first waiting for any concurrent update's pending head to be
  /// finalized so entries stay ordered. Returns the entry for finalize().
  Entry* prepare(NodeT* ptr) {
    Entry* fresh = new Entry(ptr, kPendingTs, nullptr);
    Backoff bo;
    for (;;) {
      Entry* expected = head_.load(std::memory_order_acquire);
      fresh->next.store(expected, std::memory_order_relaxed);
      if (expected != nullptr) {
        // Block behind an in-flight update on this same link (Alg. 2 line 8).
        while (expected->ts.load(std::memory_order_acquire) == kPendingTs)
          bo.pause();
      }
      if (head_.compare_exchange_weak(expected, fresh,
                                      std::memory_order_acq_rel)) {
        return fresh;
      }
    }
  }

  /// Stamp a prepared entry, making it visible to range queries. The clamp
  /// against the next-older entry keeps the chain ordered under the relaxed
  /// timestamp policy (Fig. 5), where two threads may hold the same clock
  /// value; with the linearizable policy it never fires.
  static void finalize(Entry* e, timestamp_t ts) {
    Entry* older = e->next.load(std::memory_order_relaxed);
    if (older != nullptr) {
      timestamp_t floor = older->ts.load(std::memory_order_relaxed);
      if (ts < floor) ts = floor;
    }
    e->ts.store(ts, std::memory_order_seq_cst);
  }

  /// DereferenceBundle (Section 3.3): wait out a pending head, then return
  /// the newest link whose timestamp is <= `ts`.
  BundleDeref<NodeT> dereference(timestamp_t ts) const {
    Entry* e = head_.load(std::memory_order_acquire);
    if (e != nullptr) {
      Backoff bo;
      while (e->ts.load(std::memory_order_acquire) == kPendingTs) bo.pause();
    }
    for (; e != nullptr; e = e->next.load(std::memory_order_acquire)) {
      if (e->ts.load(std::memory_order_acquire) <= ts) {
        return {e->ptr, true};
      }
    }
    return {nullptr, false};
  }

  /// Newest finalized link (waits out a pending head). Equivalent to
  /// dereference(∞) but cheaper; used by asserts and the cleaner.
  NodeT* newest() const {
    Entry* e = head_.load(std::memory_order_acquire);
    assert(e != nullptr);
    Backoff bo;
    timestamp_t t;
    while ((t = e->ts.load(std::memory_order_acquire)) == kPendingTs)
      bo.pause();
    (void)t;
    return e->ptr;
  }

  /// Prune entries no active range query can need: keep everything newer
  /// than `oldest_active` plus the one entry that satisfies it; retire the
  /// rest through EBR (supplementary B). Returns #entries retired. Skips
  /// (returns 0) if the head is pending.
  size_t reclaim_older(timestamp_t oldest_active, Ebr& ebr, int tid) {
    Entry* e = head_.load(std::memory_order_acquire);
    if (e == nullptr) return 0;
    if (e->ts.load(std::memory_order_acquire) == kPendingTs) return 0;
    // Find the newest entry satisfying oldest_active; entries strictly
    // older than it are unreachable by any current or future range query.
    while (e != nullptr &&
           e->ts.load(std::memory_order_acquire) > oldest_active) {
      e = e->next.load(std::memory_order_acquire);
    }
    if (e == nullptr) return 0;
    Entry* stale = e->next.exchange(nullptr, std::memory_order_acq_rel);
    size_t n = 0;
    while (stale != nullptr) {
      Entry* next = stale->next.load(std::memory_order_relaxed);
      ebr.retire(tid, stale);
      stale = next;
      ++n;
    }
    return n;
  }

  // -- introspection (tests, space-overhead accounting) -----------------
  size_t size() const {
    size_t n = 0;
    for (Entry* e = head_.load(std::memory_order_acquire); e != nullptr;
         e = e->next.load(std::memory_order_acquire))
      ++n;
    return n;
  }

  std::vector<std::pair<timestamp_t, NodeT*>> snapshot_entries() const {
    std::vector<std::pair<timestamp_t, NodeT*>> out;
    for (Entry* e = head_.load(std::memory_order_acquire); e != nullptr;
         e = e->next.load(std::memory_order_acquire))
      out.emplace_back(e->ts.load(std::memory_order_acquire), e->ptr);
    return out;
  }

 private:
  std::atomic<Entry*> head_{nullptr};
};

/// Algorithm 1 (LinearizeUpdateOperation): prepare every bundle, advance the
/// global timestamp, run the linearization point, finalize. `bundles` pairs
/// each bundle with the new link value it must record; `linearize` is the
/// data-structure-specific linearization action (pointer swing or flag set).
///
/// Note on the paper text: Alg. 1 line 7 reads FinalizeBundle(b, ts+1), but
/// Figure 1's worked example requires entries to carry the post-increment
/// value `ts` itself (first insert -> entries stamped 1 with globalTs
/// starting at 0); we follow the figure. See DESIGN.md §1.
template <typename NodeT, typename LinearizeFn>
timestamp_t linearize_update(
    GlobalTimestamp& gts, int tid,
    std::initializer_list<std::pair<Bundle<NodeT>*, NodeT*>> bundles,
    LinearizeFn&& linearize) {
  BundleEntry<NodeT>* prepared[4];
  int n = 0;
  for (const auto& [bundle, ptr] : bundles) {
    assert(n < 4);
    prepared[n++] = bundle->prepare(ptr);
  }
  SyncHooks::run(SyncHooks::after_prepare);
  const timestamp_t ts = gts.update_ts(tid);
  linearize();  // the operation's linearization point
  SyncHooks::run(SyncHooks::before_finalize);
  for (int i = 0; i < n; ++i) Bundle<NodeT>::finalize(prepared[i], ts);
  return ts;
}

}  // namespace bref
