#pragma once
// Backlog-driven maintenance signal — the producer half of the contract
// that retires interval polling (src/shard/maintenance.h).
//
// One signal per maintenance worker. Producers (the retire/park paths in
// epoch/ebr.h and ds/*/rq_provider.h) call on_produce() once per item that
// will eventually need a maintenance pass; the worker sleeps until the
// pending count crosses `threshold` (MaintenanceOptions::backlog_wake).
// This turns the limbo bound from probabilistic (a poll happens to land
// soon enough) into hard: a pass is triggered within one threshold
// crossing, and an idle shard generates zero wakeups.
//
// Cost discipline on the hot path: one relaxed load when no threshold is
// configured; one relaxed fetch_add plus one relaxed flag load when one
// is. The condition-variable notify — the only expensive part — fires at
// most once per crossing: `armed` is set by the worker just before it
// sleeps and cleared by the one producer that wins the exchange, so a
// burst of produces between two passes costs a single notify.
//
// Lost-wakeup safety is the *worker's* job, not this struct's: the worker
// arms and re-checks due() under the service mutex, and notify() (supplied
// by the service) takes that mutex before notifying, so a crossing can
// never slip between the worker's predicate check and its wait.

#include <atomic>
#include <cstddef>

namespace bref {

struct MaintenanceSignal {
  std::atomic<size_t> pending{0};  // produced since the worker last drained
  std::atomic<bool> armed{false};  // worker sleeps; first crossing notifies
  std::atomic<size_t> threshold{0};  // backlog_wake; 0 = signalling off
  void (*notify)(void*) = nullptr;   // set by the service before attach
  void* arg = nullptr;

  /// Producer side: account `n` items that will need maintenance. Called
  /// from retire/park hot paths — see the cost discipline above.
  void on_produce(size_t n = 1) noexcept {
    const size_t thr = threshold.load(std::memory_order_relaxed);
    if (thr == 0) return;
    const size_t p = pending.fetch_add(n, std::memory_order_relaxed) + n;
    if (p >= thr && armed.load(std::memory_order_relaxed) &&
        armed.exchange(false, std::memory_order_relaxed) && notify != nullptr)
      notify(arg);
  }

  /// Worker side: true when the pending count has crossed the threshold.
  bool due() const noexcept {
    const size_t thr = threshold.load(std::memory_order_relaxed);
    return thr != 0 && pending.load(std::memory_order_relaxed) >= thr;
  }

  /// Worker side: reset the pending count at the start of a pass (produces
  /// that land during the pass count toward the next crossing).
  size_t drain() noexcept {
    return pending.exchange(0, std::memory_order_relaxed);
  }
};

}  // namespace bref
