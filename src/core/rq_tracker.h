#pragma once
// Active-range-query tracker (`activeRqTsArray`, supplementary B).
//
// Each range query announces the snapshot timestamp it runs at; the bundle
// cleaner uses the minimum announced value to decide which bundle entries
// are dead. Announcing is a two-step protocol — PENDING, then the value —
// because reading the global timestamp and publishing it cannot be one
// atomic action; the cleaner waits out PENDING slots so it can never miss a
// query that has read the clock but not yet published its value.

#include <atomic>
#include <cstdint>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/thread_registry.h"
#include "core/global_timestamp.h"
#include "core/sync_hooks.h"

namespace bref {

class RqTracker {
 public:
  static constexpr timestamp_t kNone = ~0ull;
  static constexpr timestamp_t kAnnouncePending = ~0ull - 1;

  /// Begin a range query: fix and publish its snapshot timestamp.
  timestamp_t begin(int tid, const GlobalTimestamp& gts) noexcept {
    announce_pending(tid);
    const timestamp_t ts = gts.read();
    SyncHooks::run(SyncHooks::rq_mid_announce);
    return publish(tid, ts);
  }

  /// First half of the announce protocol, split out for coordinated
  /// cross-shard range queries (src/shard/sharded_set.h): the coordinator
  /// marks every overlapping shard's tracker PENDING, reads the shared
  /// clock ONCE, then publish()es that value everywhere. The safety
  /// argument is begin()'s, per shard: a cleaner that scans this slot
  /// before the PENDING store read its clock bound before our clock read,
  /// so it pruned only below our timestamp.
  void announce_pending(int tid) noexcept {
    hwm_.note(tid);
    slots_[tid]->store(kAnnouncePending, std::memory_order_seq_cst);
  }

  /// Bulk form of announce_pending for a coordinated query overlapping
  /// many shards: note every tracker's thread high-water mark first (the
  /// loads), then issue the PENDING stores back-to-back — one cache-line
  /// write per shard with no interleaved loads between them, so the
  /// stores stream through the write buffer instead of each waiting out a
  /// read round-trip. Each store carries exactly announce_pending()'s
  /// per-shard ordering guarantee; batching reorders nothing a concurrent
  /// cleaner could distinguish (it observes one slot, not the batch).
  static void announce_pending_all(int tid, RqTracker* const* trackers,
                                   size_t n) noexcept {
    for (size_t i = 0; i < n; ++i) trackers[i]->hwm_.note(tid);
    for (size_t i = 0; i < n; ++i)
      trackers[i]->slots_[tid]->store(kAnnouncePending,
                                      std::memory_order_seq_cst);
  }

  /// Second half: publish the fixed snapshot timestamp. Returns `ts`.
  timestamp_t publish(int tid, timestamp_t ts) noexcept {
    slots_[tid]->store(ts, std::memory_order_seq_cst);
    return ts;
  }

  /// Refresh the announced snapshot when a range query restarts (Alg. 3
  /// line 7) without leaving the announce window.
  timestamp_t restart(int tid, const GlobalTimestamp& gts) noexcept {
    return begin(tid, gts);
  }

  void end(int tid) noexcept {
    slots_[tid]->store(kNone, std::memory_order_release);
  }

  /// Oldest timestamp any active or future range query can observe.
  /// Safe lower bound for pruning: reads the clock first (future queries
  /// observe >= this), then scans slots, waiting out in-flight announces.
  timestamp_t oldest_active(const GlobalTimestamp& gts) const noexcept {
    timestamp_t oldest = gts.read();
    const int n = hwm_.get();
    for (int i = 0; i < n; ++i) {
      Backoff bo;
      timestamp_t v;
      while ((v = slots_[i]->load(std::memory_order_seq_cst)) ==
             kAnnouncePending)
        bo.pause();
      if (v != kNone && v < oldest) oldest = v;
    }
    return oldest;
  }

  int active_count() const noexcept {
    int n = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
      timestamp_t v = slots_[i]->load(std::memory_order_acquire);
      if (v != kNone) ++n;
    }
    return n;
  }

 private:
  TidHwm hwm_;
  mutable CachePadded<std::atomic<timestamp_t>> slots_[kMaxThreads] = {};

  // Slots must start at kNone; CachePadded default-constructs atomics to 0,
  // so fix them up here.
 public:
  RqTracker() {
    for (auto& s : slots_) s->store(kNone, std::memory_order_relaxed);
  }
};

}  // namespace bref
