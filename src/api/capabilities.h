#pragma once
// Capability flags describing what a technique x structure combination can
// do. Capabilities are *derived from the implementation type* (constructor
// shape + the kLinearizableRq tag + optional introspection hooks), never
// hand-maintained — see caps_of<DS>() in registry.h. The registry uses
// them to reject SetOptions an implementation cannot honor and to generate
// the implementations x capabilities table in README.md.

#include <string>

namespace bref {

struct Capabilities {
  /// Range queries return an atomic snapshot linearizable with updates
  /// (everything except the Unsafe baselines).
  bool linearizable_rq = false;
  /// Honors SetOptions::relax_threshold (the Fig. 5 globalTs period T).
  bool relaxation = false;
  /// Honors SetOptions::reclaim (EBR node/bundle reclamation, Table 1).
  bool reclamation = false;
  /// Range queries report the snapshot timestamp they linearized at
  /// (RangeSnapshot::timestamp()); a bundled-reference feature.
  bool rq_timestamp = false;
  /// The implementation can take part in a coordinated multi-instance
  /// range query linearized at ONE shared timestamp: it reports snapshot
  /// timestamps, exposes its global clock for share_with() redirection and
  /// its RQ announce array, and can collect a range at an externally fixed
  /// timestamp (range_query_at). Derived in impl_traits.h; consumed by
  /// bref::ShardedSet (src/shard/sharded_set.h).
  bool coordinated_rq = false;

  std::string to_string() const {
    std::string s;
    auto add = [&s](bool on, const char* tag) {
      if (!on) return;
      if (!s.empty()) s += "+";
      s += tag;
    };
    add(linearizable_rq, "linearizable-rq");
    add(relaxation, "relaxation");
    add(reclamation, "reclamation");
    add(rq_timestamp, "rq-timestamp");
    add(coordinated_rq, "coordinated-rq");
    return s.empty() ? "none" : s;
  }
};

}  // namespace bref
