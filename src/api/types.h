#pragma once
// Shared public-API vocabulary: key/value types, construction options, and
// the error type the capability checks throw. Kept free of data-structure
// includes so the facade headers (registry.h, set.h, range_snapshot.h)
// can layer on top without dragging every implementation in.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/global_timestamp.h"  // timestamp_t

namespace bref {

using KeyT = int64_t;
using ValT = int64_t;

/// Construction options for any implementation. Each knob maps to a
/// capability flag (see capabilities.h); passing a non-default value to an
/// implementation that lacks the capability is an error, not a no-op —
/// ImplRegistry::create / Set::create throw UnsupportedOptionError instead
/// of silently dropping the option.
struct SetOptions {
  /// GlobalTimestamp advance period T (Fig. 5). 1 = fully linearizable;
  /// requires Capabilities::relaxation for any other value.
  uint64_t relax_threshold = 1;
  /// EBR node/bundle reclamation (Table 1). Requires
  /// Capabilities::reclamation.
  bool reclaim = false;
};

/// Thrown when SetOptions carry a knob the chosen implementation cannot
/// honor (e.g. `reclaim` on RLU, which has no reclamation path).
class UnsupportedOptionError : public std::invalid_argument {
 public:
  UnsupportedOptionError(const std::string& impl, const std::string& option)
      : std::invalid_argument("implementation '" + impl +
                              "' does not support option '" + option + "'"),
        impl_(impl),
        option_(option) {}

  const std::string& impl() const noexcept { return impl_; }
  const std::string& option() const noexcept { return option_; }

 private:
  std::string impl_;
  std::string option_;
};

}  // namespace bref
