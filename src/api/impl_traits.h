#pragma once
// Compile-time detection of what an implementation type can do — the single
// source of truth shared by the registry's capability derivation
// (registry.h) and the sessions' snapshot stamping (session.h).
//
// Capability inference is deliberately two-factor: the constructor must
// accept the knob AND the type must expose the matching runtime hook
// (global_timestamp() for relaxation, reclaim_enabled() for reclamation).
// Constructor shape alone is not enough — `bool` converts to any integer
// parameter, so a future `MySet(uint64_t num_shards)` would otherwise be
// classified as reclamation-capable and constructed with num_shards =
// opt.reclaim, silently building the wrong object. The hook requirement
// pins the parameter's meaning.

#include <concepts>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/range_snapshot.h"
#include "api/types.h"

namespace bref::detail {

template <typename DS, typename = void>
struct HasLastRqTimestamp : std::false_type {};
template <typename DS>
struct HasLastRqTimestamp<
    DS, std::void_t<decltype(std::declval<const DS&>().last_rq_timestamp(0))>>
    : std::true_type {};

template <typename DS, typename = void>
struct HasGlobalTimestamp : std::false_type {};
template <typename DS>
struct HasGlobalTimestamp<
    DS, std::void_t<decltype(std::declval<DS&>().global_timestamp())>>
    : std::true_type {};

template <typename DS, typename = void>
struct HasReclaimEnabled : std::false_type {};
template <typename DS>
struct HasReclaimEnabled<
    DS, std::void_t<decltype(std::declval<const DS&>().reclaim_enabled())>>
    : std::true_type {};

template <typename DS, typename = void>
struct HasRqTracker : std::false_type {};
template <typename DS>
struct HasRqTracker<DS,
                    std::void_t<decltype(std::declval<DS&>().rq_tracker())>>
    : std::true_type {};

template <typename DS, typename = void>
struct HasRangeQueryAt : std::false_type {};
template <typename DS>
struct HasRangeQueryAt<
    DS, std::void_t<decltype(std::declval<DS&>().range_query_at(
            0, timestamp_t{}, KeyT{}, KeyT{},
            std::declval<std::vector<std::pair<KeyT, ValT>>&>()))>>
    : std::true_type {};

/// DS can serve one coordinated multi-instance range query at a shared
/// timestamp (Capabilities::coordinated_rq): it must report snapshot
/// timestamps, own a redirectable global clock AND the RQ announce array,
/// and collect at an externally fixed timestamp. All four are required —
/// the shard layer's protocol (announce everywhere, read the shared clock
/// once, collect at that value) touches each hook.
template <typename DS>
inline constexpr bool coordinated_rq_v =
    HasRangeQueryAt<DS>::value && HasRqTracker<DS>::value &&
    HasGlobalTimestamp<DS>::value && HasLastRqTimestamp<DS>::value;

/// DS honors SetOptions::relax_threshold: takes the (relax_threshold,
/// reclaim) constructor AND owns a global timestamp to relax.
template <typename DS>
inline constexpr bool accepts_relaxation_v =
    std::is_constructible_v<DS, uint64_t, bool> &&
    HasGlobalTimestamp<DS>::value;

/// DS honors SetOptions::reclaim: constructible with the flag AND actually
/// has a reclamation path to toggle.
template <typename DS>
inline constexpr bool accepts_reclamation_v =
    (std::is_constructible_v<DS, uint64_t, bool> ||
     std::is_constructible_v<DS, bool>) &&
    HasReclaimEnabled<DS>::value;

/// Shared range-query-into-snapshot protocol: re-arm the snapshot, run the
/// query into its buffer, stamp the timestamp when the type reports one.
/// Both the type-erased adapter and TypedSession go through here so the
/// two paths cannot diverge. A type that implements the snapshot form
/// itself (AnyOrderedSet, and through it ShardedSet, whose coordinated
/// stamp exists only on this path) owns the whole protocol — call through
/// so TypedSession<AnyOrderedSet> callers see its stamping, not a rebuilt
/// vector-form result.
template <typename DS>
size_t fill_range_query(DS& ds, int tid, KeyT lo, KeyT hi,
                        RangeSnapshot& out) {
  if constexpr (requires {
                  { ds.range_query(tid, lo, hi, out) } -> std::same_as<size_t>;
                }) {
    return ds.range_query(tid, lo, hi, out);
  } else {
    out.reset(lo, hi);
    ds.range_query(tid, lo, hi, out.buffer());
    if constexpr (HasLastRqTimestamp<DS>::value)
      out.set_timestamp(ds.last_rq_timestamp(tid));
    return out.size();
  }
}

}  // namespace bref::detail
