#pragma once
// Self-registering implementation registry — the runtime factory behind
// bref::Set.
//
// Each technique x structure combination contributes one ImplDescriptor
// (name, structure, capability flags) plus a factory into a process-wide
// table. Registration is one line per implementation:
//
//   inline const bref::RegisterSet<MyWrapperSet> reg_my_wrapper{};
//
// (see builtin_impls.h for the 18 builtin configurations) or, scoped to a
// test, `bref::ScopedRegistration<MyWrapperSet> reg;`. Everything else —
// any_set_names(), capability validation, the README capability table —
// is *derived* from the descriptors, so adding another implementation
// touches no registry code. The LFCA tree (builtin #18) went in exactly
// this way: a new header under src/ds/lfca/ plus one registration line.
//
// Capabilities are derived from the implementation type itself (the
// two-factor constructor-shape + runtime-hook tests in impl_traits.h):
//   * linearizable_rq  — the DS's kLinearizableRq tag;
//   * relaxation       — (relax_threshold, reclaim) constructor AND a
//                        global_timestamp() hook;
//   * reclamation      — a constructor taking the reclaim flag AND a
//                        reclaim_enabled() hook;
//   * rq_timestamp     — DS exposes last_rq_timestamp(tid).
// A knob an implementation cannot honor is by definition a capability it
// lacks, so the silent-drop failure mode of the old make_any_set if-chain
// (options ignored for 14 of 17 implementations) cannot reappear: create()
// cross-checks SetOptions against the flags and throws
// UnsupportedOptionError, and construct_set() forwards a knob only down
// the same predicates that produced the flags.

#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/impl_traits.h"
#include "api/set_interface.h"

namespace bref {

/// Compile-time capability derivation (see header comment).
template <typename DS>
constexpr Capabilities caps_of() {
  return Capabilities{DS::kLinearizableRq, detail::accepts_relaxation_v<DS>,
                      detail::accepts_reclamation_v<DS>,
                      detail::HasLastRqTimestamp<DS>::value,
                      detail::coordinated_rq_v<DS>};
}

namespace detail {

/// Adapts a concrete implementation onto the virtual interface.
template <typename DS>
class AnySetAdapter final : public AnyOrderedSet {
 public:
  template <typename... Args>
  explicit AnySetAdapter(Args&&... args) : ds_(std::forward<Args>(args)...) {}

  bool insert(int tid, KeyT key, ValT val) override {
    return ds_.insert(tid, key, val);
  }
  bool remove(int tid, KeyT key) override { return ds_.remove(tid, key); }
  bool contains(int tid, KeyT key, ValT* out) override {
    return ds_.contains(tid, key, out);
  }
  size_t range_query(int tid, KeyT lo, KeyT hi,
                     std::vector<std::pair<KeyT, ValT>>& out) override {
    return ds_.range_query(tid, lo, hi, out);
  }
  size_t range_query(int tid, KeyT lo, KeyT hi, RangeSnapshot& out) override {
    return fill_range_query(ds_, tid, lo, hi, out);
  }
  std::vector<std::pair<KeyT, ValT>> to_vector() const override {
    return ds_.to_vector();
  }
  size_t size_slow() const override { return ds_.size_slow(); }
  bool check_invariants() const override { return ds_.check_invariants(); }
  const char* technique() const override { return DS::kName; }
  const char* structure() const override { return DS::kStructure; }
  Capabilities capabilities() const override { return caps_of<DS>(); }

  // -- shard-layer hooks, derived from the concrete type ------------------
  bool adopt_clock(GlobalTimestamp& leader) override {
    if constexpr (HasGlobalTimestamp<DS>::value) {
      ds_.global_timestamp().share_with(leader);
      return true;
    } else {
      (void)leader;
      return false;
    }
  }
  RqTracker* rq_tracker_hook() override {
    if constexpr (HasRqTracker<DS>::value) {
      return &ds_.rq_tracker();
    } else {
      return nullptr;
    }
  }
  // OptEbrGuard semantics, split so the shard coordinator can pin BEFORE
  // reading the shared clock (see set_interface.h): leaky instances skip
  // epoch traffic — nothing is freed before destruction there. One gate
  // shared by both halves so they can never disagree (an unbalanced pin
  // silently halts epoch advancement).
  void rq_pin(int tid) override {
    if constexpr (requires(DS& d) { d.ebr(); })
      if (epoch_guarded()) ds_.ebr().pin(tid);
  }
  void rq_unpin(int tid) override {
    if constexpr (requires(DS& d) { d.ebr(); })
      if (epoch_guarded()) ds_.ebr().unpin(tid);
  }
  // Split pin, mapped onto Ebr's prepare/confirm halves so the shard
  // coordinator can batch the announce stores of many shards (see
  // set_interface.h). Gated by the same epoch_guarded() predicate as the
  // fused form, so the halves can never disagree with rq_unpin.
  void rq_pin_prepare(int tid) override {
    if constexpr (requires(DS& d) { d.ebr(); })
      if (epoch_guarded()) ds_.ebr().pin_prepare(tid);
  }
  void rq_pin_confirm(int tid) override {
    if constexpr (requires(DS& d) { d.ebr(); })
      if (epoch_guarded()) ds_.ebr().pin_confirm(tid);
  }
  size_t range_query_at(int tid, timestamp_t ts, KeyT lo, KeyT hi,
                        std::vector<std::pair<KeyT, ValT>>& out) override {
    if constexpr (HasRangeQueryAt<DS>::value) {
      return ds_.range_query_at(tid, ts, lo, hi, out);
    } else {
      (void)tid, (void)ts, (void)lo, (void)hi, (void)out;
      return 0;
    }
  }

  MaintenanceWork maintain(int tid) override {
    MaintenanceWork w;
    if constexpr (requires(DS& d) { d.prune_bundles(tid); }) {
      // Pruning retires entries through EBR, but in leaky mode readers
      // never pin — the grace period would be meaningless, so prune only
      // when the instance actually reclaims (the BundleCleaner contract).
      bool prune = true;
      if constexpr (HasReclaimEnabled<DS>::value) prune = ds_.reclaim_enabled();
      if (prune) w.bundle_entries_pruned = ds_.prune_bundles(tid);
    }
    if constexpr (requires(DS& d) { d.flush_limbo(tid); })
      w.limbo_flushed = ds_.flush_limbo(tid);
    if constexpr (requires(DS& d) { d.ebr(); }) {
      ds_.ebr().quiesce(tid);
      w.epochs_quiesced = true;
    }
    return w;
  }
  size_t maintenance_backlog() const override {
    if constexpr (requires(const DS& d) { d.limbo_size(); }) {
      return ds_.limbo_size();
    } else {
      return 0;
    }
  }
  void set_maintenance_signal(MaintenanceSignal* s) override {
    // Prefer the DS's own hook (EBR-RQ: the provider bumps on every limbo
    // park — the backlog maintenance_backlog() actually reports); fall
    // back to the Ebr retire path (the bundled families: one retire per
    // physical remove, the producer of prunable entries and limbo nodes).
    if constexpr (requires(DS& d) { d.set_maintenance_signal(s); })
      ds_.set_maintenance_signal(s);
    else if constexpr (requires(DS& d) { d.ebr(); })
      ds_.ebr().set_maintenance_signal(s);
    else
      (void)s;
  }

  DS& underlying() { return ds_; }

 private:
  /// Whether readers need epoch pins (OptEbrGuard's condition): instances
  /// with a reclaim toggle pin only when it is on; an EBR-owning type
  /// without the toggle always reclaims.
  bool epoch_guarded() const {
    if constexpr (HasReclaimEnabled<DS>::value)
      return ds_.reclaim_enabled();
    else
      return true;
  }

  DS ds_;
};

/// Shared factory body: options have already been validated against the
/// descriptor by ImplRegistry::create. Knob forwarding branches on the
/// same impl_traits predicates that derived the capability flags, so a
/// knob can never be passed into a constructor parameter that means
/// something else (see impl_traits.h header comment).
template <typename DS>
std::unique_ptr<AnyOrderedSet> construct_set(const SetOptions& opt) {
  if constexpr (accepts_relaxation_v<DS>) {
    return std::make_unique<AnySetAdapter<DS>>(opt.relax_threshold,
                                               opt.reclaim);
  } else if constexpr (accepts_reclamation_v<DS>) {
    return std::make_unique<AnySetAdapter<DS>>(opt.reclaim);
  } else {
    return std::make_unique<AnySetAdapter<DS>>();
  }
}

}  // namespace detail

struct ImplDescriptor {
  std::string name;       // "<technique>-<structure>", e.g. "Bundle-skiplist"
  std::string technique;  // "Bundle", "Unsafe", "EBR-RQ", ...
  std::string structure;  // "list", "skiplist", "citrus"
  Capabilities caps;
  bool builtin = false;   // one of the 17 paper configurations
};

class ImplRegistry {
 public:
  using Factory = std::unique_ptr<AnyOrderedSet> (*)(const SetOptions&);

  static ImplRegistry& instance() {
    static ImplRegistry reg;
    return reg;
  }

  /// Register a descriptor + factory. Duplicate names are an error: the
  /// builtin configurations are enumerable by name, and an unnamed shadow
  /// registration is exactly the drift the registry test pins down.
  void add(ImplDescriptor desc, Factory factory) {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& e : entries_)
      if (e.desc.name == desc.name)
        throw std::invalid_argument("duplicate registration: " + desc.name);
    entries_.push_back(Entry{std::move(desc), factory});
  }

  /// Remove by name (ScopedRegistration's destructor). Returns false if
  /// absent.
  bool remove(std::string_view name) {
    std::lock_guard<std::mutex> g(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->desc.name == name) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Descriptor lookup; nullopt-style (nullptr) when unknown. The returned
  /// copy is intentional: entries may move as the registry grows.
  std::vector<ImplDescriptor> descriptors() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<ImplDescriptor> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.desc);
    return out;
  }

  bool find(std::string_view name, ImplDescriptor* out = nullptr) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& e : entries_) {
      if (e.desc.name == name) {
        if (out != nullptr) *out = e.desc;
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.desc.name);
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return entries_.size();
  }

  /// Construct by name, validating every non-default option against the
  /// implementation's capabilities. Unknown names throw
  /// std::invalid_argument; unsupported options throw
  /// UnsupportedOptionError (never silently dropped).
  std::unique_ptr<AnyOrderedSet> create(const std::string& name,
                                        const SetOptions& opt = {}) const {
    Factory factory = nullptr;
    ImplDescriptor desc;
    {
      std::lock_guard<std::mutex> g(mu_);
      for (const auto& e : entries_) {
        if (e.desc.name == name) {
          desc = e.desc;
          factory = e.factory;
          break;
        }
      }
    }
    if (factory == nullptr)
      throw std::invalid_argument("unknown ordered-set implementation: " +
                                  name);
    if (opt.relax_threshold != SetOptions{}.relax_threshold &&
        !desc.caps.relaxation)
      throw UnsupportedOptionError(name, "relax_threshold");
    if (opt.reclaim && !desc.caps.reclamation)
      throw UnsupportedOptionError(name, "reclaim");
    return factory(opt);
  }

 private:
  struct Entry {
    ImplDescriptor desc;
    Factory factory;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Descriptor derived entirely from the implementation type.
template <typename DS>
ImplDescriptor descriptor_of(bool builtin = false) {
  return ImplDescriptor{std::string(DS::kName) + "-" + DS::kStructure,
                        DS::kName, DS::kStructure, caps_of<DS>(), builtin};
}

/// Static registrar: `inline const RegisterSet<MySet> reg_my_set{};` in a
/// header is the complete hookup for a new implementation.
template <typename DS>
struct RegisterSet {
  explicit RegisterSet(bool builtin = false) {
    ImplRegistry::instance().add(descriptor_of<DS>(builtin),
                                 &detail::construct_set<DS>);
  }
};

/// RAII registration for tests: registers on construction, removes on
/// destruction, leaving the builtin table untouched.
template <typename DS>
class ScopedRegistration {
 public:
  ScopedRegistration()
      : name_(std::string(DS::kName) + "-" + DS::kStructure) {
    ImplRegistry::instance().add(descriptor_of<DS>(/*builtin=*/false),
                                 &detail::construct_set<DS>);
  }
  ~ScopedRegistration() { ImplRegistry::instance().remove(name_); }

  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace bref
