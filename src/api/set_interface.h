#pragma once
// AnyOrderedSet: the type-erased implementation interface every technique x
// structure combination is adapted onto (see registry.h for the adapter and
// the self-registering factory).
//
// This is the *implementation-facing* contract and therefore still speaks
// dense thread ids: substrates (EBR, RLU, the RQ tracker) index per-thread
// state by tid. Applications should not call it directly — bref::Set hands
// out RAII ThreadSessions that manage ids automatically (see set.h).

#include <string>
#include <utility>
#include <vector>

#include "api/capabilities.h"
#include "api/range_snapshot.h"
#include "api/types.h"
#include "core/maintenance_signal.h"
#include "core/rq_tracker.h"

namespace bref {

/// Accounting for one background maintenance pass (the shard layer's
/// MaintenanceService, src/shard/maintenance.h): bundle entries pruned,
/// EBR-RQ limbo nodes drained, whether the pass pushed reclamation epochs.
struct MaintenanceWork {
  uint64_t bundle_entries_pruned = 0;
  uint64_t limbo_flushed = 0;
  bool epochs_quiesced = false;

  uint64_t reclaimed() const {
    return bundle_entries_pruned + limbo_flushed;
  }
  MaintenanceWork& operator+=(const MaintenanceWork& o) {
    bundle_entries_pruned += o.bundle_entries_pruned;
    limbo_flushed += o.limbo_flushed;
    epochs_quiesced = epochs_quiesced || o.epochs_quiesced;
    return *this;
  }
};

class AnyOrderedSet {
 public:
  virtual ~AnyOrderedSet() = default;

  virtual bool insert(int tid, KeyT key, ValT val) = 0;
  virtual bool remove(int tid, KeyT key) = 0;
  virtual bool contains(int tid, KeyT key, ValT* out = nullptr) = 0;
  virtual size_t range_query(int tid, KeyT lo, KeyT hi,
                             std::vector<std::pair<KeyT, ValT>>& out) = 0;
  /// Snapshot-object form: fills `out` (reusing its buffer) and stamps the
  /// snapshot timestamp when the technique exposes one.
  virtual size_t range_query(int tid, KeyT lo, KeyT hi,
                             RangeSnapshot& out) = 0;

  // Quiescent introspection.
  virtual std::vector<std::pair<KeyT, ValT>> to_vector() const = 0;
  virtual size_t size_slow() const = 0;
  virtual bool check_invariants() const = 0;

  // -- shard-layer hooks (src/shard/; defaults = "not capable") -----------
  // The coordinated cross-shard range-query protocol needs three things
  // from each participating instance, all derived from the concrete type by
  // the adapter in registry.h (capability flag: coordinated_rq):
  //   1. its update clock redirected onto the coordinator's shared clock;
  //   2. its RQ announce array, so the coordinator can run the two-phase
  //      announce (PENDING everywhere -> one clock read -> publish);
  //   3. collection at that externally fixed timestamp.

  /// Redirect this instance's global timestamp onto `leader` (quiescent-
  /// only: before the structure is shared). Returns false when the
  /// technique has no shareable clock.
  virtual bool adopt_clock(GlobalTimestamp& leader) {
    (void)leader;
    return false;
  }
  /// The instance's RQ announce array; nullptr when the technique has none.
  virtual RqTracker* rq_tracker_hook() { return nullptr; }
  /// Pin / unpin this instance's reclamation epoch for a coordinated
  /// collection. The pin MUST be taken before the shared clock is read:
  /// epoch safety for a snapshot at T requires that any node removed
  /// after T was retired while we were already pinned (the single-
  /// structure range query gets this by pinning before rq_begin). No-op
  /// when the instance does not reclaim.
  virtual void rq_pin(int tid) { (void)tid; }
  virtual void rq_unpin(int tid) { (void)tid; }
  /// Split halves of rq_pin for a coordinator pinning MANY instances: it
  /// calls rq_pin_prepare on every shard (the announce stores, issued
  /// back-to-back), then rq_pin_confirm on every shard (the validation
  /// loads), and only then reads the shared clock. prepare+confirm
  /// back-to-back is equivalent to rq_pin; the defaults map prepare onto
  /// the fused form so implementations unaware of the split stay correct.
  /// The pin is not established until rq_pin_confirm returns.
  virtual void rq_pin_prepare(int tid) { rq_pin(tid); }
  virtual void rq_pin_confirm(int tid) { (void)tid; }
  /// Collect [lo, hi] at the announced snapshot timestamp `ts`, APPENDING
  /// to `out` (the coordinator concatenates shards in key order). The
  /// caller must hold an announce of `ts` in rq_tracker_hook() AND an
  /// rq_pin taken before `ts` was read. Returns the number of pairs
  /// appended; 0-and-no-op when not capable.
  virtual size_t range_query_at(int tid, timestamp_t ts, KeyT lo, KeyT hi,
                                std::vector<std::pair<KeyT, ValT>>& out) {
    (void)tid, (void)ts, (void)lo, (void)hi, (void)out;
    return 0;
  }

  /// One background maintenance pass: prune dead bundle entries (only when
  /// the instance reclaims), drain stranded EBR-RQ limbo, push reclamation
  /// epochs. Safe concurrently with operations from a thread owning `tid`;
  /// default no-op for techniques with no background work.
  virtual MaintenanceWork maintain(int tid) {
    (void)tid;
    return {};
  }
  /// Nodes currently parked awaiting maintenance (EBR-RQ limbo; 0 for
  /// techniques without such a backlog). Approximate under concurrency.
  virtual size_t maintenance_backlog() const { return 0; }
  /// Attach (nullptr: detach) a backlog signal: the implementation's
  /// retire/park paths bump it so a maintenance worker can sleep until
  /// `backlog_wake` items are pending instead of interval-polling
  /// (maintenance.h). The signal must outlive any operation that can
  /// observe it; techniques with no background work ignore the call.
  virtual void set_maintenance_signal(MaintenanceSignal* s) { (void)s; }

  // Identity.
  virtual const char* technique() const = 0;   // "Bundle", "RLU", ...
  virtual const char* structure() const = 0;   // "list", "skiplist", "citrus"
  virtual Capabilities capabilities() const = 0;
  bool linearizable_rq() const { return capabilities().linearizable_rq; }
  std::string name() const {
    return std::string(technique()) + "-" + structure();
  }
};

}  // namespace bref
