#pragma once
// AnyOrderedSet: the type-erased implementation interface every technique x
// structure combination is adapted onto (see registry.h for the adapter and
// the self-registering factory).
//
// This is the *implementation-facing* contract and therefore still speaks
// dense thread ids: substrates (EBR, RLU, the RQ tracker) index per-thread
// state by tid. Applications should not call it directly — bref::Set hands
// out RAII ThreadSessions that manage ids automatically (see set.h).

#include <string>
#include <utility>
#include <vector>

#include "api/capabilities.h"
#include "api/range_snapshot.h"
#include "api/types.h"

namespace bref {

class AnyOrderedSet {
 public:
  virtual ~AnyOrderedSet() = default;

  virtual bool insert(int tid, KeyT key, ValT val) = 0;
  virtual bool remove(int tid, KeyT key) = 0;
  virtual bool contains(int tid, KeyT key, ValT* out = nullptr) = 0;
  virtual size_t range_query(int tid, KeyT lo, KeyT hi,
                             std::vector<std::pair<KeyT, ValT>>& out) = 0;
  /// Snapshot-object form: fills `out` (reusing its buffer) and stamps the
  /// snapshot timestamp when the technique exposes one.
  virtual size_t range_query(int tid, KeyT lo, KeyT hi,
                             RangeSnapshot& out) = 0;

  // Quiescent introspection.
  virtual std::vector<std::pair<KeyT, ValT>> to_vector() const = 0;
  virtual size_t size_slow() const = 0;
  virtual bool check_invariants() const = 0;

  // Identity.
  virtual const char* technique() const = 0;   // "Bundle", "RLU", ...
  virtual const char* structure() const = 0;   // "list", "skiplist", "citrus"
  virtual Capabilities capabilities() const = 0;
  bool linearizable_rq() const { return capabilities().linearizable_rq; }
  std::string name() const {
    return std::string(technique()) + "-" + structure();
  }
};

}  // namespace bref
