#pragma once
// Named implementation types: each technique x structure combination pinned
// to a default-constructible type so typed test suites and benchmarks can
// enumerate them at compile time. `kName` follows the paper's naming:
// Bundle, Unsafe, EBR-RQ, EBR-RQ-LF, RLU (+ Snapcollector, evaluation
// extra, and LFCA, the contention-adapting tree of arXiv:1709.00722).
//
// These are the *implementation-facing* types. The public surface layers
// on top (see set.h for the full API story):
//   * registry.h      — self-registering factory; capabilities are derived
//                       from these types' constructor shapes and tags;
//   * builtin_impls.h — the one-line registration per type below;
//   * session.h       — RAII ThreadSession/TypedSession replacing the raw
//                       `int tid` convention these types still speak:
//                       bool   insert(tid, key, val)
//                       bool   remove(tid, key)
//                       bool   contains(tid, key, V* out = nullptr)
//                       size_t range_query(tid, lo, hi, vector<pair>& out)
//                       plus quiescent introspection (to_vector /
//                       size_slow / check_invariants).

#include <cstdint>

#include "api/types.h"
#include "ds/base/citrus_tree.h"
#include "ds/base/lazy_list.h"
#include "ds/base/lazy_skiplist.h"
#include "ds/bundled/bundled_citrus.h"
#include "ds/bundled/bundled_list.h"
#include "ds/bundled/bundled_skiplist.h"
#include "ds/ebrrq/ebrrq_citrus.h"
#include "ds/ebrrq/ebrrq_list.h"
#include "ds/ebrrq/ebrrq_skiplist.h"
#include "ds/lfca/lfca_tree.h"
#include "ds/rlu/rlu_citrus.h"
#include "ds/rlu/rlu_list.h"
#include "ds/rlu/rlu_skiplist.h"
#include "ds/snapcollector/sc_list.h"
#include "ds/snapcollector/sc_skiplist.h"

namespace bref {

// KeyT/ValT live in api/types.h (shared with the facade headers).

// ---- Bundle (this paper) --------------------------------------------------
struct BundleListSet : BundledList<KeyT, ValT> {
  using BundledList::BundledList;
  static constexpr const char* kName = "Bundle";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "list";
};
struct BundleSkipListSet : BundledSkipList<KeyT, ValT> {
  using BundledSkipList::BundledSkipList;
  static constexpr const char* kName = "Bundle";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "skiplist";
};
struct BundleCitrusSet : BundledCitrus<KeyT, ValT> {
  using BundledCitrus::BundledCitrus;
  static constexpr const char* kName = "Bundle";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "citrus";
};

// ---- Unsafe reference ------------------------------------------------------
struct UnsafeListSet : LazyListUnsafe<KeyT, ValT> {
  using LazyListUnsafe::LazyListUnsafe;
  static constexpr const char* kName = "Unsafe";
  static constexpr bool kLinearizableRq = false;
  static constexpr const char* kStructure = "list";
};
struct UnsafeSkipListSet : LazySkipListUnsafe<KeyT, ValT> {
  using LazySkipListUnsafe::LazySkipListUnsafe;
  static constexpr const char* kName = "Unsafe";
  static constexpr bool kLinearizableRq = false;
  static constexpr const char* kStructure = "skiplist";
};
struct UnsafeCitrusSet : CitrusTreeUnsafe<KeyT, ValT> {
  using CitrusTreeUnsafe::CitrusTreeUnsafe;
  static constexpr const char* kName = "Unsafe";
  static constexpr bool kLinearizableRq = false;
  static constexpr const char* kStructure = "citrus";
};

// ---- EBR-RQ (Arbel-Raviv & Brown, lock-based) -------------------------------
struct EbrRqListSet : EbrRqList<KeyT, ValT> {
  EbrRqListSet() : EbrRqList(EbrRqMode::kLock) {}
  static constexpr const char* kName = "EBR-RQ";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "list";
};
struct EbrRqSkipListSet : EbrRqSkipList<KeyT, ValT> {
  EbrRqSkipListSet() : EbrRqSkipList(EbrRqMode::kLock) {}
  static constexpr const char* kName = "EBR-RQ";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "skiplist";
};
struct EbrRqCitrusSet : EbrRqCitrus<KeyT, ValT> {
  EbrRqCitrusSet() : EbrRqCitrus(EbrRqMode::kLock) {}
  static constexpr const char* kName = "EBR-RQ";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "citrus";
};

// ---- EBR-RQ-LF (lock-free timestamps via DCSS) ------------------------------
struct EbrRqLfListSet : EbrRqList<KeyT, ValT> {
  EbrRqLfListSet() : EbrRqList(EbrRqMode::kLockFree) {}
  static constexpr const char* kName = "EBR-RQ-LF";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "list";
};
struct EbrRqLfSkipListSet : EbrRqSkipList<KeyT, ValT> {
  EbrRqLfSkipListSet() : EbrRqSkipList(EbrRqMode::kLockFree) {}
  static constexpr const char* kName = "EBR-RQ-LF";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "skiplist";
};
struct EbrRqLfCitrusSet : EbrRqCitrus<KeyT, ValT> {
  EbrRqLfCitrusSet() : EbrRqCitrus(EbrRqMode::kLockFree) {}
  static constexpr const char* kName = "EBR-RQ-LF";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "citrus";
};

// ---- RLU --------------------------------------------------------------------
struct RluListSet : RluList<KeyT, ValT> {
  using RluList::RluList;
  static constexpr const char* kName = "RLU";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "list";
};
struct RluSkipListSet : RluSkipList<KeyT, ValT> {
  using RluSkipList::RluSkipList;
  static constexpr const char* kName = "RLU";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "skiplist";
};
struct RluCitrusSet : RluCitrus<KeyT, ValT> {
  using RluCitrus::RluCitrus;
  static constexpr const char* kName = "RLU";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "citrus";
};

// ---- LFCA (Winblad et al.; contention-adapting competitor) ------------------
// Its own structure kind: the technique *is* the tree, so it has no
// list/skiplist/citrus variants. Reclamation-capable (EBR retires displaced
// nodes and leaves); no relaxation knob or snapshot timestamp.
struct LfcaTreeSet : LfcaTree<KeyT, ValT> {
  using LfcaTree::LfcaTree;
  static constexpr const char* kName = "LFCA";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "tree";
};

// ---- Snapcollector (Petrank & Timnat; evaluation extra) ---------------------
struct SnapCollectorListSet : SnapCollectorList<KeyT, ValT> {
  using SnapCollectorList::SnapCollectorList;
  static constexpr const char* kName = "Snapcollector";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "list";
};
struct SnapCollectorSkipListSet : SnapCollectorSkipList<KeyT, ValT> {
  using SnapCollectorSkipList::SnapCollectorSkipList;
  static constexpr const char* kName = "Snapcollector";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "skiplist";
};

}  // namespace bref
