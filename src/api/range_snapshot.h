#pragma once
// RangeSnapshot: the result object of a range query.
//
// A range query returns an atomic snapshot of [lo, hi]. This type carries
// the three things a caller needs from it:
//   * the collected (key, value) pairs, sorted and duplicate-free, with
//     iterator access (structured-binding friendly);
//   * the logical timestamp the snapshot linearized at, for techniques
//     that fix one (the bundled structures) — this is what the
//     history-audit example and the Wing-Gong validator previously had to
//     reconstruct by hand from out-vectors;
//   * a reusable buffer: passing the same RangeSnapshot to repeated
//     queries reuses its capacity, matching the hot-loop pattern the
//     benches relied on with raw out-vectors.

#include <cstddef>
#include <utility>
#include <vector>

#include "api/types.h"

namespace bref {

class RangeSnapshot {
 public:
  using value_type = std::pair<KeyT, ValT>;
  using const_iterator = std::vector<value_type>::const_iterator;

  /// Sentinel for techniques whose range queries have no notion of a
  /// snapshot timestamp (Unsafe, EBR-RQ, RLU, Snapcollector).
  static constexpr timestamp_t kNoTimestamp = ~timestamp_t{0};

  RangeSnapshot() = default;

  // -- results ------------------------------------------------------------
  const_iterator begin() const noexcept { return items_.begin(); }
  const_iterator end() const noexcept { return items_.end(); }
  size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  const value_type& operator[](size_t i) const noexcept { return items_[i]; }
  const value_type& front() const noexcept { return items_.front(); }
  const value_type& back() const noexcept { return items_.back(); }
  const std::vector<value_type>& items() const noexcept { return items_; }

  /// The queried bounds (inclusive).
  KeyT lo() const noexcept { return lo_; }
  KeyT hi() const noexcept { return hi_; }

  /// Logical time the snapshot linearized at. Only meaningful when
  /// has_timestamp(); capability flag: Capabilities::rq_timestamp.
  timestamp_t timestamp() const noexcept { return ts_; }
  bool has_timestamp() const noexcept { return ts_ != kNoTimestamp; }

  // -- filling (implementations / sessions) -------------------------------
  /// Re-arm for a new query: record bounds, clear the timestamp, clear the
  /// contents but keep the capacity (the reusable-buffer contract).
  std::vector<value_type>& reset(KeyT lo, KeyT hi) {
    lo_ = lo;
    hi_ = hi;
    ts_ = kNoTimestamp;
    items_.clear();
    return items_;
  }

  std::vector<value_type>& buffer() noexcept { return items_; }
  void set_timestamp(timestamp_t ts) noexcept { ts_ = ts; }

 private:
  std::vector<value_type> items_;
  KeyT lo_ = 0;
  KeyT hi_ = 0;
  timestamp_t ts_ = kNoTimestamp;
};

/// Content equality against a plain result vector (model-check friendly;
/// C++20 synthesizes the reversed and != forms).
inline bool operator==(const RangeSnapshot& s,
                       const std::vector<RangeSnapshot::value_type>& v) {
  return s.items() == v;
}

}  // namespace bref
