#pragma once
// bref::Set — the capability-aware facade over every ordered-set
// implementation in the library.
//
//   bref::Set set = bref::Set::create("Bundle-skiplist");
//   auto s = set.session();                    // RAII thread session
//   s.insert(10, 100);
//   bref::RangeSnapshot snap = s.range_query(5, 50);
//   for (auto [k, v] : snap) ...               // atomic snapshot
//   snap.timestamp();                          // when it linearized
//
// Construction goes through the ImplRegistry (registry.h): names,
// capabilities and factories are derived from the registered descriptors,
// and SetOptions an implementation cannot honor throw
// UnsupportedOptionError instead of being silently dropped.
//
// Operations go through sessions only. The raw-`tid` migration shims that
// mirrored the pre-facade calling convention ([[deprecated]] insert/remove/
// contains/range_query on this class, make_any_set in any_set.h) are gone:
// every in-repo consumer is on sessions. Code that needs the raw interface
// deliberately — benchmark drivers pinning dense ids, white-box tests —
// uses session(tid) or the impl() escape hatch.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "api/session.h"
#include "shard/builtin_shards.h"

namespace bref {

class Set {
 public:
  Set() = default;

  /// Construct by registry name ("Bundle-skiplist", "RLU-citrus", ...).
  /// Throws std::invalid_argument for unknown names and
  /// UnsupportedOptionError for options outside the implementation's
  /// capabilities.
  static Set create(const std::string& name, const SetOptions& opt = {}) {
    return Set(ImplRegistry::instance().create(name, opt));
  }

  /// Wrap an existing implementation (e.g. from a custom factory).
  explicit Set(std::unique_ptr<AnyOrderedSet> impl) : impl_(std::move(impl)) {}

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  // -- sessions (the operation entry point) -------------------------------
  /// Acquire a dense thread id for the calling scope (released on session
  /// destruction). One session per thread; do not share across threads.
  ThreadSession session() { return ThreadSession(*impl_); }
  /// Pin an explicitly managed id (benchmark drivers assign 0..n-1).
  ThreadSession session(int tid) { return ThreadSession(*impl_, tid); }

  // -- identity / capabilities --------------------------------------------
  std::string name() const { return impl_->name(); }
  const char* technique() const { return impl_->technique(); }
  const char* structure() const { return impl_->structure(); }
  Capabilities capabilities() const { return impl_->capabilities(); }

  // -- quiescent introspection --------------------------------------------
  std::vector<std::pair<KeyT, ValT>> to_vector() const {
    return impl_->to_vector();
  }
  size_t size_slow() const { return impl_->size_slow(); }
  bool check_invariants() const { return impl_->check_invariants(); }

  /// Escape hatch to the type-erased implementation.
  AnyOrderedSet& impl() { return *impl_; }
  const AnyOrderedSet& impl() const { return *impl_; }

 private:
  std::unique_ptr<AnyOrderedSet> impl_;
};

}  // namespace bref
