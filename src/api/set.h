#pragma once
// bref::Set — the capability-aware facade over every ordered-set
// implementation in the library.
//
//   bref::Set set = bref::Set::create("Bundle-skiplist");
//   auto s = set.session();                    // RAII thread session
//   s.insert(10, 100);
//   bref::RangeSnapshot snap = s.range_query(5, 50);
//   for (auto [k, v] : snap) ...               // atomic snapshot
//   snap.timestamp();                          // when it linearized
//
// Construction goes through the ImplRegistry (registry.h): names,
// capabilities and factories are derived from the registered descriptors,
// and SetOptions an implementation cannot honor throw
// UnsupportedOptionError instead of being silently dropped.
//
// Deprecation path (see also any_set.h): the raw-`tid` operation shims on
// this class mirror the pre-facade calling convention one-for-one so
// migrating a call site is mechanical — construct a session once, drop the
// tid argument. They forward with zero added cost but are marked
// [[deprecated]] and will be removed once nothing in-tree uses them.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "api/session.h"

namespace bref {

class Set {
 public:
  Set() = default;

  /// Construct by registry name ("Bundle-skiplist", "RLU-citrus", ...).
  /// Throws std::invalid_argument for unknown names and
  /// UnsupportedOptionError for options outside the implementation's
  /// capabilities.
  static Set create(const std::string& name, const SetOptions& opt = {}) {
    return Set(ImplRegistry::instance().create(name, opt));
  }

  /// Wrap an existing implementation (e.g. from a custom factory).
  explicit Set(std::unique_ptr<AnyOrderedSet> impl) : impl_(std::move(impl)) {}

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  // -- sessions (the operation entry point) -------------------------------
  /// Acquire a dense thread id for the calling scope (released on session
  /// destruction). One session per thread; do not share across threads.
  ThreadSession session() { return ThreadSession(*impl_); }
  /// Pin an explicitly managed id (benchmark drivers assign 0..n-1).
  ThreadSession session(int tid) { return ThreadSession(*impl_, tid); }

  // -- identity / capabilities --------------------------------------------
  std::string name() const { return impl_->name(); }
  const char* technique() const { return impl_->technique(); }
  const char* structure() const { return impl_->structure(); }
  Capabilities capabilities() const { return impl_->capabilities(); }

  // -- quiescent introspection --------------------------------------------
  std::vector<std::pair<KeyT, ValT>> to_vector() const {
    return impl_->to_vector();
  }
  size_t size_slow() const { return impl_->size_slow(); }
  bool check_invariants() const { return impl_->check_invariants(); }

  /// Escape hatch to the type-erased implementation.
  AnyOrderedSet& impl() { return *impl_; }
  const AnyOrderedSet& impl() const { return *impl_; }

  // -- deprecated raw-tid shims (migration aids; see header comment) ------
  [[deprecated("use session().insert()")]] bool insert(int tid, KeyT key,
                                                       ValT val) {
    return impl_->insert(tid, key, val);
  }
  [[deprecated("use session().remove()")]] bool remove(int tid, KeyT key) {
    return impl_->remove(tid, key);
  }
  [[deprecated("use session().contains()")]] bool contains(
      int tid, KeyT key, ValT* out = nullptr) {
    return impl_->contains(tid, key, out);
  }
  [[deprecated("use session().range_query()")]] size_t range_query(
      int tid, KeyT lo, KeyT hi, std::vector<std::pair<KeyT, ValT>>& out) {
    return impl_->range_query(tid, lo, hi, out);
  }

 private:
  std::unique_ptr<AnyOrderedSet> impl_;
};

}  // namespace bref
