#pragma once
// RAII thread sessions — the replacement for the raw-`tid` calling
// convention.
//
// Every per-thread substrate (EBR epochs, RLU contexts, RQ announcements)
// is indexed by a dense thread id; the old API made callers thread an
// `int tid` through every operation by hand. A session binds an id to a
// set for the lifetime of a scope:
//
//   bref::Set set = bref::Set::create("Bundle-skiplist");
//   {
//     auto s = set.session();          // acquires a dense id (RAII)
//     s.insert(10, 100);
//     bref::RangeSnapshot snap = s.range_query(5, 50);
//   }                                  // id released for reuse here
//
// Two variants share the operation surface:
//   * ThreadSession  — over the type-erased AnyOrderedSet (one virtual
//     call per op), handed out by bref::Set;
//   * TypedSession<DS> — over a concrete implementation type, fully
//     inlineable; what the benchmark harness and the typed tests use so
//     the facade costs nothing on the hot path.
//
// Sessions are movable, not copyable, and must not be shared between
// threads (they stand for *this thread's* identity with the structure).
// Constructing with an explicit id (the benchmark drivers' pattern) pins
// the id and skips registry acquisition/release entirely.

#include <concepts>
#include <optional>
#include <type_traits>
#include <utility>

#include "api/impl_traits.h"
#include "api/range_snapshot.h"
#include "api/set_interface.h"
#include "api/types.h"
#include "common/thread_registry.h"

namespace bref {

namespace detail {

/// Owns (or borrows) a dense thread id from the global ThreadRegistry.
class SessionId {
 public:
  SessionId() : tid_(ThreadRegistry::instance().acquire()), owned_(true) {}
  explicit SessionId(int tid) : tid_(tid), owned_(false) {}
  ~SessionId() {
    if (owned_) ThreadRegistry::instance().release(tid_);
  }

  SessionId(SessionId&& other) noexcept
      : tid_(other.tid_), owned_(std::exchange(other.owned_, false)) {}
  SessionId& operator=(SessionId&& other) noexcept {
    if (this != &other) {
      if (owned_) ThreadRegistry::instance().release(tid_);
      tid_ = other.tid_;
      owned_ = std::exchange(other.owned_, false);
    }
    return *this;
  }
  SessionId(const SessionId&) = delete;
  SessionId& operator=(const SessionId&) = delete;

  int tid() const noexcept { return tid_; }

 private:
  int tid_;
  bool owned_;
};

}  // namespace detail

/// Explicit acquire/release guard over a dense thread id, for components
/// that must degrade gracefully when the id space is exhausted instead of
/// unwinding (ThreadRegistry::acquire throws ThreadSlotsExhaustedError).
/// The network server acquires one guard per worker loop at startup and
/// multiplexes every connection pinned to that worker over it — client
/// connections never consume id slots, so accepting the 65th (or 6500th)
/// connection cannot exhaust the registry.
///
///   SessionGuard g;
///   if (!g.acquired()) { /* report, shed load, retry later */ }
///   else               { set.insert(g.tid(), k, v); ... }
class SessionGuard {
 public:
  SessionGuard() : tid_(ThreadRegistry::instance().try_acquire()) {}
  ~SessionGuard() { reset(); }

  SessionGuard(SessionGuard&& o) noexcept : tid_(std::exchange(o.tid_, -1)) {}
  SessionGuard& operator=(SessionGuard&& o) noexcept {
    if (this != &o) {
      reset();
      tid_ = std::exchange(o.tid_, -1);
    }
    return *this;
  }
  SessionGuard(const SessionGuard&) = delete;
  SessionGuard& operator=(const SessionGuard&) = delete;

  /// False when the registry was exhausted at construction.
  bool acquired() const noexcept { return tid_ >= 0; }
  explicit operator bool() const noexcept { return acquired(); }
  int tid() const noexcept { return tid_; }

  /// Release the id early (idempotent).
  void reset() noexcept {
    if (tid_ >= 0) ThreadRegistry::instance().release(tid_);
    tid_ = -1;
  }

 private:
  int tid_ = -1;
};

/// Session over the type-erased interface; obtained from bref::Set.
class ThreadSession {
 public:
  /// Auto-acquire a dense id (released on destruction).
  explicit ThreadSession(AnyOrderedSet& set) : set_(&set) {}
  /// Pin an explicitly managed id (benchmarks; id is not released).
  ThreadSession(AnyOrderedSet& set, int tid) : set_(&set), id_(tid) {}

  ThreadSession(ThreadSession&&) noexcept = default;
  ThreadSession& operator=(ThreadSession&&) noexcept = default;

  bool insert(KeyT key, ValT val) { return set_->insert(id_.tid(), key, val); }
  bool remove(KeyT key) { return set_->remove(id_.tid(), key); }
  bool contains(KeyT key, ValT* out = nullptr) {
    return set_->contains(id_.tid(), key, out);
  }
  std::optional<ValT> get(KeyT key) {
    ValT v{};
    if (!set_->contains(id_.tid(), key, &v)) return std::nullopt;
    return v;
  }

  /// Fill `out`, reusing its buffer (the hot-loop form).
  size_t range_query(KeyT lo, KeyT hi, RangeSnapshot& out) {
    return set_->range_query(id_.tid(), lo, hi, out);
  }
  /// Convenience form returning a fresh snapshot.
  RangeSnapshot range_query(KeyT lo, KeyT hi) {
    RangeSnapshot snap;
    set_->range_query(id_.tid(), lo, hi, snap);
    return snap;
  }

  int tid() const noexcept { return id_.tid(); }
  AnyOrderedSet& set() const noexcept { return *set_; }

 private:
  AnyOrderedSet* set_;
  detail::SessionId id_;
};

/// Zero-overhead session over a concrete implementation type. Mirrors
/// ThreadSession's surface; every call inlines into the underlying
/// structure's method.
template <typename DS>
class TypedSession {
 public:
  explicit TypedSession(DS& set) : set_(&set) {}
  TypedSession(DS& set, int tid) : set_(&set), id_(tid) {}

  TypedSession(TypedSession&&) noexcept = default;
  TypedSession& operator=(TypedSession&&) noexcept = default;

  bool insert(KeyT key, ValT val) { return set_->insert(id_.tid(), key, val); }
  bool remove(KeyT key) { return set_->remove(id_.tid(), key); }
  bool contains(KeyT key, ValT* out = nullptr) {
    return set_->contains(id_.tid(), key, out);
  }
  std::optional<ValT> get(KeyT key) {
    ValT v{};
    if (!set_->contains(id_.tid(), key, &v)) return std::nullopt;
    return v;
  }

  size_t range_query(KeyT lo, KeyT hi, RangeSnapshot& out) {
    return detail::fill_range_query(*set_, id_.tid(), lo, hi, out);
  }
  RangeSnapshot range_query(KeyT lo, KeyT hi) {
    RangeSnapshot snap;
    range_query(lo, hi, snap);
    return snap;
  }

  int tid() const noexcept { return id_.tid(); }
  DS& set() const noexcept { return *set_; }

 private:
  DS* set_;
  detail::SessionId id_;
};

/// Deduction-friendly maker (pre-CTAD call sites read better with it).
template <typename DS>
TypedSession<DS> make_session(DS& set) {
  return TypedSession<DS>(set);
}
template <typename DS>
TypedSession<DS> make_session(DS& set, int tid) {
  return TypedSession<DS>(set, tid);
}

/// Per-thread session cache for applications that spawn short-lived
/// threads. The old application convenience, tl_thread_id(), acquires a
/// dense id the first time a thread touches a structure and never gives it
/// back — a server recycling worker threads burns through the kMaxThreads
/// id space. A SessionPool hands each OS thread one cached id and releases
/// it to the global ThreadRegistry when the thread exits:
///
///   MiniKv() : index_(Set::create("Bundle-skiplist")), pool_(index_) {}
///   void put(...) { auto s = pool_.session(); s.insert(...); }
///
/// session() is as cheap as the tl_thread_id() pattern it replaces (one
/// thread_local lookup; no registry round-trip after the thread's first
/// call) because the returned session borrows the cached id rather than
/// owning it. The cache is per OS thread, not per pool: two pools on the
/// same thread share one id, which is exactly how explicit-tid callers
/// use one id across many structures. Sessions must not outlive the
/// calling thread (they borrow its id).
class SessionPool {
 public:
  explicit SessionPool(AnyOrderedSet& set) : set_(&set) {}
  /// Convenience: bind to any Set-facade-like owner exposing impl().
  template <typename SetT>
    requires requires(SetT& s) { { s.impl() } -> std::convertible_to<AnyOrderedSet&>; }
  explicit SessionPool(SetT& set) : set_(&set.impl()) {}

  /// A session on this thread's cached id; acquires the id on the
  /// thread's first call, from the global registry.
  ThreadSession session() { return ThreadSession(*set_, thread_tid()); }

  /// The calling thread's cached dense id (acquiring it if needed) —
  /// for callers that also drive explicit-tid surfaces. Throws
  /// ThreadSlotsExhaustedError on a fresh thread when the id space is
  /// exhausted; callers that must not unwind hold a SessionGuard instead.
  static int thread_tid() {
    TlsSlot& s = slot();
    if (s.tid < 0) s.tid = ThreadRegistry::instance().acquire();
    return s.tid;
  }

 private:
  struct TlsSlot {
    int tid = -1;
    ~TlsSlot() {
      if (tid >= 0) ThreadRegistry::instance().release(tid);
    }
  };
  static TlsSlot& slot() {
    thread_local TlsSlot s;
    return s;
  }

  AnyOrderedSet* set_;
};

}  // namespace bref
