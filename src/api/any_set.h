#pragma once
// Registry-derived name lists.
//
// Historically this header was the backwards-compatibility layer over the
// implementation registry (make_any_set() and the AnySetOptions alias);
// with every consumer migrated to bref::Set and RAII sessions the shims
// are gone and only the name-list helpers remain. They exist as
// conveniences for sweep-style callers (parameterized tests, benches) —
// anything richer should enumerate ImplRegistry::instance().descriptors()
// and filter on capability flags directly.

#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"

namespace bref {

/// All registered implementation names, in registration order (the 18
/// builtin configurations first, then anything test code added).
inline std::vector<std::string> any_set_names() {
  return ImplRegistry::instance().names();
}

/// Names of the implementations with linearizable range queries — derived
/// from capability flags rather than name prefixes.
inline std::vector<std::string> any_set_linearizable_names() {
  std::vector<std::string> out;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.caps.linearizable_rq) out.push_back(d.name);
  return out;
}

}  // namespace bref
