#pragma once
// Backwards-compatibility layer over the implementation registry.
//
// Pre-facade code constructed implementations through make_any_set() and a
// hand-maintained 17-branch if-chain; both are gone. The names below now
// derive from the ImplRegistry (registry.h) and construction validates
// options against capabilities. New code should use bref::Set (set.h) —
// these shims exist so migrating call sites is mechanical and will be
// removed once nothing depends on them.

#include <memory>
#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "api/set.h"

namespace bref {

/// Old spelling of SetOptions (same fields, same meaning).
using AnySetOptions = SetOptions;

/// All registered implementation names, in registration order (the 17
/// paper configurations first, then anything test code added).
inline std::vector<std::string> any_set_names() {
  return ImplRegistry::instance().names();
}

/// Names of the implementations with linearizable range queries — now
/// derived from capability flags rather than name prefixes.
inline std::vector<std::string> any_set_linearizable_names() {
  std::vector<std::string> out;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.caps.linearizable_rq) out.push_back(d.name);
  return out;
}

/// Construct an implementation by registry name. Unknown names throw
/// std::invalid_argument; options the implementation cannot honor throw
/// UnsupportedOptionError (they were silently ignored before the facade).
[[deprecated("use bref::Set::create")]] inline std::unique_ptr<AnyOrderedSet>
make_any_set(const std::string& name, const AnySetOptions& opt = {}) {
  return ImplRegistry::instance().create(name, opt);
}

}  // namespace bref
