#pragma once
// Type-erased handle over every ordered-set implementation, keyed by the
// paper's names ("Bundle-skiplist", "RLU-citrus", ...). The typed aliases in
// ordered_set.h are the zero-overhead path; this registry exists for code
// that selects an implementation at run time — value-parameterized test
// sweeps (TEST_P over implementation x workload), CLI-driven benches, and
// the examples' `--impl` flags.

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/ordered_set.h"

namespace bref {

/// Virtual interface mirroring the library's uniform operation set.
class AnyOrderedSet {
 public:
  virtual ~AnyOrderedSet() = default;

  virtual bool insert(int tid, KeyT key, ValT val) = 0;
  virtual bool remove(int tid, KeyT key) = 0;
  virtual bool contains(int tid, KeyT key, ValT* out = nullptr) = 0;
  virtual size_t range_query(int tid, KeyT lo, KeyT hi,
                             std::vector<std::pair<KeyT, ValT>>& out) = 0;

  // Quiescent introspection.
  virtual std::vector<std::pair<KeyT, ValT>> to_vector() const = 0;
  virtual size_t size_slow() const = 0;
  virtual bool check_invariants() const = 0;

  // Identity.
  virtual const char* technique() const = 0;   // "Bundle", "RLU", ...
  virtual const char* structure() const = 0;   // "list", "skiplist", "citrus"
  virtual bool linearizable_rq() const = 0;
  std::string name() const {
    return std::string(technique()) + "-" + structure();
  }
};

namespace detail {

template <typename DS>
class AnySetAdapter final : public AnyOrderedSet {
 public:
  template <typename... Args>
  explicit AnySetAdapter(Args&&... args) : ds_(std::forward<Args>(args)...) {}

  bool insert(int tid, KeyT key, ValT val) override {
    return ds_.insert(tid, key, val);
  }
  bool remove(int tid, KeyT key) override { return ds_.remove(tid, key); }
  bool contains(int tid, KeyT key, ValT* out) override {
    return ds_.contains(tid, key, out);
  }
  size_t range_query(int tid, KeyT lo, KeyT hi,
                     std::vector<std::pair<KeyT, ValT>>& out) override {
    return ds_.range_query(tid, lo, hi, out);
  }
  std::vector<std::pair<KeyT, ValT>> to_vector() const override {
    return ds_.to_vector();
  }
  size_t size_slow() const override { return ds_.size_slow(); }
  bool check_invariants() const override { return ds_.check_invariants(); }
  const char* technique() const override { return DS::kName; }
  const char* structure() const override { return DS::kStructure; }
  bool linearizable_rq() const override { return DS::kLinearizableRq; }

  DS& underlying() { return ds_; }

 private:
  DS ds_;
};

}  // namespace detail

/// Options forwarded to implementations that accept them. Implementations
/// without the corresponding constructor parameter ignore the option (the
/// EBR-RQ family fixes its mode in the adapter type; RLU and Snapcollector
/// have no relaxation/reclamation knobs).
struct AnySetOptions {
  uint64_t relax_threshold = 1;  // globalTs advance period T (Fig. 5)
  bool reclaim = false;          // EBR node/bundle reclamation (Table 1)
};

/// All registry names, in a stable order.
inline const std::vector<std::string>& any_set_names() {
  static const std::vector<std::string> names = {
      "Bundle-list",    "Bundle-skiplist",    "Bundle-citrus",
      "Unsafe-list",    "Unsafe-skiplist",    "Unsafe-citrus",
      "EBR-RQ-list",    "EBR-RQ-skiplist",    "EBR-RQ-citrus",
      "EBR-RQ-LF-list", "EBR-RQ-LF-skiplist", "EBR-RQ-LF-citrus",
      "RLU-list",       "RLU-skiplist",       "RLU-citrus",
      "Snapcollector-list", "Snapcollector-skiplist"};
  return names;
}

/// Names of the implementations with linearizable range queries.
inline std::vector<std::string> any_set_linearizable_names() {
  std::vector<std::string> out;
  for (const auto& n : any_set_names())
    if (n.rfind("Unsafe-", 0) != 0) out.push_back(n);
  return out;
}

/// Construct an implementation by registry name. Throws std::invalid_argument
/// for unknown names. Bundle variants honor both options; Unsafe honors
/// neither (no timestamps, no bundles).
inline std::unique_ptr<AnyOrderedSet> make_any_set(
    const std::string& name, const AnySetOptions& opt = {}) {
  using detail::AnySetAdapter;
  if (name == "Bundle-list")
    return std::make_unique<AnySetAdapter<BundleListSet>>(opt.relax_threshold,
                                                          opt.reclaim);
  if (name == "Bundle-skiplist")
    return std::make_unique<AnySetAdapter<BundleSkipListSet>>(
        opt.relax_threshold, opt.reclaim);
  if (name == "Bundle-citrus")
    return std::make_unique<AnySetAdapter<BundleCitrusSet>>(
        opt.relax_threshold, opt.reclaim);
  if (name == "Unsafe-list")
    return std::make_unique<AnySetAdapter<UnsafeListSet>>();
  if (name == "Unsafe-skiplist")
    return std::make_unique<AnySetAdapter<UnsafeSkipListSet>>();
  if (name == "Unsafe-citrus")
    return std::make_unique<AnySetAdapter<UnsafeCitrusSet>>();
  if (name == "EBR-RQ-list")
    return std::make_unique<AnySetAdapter<EbrRqListSet>>();
  if (name == "EBR-RQ-skiplist")
    return std::make_unique<AnySetAdapter<EbrRqSkipListSet>>();
  if (name == "EBR-RQ-citrus")
    return std::make_unique<AnySetAdapter<EbrRqCitrusSet>>();
  if (name == "EBR-RQ-LF-list")
    return std::make_unique<AnySetAdapter<EbrRqLfListSet>>();
  if (name == "EBR-RQ-LF-skiplist")
    return std::make_unique<AnySetAdapter<EbrRqLfSkipListSet>>();
  if (name == "EBR-RQ-LF-citrus")
    return std::make_unique<AnySetAdapter<EbrRqLfCitrusSet>>();
  if (name == "RLU-list")
    return std::make_unique<AnySetAdapter<RluListSet>>();
  if (name == "RLU-skiplist")
    return std::make_unique<AnySetAdapter<RluSkipListSet>>();
  if (name == "RLU-citrus")
    return std::make_unique<AnySetAdapter<RluCitrusSet>>();
  if (name == "Snapcollector-list")
    return std::make_unique<AnySetAdapter<SnapCollectorListSet>>();
  if (name == "Snapcollector-skiplist")
    return std::make_unique<AnySetAdapter<SnapCollectorSkipListSet>>();
  throw std::invalid_argument("unknown ordered-set implementation: " + name);
}

}  // namespace bref
