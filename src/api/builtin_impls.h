#pragma once
// The 18 builtin configurations — the paper's 17 plus the LFCA tree
// (arXiv:1709.00722) — each hooked into the ImplRegistry with one
// registration line. This file is the complete inventory: names,
// capabilities and factories are derived from the types (ordered_set.h),
// so nothing here needs editing when a knob or capability changes — and a
// new technique x structure is exactly one more line.
//
// The registrar objects are C++17 inline variables: one instance
// program-wide regardless of how many TUs include this header, initialized
// before main().

#include "api/ordered_set.h"
#include "api/registry.h"

namespace bref::builtin {

inline const RegisterSet<BundleListSet> kBundleList{true};
inline const RegisterSet<BundleSkipListSet> kBundleSkipList{true};
inline const RegisterSet<BundleCitrusSet> kBundleCitrus{true};
inline const RegisterSet<UnsafeListSet> kUnsafeList{true};
inline const RegisterSet<UnsafeSkipListSet> kUnsafeSkipList{true};
inline const RegisterSet<UnsafeCitrusSet> kUnsafeCitrus{true};
inline const RegisterSet<EbrRqListSet> kEbrRqList{true};
inline const RegisterSet<EbrRqSkipListSet> kEbrRqSkipList{true};
inline const RegisterSet<EbrRqCitrusSet> kEbrRqCitrus{true};
inline const RegisterSet<EbrRqLfListSet> kEbrRqLfList{true};
inline const RegisterSet<EbrRqLfSkipListSet> kEbrRqLfSkipList{true};
inline const RegisterSet<EbrRqLfCitrusSet> kEbrRqLfCitrus{true};
inline const RegisterSet<RluListSet> kRluList{true};
inline const RegisterSet<RluSkipListSet> kRluSkipList{true};
inline const RegisterSet<RluCitrusSet> kRluCitrus{true};
inline const RegisterSet<SnapCollectorListSet> kSnapCollectorList{true};
inline const RegisterSet<SnapCollectorSkipListSet> kSnapCollectorSkipList{
    true};
inline const RegisterSet<LfcaTreeSet> kLfcaTree{true};

}  // namespace bref::builtin
