#pragma once
// bref::obs — a small, dependency-free validator for Prometheus text
// exposition (format 0.0.4). Checked in so CI can assert METRICS output is
// syntactically valid without pulling in promtool; also exercised directly
// by tests/test_obs.cpp and wrapped as the tools/promcheck binary.
//
// What it checks (the subset real scrapers are strict about):
//   - every line is a comment (# HELP / # TYPE / # plain), a sample, or
//     blank;
//   - metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*  (labels may
//     not contain ':');
//   - label values are double-quoted with \\, \" and \n escapes only;
//   - sample values parse as a double (or +Inf/-Inf/NaN);
//   - a family's # TYPE appears at most once and precedes its samples;
//   - histogram families expose _bucket/_sum/_count, buckets carry an
//     `le` label, cumulative bucket counts are non-decreasing in le order
//     and end with le="+Inf" matching _count;
//   - an exemplar suffix (`value # {trace_id="..."} exemplar_value [ts]`,
//     the OpenMetrics syntax bref-trace emits on histogram buckets) has a
//     well-formed label set and a parseable value.
//
// validate() returns false with a one-line error (line number + reason).

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bref::obs {

struct PromSeries {
  std::string name;                                  // full sample name
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
  // Exemplar suffix (`# {labels} value`), when present on the sample line.
  bool has_exemplar = false;
  std::vector<std::pair<std::string, std::string>> exemplar_labels;
  double exemplar_value = 0;
};

namespace prom_detail {

inline bool name_char(char c, bool first, bool label) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return true;
  if (!label && c == ':') return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

inline bool parse_name(std::string_view& s, std::string& out, bool label) {
  out.clear();
  while (!s.empty() && name_char(s.front(), out.empty(), label)) {
    out.push_back(s.front());
    s.remove_prefix(1);
  }
  return !out.empty();
}

inline void skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
}

inline bool parse_value(std::string_view s, double& out) {
  if (s == "+Inf" || s == "Inf") { out = 1e308 * 10; return true; }
  if (s == "-Inf") { out = -1e308 * 10; return true; }
  if (s == "NaN") { out = 0; return true; }
  if (s.empty()) return false;
  std::string tmp(s);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Parse a `{name="value",...}` label set (s must start at the '{'); used
/// for both sample labels and exemplar labels. On failure sets `why`.
inline bool parse_labelset(std::string_view& s,
                           std::vector<std::pair<std::string, std::string>>& out,
                           std::string& why) {
  s.remove_prefix(1);  // the '{'
  for (;;) {
    skip_ws(s);
    if (!s.empty() && s.front() == '}') { s.remove_prefix(1); return true; }
    std::string lname;
    if (!parse_name(s, lname, /*label=*/true)) {
      why = "bad label name";
      return false;
    }
    if (s.empty() || s.front() != '=') {
      why = "label '" + lname + "' missing '='";
      return false;
    }
    s.remove_prefix(1);
    if (s.empty() || s.front() != '"') {
      why = "label value must be double-quoted";
      return false;
    }
    s.remove_prefix(1);
    std::string lval;
    bool closed = false;
    while (!s.empty()) {
      char c = s.front();
      s.remove_prefix(1);
      if (c == '\\') {
        if (s.empty()) {
          why = "dangling escape";
          return false;
        }
        char e = s.front();
        s.remove_prefix(1);
        if (e != '\\' && e != '"' && e != 'n') {
          why = "bad escape in label value";
          return false;
        }
        lval.push_back(e == 'n' ? '\n' : e);
      } else if (c == '"') {
        closed = true;
        break;
      } else {
        lval.push_back(c);
      }
    }
    if (!closed) {
      why = "unterminated label value";
      return false;
    }
    out.emplace_back(std::move(lname), std::move(lval));
    skip_ws(s);
    if (!s.empty() && s.front() == ',') s.remove_prefix(1);
  }
}

}  // namespace prom_detail

/// Parse + validate one exposition payload. On success, optionally fills
/// `series` with every sample parsed. On failure returns false and sets
/// `err` to "line N: reason".
inline bool validate_prometheus(std::string_view text, std::string* err,
                                std::vector<PromSeries>* series = nullptr) {
  using namespace prom_detail;
  auto fail = [&](size_t line, const std::string& why) {
    if (err != nullptr) *err = "line " + std::to_string(line) + ": " + why;
    return false;
  };

  std::map<std::string, std::string> family_type;  // family -> TYPE
  std::map<std::string, bool> family_sampled;      // family has samples
  // Histogram bookkeeping: family -> (label-set-minus-le -> last cumulative
  // count / last le / saw +Inf / inf value) and _count values for matching.
  struct HistState {
    double last_le = -1e308 * 10;
    uint64_t last_cum = 0;
    bool saw_inf = false;
    double inf_value = 0;
    bool saw_count = false;
    double count_value = 0;
  };
  std::map<std::string, HistState> hist;  // key: family + "|" + labels

  size_t lineno = 0;
  size_t nsamples = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    if (line.front() == '#') {
      std::string_view s = line.substr(1);
      skip_ws(s);
      std::string kw;
      size_t sp = s.find(' ');
      if (sp == std::string_view::npos) continue;  // plain comment
      kw = std::string(s.substr(0, sp));
      if (kw != "HELP" && kw != "TYPE") continue;  // plain comment
      s.remove_prefix(sp);
      skip_ws(s);
      std::string fam;
      if (!parse_name(s, fam, /*label=*/false))
        return fail(lineno, "# " + kw + " without a metric name");
      skip_ws(s);
      if (kw == "TYPE") {
        std::string ty(s);
        if (ty != "counter" && ty != "gauge" && ty != "histogram" &&
            ty != "summary" && ty != "untyped")
          return fail(lineno, "unknown TYPE '" + ty + "'");
        if (family_type.count(fam) != 0)
          return fail(lineno, "duplicate TYPE for family " + fam);
        if (family_sampled.count(fam) != 0)
          return fail(lineno, "TYPE for " + fam + " after its samples");
        family_type[fam] = ty;
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::string_view s = line;
    PromSeries ps;
    if (!parse_name(s, ps.name, /*label=*/false))
      return fail(lineno, "bad metric name");
    if (!s.empty() && s.front() == '{') {
      std::string why;
      if (!parse_labelset(s, ps.labels, why)) return fail(lineno, why);
    }
    skip_ws(s);
    // Value runs to next whitespace. What follows is either an optional
    // timestamp or an exemplar suffix: `# {labels} value [ts]`.
    size_t vend = s.find_first_of(" \t");
    std::string_view vstr = s.substr(0, vend);
    if (!parse_value(vstr, ps.value))
      return fail(lineno, "bad sample value '" + std::string(vstr) + "'");
    if (vend != std::string_view::npos) {
      std::string_view rest = s.substr(vend);
      skip_ws(rest);
      if (!rest.empty() && rest.front() == '#') {
        rest.remove_prefix(1);
        skip_ws(rest);
        if (rest.empty() || rest.front() != '{')
          return fail(lineno, "exemplar missing '{' label set");
        std::string why;
        if (!parse_labelset(rest, ps.exemplar_labels, why))
          return fail(lineno, "exemplar: " + why);
        skip_ws(rest);
        size_t evend = rest.find_first_of(" \t");
        std::string_view evstr = rest.substr(0, evend);
        if (!parse_value(evstr, ps.exemplar_value))
          return fail(lineno,
                      "bad exemplar value '" + std::string(evstr) + "'");
        ps.has_exemplar = true;
        rest = evend == std::string_view::npos ? std::string_view{}
                                               : rest.substr(evend);
        skip_ws(rest);
        double ignored;
        if (!rest.empty() && !parse_value(rest, ignored))
          return fail(lineno, "bad exemplar timestamp");
      } else if (!rest.empty()) {
        double ignored;
        if (!parse_value(rest, ignored))
          return fail(lineno, "bad timestamp");
      }
    }

    // Family = sample name minus a histogram suffix when that family is
    // declared a histogram.
    std::string family = ps.name;
    for (const char* suf : {"_bucket", "_sum", "_count"}) {
      const std::string sufs(suf);
      if (family.size() > sufs.size() &&
          family.compare(family.size() - sufs.size(), sufs.size(), sufs) ==
              0) {
        std::string base = family.substr(0, family.size() - sufs.size());
        auto it = family_type.find(base);
        if (it != family_type.end() &&
            (it->second == "histogram" || it->second == "summary")) {
          family = base;
          break;
        }
      }
    }
    family_sampled[family] = true;

    auto ft = family_type.find(family);
    if (ft != family_type.end() && ft->second == "histogram") {
      // Key by labels minus le so per-labelset bucket chains validate
      // independently.
      std::string key = family + "|";
      std::string le_val;
      bool has_le = false;
      for (const auto& [k, v] : ps.labels) {
        if (k == "le") {
          has_le = true;
          le_val = v;
        } else {
          key += k + "=" + v + ";";
        }
      }
      HistState& hs = hist[key];
      if (ps.name == family + "_bucket") {
        if (!has_le)
          return fail(lineno, family + "_bucket missing le label");
        double le;
        if (!parse_value(le_val, le))
          return fail(lineno, "bad le value '" + le_val + "'");
        if (le_val == "+Inf") {
          hs.saw_inf = true;
          hs.inf_value = ps.value;
        } else {
          if (le <= hs.last_le)
            return fail(lineno, family + " buckets out of le order");
          if (hs.saw_inf)
            return fail(lineno, family + " bucket after +Inf");
          hs.last_le = le;
        }
        if (ps.value + 0.5 < static_cast<double>(hs.last_cum))
          return fail(lineno, family + " cumulative bucket count decreased");
        hs.last_cum = static_cast<uint64_t>(ps.value);
      } else if (ps.name == family + "_count") {
        hs.saw_count = true;
        hs.count_value = ps.value;
      }
    }

    ++nsamples;
    if (series != nullptr) series->push_back(std::move(ps));
  }

  if (nsamples == 0) return fail(lineno, "no samples in exposition");

  for (const auto& [key, hs] : hist) {
    const std::string family = key.substr(0, key.find('|'));
    if (!hs.saw_inf)
      return fail(0, "histogram " + family + " missing le=\"+Inf\" bucket");
    if (hs.saw_count && hs.inf_value != hs.count_value)
      return fail(0, "histogram " + family + " +Inf bucket != _count");
  }
  return true;
}

/// True when the exposition contains at least one sample whose name starts
/// with `prefix` (CI uses this to assert layer coverage).
inline bool has_metric_prefix(std::string_view text, std::string_view prefix) {
  std::vector<PromSeries> series;
  std::string err;
  if (!validate_prometheus(text, &err, &series)) return false;
  for (const auto& s : series)
    if (s.name.size() >= prefix.size() &&
        s.name.compare(0, prefix.size(), prefix) == 0)
      return true;
  return false;
}

}  // namespace bref::obs
