#pragma once
// bref::obs — flight recorder: per-worker rings of sampled trace spans.
//
// Histograms (metrics.h) tell you THAT p99 is 2.4 ms; the flight recorder
// tells you WHICH requests paid it and where. Each server worker owns a
// fixed-size ring of TraceSpans; roughly one request in `sample_every`
// (default 128, ≈1%, runtime-adjustable over the wire via TRACE_DUMP with
// a body) deposits a span recording its op type, shard, owning worker and
// the per-stage nanosecond breakdown the worker loop measured anyway:
// queue-wait (epoll wakeup → this frame's execute), execute, and the
// flush share of its write wave. TRACE_DUMP returns the tail of every
// ring — the last kCapacity sampled spans per worker, oldest first.
//
// Cost model: the ring is fixed storage (no allocation ever); push/dump
// take a per-ring spinlock, but a push happens only for sampled requests
// (~1%) and a dump only when a client asks, so the lock is uncontended in
// steady state and exists purely to keep dumps torn-span-free (and TSan
// clean). The sampling decision itself is one thread-local counter
// decrement — that is the only per-request cost when tracing is idle.
//
// This header depends only on common/ — op codes are carried as raw
// uint8_t so the net layer (which knows their names) can render dumps
// without obs depending on net.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/spinlock.h"

namespace bref::obs {

struct TraceSpan {
  uint64_t end_ns = 0;    ///< completion time, steady-clock ns
  uint32_t queue_ns = 0;  ///< epoll wakeup -> start of this conn's execute
  uint32_t exec_ns = 0;   ///< execute of this frame
  uint32_t flush_ns = 0;  ///< flush of the conn's write wave (shared cost)
  uint16_t shard = 0;     ///< routed shard (0 when unsharded / n/a)
  uint8_t op = 0;         ///< wire op code (net::Op), raw
  uint8_t worker = 0;     ///< worker index that executed it
};

/// Global sampling knob: a span is recorded for ~one request in
/// `trace_sample_every()` (0 disables tracing entirely). Runtime-writable
/// (TRACE_DUMP with a 4-byte body sets it).
inline std::atomic<uint32_t>& trace_sample_every() {
  static std::atomic<uint32_t> every{128};
  return every;
}

/// Per-request sampling decision; one thread-local countdown, no atomics
/// on the common path.
inline bool trace_should_sample() {
  const uint32_t every = trace_sample_every().load(std::memory_order_relaxed);
  if (every == 0) return false;
  thread_local uint32_t countdown = 0;
  if (countdown == 0) {
    countdown = every;
    return true;
  }
  --countdown;
  return false;
}

class TraceRing {
 public:
  static constexpr size_t kCapacity = 4096;  // power of two, ~96 KiB

  void push(const TraceSpan& s) noexcept {
    std::lock_guard<Spinlock> g(lock_);
    spans_[next_ & (kCapacity - 1)] = s;
    ++next_;
  }

  /// Copy out the tail, oldest first. `total` (optional) receives the
  /// number of spans ever pushed, so callers can report drops.
  std::vector<TraceSpan> dump(uint64_t* total = nullptr) const {
    std::lock_guard<Spinlock> g(lock_);
    const uint64_t n = next_ < kCapacity ? next_ : kCapacity;
    std::vector<TraceSpan> out;
    out.reserve(n);
    for (uint64_t i = next_ - n; i < next_; ++i)
      out.push_back(spans_[i & (kCapacity - 1)]);
    if (total != nullptr) *total = next_;
    return out;
  }

  uint64_t pushed() const noexcept {
    std::lock_guard<Spinlock> g(lock_);
    return next_;
  }

 private:
  mutable Spinlock lock_;
  uint64_t next_ = 0;
  TraceSpan spans_[kCapacity] = {};
};

}  // namespace bref::obs
