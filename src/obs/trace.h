#pragma once
// bref::obs — bref-trace: per-request span traces with tail-biased capture.
//
// Histograms (metrics.h) tell you THAT p99 is 2.4 ms; a trace tells you
// WHICH request paid it and WHERE. Each server worker owns:
//
//   * a TraceSlots pool of scratch builders — every traced request records
//     its stage spans (queue, admission, execute, shard fan-out, scan
//     chunks, flush, shed/error terminators) into a pre-sized slot, zero
//     allocation, single-writer (the worker);
//   * a TraceRing of COMMITTED records — the scratch record is promoted
//     only when the request's total latency crosses the runtime threshold
//     (`trace_threshold_ns`) or a 1-in-N reservoir fires
//     (`trace_sample_every`). Capture is therefore retroactive and
//     tail-biased: recording is unconditional and cheap, the keep/discard
//     decision is made once the outcome (slow or not) is known, so the
//     slowest requests are never sampled away;
//   * a TraceBoard of the all-time slowest kBoardSlots records — the ring
//     is a recency window (overwrites oldest, counted as drops), the board
//     guarantees the true tail stays retrievable for the whole run.
//
// Concurrency: the record/commit path runs only on the owning worker and
// is wait-free — a commit is a slot copy between two release stores of a
// per-slot sequence number (seqlock). Readers (TRACE_DUMP / TRACE_GET,
// executed by whichever worker got the frame) copy slots and discard torn
// ones by re-checking the sequence; they never block the producer. This
// replaces the PR 7 spinlocked ring: the producer no longer takes any
// lock, ever.
//
// This header depends only on common/ — op codes are carried as raw
// uint8_t so the net layer (which knows their names) can render dumps
// without obs depending on net.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "obs/metrics.h"

namespace bref::obs {

// ---------------------------------------------------------------------------
// Stages.

/// Span stage codes. Values are wire-visible (TRACE_DUMP/TRACE_GET JSON
/// uses the names below); append-only.
enum class TraceStage : uint8_t {
  kQueue = 0,      ///< readable on the wire -> this frame's execute begins
  kAdmission = 1,  ///< WaveBudget verdict (aux16: 0 admitted, 1 shed)
  kExecute = 2,    ///< the op itself (synchronous part)
  kShardPin = 3,   ///< coordinated fan-out: pin+announce (aux16: #shards)
  kShardCollect = 4,  ///< coordinated fan-out: per-shard collect (aux8: shard)
  kScanChunk = 5,  ///< one chunked-scan pump slice (aux16: slice count)
  kFlush = 6,      ///< this conn's write wave (shared cost)
  kShed = 7,       ///< terminal: answered kErrOverloaded, op not executed
  kError = 8,      ///< terminal: protocol error / conn died mid-request
};

inline const char* trace_stage_name(uint8_t s) {
  switch (static_cast<TraceStage>(s)) {
    case TraceStage::kQueue: return "queue";
    case TraceStage::kAdmission: return "admission";
    case TraceStage::kExecute: return "execute";
    case TraceStage::kShardPin: return "shard_pin";
    case TraceStage::kShardCollect: return "shard_collect";
    case TraceStage::kScanChunk: return "scan_chunk";
    case TraceStage::kFlush: return "flush";
    case TraceStage::kShed: return "shed";
    case TraceStage::kError: return "error";
  }
  return "?";
}

// Record flags.
inline constexpr uint8_t kTraceClientStamped = 1;  ///< id came off the wire
inline constexpr uint8_t kTraceShed = 2;           ///< terminated by shedding
inline constexpr uint8_t kTraceError = 4;          ///< terminated by error
inline constexpr uint8_t kTraceTruncated = 8;      ///< span array overflowed

/// One stage span. Offsets/durations are u32 nanoseconds relative to the
/// record's start_ns, saturating at ~4.29 s — long enough for any request
/// the guard layer would let live.
struct TraceStageSpan {
  uint32_t start_ns = 0;  ///< offset from TraceRecord::start_ns
  uint32_t dur_ns = 0;
  uint8_t stage = 0;      ///< TraceStage
  uint8_t aux8 = 0;       ///< stage-specific (shard index, ...)
  uint16_t aux16 = 0;     ///< stage-specific (shard count, slice count, ...)
};

inline constexpr int kTraceMaxSpans = 24;

/// One complete request trace: identity + stage timeline. POD, memcpy-able
/// (the seqlock readers rely on that).
struct TraceRecord {
  uint64_t trace_id = 0;  ///< nonzero; client-stamped or worker-generated
  uint64_t start_ns = 0;  ///< steady-clock ns at first stage start
  uint64_t total_ns = 0;  ///< start of queue -> end of flush (or terminal)
  uint8_t op = 0;         ///< wire op code (net::Op), raw
  uint8_t worker = 0;     ///< worker index that executed it
  uint8_t nspans = 0;
  uint8_t flags = 0;
  uint32_t reserved = 0;
  TraceStageSpan spans[kTraceMaxSpans] = {};
};

// ---------------------------------------------------------------------------
// Runtime capture policy.

/// Reservoir knob: commit ~one completed trace in `trace_sample_every()`
/// regardless of latency (0 disables the reservoir). Runtime-writable
/// (TRACE_DUMP with a body sets it).
inline std::atomic<uint32_t>& trace_sample_every() {
  static std::atomic<uint32_t> every{128};
  return every;
}

/// Latency threshold: a completed trace whose total latency is >= this
/// commits unconditionally. 0 means "commit everything" (tests, fig7
/// deep-capture); kTraceThresholdOff disables threshold commits.
/// Default 1 ms — roughly "past any healthy p99 of this stack".
inline constexpr uint64_t kTraceThresholdOff = ~0ull;

inline std::atomic<uint64_t>& trace_threshold_ns() {
  static std::atomic<uint64_t> ns{1'000'000};
  return ns;
}

/// Tracing is armed iff some commit policy could fire. When disarmed (and
/// the client did not stamp a trace context) requests skip scratch
/// recording entirely — this is the "tracing off" side of the overhead
/// gate.
inline bool trace_armed() {
  if constexpr (!kEnabled) return false;
  return trace_sample_every().load(std::memory_order_relaxed) != 0 ||
         trace_threshold_ns().load(std::memory_order_relaxed) !=
             kTraceThresholdOff;
}

/// Reservoir decision, evaluated at COMPLETION time (retroactive capture
/// means the decision point is the end, not the start). One thread-local
/// countdown, no atomics on the common path.
inline bool trace_reservoir_fires() {
  const uint32_t every = trace_sample_every().load(std::memory_order_relaxed);
  if (every == 0) return false;
  thread_local uint32_t countdown = 0;
  if (countdown == 0) {
    countdown = every;
    return true;
  }
  --countdown;
  return false;
}

/// The commit decision for a completed trace. Client-stamped requests use
/// the same policy — stamping selects *tracing*, the tail selects *keeping*
/// (otherwise a stamp-everything client would churn the ring and evict the
/// very tail the ring exists to hold).
inline bool trace_should_commit(uint64_t total_ns) {
  const uint64_t thr = trace_threshold_ns().load(std::memory_order_relaxed);
  if (thr != kTraceThresholdOff && total_ns >= thr) return true;
  return trace_reservoir_fires();
}

// ---------------------------------------------------------------------------
// Scratch: per-request builders, pooled per worker.

/// A scratch trace under construction. Single-writer (the owning worker);
/// nothing here is atomic. stamp() saturates offsets at u32 and sets
/// kTraceTruncated instead of writing past kTraceMaxSpans.
class TraceScratch {
 public:
  void open(uint64_t trace_id, uint8_t op, uint8_t worker, uint64_t start_ns,
            uint8_t flags) noexcept {
    rec_.trace_id = trace_id;
    rec_.start_ns = start_ns;
    rec_.total_ns = 0;
    rec_.op = op;
    rec_.worker = worker;
    rec_.nspans = 0;
    rec_.flags = flags;
  }

  void stamp(TraceStage stage, uint64_t t0_ns, uint64_t t1_ns,
             uint8_t aux8 = 0, uint16_t aux16 = 0) noexcept {
    if (rec_.nspans >= kTraceMaxSpans) {
      rec_.flags |= kTraceTruncated;
      return;
    }
    TraceStageSpan& s = rec_.spans[rec_.nspans++];
    s.start_ns = rel(t0_ns);
    s.dur_ns = sat32(t1_ns >= t0_ns ? t1_ns - t0_ns : 0);
    s.stage = static_cast<uint8_t>(stage);
    s.aux8 = aux8;
    s.aux16 = aux16;
  }

  /// Coalescing stamp for repeated stages (scan-chunk slices): extend a
  /// recent same-stage span and bump its aux16 slice count instead of
  /// burning a new span — a 200-slice scan stays one span. Looks back two
  /// spans so the pump's alternating pair (shard_collect then scan_chunk,
  /// every slice) coalesces into two growing spans rather than
  /// ping-ponging new ones until truncation.
  void stamp_coalesce(TraceStage stage, uint64_t t0_ns,
                      uint64_t t1_ns) noexcept {
    for (int back = 1; back <= 2 && back <= rec_.nspans; ++back) {
      TraceStageSpan& s = rec_.spans[rec_.nspans - back];
      if (s.stage != static_cast<uint8_t>(stage)) continue;
      const uint32_t end = rel(t1_ns);
      if (end > s.start_ns) s.dur_ns = end - s.start_ns;
      if (s.aux16 != UINT16_MAX) ++s.aux16;
      return;
    }
    stamp(stage, t0_ns, t1_ns, 0, 1);
  }

  /// Close the trace: total latency becomes known here, which is the
  /// moment the keep/discard policy can run.
  void finish(uint64_t end_ns) noexcept {
    rec_.total_ns = end_ns >= rec_.start_ns ? end_ns - rec_.start_ns : 0;
  }

  void add_flags(uint8_t f) noexcept { rec_.flags |= f; }
  const TraceRecord& record() const noexcept { return rec_; }
  uint64_t trace_id() const noexcept { return rec_.trace_id; }
  uint64_t start_ns() const noexcept { return rec_.start_ns; }
  uint8_t op() const noexcept { return rec_.op; }

 private:
  static uint32_t sat32(uint64_t v) noexcept {
    return v > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(v);
  }
  uint32_t rel(uint64_t abs_ns) const noexcept {
    return sat32(abs_ns >= rec_.start_ns ? abs_ns - rec_.start_ns : 0);
  }

  TraceRecord rec_;
};

/// Fixed pool of scratch slots, one pool per worker. acquire()/release()
/// are owner-thread-only (free-bitmap, no atomics); in_use() is readable
/// from any thread (STATS runs on whichever worker got the frame) — that
/// is the trace-slot accounting the chaos suite audits: a request that
/// ends in a shed, a protocol error, or a dead connection MUST release its
/// slot, so in_use() returns to the number of live chunked scans (0 when
/// idle).
class TraceSlots {
 public:
  static constexpr int kSlots = kEnabled ? 64 : 1;

  /// nullptr when exhausted (caller counts it and skips tracing that
  /// request — never blocks, never allocates).
  TraceScratch* acquire() noexcept {
    if (free_ == 0) return nullptr;
    const int i = std::countr_zero(free_);
    free_ &= free_ - 1;
    in_use_.fetch_add(1, std::memory_order_relaxed);
    return &slots_[i];
  }

  void release(TraceScratch* s) noexcept {
    const auto i = static_cast<uint64_t>(s - slots_);
    free_ |= 1ull << i;
    in_use_.fetch_sub(1, std::memory_order_relaxed);
  }

  int in_use() const noexcept {
    return in_use_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kAllFree =
      kSlots == 64 ? ~0ull : (1ull << kSlots) - 1;
  uint64_t free_ = kAllFree;          // owner-thread only
  std::atomic<int> in_use_{0};        // cross-thread readable
  TraceScratch slots_[kSlots];
};

// ---------------------------------------------------------------------------
// Committed storage: ring (recency) + board (all-time slowest).

/// Seqlock slot shared by ring and board: the single producer bumps seq to
/// odd, copies the record, bumps to even; a reader copies and keeps the
/// copy only if seq was even and unchanged across it.
struct TraceSlot {
  std::atomic<uint32_t> seq{0};
  TraceRecord rec;

  void publish(const TraceRecord& r) noexcept {
    const uint32_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    rec = r;
    seq.store(s + 2, std::memory_order_release);
  }

  bool read(TraceRecord& out) const noexcept {
    const uint32_t s0 = seq.load(std::memory_order_acquire);
    if (s0 == 0 || (s0 & 1) != 0) return false;
    std::memcpy(&out, &rec, sizeof out);
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq.load(std::memory_order_relaxed) == s0;
  }
};

/// Lock-free single-producer ring of committed records. push() is
/// wait-free (one slot publish + one head store); concurrent readers
/// snapshot what they can and skip torn slots. Records overwritten before
/// anyone read them are gone — dropped() counts how many the window has
/// evicted, surfaced as bref_trace_dropped_total.
class TraceRing {
 public:
  static constexpr size_t kCapacity = kEnabled ? 512 : 1;  // power of two

  void push(const TraceRecord& r) noexcept {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & (kCapacity - 1)].publish(r);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Committed records, oldest first, torn slots skipped.
  void snapshot(std::vector<TraceRecord>& out) const {
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t n = h < kCapacity ? h : kCapacity;
    TraceRecord r;
    for (uint64_t i = h - n; i < h; ++i)
      if (slots_[i & (kCapacity - 1)].read(r)) out.push_back(r);
  }

  /// Linear id lookup over the live window (rare path: TRACE_GET).
  bool find(uint64_t trace_id, TraceRecord& out) const {
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t n = h < kCapacity ? h : kCapacity;
    TraceRecord r;
    for (uint64_t i = h; i > h - n; --i)  // newest first
      if (slots_[(i - 1) & (kCapacity - 1)].read(r) && r.trace_id == trace_id) {
        out = r;
        return true;
      }
    return false;
  }

  uint64_t committed() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const noexcept {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    return h > kCapacity ? h - kCapacity : 0;
  }

 private:
  std::atomic<uint64_t> head_{0};
  TraceSlot slots_[kCapacity];
};

/// The all-time-slowest board: kBoardSlots records kept by total_ns,
/// min-replaced on commit. The ring answers "what happened recently", the
/// board answers "what were the worst requests of this run" — the promise
/// that the slowest requests are ALWAYS captured lives here, immune to
/// ring churn. Single producer; seqlock readers as above.
class TraceBoard {
 public:
  static constexpr int kBoardSlots = kEnabled ? 16 : 1;

  void offer(const TraceRecord& r) noexcept {
    int min_i = 0;
    uint64_t min_v = ~0ull;
    for (int i = 0; i < kBoardSlots; ++i) {
      if (totals_[i] < min_v) {
        min_v = totals_[i];
        min_i = i;
      }
    }
    if (r.total_ns <= min_v) return;
    slots_[min_i].publish(r);
    totals_[min_i] = r.total_ns;
  }

  void snapshot(std::vector<TraceRecord>& out) const {
    TraceRecord r;
    for (int i = 0; i < kBoardSlots; ++i)
      if (slots_[i].read(r)) out.push_back(r);
  }

  bool find(uint64_t trace_id, TraceRecord& out) const {
    TraceRecord r;
    for (int i = 0; i < kBoardSlots; ++i)
      if (slots_[i].read(r) && r.trace_id == trace_id) {
        out = r;
        return true;
      }
    return false;
  }

 private:
  uint64_t totals_[kBoardSlots] = {};  // producer-only shadow of totals
  TraceSlot slots_[kBoardSlots];
};

// ---------------------------------------------------------------------------
// Cross-layer stamping hook.
//
// The shard and guard layers sit below net and cannot see the request's
// scratch slot. The worker parks a pointer to the active scratch in a
// thread-local before descending into execute(); ShardedSet's coordinated
// fan-out and SnapshotScan's pin path stamp through it. Cost when no trace
// is active: one thread-local load + branch.

inline TraceScratch*& current_trace() noexcept {
  thread_local TraceScratch* cur = nullptr;
  return cur;
}

/// RAII set/restore, safe to nest (inner scans under an outer execute).
class CurrentTraceScope {
 public:
  explicit CurrentTraceScope(TraceScratch* t) noexcept
      : prev_(current_trace()) {
    current_trace() = t;
  }
  ~CurrentTraceScope() { current_trace() = prev_; }
  CurrentTraceScope(const CurrentTraceScope&) = delete;
  CurrentTraceScope& operator=(const CurrentTraceScope&) = delete;

 private:
  TraceScratch* prev_;
};

/// Steady-clock nanoseconds for span stamping below the net layer.
/// Constant-folds to 0 when obs is compiled out. Hot paths should gate
/// the call on `current_trace() != nullptr` so untraced requests never
/// read the clock.
inline uint64_t trace_now_ns() {
  if constexpr (!kEnabled) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stamp into the active trace, if any. The layers below net call this.
inline void trace_stage(TraceStage stage, uint64_t t0_ns, uint64_t t1_ns,
                        uint8_t aux8 = 0, uint16_t aux16 = 0) noexcept {
  if constexpr (!kEnabled) return;
  if (TraceScratch* t = current_trace(); t != nullptr)
    t->stamp(stage, t0_ns, t1_ns, aux8, aux16);
}

}  // namespace bref::obs
