#pragma once
// bref::obs — process-wide metrics: the cross-layer observability core.
//
// Everything the stack already counted ad hoc (server frame counters,
// EntryPool hit/miss, ShardedSet routing, maintenance stats) plus what it
// could not see at all (per-stage wire latencies, bundle-chain depth, EBR
// epoch lag) flows through one registry here, readable at any moment as
// either Prometheus text exposition (the METRICS wire op) or JSON (STATS).
//
// Design rules, in order of importance:
//
//   1. Allocation-free and lock-free on the hot path. A Counter/Histogram
//      is a fixed array of cache-padded per-thread slots (same sharding as
//      the EBR/RQ substrates); add()/record() is one relaxed atomic RMW on
//      the caller's own line. Nothing on the record path takes a lock,
//      allocates, or touches another thread's line.
//   2. Merge-on-read. Aggregation happens in snapshot(), which sums the
//      slots; the result is "exact once quiescent, approximate under
//      concurrency" — the relaxed-counter accuracy argument in DESIGN.md
//      §7 (each slot is only ever missing its last in-flight increments).
//   3. Self-registering, like ImplRegistry: a call site does
//          static obs::Counter& c = obs::registry().counter("name", "help");
//      and the metric exists process-wide from first touch. Per-instance
//      sources (one Ebr per structure, one ShardedSet per server) register
//      callbacks into an aggregating GaugeSet with an RAII handle, so
//      instance churn never leaves dangling metrics behind.
//   4. Compiled out on demand: -DBREF_OBS_ENABLED=0 (CMake -DBREF_OBS=OFF)
//      turns every record path into a no-op while keeping the registry and
//      exposition code alive — the ablation baseline the ≤3%-overhead
//      budget is measured against.
//
// Histograms are log₂-bucketed: 64 fixed buckets, bucket i > 0 covering
// [2^(i-1), 2^i), bucket 0 = {0}. Quantiles are computed from any merged
// snapshot by rank walk + linear interpolation inside the landing bucket,
// so p50/p99/p999 are available from a histogram that was never sorted and
// never stored a sample. Wide enough for nanoseconds-to-hours; exposition
// scales values by `scale` (1e9 for ns → seconds histograms, Prometheus
// convention).

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cacheline.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"

// Ablation flag: 0 compiles every record path to nothing (registry and
// snapshot stay; already-registered gauges still read).
#ifndef BREF_OBS_ENABLED
#define BREF_OBS_ENABLED 1
#endif

namespace bref::obs {

inline constexpr bool kEnabled = BREF_OBS_ENABLED != 0;

/// Slot index for threads that have no dense tid at hand (client threads,
/// tests). Monotonic assignment modulo the slot count: collisions are
/// possible and harmless (slots are atomics; attribution blurs, totals
/// don't).
inline int slot_hint() {
  static std::atomic<unsigned> next{0};
  thread_local const int slot = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMaxThreads));
  return slot;
}

// ---------------------------------------------------------------------------
// Counter — monotonic, per-thread sharded.

class Counter {
 public:
  void add(int tid, uint64_t n = 1) noexcept {
    if constexpr (!kEnabled) return;
    slots_[tid]->fetch_add(n, std::memory_order_relaxed);
  }
  /// Unattributed variant (distinct name, not an overload: a lone integer
  /// argument would silently resolve to the tid parameter above).
  void bump(uint64_t n = 1) noexcept { add(slot_hint(), n); }

  uint64_t value() const noexcept {
    uint64_t v = 0;
    for (int i = 0; i < kMaxThreads; ++i)
      v += slots_[i]->load(std::memory_order_relaxed);
    return v;
  }

 private:
  CachePadded<std::atomic<uint64_t>> slots_[kMaxThreads] = {};
};

// ---------------------------------------------------------------------------
// Histogram — 64 log₂ buckets, per-thread sharded, merge-on-read.

inline constexpr int kHistBuckets = 64;

/// Bucket for value v: 0 for v == 0, else bit_width(v) clamped to 63 —
/// bucket i > 0 covers [2^(i-1), 2^i).
inline int bucket_of(uint64_t v) noexcept {
  const int b = std::bit_width(v);  // 0 for v==0
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

/// A merged (single-threaded) view of a histogram; also usable standalone
/// as a local accumulator (the bench harness records straight into one).
struct HistogramSnapshot {
  uint64_t buckets[kHistBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;

  void record(uint64_t v) noexcept {
    ++buckets[bucket_of(v)];
    ++count;
    sum += v;
  }

  /// Rank-walk quantile with linear interpolation inside the landing
  /// bucket. q in [0,1]; returns 0 on an empty histogram. Accuracy is
  /// bounded by the bucket width (≤ 2x, typically far better after
  /// interpolation) — see DESIGN.md §7.
  double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the target sample, 1-based.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
    uint64_t seen = 0;
    for (int i = 0; i < kHistBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (seen + buckets[i] >= rank) {
        const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
        const double hi = i == 0 ? 0.0 : static_cast<double>(1ull << i) - 1.0;
        const double frac =
            static_cast<double>(rank - seen) / static_cast<double>(buckets[i]);
        return lo + (hi - lo) * frac;
      }
      seen += buckets[i];
    }
    return static_cast<double>(sum) / static_cast<double>(count);
  }

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept {
    for (int i = 0; i < kHistBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    return *this;
  }
  /// Delta against an earlier snapshot of the SAME histogram (counts are
  /// monotonic, so member-wise subtraction is exact).
  HistogramSnapshot& operator-=(const HistogramSnapshot& o) noexcept {
    for (int i = 0; i < kHistBuckets; ++i) buckets[i] -= o.buckets[i];
    count -= o.count;
    sum -= o.sum;
    return *this;
  }
};

class Histogram {
 public:
  ~Histogram() { delete exemplars_.load(std::memory_order_relaxed); }

  void record(int tid, uint64_t v) noexcept {
    if constexpr (!kEnabled) return;
    Slot& s = slots_[tid];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }
  /// Unattributed variant (distinct name for the same reason as
  /// Counter::bump).
  void observe(uint64_t v) noexcept { record(slot_hint(), v); }

  /// Exemplar: remember `trace_id` as the face of the bucket `v` lands in.
  /// Called only when a trace COMMITS (rare — tail or reservoir), so the
  /// lazy first-call allocation and the two relaxed stores are off the
  /// record hot path. The (id, value) pair is advisory and may tear under
  /// a concurrent exemplar for the same bucket; both halves are always
  /// some committed trace's, which is all an exemplar promises.
  void set_exemplar(uint64_t v, uint64_t trace_id) noexcept {
    if constexpr (!kEnabled) return;
    if (trace_id == 0) return;
    Exemplars* e = exemplars_.load(std::memory_order_acquire);
    if (e == nullptr) {
      auto* fresh = new Exemplars();
      if (exemplars_.compare_exchange_strong(e, fresh,
                                             std::memory_order_acq_rel))
        e = fresh;
      else
        delete fresh;  // lost the install race; e holds the winner
    }
    const int b = bucket_of(v);
    e->id[b].store(trace_id, std::memory_order_relaxed);
    e->value[b].store(v, std::memory_order_relaxed);
  }

  /// Read the exemplar for bucket `b` (raw recorded value + trace id);
  /// false when that bucket never got one.
  bool exemplar(int b, uint64_t* value, uint64_t* trace_id) const noexcept {
    const Exemplars* e = exemplars_.load(std::memory_order_acquire);
    if (e == nullptr) return false;
    const uint64_t id = e->id[b].load(std::memory_order_relaxed);
    if (id == 0) return false;
    *trace_id = id;
    *value = e->value[b].load(std::memory_order_relaxed);
    return true;
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (int t = 0; t < kMaxThreads; ++t) {
      const Slot& s = slots_[t];
      for (int i = 0; i < kHistBuckets; ++i)
        out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<uint64_t> buckets[kHistBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  struct Exemplars {
    std::atomic<uint64_t> id[kHistBuckets] = {};     // 0 = no exemplar
    std::atomic<uint64_t> value[kHistBuckets] = {};  // raw (unscaled) value
  };
  Slot slots_[kMaxThreads] = {};
  std::atomic<Exemplars*> exemplars_{nullptr};  // lazy: most hists never pay
};

// ---------------------------------------------------------------------------
// Registry.

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  /// Leaky singleton: RAII handles held by per-instance sources may
  /// outlive every static with a destructor.
  static MetricsRegistry& instance() {
    static MetricsRegistry* reg = new MetricsRegistry();
    return *reg;
  }

  /// Find-or-create by (name, labels). References stay valid forever
  /// (metrics are never destroyed). `labels` is the inner label list
  /// without braces, e.g. `op="get"`.
  Counter& counter(std::string name, std::string help,
                   std::string labels = "") {
    std::lock_guard<Spinlock> g(lock_);
    for (auto& e : entries_)
      if (e->kind == MetricKind::kCounter && e->name == name &&
          e->labels == labels)
        return *e->counter;
    auto e = std::make_unique<Entry>();
    e->kind = MetricKind::kCounter;
    e->name = std::move(name);
    e->help = std::move(help);
    e->labels = std::move(labels);
    e->counter = std::make_unique<Counter>();
    entries_.push_back(std::move(e));
    return *entries_.back()->counter;
  }

  /// `scale` divides raw recorded values on exposition (1e9 renders
  /// nanosecond recordings as a Prometheus _seconds histogram).
  Histogram& histogram(std::string name, std::string help,
                       std::string labels = "", double scale = 1.0) {
    std::lock_guard<Spinlock> g(lock_);
    for (auto& e : entries_)
      if (e->kind == MetricKind::kHistogram && e->name == name &&
          e->labels == labels)
        return *e->histogram;
    auto e = std::make_unique<Entry>();
    e->kind = MetricKind::kHistogram;
    e->name = std::move(name);
    e->help = std::move(help);
    e->labels = std::move(labels);
    e->scale = scale;
    e->histogram = std::make_unique<Histogram>();
    entries_.push_back(std::move(e));
    return *entries_.back()->histogram;
  }

  /// RAII registration of a callback-backed series (gauge or counter
  /// semantics); the callback is invoked at snapshot time, under the
  /// registry lock — it must only read (atomics, locked stats getters)
  /// and must not call back into the registry.
  class Handle {
   public:
    Handle() = default;
    Handle(MetricsRegistry* r, uint64_t id) : reg_(r), id_(id) {}
    ~Handle() { reset(); }
    Handle(Handle&& o) noexcept
        : reg_(std::exchange(o.reg_, nullptr)), id_(o.id_) {}
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        reset();
        reg_ = std::exchange(o.reg_, nullptr);
        id_ = o.id_;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    void reset() {
      if (reg_ != nullptr) reg_->remove_callback(id_);
      reg_ = nullptr;
    }

   private:
    MetricsRegistry* reg_ = nullptr;
    uint64_t id_ = 0;
  };

  [[nodiscard]] Handle add_callback(MetricKind kind, std::string name,
                                    std::string help, std::string labels,
                                    std::function<double()> fn) {
    std::lock_guard<Spinlock> g(lock_);
    auto e = std::make_unique<Entry>();
    e->kind = kind;
    e->name = std::move(name);
    e->help = std::move(help);
    e->labels = std::move(labels);
    e->fn = std::move(fn);
    e->callback_id = next_id_++;
    const uint64_t id = e->callback_id;
    entries_.push_back(std::move(e));
    return Handle(this, id);
  }

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE emitted once
  /// per family, histograms as cumulative le-buckets with +Inf, _sum and
  /// _count. Safe to call concurrently with recording.
  std::string prometheus() const {
    std::lock_guard<Spinlock> g(lock_);
    std::string out;
    out.reserve(4096);
    std::vector<const Entry*> sorted = sorted_entries();
    const std::string* last_family = nullptr;
    char buf[256];
    for (const Entry* e : sorted) {
      if (last_family == nullptr || *last_family != e->name) {
        out += "# HELP " + e->name + " " + e->help + "\n";
        out += "# TYPE " + e->name + " " + type_name(e->kind) + "\n";
        last_family = &e->name;
      }
      if (e->kind == MetricKind::kHistogram) {
        const HistogramSnapshot h = e->histogram->snapshot();
        uint64_t cum = 0;
        for (int i = 0; i < kHistBuckets; ++i) {
          if (h.buckets[i] == 0 && i != 0) continue;
          cum += h.buckets[i];
          const double le =
              i == 0 ? 0.0
                     : (static_cast<double>(1ull << i) - 1.0) / e->scale;
          std::snprintf(buf, sizeof buf, "%.9g", le);
          out += e->name + "_bucket{" + label_prefix(*e) + "le=\"" + buf +
                 "\"} " + std::to_string(cum);
          // OpenMetrics-style exemplar: the last committed trace that
          // landed in this bucket, so a tail bucket links straight to a
          // span timeline (resolve the id via TRACE_GET).
          uint64_t ev = 0, eid = 0;
          if (e->histogram->exemplar(i, &ev, &eid)) {
            std::snprintf(buf, sizeof buf, " # {trace_id=\"%016llx\"} %.9g",
                          static_cast<unsigned long long>(eid),
                          static_cast<double>(ev) / e->scale);
            out += buf;
          }
          out += "\n";
        }
        out += e->name + "_bucket{" + label_prefix(*e) + "le=\"+Inf\"} " +
               std::to_string(h.count) + "\n";
        std::snprintf(buf, sizeof buf, "%.9g",
                      static_cast<double>(h.sum) / e->scale);
        out += e->name + "_sum" + label_suffix(*e) + " " + buf + "\n";
        out += e->name + "_count" + label_suffix(*e) + " " +
               std::to_string(h.count) + "\n";
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", read_value(*e));
        out += e->name + label_suffix(*e) + " " + buf + "\n";
      }
    }
    return out;
  }

  /// The same snapshot as one JSON object: {"counters": {...}, "gauges":
  /// {...}, "histograms": {"name{labels}": {count, sum, p50, p99, p999}}}.
  /// Series names carry Prometheus label syntax (route="single"), whose
  /// quotes must be escaped to keep the enclosing document valid JSON.
  std::string json() const {
    std::lock_guard<Spinlock> g(lock_);
    std::vector<const Entry*> sorted = sorted_entries();
    std::string counters, gauges, hists;
    char buf[256];
    for (const Entry* e : sorted) {
      std::string key = "\"";
      for (const char c : series_name(*e)) {
        if (c == '"' || c == '\\') key += '\\';
        key += c;
      }
      key += "\": ";
      if (e->kind == MetricKind::kHistogram) {
        const HistogramSnapshot h = e->histogram->snapshot();
        std::snprintf(buf, sizeof buf,
                      "{\"count\": %llu, \"sum\": %.9g, \"p50\": %.1f, "
                      "\"p99\": %.1f, \"p999\": %.1f}",
                      static_cast<unsigned long long>(h.count),
                      static_cast<double>(h.sum), h.quantile(0.50),
                      h.quantile(0.99), h.quantile(0.999));
        append_kv(hists, key, buf);
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", read_value(*e));
        append_kv(e->kind == MetricKind::kCounter ? counters : gauges, key,
                  buf);
      }
    }
    return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
           "}, \"histograms\": {" + hists + "}}";
  }

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string name;
    std::string help;
    std::string labels;  // inner label list, no braces; may be empty
    double scale = 1.0;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;  // callback series when set
    uint64_t callback_id = 0;    // nonzero only for callback series
  };

  MetricsRegistry() = default;

  void remove_callback(uint64_t id) {
    std::lock_guard<Spinlock> g(lock_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if ((*it)->callback_id == id) {
        entries_.erase(it);
        return;
      }
    }
  }

  static const char* type_name(MetricKind k) {
    switch (k) {
      case MetricKind::kCounter: return "counter";
      case MetricKind::kGauge: return "gauge";
      case MetricKind::kHistogram: return "histogram";
    }
    return "untyped";
  }

  static double read_value(const Entry& e) {
    if (e.fn) return e.fn();
    if (e.counter) return static_cast<double>(e.counter->value());
    return 0.0;
  }

  static std::string label_prefix(const Entry& e) {
    return e.labels.empty() ? std::string() : e.labels + ",";
  }
  static std::string label_suffix(const Entry& e) {
    return e.labels.empty() ? std::string() : "{" + e.labels + "}";
  }
  static std::string series_name(const Entry& e) {
    return e.name + label_suffix(e);
  }
  static void append_kv(std::string& dst, const std::string& key,
                        const char* val) {
    if (!dst.empty()) dst += ", ";
    dst += key;
    dst += val;
  }

  /// Stable grouping by family name (registration order within a family),
  /// so HELP/TYPE precede every sample of the family exactly once.
  std::vector<const Entry*> sorted_entries() const {
    std::vector<const Entry*> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      bool placed = false;
      for (auto it = out.begin(); it != out.end(); ++it) {
        if ((*it)->name == e->name) {
          // Insert after the last member of this family.
          auto last = it;
          while (last != out.end() && (*last)->name == e->name) ++last;
          out.insert(last, e.get());
          placed = true;
          break;
        }
      }
      if (!placed) out.push_back(e.get());
    }
    return out;
  }

  mutable Spinlock lock_;
  std::vector<std::unique_ptr<Entry>> entries_;
  uint64_t next_id_ = 1;
};

inline MetricsRegistry& registry() { return MetricsRegistry::instance(); }

// ---------------------------------------------------------------------------
// GaugeSet — one exposition series aggregated over N live instances.
//
// Per-instance subsystems (one Ebr per structure, one EbrRqProvider per
// EBR-RQ set, one ShardedSet per server) register a callback per instance;
// the set exposes sum or max over whichever instances are alive right now.
// The RAII Source MUST be destroyed before the state its callback reads —
// declare it as the LAST member of the owning class (members are destroyed
// in reverse order), so the source is gone before the data is.

class GaugeSet {
 public:
  enum class Agg : uint8_t { kSum, kMax };

  GaugeSet(Agg agg, std::string name, std::string help,
           std::string labels = "", MetricKind kind = MetricKind::kGauge)
      : agg_(agg),
        handle_(registry().add_callback(kind, std::move(name),
                                        std::move(help), std::move(labels),
                                        [this] { return read(); })) {}

  class Source {
   public:
    Source() = default;
    Source(GaugeSet* s, uint64_t id) : set_(s), id_(id) {}
    ~Source() { reset(); }
    Source(Source&& o) noexcept
        : set_(std::exchange(o.set_, nullptr)), id_(o.id_) {}
    Source& operator=(Source&& o) noexcept {
      if (this != &o) {
        reset();
        set_ = std::exchange(o.set_, nullptr);
        id_ = o.id_;
      }
      return *this;
    }
    Source(const Source&) = delete;
    Source& operator=(const Source&) = delete;
    void reset() {
      if (set_ != nullptr) set_->remove(id_);
      set_ = nullptr;
    }

   private:
    GaugeSet* set_ = nullptr;
    uint64_t id_ = 0;
  };

  [[nodiscard]] Source add(std::function<double()> fn) {
    std::lock_guard<Spinlock> g(lock_);
    const uint64_t id = next_id_++;
    sources_.push_back({id, std::move(fn)});
    return Source(this, id);
  }

  double read() const {
    std::lock_guard<Spinlock> g(lock_);
    double v = 0;
    for (const auto& s : sources_) {
      const double x = s.fn();
      if (agg_ == Agg::kSum)
        v += x;
      else if (x > v)
        v = x;
    }
    return v;
  }

 private:
  void remove(uint64_t id) {
    std::lock_guard<Spinlock> g(lock_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
      if (it->id == id) {
        sources_.erase(it);
        return;
      }
    }
  }

  struct Src {
    uint64_t id;
    std::function<double()> fn;
  };
  const Agg agg_;
  mutable Spinlock lock_;
  std::vector<Src> sources_;
  uint64_t next_id_ = 1;
  MetricsRegistry::Handle handle_;  // last: callback dies before sources_
};

}  // namespace bref::obs
