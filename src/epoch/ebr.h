#pragma once
// Epoch-based memory reclamation (DEBRA-flavoured).
//
// Used in two roles, mirroring the paper:
//  1. by the bundled structures to reclaim physically-removed nodes and
//     pruned bundle entries (Section 7 / supplementary B);
//  2. as the substrate whose internals the EBR-RQ baselines (Arbel-Raviv &
//     Brown) extend into a range-query mechanism — their limbo lists of
//     deleted-but-still-visible nodes are exactly the per-thread bags here.
//
// Design: a global epoch counter; each thread announces the epoch it read
// when it pins (enters an operation) and announces quiescence when it
// unpins. Retired objects go into the bag of the *current global* epoch
// (three generations per thread, each stamped with the epoch it was filled
// under); a bag is freed once the global epoch has advanced twice past its
// stamp, which implies every thread has since been quiescent or has
// re-pinned in a newer epoch.
//
// The global (not the pinned-at) epoch matters when a pin spans an
// advance: an object unlinked at global epoch E can be observed by readers
// pinned at E, and a reader pinned at E only blocks the E+1 -> E+2
// advance. Bagging by the retirer's stale pinned epoch E-1 would free the
// object at E+1 — one epoch early, under that reader. (Found the hard way
// via the LFCA tree, whose long copy-on-write operations make pins
// routinely span advances.)

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "common/thread_registry.h"
#include "core/maintenance_signal.h"
#include "obs/metrics.h"

namespace bref {

/// Cross-instance gauges (obs): every live Ebr registers a source; the
/// exposition shows the worst epoch lag and the total limbo depth across
/// all structures in the process. Leaky statics — sources registered from
/// Ebr constructors may be released after ordinary static destruction.
inline obs::GaugeSet& ebr_epoch_lag_gauge() {
  static auto* g = new obs::GaugeSet(
      obs::GaugeSet::Agg::kMax, "bref_epoch_lag",
      "Epochs the global clock is ahead of the oldest pinned thread "
      "(max over live Ebr instances; 0 when nothing is pinned)");
  return *g;
}
inline obs::GaugeSet& ebr_limbo_gauge() {
  static auto* g = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_epoch_limbo_objects",
      "Objects retired but not yet freed (sum over live Ebr instances)");
  return *g;
}

class Ebr {
 public:
  Ebr() {
    for (auto& s : slots_) s->announce.store(kQuiescent, std::memory_order_relaxed);
    lag_src_ = ebr_epoch_lag_gauge().add(
        [this] { return static_cast<double>(epoch_lag()); });
    limbo_src_ = ebr_limbo_gauge().add([this] {
      // Both counters are relaxed; a racy read may momentarily see a free
      // before its retire — clamp instead of wrapping.
      const uint64_t r = retired(), f = freed();
      return r > f ? static_cast<double>(r - f) : 0.0;
    });
  }

  ~Ebr() { free_all_unsafe(); }

  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  /// Enter an epoch-protected region. After pin() returns, no object retired
  /// in the announced epoch or later is freed until this thread unpins.
  void pin(int tid) {
    pin_prepare(tid);
    pin_confirm(tid);
  }

  /// First half of pin(), split out so a coordinator pinning MANY Ebr
  /// instances (the sharded cross-shard range query) can issue every
  /// instance's announce store back-to-back before paying any validation
  /// loads: one epoch read plus one announce store, nothing else. The pin
  /// is NOT established until pin_confirm() returns — no shared pointer
  /// may be read in between.
  void pin_prepare(int tid) {
    hwm_.note(tid);
    slots_[tid]->announce.store(global_epoch_.load(std::memory_order_acquire),
                                std::memory_order_seq_cst);
  }

  /// Second half: close the announce/advance race. The announce must be
  /// visible before any shared pointer is read, and the epoch must not
  /// have advanced past it — re-read until the announced value sticks,
  /// then run the usual per-pin epoch bookkeeping (bag drain, advance
  /// cadence).
  void pin_confirm(int tid) {
    Slot& s = *slots_[tid];
    uint64_t e = s.announce.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
      if (e2 == e) break;
      e = e2;
      s.announce.store(e, std::memory_order_seq_cst);
    }
    if (e != s.local_epoch) on_new_epoch(s, e);
    if (++s.pin_count % kAdvanceEvery == 0) try_advance(e);
  }

  void unpin(int tid) {
    slots_[tid]->announce.store(kQuiescent, std::memory_order_release);
  }

  /// RAII pin for one operation.
  class Guard {
   public:
    Guard(Ebr& ebr, int tid) : ebr_(&ebr), tid_(tid) { ebr_->pin(tid_); }
    ~Guard() {
      if (ebr_) ebr_->unpin(tid_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Ebr* ebr_;
    int tid_;
  };

  /// Retire an object; it is freed via `deleter(p)` once safe. Must be
  /// called while pinned (or while provably unreachable, e.g. the leaky
  /// benchmark mode where nothing is freed until destruction).
  void retire(int tid, void* p, void (*deleter)(void*)) {
    hwm_.note(tid);
    Slot& s = *slots_[tid];
    // Bag under the current *global* epoch: the unlink happened no later
    // than this read, so the bag's stamp upper-bounds every reader that
    // could still hold the object (see header comment).
    const uint64_t g = global_epoch_.load(std::memory_order_acquire);
    const size_t i = g % kGenerations;
    s.bags[i].push_back({p, deleter});
    s.bag_epoch[i] = g;
    // Single-writer bump; atomic only so the obs gauge may read it from
    // another thread.
    s.retired_count.store(s.retired_count.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    if (MaintenanceSignal* sig = msig_.load(std::memory_order_relaxed))
      sig->on_produce();
  }

  /// Attach (nullptr: detach) the backlog signal the retire path bumps —
  /// the producer half of backlog-driven maintenance (maintenance.h). The
  /// signal must outlive every retire that can observe it; the service
  /// detaches before destroying it.
  void set_maintenance_signal(MaintenanceSignal* s) noexcept {
    msig_.store(s, std::memory_order_release);
  }

  template <typename T>
  void retire(int tid, T* p) {
    retire(tid, p, [](void* q) { delete static_cast<T*>(q); });
  }

  /// Typed recycle hook — the pooled bundle-entry path. Identical safety
  /// contract to retire(tid, p), but once the grace period elapses the
  /// object is handed to `T::recycle(T*)` (for BundleEntry: back to its
  /// owner's EntryPool slot) instead of the heap. The drain runs on the
  /// retiring thread, so a cleaner pruning entries pushes them to each
  /// owner's pool inbox without ever calling the allocator.
  template <typename T>
  void retire_recycle(int tid, T* p) {
    retire(tid, p, [](void* q) { T::recycle(static_cast<T*>(q)); });
  }

  uint64_t epoch() const { return global_epoch_.load(std::memory_order_acquire); }

  /// Epoch-integration hook for threads whose pins span long scans (the
  /// bundle cleaner's pattern: one pin around a whole-structure prune
  /// pass). Such a thread blocks every advance while pinned, so the
  /// normal every-64-pins cadence starves: retired objects pile up in
  /// stamped bags and — on the pooled entry path — recycling stalls while
  /// updaters allocate fresh slabs. Called between pins (NOT while
  /// pinned), this pushes the global epoch as far as the other threads
  /// allow and drains the caller's own ripe bags immediately. Draining
  /// outside a pin is safe: ripeness depends only on the bag stamp being
  /// two epochs stale, which already implies no reader can hold the
  /// objects.
  void quiesce(int tid) {
    hwm_.note(tid);
    for (int i = 0; i < 2; ++i) {
      if (!try_advance(global_epoch_.load(std::memory_order_acquire))) break;
    }
    Slot& s = *slots_[tid];
    const uint64_t e = global_epoch_.load(std::memory_order_acquire);
    if (e != s.local_epoch) on_new_epoch(s, e);
  }

  /// Attempt to advance the global epoch from `e`; succeeds only when every
  /// pinned thread has announced `e`.
  bool try_advance(uint64_t e) {
    const int n = hwm_.get();
    for (int i = 0; i < n; ++i) {
      uint64_t a = slots_[i]->announce.load(std::memory_order_seq_cst);
      if (a != kQuiescent && a != e) return false;
    }
    uint64_t expect = e;
    return global_epoch_.compare_exchange_strong(expect, e + 1,
                                                 std::memory_order_acq_rel);
  }

  /// Free everything retired so far. Only safe when all threads are
  /// quiescent (shutdown, or between test phases). Returns #objects freed.
  size_t free_all_unsafe() {
    size_t n = 0;
    for (auto& ps : slots_) {
      for (auto& bag : ps->bags) {
        n += bag.size();
        drain(bag);
      }
    }
    freed_count_.fetch_add(n, std::memory_order_relaxed);
    return n;
  }

  // -- statistics (tests / Table 1 bench) ------------------------------
  uint64_t retired() const {
    uint64_t n = 0;
    for (auto& s : slots_) n += s->retired_count.load(std::memory_order_relaxed);
    return n;
  }
  uint64_t freed() const { return freed_count_.load(std::memory_order_relaxed); }

  /// How many epochs the global clock is ahead of the oldest pinned
  /// thread; 0 when every thread is quiescent. A persistently large lag
  /// means some pin is blocking advancement and limbo will grow.
  uint64_t epoch_lag() const {
    const uint64_t g = global_epoch_.load(std::memory_order_acquire);
    uint64_t oldest = kQuiescent;
    const int n = hwm_.get();
    for (int i = 0; i < n; ++i) {
      const uint64_t a = slots_[i]->announce.load(std::memory_order_relaxed);
      if (a != kQuiescent && a < oldest) oldest = a;
    }
    return oldest == kQuiescent ? 0 : g - oldest;
  }

 private:
  static constexpr uint64_t kQuiescent = ~0ull;
  static constexpr int kGenerations = 3;
  static constexpr uint64_t kAdvanceEvery = 64;  // pins between advance tries

  struct RetiredObj {
    void* p;
    void (*deleter)(void*);
  };

  struct Slot {
    std::atomic<uint64_t> announce{kQuiescent};
    uint64_t local_epoch{0};
    uint64_t pin_count{0};
    // Atomic (single-writer bump) so the obs limbo gauge can read it.
    std::atomic<uint64_t> retired_count{0};
    std::vector<RetiredObj> bags[kGenerations];
    uint64_t bag_epoch[kGenerations] = {};  // epoch each bag was filled under
  };

  void on_new_epoch(Slot& s, uint64_t e) {
    // Entering epoch e: a bag stamped B became unreachable once the global
    // epoch passed B+2 — every thread has since been quiescent or pinned
    // in an epoch past B. Checking stamps (rather than inferring epochs
    // from slot indices) stays correct when this thread skipped epochs.
    for (size_t i = 0; i < kGenerations; ++i)
      if (!s.bags[i].empty() && e >= s.bag_epoch[i] + 2)
        drain_counted(s.bags[i]);
    s.local_epoch = e;
  }

  void drain(std::vector<RetiredObj>& bag) {
    for (auto& r : bag) r.deleter(r.p);
    bag.clear();
  }
  void drain_counted(std::vector<RetiredObj>& bag) {
    freed_count_.fetch_add(bag.size(), std::memory_order_relaxed);
    drain(bag);
  }

  std::atomic<uint64_t> global_epoch_{0};
  std::atomic<uint64_t> freed_count_{0};
  std::atomic<MaintenanceSignal*> msig_{nullptr};
  TidHwm hwm_;
  CachePadded<Slot> slots_[kMaxThreads];
  // Last members: destroyed FIRST, so the gauge callbacks (which read the
  // atomics above) are unregistered before any state they read goes away.
  obs::GaugeSet::Source lag_src_;
  obs::GaugeSet::Source limbo_src_;
};

}  // namespace bref
