#include "db/tpcc_gen.h"

namespace bref::db {

namespace {
// TPC-C clause 2.1.6: C is a runtime constant chosen once per load.
constexpr uint64_t kCLast = 123;
constexpr uint64_t kCId = 259;
constexpr uint64_t kOlI = 7911;

const char* kNameSyllables[10] = {"BAR",   "OUGHT", "ABLE", "PRI",
                                  "PRES",  "ESE",   "ANTI", "CALLY",
                                  "ATION", "EING"};
}  // namespace

uint64_t nurand(Xoshiro256& rng, uint64_t A, uint64_t x, uint64_t y) {
  const uint64_t C = (A == 255) ? kCLast : (A == 1023) ? kCId : kOlI;
  const uint64_t r1 = rng.next_range(A + 1);
  const uint64_t r2 = x + rng.next_range(y - x + 1);
  return (((r1 | r2) + C) % (y - x + 1)) + x;
}

std::string tpcc_lastname(int num) {
  return std::string(kNameSyllables[(num / 100) % 10]) +
         kNameSyllables[(num / 10) % 10] + kNameSyllables[num % 10];
}

uint32_t lastname_id(int num) { return static_cast<uint32_t>(num % 1000); }

int random_lastname_num(Xoshiro256& rng) {
  return static_cast<int>(nurand(rng, 255, 0, 999));
}

}  // namespace bref::db
