#pragma once
// MiniDB: an in-memory database substrate standing in for DBx1000 in the
// paper's Figure 4 experiment (see DESIGN.md §1). Tables are preallocated
// row stores; the four *ordered* indexes that TPC-C's transactions exercise
// (order, new-order, order-line, customer-by-name) are instantiated with
// any of this library's range-queryable sets. The benchmark metric is
// index operations per second, mirroring the paper's "throughput of index
// operations" measurement.
//
// Transaction profiles (paper mix: NEW_ORDER 50%, PAYMENT 45%, DELIVERY 5%):
//   NEW_ORDER  - allocates the district's next o_id, inserts into the
//                order, new-order and order-line indexes, updates stock.
//   PAYMENT    - 60%: customer lookup by last name via a range query on
//                the customer-name index; 40%: by id; updates balances.
//   DELIVERY   - range query over the last 100 new-order entries of a
//                district to find the oldest undelivered order, removes
//                it, marks the order delivered and sums its order lines
//                via an order-line range query.
//
// Beyond the paper's three profiles, the remaining two TPC-C transactions
// are implemented so the full spec mix (45/43/4/4/4) can be driven via
// run_full_mix_txn (fig4_tpcc --fullmix); both are read-only and range-
// query heavy, which stresses the techniques under test further:
//   ORDER_STATUS - customer by name (60%) or id, then the customer's most
//                  recent order from a range query over the district's
//                  last 100 orders, then its order lines.
//   STOCK_LEVEL  - order lines of the district's last 20 orders via one
//                  range query; counts distinct items under a threshold.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/cacheline.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "db/tpcc_gen.h"

namespace bref::db {

/// Per-transaction RAII session bundle — the sessions-era replacement for
/// MiniDB's raw-tid calling convention (the last big raw-tid consumer in
/// the repo). ONE dense thread id covers every index the transaction
/// touches (the per-thread substrates — EBR epochs, RQ announcements —
/// are per *structure*, so one id is exactly right across all five), and
/// the bundle releases it at commit()/abort() or scope exit:
///
///   { auto txn = db.begin_txn(); db.run_mixed_txn(txn, rng, st); }
///
/// MiniDB applies index effects eagerly (no undo log), so commit and
/// abort are equivalent: both end the bundle and free the id for reuse.
/// Benchmark drivers pinning dense ids 0..n-1 use begin_txn(tid), which
/// borrows the id without touching the global ThreadRegistry.
class Txn {
 public:
  /// Auto-acquire a dense id from the global ThreadRegistry (released by
  /// commit/abort/destruction).
  Txn() : id_(std::in_place) {}
  /// Pin an explicitly managed id (benchmark drivers; never released).
  explicit Txn(int tid) : id_(std::in_place, tid) {}

  Txn(Txn&&) noexcept = default;
  Txn& operator=(Txn&&) noexcept = default;

  int tid() const noexcept {
    assert(id_.has_value() && "transaction already finished");
    return id_->tid();
  }
  bool open() const noexcept { return id_.has_value(); }
  void commit() noexcept { id_.reset(); }
  void abort() noexcept { id_.reset(); }

 private:
  std::optional<bref::detail::SessionId> id_;
};

struct TpccScale {
  int warehouses = 2;
  int customers_per_district = 300;
  int initial_orders_per_district = 100;
};

struct CustomerRow {
  int w_id, d_id, c_id;
  uint32_t name_id;
  std::atomic<int64_t> balance{-1000};  // cents
  std::atomic<int64_t> ytd_payment{1000};
  std::atomic<int64_t> payment_cnt{1};
};

struct DistrictRow {
  int w_id = 0;
  int d_id = 0;
  std::atomic<int64_t> ytd{0};
  std::atomic<int64_t> next_o_id{1};
};

struct OrderRow {
  int w_id, d_id;
  int64_t o_id;
  int c_id;
  int ol_cnt;
  std::atomic<int> carrier_id{0};  // 0 = undelivered
};

struct OrderLineRow {
  int64_t o_id;
  int ol_number;
  int i_id;
  int quantity;
  int64_t amount;  // cents
};

struct StockRow {
  std::atomic<int64_t> quantity{100};
  std::atomic<int64_t> ytd{0};
};

/// Per-thread transaction + index-operation counters.
struct TpccStats {
  uint64_t txn_new_order = 0;
  uint64_t txn_payment = 0;
  uint64_t txn_delivery = 0;
  uint64_t txn_order_status = 0;
  uint64_t txn_stock_level = 0;
  uint64_t index_ops = 0;
  uint64_t delivered_orders = 0;
  uint64_t payment_name_misses = 0;
  uint64_t low_stock_seen = 0;
};

/// Index must provide insert/remove/contains/range_query with the library's
/// uniform signature (KeyT=int64_t, ValT=int64_t; values hold row pointers).
template <typename Index>
class TpccDb {
 public:
  explicit TpccDb(const TpccScale& scale) : scale_(scale) {
    const int W = scale_.warehouses;
    districts_ =
        std::make_unique<DistrictRow[]>(W * kDistrictsPerWarehouse);
    stock_ = std::make_unique<StockRow[]>(static_cast<size_t>(W) * kMaxItems);
    item_price_.resize(kMaxItems);
    Xoshiro256 rng(4242);
    for (int i = 0; i < kMaxItems; ++i)
      item_price_[i] = 100 + static_cast<int64_t>(rng.next_range(9900));
    load(rng);
  }

  // ---- transactions -----------------------------------------------------

  /// Open a per-transaction session bundle (see Txn above). The no-arg
  /// form acquires a dense id from the global ThreadRegistry; the pinned
  /// form borrows an explicitly managed `tid` (benchmark drivers).
  Txn begin_txn() { return Txn(); }
  Txn begin_txn(int tid) { return Txn(tid); }

  void run_new_order(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const int tid = txn.tid();
    const int w = static_cast<int>(rng.next_range(scale_.warehouses));
    const int d = static_cast<int>(rng.next_range(kDistrictsPerWarehouse));
    const int c =
        static_cast<int>(nurand(rng, 1023, 0, scale_.customers_per_district - 1));
    DistrictRow& dist = district(w, d);
    const int64_t o_id =
        dist.next_o_id.fetch_add(1, std::memory_order_relaxed);
    const int ol_cnt = 5 + static_cast<int>(rng.next_range(11));

    auto* order = new OrderRow{w, d, o_id, c, ol_cnt, {}};
    orders_.append(tid, order);
    order_index.insert(tid, order_key(w, d, o_id),
                       reinterpret_cast<int64_t>(order));
    neworder_index.insert(tid, order_key(w, d, o_id), o_id);
    st.index_ops += 2;
    for (int ol = 0; ol < ol_cnt; ++ol) {
      const int item =
          static_cast<int>(nurand(rng, 8191, 0, kMaxItems - 1));
      const int qty = 1 + static_cast<int>(rng.next_range(10));
      auto* line = new OrderLineRow{o_id, ol, item, qty,
                                    qty * item_price_[item]};
      orderlines_.append(tid, line);
      orderline_index.insert(tid, orderline_key(w, d, o_id, ol),
                             reinterpret_cast<int64_t>(line));
      st.index_ops += 1;
      StockRow& s = stock(w, item);
      s.quantity.fetch_sub(qty, std::memory_order_relaxed);
      s.ytd.fetch_add(qty, std::memory_order_relaxed);
    }
    st.txn_new_order++;
  }

  void run_payment(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const int tid = txn.tid();
    const int w = static_cast<int>(rng.next_range(scale_.warehouses));
    const int d = static_cast<int>(rng.next_range(kDistrictsPerWarehouse));
    const int64_t amount = 100 + static_cast<int64_t>(rng.next_range(49900));
    CustomerRow* cust = nullptr;
    if (rng.next_range(100) < 60) {
      // By last name: range query over the (w, d, name) prefix, pick the
      // middle match (TPC-C clause 2.5.2.2).
      const uint32_t name = lastname_id(random_lastname_num(rng));
      rq_buf_[tid]->clear();
      auto& out = *rq_buf_[tid];
      customer_name_index.range_query(
          tid, customer_name_key(w, d, name, 0),
          customer_name_key(w, d, name, (1 << 24) - 1), out);
      st.index_ops += 1;
      if (!out.empty())
        cust = reinterpret_cast<CustomerRow*>(out[out.size() / 2].second);
      else
        st.payment_name_misses++;
    } else {
      const int c = static_cast<int>(
          nurand(rng, 1023, 0, scale_.customers_per_district - 1));
      int64_t row = 0;
      if (customer_index.contains(tid, customer_key(w, d, c),
                                  reinterpret_cast<int64_t*>(&row)))
        cust = reinterpret_cast<CustomerRow*>(row);
      st.index_ops += 1;
    }
    if (cust != nullptr) {
      cust->balance.fetch_sub(amount, std::memory_order_relaxed);
      cust->ytd_payment.fetch_add(amount, std::memory_order_relaxed);
      cust->payment_cnt.fetch_add(1, std::memory_order_relaxed);
      district(w, d).ytd.fetch_add(amount, std::memory_order_relaxed);
    }
    st.txn_payment++;
  }

  void run_delivery(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const int tid = txn.tid();
    const int w = static_cast<int>(rng.next_range(scale_.warehouses));
    for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
      const int64_t next =
          district(w, d).next_o_id.load(std::memory_order_relaxed);
      const int64_t lo_o = next > 100 ? next - 100 : 1;
      rq_buf_[tid]->clear();
      auto& out = *rq_buf_[tid];
      // "The range query selects the oldest order in the last 100 orders."
      neworder_index.range_query(tid, order_key(w, d, lo_o),
                                 order_key(w, d, next), out);
      st.index_ops += 1;
      if (out.empty()) continue;
      const int64_t oldest_key = out.front().first;
      // Delete so no other DELIVERY can deliver the same order.
      if (!neworder_index.remove(tid, oldest_key)) continue;  // raced: skip
      st.index_ops += 1;
      int64_t row = 0;
      if (order_index.contains(tid, oldest_key,
                               reinterpret_cast<int64_t*>(&row))) {
        auto* order = reinterpret_cast<OrderRow*>(row);
        order->carrier_id.store(1 + static_cast<int>(rng.next_range(10)),
                                std::memory_order_relaxed);
        // Sum the order's lines via the order-line index.
        rq_buf_[tid]->clear();
        orderline_index.range_query(
            tid, orderline_key(w, d, order->o_id, 0),
            orderline_key(w, d, order->o_id, 15), out);
        st.index_ops += 2;
        int64_t total = 0;
        for (const auto& [k, v] : out)
          total += reinterpret_cast<OrderLineRow*>(v)->amount;
        (void)total;
        st.delivered_orders++;
      }
    }
    st.txn_delivery++;
  }

  /// ORDER_STATUS (TPC-C 2.6, read-only): locate the customer, find their
  /// most recent order among the district's last 100, read its lines.
  void run_order_status(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const int tid = txn.tid();
    const int w = static_cast<int>(rng.next_range(scale_.warehouses));
    const int d = static_cast<int>(rng.next_range(kDistrictsPerWarehouse));
    CustomerRow* cust = nullptr;
    if (rng.next_range(100) < 60) {
      const uint32_t name = lastname_id(random_lastname_num(rng));
      rq_buf_[tid]->clear();
      auto& out = *rq_buf_[tid];
      customer_name_index.range_query(
          tid, customer_name_key(w, d, name, 0),
          customer_name_key(w, d, name, (1 << 24) - 1), out);
      st.index_ops += 1;
      if (!out.empty())
        cust = reinterpret_cast<CustomerRow*>(out[out.size() / 2].second);
    } else {
      const int c = static_cast<int>(
          nurand(rng, 1023, 0, scale_.customers_per_district - 1));
      int64_t row = 0;
      if (customer_index.contains(tid, customer_key(w, d, c),
                                  reinterpret_cast<int64_t*>(&row)))
        cust = reinterpret_cast<CustomerRow*>(row);
      st.index_ops += 1;
    }
    if (cust != nullptr) {
      // Most recent order of this customer within the last 100 orders of
      // the district (newest-first scan of the range-query snapshot).
      const int64_t next =
          district(w, d).next_o_id.load(std::memory_order_relaxed);
      const int64_t lo_o = next > 100 ? next - 100 : 1;
      rq_buf_[tid]->clear();
      auto& out = *rq_buf_[tid];
      order_index.range_query(tid, order_key(w, d, lo_o),
                              order_key(w, d, next), out);
      st.index_ops += 1;
      const OrderRow* latest = nullptr;
      for (auto it = out.rbegin(); it != out.rend(); ++it) {
        const auto* o = reinterpret_cast<const OrderRow*>(it->second);
        if (o->c_id == cust->c_id) {
          latest = o;
          break;
        }
      }
      if (latest != nullptr) {
        rq_buf_[tid]->clear();
        orderline_index.range_query(
            tid, orderline_key(w, d, latest->o_id, 0),
            orderline_key(w, d, latest->o_id, 15), out);
        st.index_ops += 1;
        int64_t total = 0;
        for (const auto& [k, v] : out)
          total += reinterpret_cast<OrderLineRow*>(v)->amount;
        (void)total;
      }
    }
    st.txn_order_status++;
  }

  /// STOCK_LEVEL (TPC-C 2.8, read-only): one range query spanning the
  /// order lines of the district's last 20 orders, then stock probes for
  /// the distinct items, counting those under the threshold.
  void run_stock_level(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const int tid = txn.tid();
    const int w = static_cast<int>(rng.next_range(scale_.warehouses));
    const int d = static_cast<int>(rng.next_range(kDistrictsPerWarehouse));
    const int64_t threshold = 10 + static_cast<int64_t>(rng.next_range(11));
    const int64_t next =
        district(w, d).next_o_id.load(std::memory_order_relaxed);
    const int64_t lo_o = next > 20 ? next - 20 : 1;
    rq_buf_[tid]->clear();
    auto& out = *rq_buf_[tid];
    // The order-line key space is contiguous per (w, d, o_id, ol), so one
    // range query covers all lines of the last 20 orders — the atomic
    // snapshot is exactly what the consistency condition 3.3.2.1 needs.
    orderline_index.range_query(tid, orderline_key(w, d, lo_o, 0),
                                orderline_key(w, d, next, 0), out);
    st.index_ops += 1;
    // Count distinct low-stock items (small scratch set; ol item ids are
    // bounded by kMaxItems).
    scratch_items_[tid]->clear();
    auto& seen = *scratch_items_[tid];
    uint64_t low = 0;
    for (const auto& [k, v] : out) {
      const auto* line = reinterpret_cast<const OrderLineRow*>(v);
      if (std::find(seen.begin(), seen.end(), line->i_id) != seen.end())
        continue;
      seen.push_back(line->i_id);
      if (stock(w, line->i_id).quantity.load(std::memory_order_relaxed) <
          threshold)
        ++low;
    }
    st.low_stock_seen += low;
    st.txn_stock_level++;
  }

  /// One transaction drawn from the paper's mix.
  void run_mixed_txn(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const uint64_t dice = rng.next_range(100);
    if (dice < 50)
      run_new_order(txn, rng, st);
    else if (dice < 95)
      run_payment(txn, rng, st);
    else
      run_delivery(txn, rng, st);
  }

  /// One transaction drawn from the full TPC-C spec mix (5.2.3):
  /// NEW_ORDER 45%, PAYMENT 43%, ORDER_STATUS 4%, DELIVERY 4%,
  /// STOCK_LEVEL 4%.
  void run_full_mix_txn(Txn& txn, Xoshiro256& rng, TpccStats& st) {
    const uint64_t dice = rng.next_range(100);
    if (dice < 45)
      run_new_order(txn, rng, st);
    else if (dice < 88)
      run_payment(txn, rng, st);
    else if (dice < 92)
      run_order_status(txn, rng, st);
    else if (dice < 96)
      run_delivery(txn, rng, st);
    else
      run_stock_level(txn, rng, st);
  }

  // ---- introspection (tests) ---------------------------------------------
  DistrictRow& district(int w, int d) {
    return districts_[w * kDistrictsPerWarehouse + d];
  }
  StockRow& stock(int w, int i) {
    return stock_[static_cast<size_t>(w) * kMaxItems + i];
  }
  size_t undelivered_count(Txn& txn) {
    const int tid = txn.tid();
    std::vector<std::pair<int64_t, int64_t>> out;
    size_t n = 0;
    for (int w = 0; w < scale_.warehouses; ++w)
      for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
        neworder_index.range_query(tid, order_key(w, d, 0),
                                   order_key(w, d, (1ll << 31)), out);
        n += out.size();
      }
    return n;
  }
  const TpccScale& scale() const { return scale_; }

  // Ordered indexes under test (public so benches can introspect).
  Index order_index;
  Index neworder_index;
  Index orderline_index;
  Index customer_index;
  Index customer_name_index;

 private:
  /// Append-only per-thread row arenas (rows are never freed mid-run).
  template <typename Row>
  class Arena {
   public:
    ~Arena() {
      for (auto& v : shards_)
        for (Row* r : v.value) delete r;
    }
    void append(int tid, Row* r) { shards_[tid].value.push_back(r); }

   private:
    CachePadded<std::vector<Row*>> shards_[kMaxThreads];
  };

  void load(Xoshiro256& rng) {
    const int tid = 0;
    for (int w = 0; w < scale_.warehouses; ++w) {
      for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
        DistrictRow& dist = district(w, d);
        dist.w_id = w;
        dist.d_id = d;
        for (int c = 0; c < scale_.customers_per_district; ++c) {
          auto* cust = new CustomerRow;
          cust->w_id = w;
          cust->d_id = d;
          cust->c_id = c;
          // TPC-C: the first 1000 customers cycle through all last names.
          cust->name_id =
              lastname_id(c < 1000 ? c : random_lastname_num(rng));
          customers_.append(tid, cust);
          customer_index.insert(tid, customer_key(w, d, c),
                                reinterpret_cast<int64_t>(cust));
          customer_name_index.insert(
              tid, customer_name_key(w, d, cust->name_id, c),
              reinterpret_cast<int64_t>(cust));
        }
        for (int o = 0; o < scale_.initial_orders_per_district; ++o) {
          const int64_t o_id =
              dist.next_o_id.fetch_add(1, std::memory_order_relaxed);
          auto* order = new OrderRow{
              w, d, o_id,
              static_cast<int>(rng.next_range(scale_.customers_per_district)),
              5, {}};
          orders_.append(tid, order);
          order_index.insert(tid, order_key(w, d, o_id),
                             reinterpret_cast<int64_t>(order));
          neworder_index.insert(tid, order_key(w, d, o_id), o_id);
          for (int ol = 0; ol < order->ol_cnt; ++ol) {
            auto* line = new OrderLineRow{o_id, ol, ol, 1, 100};
            orderlines_.append(tid, line);
            orderline_index.insert(tid, orderline_key(w, d, o_id, ol),
                                   reinterpret_cast<int64_t>(line));
          }
        }
      }
    }
  }

  TpccScale scale_;
  std::unique_ptr<DistrictRow[]> districts_;
  std::unique_ptr<StockRow[]> stock_;
  std::vector<int64_t> item_price_;
  Arena<CustomerRow> customers_;
  Arena<OrderRow> orders_;
  Arena<OrderLineRow> orderlines_;
  CachePadded<std::vector<std::pair<int64_t, int64_t>>> rq_buf_[kMaxThreads];
  CachePadded<std::vector<int>> scratch_items_[kMaxThreads];
};

}  // namespace bref::db
