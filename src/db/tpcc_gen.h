#pragma once
// TPC-C input generation: NURand, customer last names, and the key
// encodings MiniDB's ordered indexes use. Non-template pieces live in
// tpcc_gen.cpp.

#include <cstdint>
#include <string>

#include "common/random.h"

namespace bref::db {

// TPC-C scale constants (per warehouse / district).
inline constexpr int kDistrictsPerWarehouse = 10;
inline constexpr int kMaxItems = 10000;

/// TPC-C NURand(A, x, y): non-uniform random in [x, y].
uint64_t nurand(Xoshiro256& rng, uint64_t A, uint64_t x, uint64_t y);

/// TPC-C last-name synthesis from a number in [0, 999].
std::string tpcc_lastname(int num);

/// 10-bit hash of a TPC-C last name (1000 distinct names -> distinct ids).
uint32_t lastname_id(int num);

/// Non-uniform customer last-name number for transactions (NURand 255).
int random_lastname_num(Xoshiro256& rng);

// ---- ordered-index key encodings -------------------------------------------
// All keys fit well below 2^62 so they are safe for every implementation
// (including the DCSS-stamped EBR-RQ words).

/// (w, d, o_id) -> order / new-order / order-key space.
inline int64_t order_key(int w, int d, int64_t o_id) {
  return ((static_cast<int64_t>(w) * kDistrictsPerWarehouse + d) << 32) |
         o_id;
}

/// (w, d, o_id, ol_number) -> order-line key.
inline int64_t orderline_key(int w, int d, int64_t o_id, int ol) {
  return (((static_cast<int64_t>(w) * kDistrictsPerWarehouse + d) << 36) |
          (o_id << 4)) |
         ol;
}

/// (w, d, c_id) -> customer primary key.
inline int64_t customer_key(int w, int d, int c_id) {
  return ((static_cast<int64_t>(w) * kDistrictsPerWarehouse + d) << 24) |
         c_id;
}

/// (w, d, lastname, c_id) -> customer-by-name secondary key. Range queries
/// over one (w, d, lastname) prefix use [name_key(...,0), name_key(...,max)].
inline int64_t customer_name_key(int w, int d, uint32_t name_id, int c_id) {
  return ((static_cast<int64_t>(w) * kDistrictsPerWarehouse + d) << 40) |
         (static_cast<int64_t>(name_id) << 24) | c_id;
}

}  // namespace bref::db
