#pragma once
// Lazy linked list with EBR-RQ / EBR-RQ-LF linearizable range queries
// (Arbel-Raviv & Brown; see rq_provider.h). The list algorithm is the same
// lazy list as ds/base; nodes additionally carry insert/delete timestamps
// and removals pass through the provider's limbo protocol.
//
// Nodes come from per-thread EntryPools (core/entry_pool.h): inserts pop
// the calling thread's slot, pruned limbo nodes flow back through
// Ebr::retire_recycle to their owner's inbox, so the steady-state update
// path performs zero heap allocations — the same discipline PR 3 gave the
// bundle entries, now applied to the competitor so the fig2/fig3/rq_latency
// comparison is allocator-for-allocator fair.

#include <cassert>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "core/entry_pool.h"
#include "core/global_timestamp.h"
#include "ds/ebrrq/rq_provider.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class EbrRqList {
 public:
  struct Node {
    K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> next{nullptr};
    std::atomic<uint64_t> itime{EbrRqProvider<Node, K, V>::kInfTs};
    std::atomic<uint64_t> dtime{EbrRqProvider<Node, K, V>::kInfTs};
    // The provider's limbo chain while parked; the pool's free-list link
    // while recycled. The two uses never overlap (limbo -> EBR grace ->
    // pool), and `next` stays untouched so readers crossing a marked node
    // keep a valid successor.
    std::atomic<Node*> limbo_next{nullptr};
    const int32_t pool_tid;

    explicit Node(int32_t owner) : key{}, val{}, pool_tid(owner) {}

    // EntryPool duck-typing (see core/entry_pool.h): link + ASan poison
    // extent (key/val only — every atomic stays a live object while
    // pooled) + slab granularity + the EBR recycle hook.
    std::atomic<Node*>& pool_link() { return limbo_next; }
    static constexpr size_t kPoolPoisonBytes = sizeof(K) + sizeof(V);
    static constexpr size_t kPoolSlabEntries = 256;
    static void recycle(Node* n) { EntryPool<Node>::release(n); }
  };
  using Provider = EbrRqProvider<Node, K, V>;

  explicit EbrRqList(EbrRqMode mode = EbrRqMode::kLock)
      : prov_(mode, ebr_) {
    head_ = make_sentinel(key_min_sentinel<K>());
    tail_ = make_sentinel(key_max_sentinel<K>());
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~EbrRqList() {
    // Quiescent teardown: reachable nodes go straight back to their pools
    // (limbo nodes via ~Provider, EBR-bagged ones via ~Ebr's drain).
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      Node::recycle(n);
      n = nx;
    }
  }

  EbrRqList(const EbrRqList&) = delete;
  EbrRqList& operator=(const EbrRqList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    Ebr::Guard g(ebr_, tid);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < key) curr = curr->next.load(std::memory_order_acquire);
    if (curr->key != key || curr->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      auto [pred, curr] = traverse(key);
      std::lock_guard<Spinlock> lk(pred->lock);
      if (!validate(pred, curr)) continue;
      if (curr->key == key) return false;
      Node* fresh = alloc_node(tid, key, val);
      fresh->next.store(curr, std::memory_order_relaxed);
      prov_.insert_op(tid, fresh, [&] {
        pred->next.store(fresh, std::memory_order_release);
      });
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      auto [pred, curr] = traverse(key);
      if (curr->key != key) return false;
      std::scoped_lock lk(pred->lock, curr->lock);
      if (!validate(pred, curr) ||
          curr->marked.load(std::memory_order_acquire))
        continue;
      Node* succ = curr->next.load(std::memory_order_acquire);
      prov_.remove_op(tid, curr, [&] {
        curr->marked.store(true, std::memory_order_release);
        pred->next.store(succ, std::memory_order_release);
      });
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      prov_.note_trivial_rq(tid);
      return 0;
    }
    Ebr::Guard g(ebr_, tid);
    const uint64_t ts = prov_.rq_begin(tid, lo, hi);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < lo) curr = curr->next.load(std::memory_order_acquire);
    while (curr != tail_ && curr->key <= hi) {
      if (prov_.visible(curr, ts)) out.emplace_back(curr->key, curr->val);
      curr = curr->next.load(std::memory_order_acquire);
    }
    prov_.rq_reconcile(tid, ts, lo, hi, out);
    prov_.rq_end(tid);
    return out.size();
  }

  /// Snapshot timestamp the calling thread's last completed range query
  /// linearized at (surfaced as RangeSnapshot::timestamp()).
  timestamp_t last_rq_timestamp(int tid) const {
    return prov_.last_rq_timestamp(tid);
  }

  /// Drain every thread's limbo slot (nodes stranded below the prune
  /// cadence included); see Provider::flush_limbo. Returns #nodes retired.
  size_t flush_limbo(int tid) {
    Ebr::Guard g(ebr_, tid);
    return prov_.flush_limbo(tid);
  }

  uint64_t limbo_nodes_checked() const { return prov_.limbo_nodes_checked(); }

  /// Nodes currently parked in limbo across all slots (the shard layer's
  /// maintenance_backlog; approximate under concurrency).
  size_t limbo_size() const { return prov_.limbo_size(); }

  static void set_node_pooling(bool on) {
    EntryPool<Node>::instance().set_pooling_enabled(on);
  }
  static EntryPoolStats node_pool_stats() {
    return EntryPool<Node>::instance().stats();
  }

  Ebr& ebr() { return ebr_; }
  /// Backlog signal, bumped per limbo park (see rq_provider.h) — preferred
  /// over the Ebr retire path because limbo_size() is this family's
  /// maintenance_backlog().
  void set_maintenance_signal(MaintenanceSignal* s) {
    prov_.set_maintenance_signal(s);
  }
  Provider& provider() { return prov_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  /// Pool pop + full field reset: a recycled node carries its previous
  /// life's stamps/mark, and publication (the release store in insert_op's
  /// lin) is what orders these plain stores for readers.
  static Node* alloc_node(int tid, K key, V val) {
    Node* n = EntryPool<Node>::instance().acquire(tid);
    n->key = key;
    n->val = val;
    n->marked.store(false, std::memory_order_relaxed);
    n->next.store(nullptr, std::memory_order_relaxed);
    n->itime.store(Provider::kInfTs, std::memory_order_relaxed);
    n->dtime.store(Provider::kInfTs, std::memory_order_relaxed);
    n->limbo_next.store(nullptr, std::memory_order_relaxed);
    return n;
  }

  /// Sentinels are built on the constructing thread, whose dense id is
  /// unknown — pool free lists are single-consumer, so they must not touch
  /// a slot (cf. Bundle::init). They take the heap path and are tagged so
  /// recycle() routes them back to delete.
  static Node* make_sentinel(K key) {
    Node* n = new Node(kPoolMalloced);
    n->key = key;
    n->itime.store(0, std::memory_order_relaxed);
    return n;
  }

  std::pair<Node*, Node*> traverse(K key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }
  bool validate(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  mutable Ebr ebr_;
  Provider prov_;
  Node* head_;
  Node* tail_;
};

}  // namespace bref
