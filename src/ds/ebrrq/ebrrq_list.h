#pragma once
// Lazy linked list with EBR-RQ / EBR-RQ-LF linearizable range queries
// (Arbel-Raviv & Brown; see rq_provider.h). The list algorithm is the same
// lazy list as ds/base; nodes additionally carry insert/delete timestamps
// and removals pass through the provider's limbo protocol.

#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "ds/ebrrq/rq_provider.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class EbrRqList {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> next{nullptr};
    std::atomic<uint64_t> itime{EbrRqProvider<Node, K, V>::kInfTs};
    std::atomic<uint64_t> dtime{EbrRqProvider<Node, K, V>::kInfTs};
    Node(K k, V v) : key(k), val(v) {}
  };
  using Provider = EbrRqProvider<Node, K, V>;

  explicit EbrRqList(EbrRqMode mode = EbrRqMode::kLock)
      : prov_(mode, ebr_) {
    head_ = new Node(key_min_sentinel<K>(), V{});
    tail_ = new Node(key_max_sentinel<K>(), V{});
    head_->next.store(tail_, std::memory_order_relaxed);
    head_->itime.store(0, std::memory_order_relaxed);
    tail_->itime.store(0, std::memory_order_relaxed);
  }

  ~EbrRqList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  EbrRqList(const EbrRqList&) = delete;
  EbrRqList& operator=(const EbrRqList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    Ebr::Guard g(ebr_, tid);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < key) curr = curr->next.load(std::memory_order_acquire);
    if (curr->key != key || curr->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      auto [pred, curr] = traverse(key);
      std::lock_guard<Spinlock> lk(pred->lock);
      if (!validate(pred, curr)) continue;
      if (curr->key == key) return false;
      Node* fresh = new Node(key, val);
      fresh->next.store(curr, std::memory_order_relaxed);
      prov_.insert_op(tid, fresh, [&] {
        pred->next.store(fresh, std::memory_order_release);
      });
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      auto [pred, curr] = traverse(key);
      if (curr->key != key) return false;
      std::scoped_lock lk(pred->lock, curr->lock);
      if (!validate(pred, curr) ||
          curr->marked.load(std::memory_order_acquire))
        continue;
      Node* succ = curr->next.load(std::memory_order_acquire);
      prov_.remove_op(tid, curr, [&] {
        curr->marked.store(true, std::memory_order_release);
        pred->next.store(succ, std::memory_order_release);
      });
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    Ebr::Guard g(ebr_, tid);
    const uint64_t ts = prov_.rq_begin(tid, lo, hi);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < lo) curr = curr->next.load(std::memory_order_acquire);
    while (curr != tail_ && curr->key <= hi) {
      if (prov_.visible(curr, ts)) out.emplace_back(curr->key, curr->val);
      curr = curr->next.load(std::memory_order_acquire);
    }
    prov_.rq_reconcile(tid, ts, lo, hi, out);
    prov_.rq_end(tid);
    return out.size();
  }

  Ebr& ebr() { return ebr_; }
  Provider& provider() { return prov_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  std::pair<Node*, Node*> traverse(K key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }
  bool validate(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  mutable Ebr ebr_;
  Provider prov_;
  Node* head_;
  Node* tail_;
};

}  // namespace bref
