#pragma once
// Citrus tree with EBR-RQ / EBR-RQ-LF linearizable range queries
// (Arbel-Raviv & Brown; see rq_provider.h). The two-children removal maps
// onto the provider's replace_op: the successor copy is stamped as an
// insert carrying the first victim's timestamp, both victims are stamped,
// parked in limbo, and the deferred successor unlink runs after the RCU
// grace period inside the provider's announce window.

#include <algorithm>
#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "ds/ebrrq/rq_provider.h"
#include "ds/support.h"
#include "epoch/ebr.h"
#include "rcu/urcu.h"

namespace bref {

template <typename K, typename V>
class EbrRqCitrus {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> child[2];
    std::atomic<uint64_t> tag[2];
    std::atomic<uint64_t> itime{EbrRqProvider<Node, K, V>::kInfTs};
    std::atomic<uint64_t> dtime{EbrRqProvider<Node, K, V>::kInfTs};
    Node(K k, V v) : key(k), val(v) {
      child[0].store(nullptr, std::memory_order_relaxed);
      child[1].store(nullptr, std::memory_order_relaxed);
      tag[0].store(0, std::memory_order_relaxed);
      tag[1].store(0, std::memory_order_relaxed);
    }
  };
  using Provider = EbrRqProvider<Node, K, V>;

  explicit EbrRqCitrus(EbrRqMode mode = EbrRqMode::kLock)
      : prov_(mode, ebr_) {
    root_ = new Node(key_max_sentinel<K>(), V{});
    root_->itime.store(0, std::memory_order_relaxed);
  }

  ~EbrRqCitrus() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Node* l = n->child[0].load(std::memory_order_relaxed))
        stack.push_back(l);
      if (Node* r = n->child[1].load(std::memory_order_relaxed))
        stack.push_back(r);
      delete n;
    }
  }

  EbrRqCitrus(const EbrRqCitrus&) = delete;
  EbrRqCitrus& operator=(const EbrRqCitrus&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    Ebr::Guard g(ebr_, tid);
    const SearchResult r = search(tid, key);
    if (r.curr == nullptr) return false;
    if (out != nullptr) *out = r.curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key < key_max_sentinel<K>());
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      const SearchResult r = search(tid, key);
      if (r.curr != nullptr) return false;
      std::lock_guard<Spinlock> lk(r.pred->lock);
      if (r.pred->marked.load(std::memory_order_acquire) ||
          r.pred->child[r.dir].load(std::memory_order_acquire) != nullptr ||
          r.pred->tag[r.dir].load(std::memory_order_acquire) != r.tag)
        continue;
      Node* fresh = new Node(key, val);
      prov_.insert_op(tid, fresh, [&] {
        r.pred->child[r.dir].store(fresh, std::memory_order_release);
        r.pred->tag[r.dir].fetch_add(1, std::memory_order_relaxed);
      });
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      const SearchResult r = search(tid, key);
      if (r.curr == nullptr) return false;
      Node* pred = r.pred;
      Node* curr = r.curr;
      const int dir = r.dir;
      std::unique_lock<Spinlock> lk_pred(pred->lock);
      std::unique_lock<Spinlock> lk_curr(curr->lock);
      if (pred->marked.load(std::memory_order_acquire) ||
          curr->marked.load(std::memory_order_acquire) ||
          pred->child[dir].load(std::memory_order_acquire) != curr)
        continue;
      Node* left = curr->child[0].load(std::memory_order_acquire);
      Node* right = curr->child[1].load(std::memory_order_acquire);
      if (left == nullptr || right == nullptr) {
        Node* splice = left != nullptr ? left : right;
        prov_.remove_op(tid, curr, [&] {
          curr->marked.store(true, std::memory_order_release);
          pred->child[dir].store(splice, std::memory_order_release);
          pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
        });
        return true;
      }
      if (remove_two_children(tid, pred, curr, dir, left, right)) return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    Ebr::Guard g(ebr_, tid);
    const uint64_t ts = prov_.rq_begin(tid, lo, hi);
    {
      Urcu::ReadGuard rg(rcu_, tid);
      std::vector<Node*> stack;
      if (Node* t = root_->child[0].load(std::memory_order_acquire))
        stack.push_back(t);
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        if (n->key >= lo && n->key <= hi && prov_.visible(n, ts))
          out.emplace_back(n->key, n->val);
        if (n->key > lo)
          if (Node* l = n->child[0].load(std::memory_order_acquire))
            stack.push_back(l);
        if (n->key < hi)
          if (Node* r = n->child[1].load(std::memory_order_acquire))
            stack.push_back(r);
      }
    }
    prov_.rq_reconcile(tid, ts, lo, hi, out);
    prov_.rq_end(tid);
    return out.size();
  }

  Ebr& ebr() { return ebr_; }
  Provider& provider() { return prov_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    in_order(root_->child[0].load(std::memory_order_acquire), v);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    return check_subtree(root_->child[0].load(std::memory_order_acquire),
                         key_min_sentinel<K>(), key_max_sentinel<K>());
  }

 private:
  struct SearchResult {
    Node* pred;
    Node* curr;
    int dir;
    uint64_t tag;
  };

  SearchResult search(int tid, K key) const {
    Urcu::ReadGuard rg(rcu_, tid);
    Node* pred = root_;
    int dir = 0;
    uint64_t tag = pred->tag[0].load(std::memory_order_acquire);
    Node* curr = pred->child[0].load(std::memory_order_acquire);
    while (curr != nullptr && curr->key != key) {
      const int d = (key < curr->key) ? 0 : 1;
      pred = curr;
      dir = d;
      tag = pred->tag[d].load(std::memory_order_acquire);
      curr = pred->child[d].load(std::memory_order_acquire);
    }
    return {pred, curr, dir, tag};
  }

  bool remove_two_children(int tid, Node* pred, Node* curr, int dir,
                           Node* left, Node* right) {
    Node* succ_parent = curr;
    Node* succ = right;
    for (;;) {
      Node* l = succ->child[0].load(std::memory_order_acquire);
      if (l == nullptr) break;
      succ_parent = succ;
      succ = l;
    }
    std::unique_lock<Spinlock> lk_sp;
    if (succ_parent != curr)
      lk_sp = std::unique_lock<Spinlock>(succ_parent->lock);
    std::unique_lock<Spinlock> lk_succ(succ->lock);
    bool valid = !succ->marked.load(std::memory_order_acquire) &&
                 succ->child[0].load(std::memory_order_acquire) == nullptr;
    if (succ_parent != curr) {
      valid = valid && !succ_parent->marked.load(std::memory_order_acquire) &&
              succ_parent->child[0].load(std::memory_order_acquire) == succ;
    }
    if (!valid) return false;

    Node* succ_right = succ->child[1].load(std::memory_order_acquire);
    Node* copy = new Node(succ->key, succ->val);
    const bool direct = (succ_parent == curr);
    copy->child[0].store(left, std::memory_order_relaxed);
    copy->child[1].store(direct ? succ_right : right,
                         std::memory_order_relaxed);
    prov_.replace_op(
        tid, copy, curr, succ,
        [&] {
          curr->marked.store(true, std::memory_order_release);
          succ->marked.store(true, std::memory_order_release);
          pred->child[dir].store(copy, std::memory_order_release);
          pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
        },
        [&] {
          rcu_.synchronize();
          if (!direct) {
            succ_parent->child[0].store(succ_right,
                                        std::memory_order_release);
            succ_parent->tag[0].fetch_add(1, std::memory_order_relaxed);
          }
        });
    return true;
  }

  void in_order(Node* n, std::vector<std::pair<K, V>>& v) const {
    if (n == nullptr) return;
    in_order(n->child[0].load(std::memory_order_acquire), v);
    v.emplace_back(n->key, n->val);
    in_order(n->child[1].load(std::memory_order_acquire), v);
  }

  bool check_subtree(Node* n, K lo, K hi) const {
    if (n == nullptr) return true;
    if (n->key <= lo || n->key >= hi) return false;
    return check_subtree(n->child[0].load(std::memory_order_acquire), lo,
                         n->key) &&
           check_subtree(n->child[1].load(std::memory_order_acquire), n->key,
                         hi);
  }

  mutable Ebr ebr_;
  mutable Urcu rcu_;
  Provider prov_;
  Node* root_;
};

}  // namespace bref
