#pragma once
// Citrus tree with EBR-RQ / EBR-RQ-LF linearizable range queries
// (Arbel-Raviv & Brown; see rq_provider.h). The two-children removal maps
// onto the provider's replace_op: the successor copy is stamped as an
// insert carrying the first victim's timestamp, both victims are stamped,
// parked in limbo, and the deferred successor unlink runs after the RCU
// grace period inside the provider's announce window.
//
// Nodes come from per-thread EntryPools (core/entry_pool.h); see
// ebrrq_list.h for the ownership story. Tags reset to 0 on reuse: a tag
// only guards revalidation within one EBR pin, and no pin can straddle a
// node's recycle (the grace period separates the lives).

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "core/entry_pool.h"
#include "core/global_timestamp.h"
#include "ds/ebrrq/rq_provider.h"
#include "ds/support.h"
#include "epoch/ebr.h"
#include "rcu/urcu.h"

namespace bref {

template <typename K, typename V>
class EbrRqCitrus {
 public:
  struct Node {
    K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> child[2];
    std::atomic<uint64_t> tag[2];
    std::atomic<uint64_t> itime{EbrRqProvider<Node, K, V>::kInfTs};
    std::atomic<uint64_t> dtime{EbrRqProvider<Node, K, V>::kInfTs};
    // Limbo chain while parked, pool free-list link while recycled (the
    // child pointers must stay walkable for pinned readers).
    std::atomic<Node*> limbo_next{nullptr};
    const int32_t pool_tid;

    explicit Node(int32_t owner) : key{}, val{}, pool_tid(owner) {
      child[0].store(nullptr, std::memory_order_relaxed);
      child[1].store(nullptr, std::memory_order_relaxed);
      tag[0].store(0, std::memory_order_relaxed);
      tag[1].store(0, std::memory_order_relaxed);
    }

    std::atomic<Node*>& pool_link() { return limbo_next; }
    static constexpr size_t kPoolPoisonBytes = sizeof(K) + sizeof(V);
    static constexpr size_t kPoolSlabEntries = 256;
    static void recycle(Node* n) { EntryPool<Node>::release(n); }
  };
  using Provider = EbrRqProvider<Node, K, V>;

  explicit EbrRqCitrus(EbrRqMode mode = EbrRqMode::kLock)
      : prov_(mode, ebr_) {
    root_ = make_sentinel(key_max_sentinel<K>());
  }

  ~EbrRqCitrus() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Node* l = n->child[0].load(std::memory_order_relaxed))
        stack.push_back(l);
      if (Node* r = n->child[1].load(std::memory_order_relaxed))
        stack.push_back(r);
      Node::recycle(n);
    }
  }

  EbrRqCitrus(const EbrRqCitrus&) = delete;
  EbrRqCitrus& operator=(const EbrRqCitrus&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    Ebr::Guard g(ebr_, tid);
    const SearchResult r = search(tid, key);
    if (r.curr == nullptr) return false;
    if (out != nullptr) *out = r.curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key < key_max_sentinel<K>());
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      const SearchResult r = search(tid, key);
      if (r.curr != nullptr) return false;
      std::lock_guard<Spinlock> lk(r.pred->lock);
      if (r.pred->marked.load(std::memory_order_acquire) ||
          r.pred->child[r.dir].load(std::memory_order_acquire) != nullptr ||
          r.pred->tag[r.dir].load(std::memory_order_acquire) != r.tag)
        continue;
      Node* fresh = alloc_node(tid, key, val);
      prov_.insert_op(tid, fresh, [&] {
        r.pred->child[r.dir].store(fresh, std::memory_order_release);
        r.pred->tag[r.dir].fetch_add(1, std::memory_order_relaxed);
      });
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      const SearchResult r = search(tid, key);
      if (r.curr == nullptr) return false;
      Node* pred = r.pred;
      Node* curr = r.curr;
      const int dir = r.dir;
      std::unique_lock<Spinlock> lk_pred(pred->lock);
      std::unique_lock<Spinlock> lk_curr(curr->lock);
      if (pred->marked.load(std::memory_order_acquire) ||
          curr->marked.load(std::memory_order_acquire) ||
          pred->child[dir].load(std::memory_order_acquire) != curr)
        continue;
      Node* left = curr->child[0].load(std::memory_order_acquire);
      Node* right = curr->child[1].load(std::memory_order_acquire);
      if (left == nullptr || right == nullptr) {
        Node* splice = left != nullptr ? left : right;
        prov_.remove_op(tid, curr, [&] {
          curr->marked.store(true, std::memory_order_release);
          pred->child[dir].store(splice, std::memory_order_release);
          pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
        });
        return true;
      }
      if (remove_two_children(tid, pred, curr, dir, left, right)) return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      prov_.note_trivial_rq(tid);
      return 0;
    }
    Ebr::Guard g(ebr_, tid);
    const uint64_t ts = prov_.rq_begin(tid, lo, hi);
    {
      Urcu::ReadGuard rg(rcu_, tid);
      std::vector<Node*> stack;
      if (Node* t = root_->child[0].load(std::memory_order_acquire))
        stack.push_back(t);
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        if (n->key >= lo && n->key <= hi && prov_.visible(n, ts))
          out.emplace_back(n->key, n->val);
        if (n->key > lo)
          if (Node* l = n->child[0].load(std::memory_order_acquire))
            stack.push_back(l);
        if (n->key < hi)
          if (Node* r = n->child[1].load(std::memory_order_acquire))
            stack.push_back(r);
      }
    }
    prov_.rq_reconcile(tid, ts, lo, hi, out);
    prov_.rq_end(tid);
    return out.size();
  }

  /// Snapshot timestamp the calling thread's last completed range query
  /// linearized at (surfaced as RangeSnapshot::timestamp()).
  timestamp_t last_rq_timestamp(int tid) const {
    return prov_.last_rq_timestamp(tid);
  }

  /// Drain every thread's limbo slot; see Provider::flush_limbo.
  size_t flush_limbo(int tid) {
    Ebr::Guard g(ebr_, tid);
    return prov_.flush_limbo(tid);
  }

  uint64_t limbo_nodes_checked() const { return prov_.limbo_nodes_checked(); }

  /// Nodes currently parked in limbo across all slots (the shard layer's
  /// maintenance_backlog; approximate under concurrency).
  size_t limbo_size() const { return prov_.limbo_size(); }

  static void set_node_pooling(bool on) {
    EntryPool<Node>::instance().set_pooling_enabled(on);
  }
  static EntryPoolStats node_pool_stats() {
    return EntryPool<Node>::instance().stats();
  }

  Ebr& ebr() { return ebr_; }
  /// Backlog signal, bumped per limbo park (see rq_provider.h) — preferred
  /// over the Ebr retire path because limbo_size() is this family's
  /// maintenance_backlog().
  void set_maintenance_signal(MaintenanceSignal* s) {
    prov_.set_maintenance_signal(s);
  }
  Provider& provider() { return prov_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    in_order(root_->child[0].load(std::memory_order_acquire), v);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    return check_subtree(root_->child[0].load(std::memory_order_acquire),
                         key_min_sentinel<K>(), key_max_sentinel<K>());
  }

 private:
  struct SearchResult {
    Node* pred;
    Node* curr;
    int dir;
    uint64_t tag;
  };

  /// Pool pop + full field reset (see ebrrq_list.h).
  static Node* alloc_node(int tid, K key, V val) {
    Node* n = EntryPool<Node>::instance().acquire(tid);
    n->key = key;
    n->val = val;
    n->marked.store(false, std::memory_order_relaxed);
    n->child[0].store(nullptr, std::memory_order_relaxed);
    n->child[1].store(nullptr, std::memory_order_relaxed);
    n->tag[0].store(0, std::memory_order_relaxed);
    n->tag[1].store(0, std::memory_order_relaxed);
    n->itime.store(Provider::kInfTs, std::memory_order_relaxed);
    n->dtime.store(Provider::kInfTs, std::memory_order_relaxed);
    n->limbo_next.store(nullptr, std::memory_order_relaxed);
    return n;
  }

  /// Heap path for the root sentinel (constructing thread's id unknown).
  static Node* make_sentinel(K key) {
    Node* n = new Node(kPoolMalloced);
    n->key = key;
    n->itime.store(0, std::memory_order_relaxed);
    return n;
  }

  SearchResult search(int tid, K key) const {
    Urcu::ReadGuard rg(rcu_, tid);
    Node* pred = root_;
    int dir = 0;
    uint64_t tag = pred->tag[0].load(std::memory_order_acquire);
    Node* curr = pred->child[0].load(std::memory_order_acquire);
    while (curr != nullptr && curr->key != key) {
      const int d = (key < curr->key) ? 0 : 1;
      pred = curr;
      dir = d;
      tag = pred->tag[d].load(std::memory_order_acquire);
      curr = pred->child[d].load(std::memory_order_acquire);
    }
    return {pred, curr, dir, tag};
  }

  bool remove_two_children(int tid, Node* pred, Node* curr, int dir,
                           Node* left, Node* right) {
    Node* succ_parent = curr;
    Node* succ = right;
    for (;;) {
      Node* l = succ->child[0].load(std::memory_order_acquire);
      if (l == nullptr) break;
      succ_parent = succ;
      succ = l;
    }
    std::unique_lock<Spinlock> lk_sp;
    if (succ_parent != curr)
      lk_sp = std::unique_lock<Spinlock>(succ_parent->lock);
    std::unique_lock<Spinlock> lk_succ(succ->lock);
    bool valid = !succ->marked.load(std::memory_order_acquire) &&
                 succ->child[0].load(std::memory_order_acquire) == nullptr;
    if (succ_parent != curr) {
      valid = valid && !succ_parent->marked.load(std::memory_order_acquire) &&
              succ_parent->child[0].load(std::memory_order_acquire) == succ;
    }
    if (!valid) return false;

    Node* succ_right = succ->child[1].load(std::memory_order_acquire);
    Node* copy = alloc_node(tid, succ->key, succ->val);
    const bool direct = (succ_parent == curr);
    copy->child[0].store(left, std::memory_order_relaxed);
    copy->child[1].store(direct ? succ_right : right,
                         std::memory_order_relaxed);
    prov_.replace_op(
        tid, copy, curr, succ,
        [&] {
          curr->marked.store(true, std::memory_order_release);
          succ->marked.store(true, std::memory_order_release);
          pred->child[dir].store(copy, std::memory_order_release);
          pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
        },
        [&] {
          rcu_.synchronize();
          if (!direct) {
            succ_parent->child[0].store(succ_right,
                                        std::memory_order_release);
            succ_parent->tag[0].fetch_add(1, std::memory_order_relaxed);
          }
        });
    return true;
  }

  void in_order(Node* n, std::vector<std::pair<K, V>>& v) const {
    if (n == nullptr) return;
    in_order(n->child[0].load(std::memory_order_acquire), v);
    v.emplace_back(n->key, n->val);
    in_order(n->child[1].load(std::memory_order_acquire), v);
  }

  bool check_subtree(Node* n, K lo, K hi) const {
    if (n == nullptr) return true;
    if (n->key <= lo || n->key >= hi) return false;
    return check_subtree(n->child[0].load(std::memory_order_acquire), lo,
                         n->key) &&
           check_subtree(n->child[1].load(std::memory_order_acquire), n->key,
                         hi);
  }

  mutable Ebr ebr_;
  mutable Urcu rcu_;
  Provider prov_;
  Node* root_;
};

}  // namespace bref
