#pragma once
// Optimistic skip list with EBR-RQ / EBR-RQ-LF linearizable range queries
// (Arbel-Raviv & Brown; see rq_provider.h).
//
// Nodes come from per-thread EntryPools (core/entry_pool.h) exactly like
// the list's: see ebrrq_list.h. A pooled node keeps its full kMaxHeight
// link array across lives; alloc_node re-stamps top_level and relinks only
// the lanes the new life uses (readers can reach a node only through lanes
// it is linked into, so stale upper lanes are unreachable).

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/spinlock.h"
#include "core/entry_pool.h"
#include "core/global_timestamp.h"
#include "ds/ebrrq/rq_provider.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class EbrRqSkipList {
 public:
  static constexpr int kMaxHeight = 20;

  struct Node {
    K key;
    V val;
    int top_level;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    std::atomic<Node*> next[kMaxHeight];
    std::atomic<uint64_t> itime{EbrRqProvider<Node, K, V>::kInfTs};
    std::atomic<uint64_t> dtime{EbrRqProvider<Node, K, V>::kInfTs};
    // Limbo chain while parked, pool free-list link while recycled (the
    // `next` lanes must stay walkable for readers crossing a marked node,
    // so the pool cannot borrow them).
    std::atomic<Node*> limbo_next{nullptr};
    const int32_t pool_tid;

    explicit Node(int32_t owner) : key{}, val{}, top_level(0), pool_tid(owner) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }

    std::atomic<Node*>& pool_link() { return limbo_next; }
    static constexpr size_t kPoolPoisonBytes = sizeof(K) + sizeof(V);
    // ~240-byte nodes: keep slabs around 32 KiB instead of the default
    // 512-entry granularity sized for 32-byte bundle entries.
    static constexpr size_t kPoolSlabEntries = 128;
    static void recycle(Node* n) { EntryPool<Node>::release(n); }
  };
  using Provider = EbrRqProvider<Node, K, V>;

  explicit EbrRqSkipList(EbrRqMode mode = EbrRqMode::kLock)
      : prov_(mode, ebr_) {
    head_ = make_sentinel(key_min_sentinel<K>());
    tail_ = make_sentinel(key_max_sentinel<K>());
    for (int l = 0; l < kMaxHeight; ++l)
      head_->next[l].store(tail_, std::memory_order_relaxed);
    for (int i = 0; i < kMaxThreads; ++i) rngs_[i]->reseed(0xbeef + i);
  }

  ~EbrRqSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0].load(std::memory_order_relaxed);
      Node::recycle(n);
      n = nx;
    }
  }

  EbrRqSkipList(const EbrRqSkipList&) = delete;
  EbrRqSkipList& operator=(const EbrRqSkipList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    Ebr::Guard g(ebr_, tid);
    Node* pred = head_;
    Node* found = nullptr;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (curr->key == key) {
        found = curr;
        break;
      }
    }
    if (found == nullptr ||
        !found->fully_linked.load(std::memory_order_acquire) ||
        found->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = found->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    const int top = random_level(tid);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      const int lf = find(key, preds, succs);
      if (lf != -1) {
        Node* found = succs[lf];
        if (!found->marked.load(std::memory_order_acquire)) {
          while (!found->fully_linked.load(std::memory_order_acquire))
            cpu_relax();
          return false;
        }
        continue;
      }
      LockSet locks;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                !succs[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == succs[l];
      }
      if (!valid) continue;
      Node* fresh = alloc_node(tid, key, val, top);
      for (int l = 0; l <= top; ++l)
        fresh->next[l].store(succs[l], std::memory_order_relaxed);
      prov_.insert_op(tid, fresh, [&] {
        for (int l = 0; l <= top; ++l)
          preds[l]->next[l].store(fresh, std::memory_order_release);
        fresh->fully_linked.store(true, std::memory_order_release);
      });
      return true;
    }
  }

  bool remove(int tid, K key) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      Ebr::Guard g(ebr_, tid);
      const int lf = find(key, preds, succs);
      if (lf == -1) return false;
      Node* victim = succs[lf];
      if (!victim->fully_linked.load(std::memory_order_acquire) ||
          victim->top_level != lf ||
          victim->marked.load(std::memory_order_acquire))
        return false;
      LockSet locks;
      locks.acquire(victim);
      if (victim->marked.load(std::memory_order_acquire)) return false;
      const int top = victim->top_level;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == victim;
      }
      if (!valid) continue;
      prov_.remove_op(tid, victim, [&] {
        victim->marked.store(true, std::memory_order_release);
        for (int l = top; l >= 0; --l)
          preds[l]->next[l].store(
              victim->next[l].load(std::memory_order_acquire),
              std::memory_order_release);
      });
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      prov_.note_trivial_rq(tid);
      return 0;
    }
    Ebr::Guard g(ebr_, tid);
    const uint64_t ts = prov_.rq_begin(tid, lo, hi);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    find(lo, preds, succs);
    Node* curr = succs[0];
    while (curr != tail_ && curr->key <= hi) {
      if (prov_.visible(curr, ts)) out.emplace_back(curr->key, curr->val);
      curr = curr->next[0].load(std::memory_order_acquire);
    }
    prov_.rq_reconcile(tid, ts, lo, hi, out);
    prov_.rq_end(tid);
    return out.size();
  }

  /// Snapshot timestamp the calling thread's last completed range query
  /// linearized at (surfaced as RangeSnapshot::timestamp()).
  timestamp_t last_rq_timestamp(int tid) const {
    return prov_.last_rq_timestamp(tid);
  }

  /// Drain every thread's limbo slot; see Provider::flush_limbo.
  size_t flush_limbo(int tid) {
    Ebr::Guard g(ebr_, tid);
    return prov_.flush_limbo(tid);
  }

  uint64_t limbo_nodes_checked() const { return prov_.limbo_nodes_checked(); }

  /// Nodes currently parked in limbo across all slots (the shard layer's
  /// maintenance_backlog; approximate under concurrency).
  size_t limbo_size() const { return prov_.limbo_size(); }

  static void set_node_pooling(bool on) {
    EntryPool<Node>::instance().set_pooling_enabled(on);
  }
  static EntryPoolStats node_pool_stats() {
    return EntryPool<Node>::instance().stats();
  }

  Ebr& ebr() { return ebr_; }
  /// Backlog signal, bumped per limbo park (see rq_provider.h) — preferred
  /// over the Ebr retire path because limbo_size() is this family's
  /// maintenance_backlog().
  void set_maintenance_signal(MaintenanceSignal* s) {
    prov_.set_maintenance_signal(s);
  }
  Provider& provider() { return prov_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  class LockSet {
   public:
    void acquire(Node* n) {
      for (int i = 0; i < count_; ++i)
        if (nodes_[i] == n) return;
      n->lock.lock();
      nodes_[count_++] = n;
    }
    ~LockSet() {
      for (int i = count_ - 1; i >= 0; --i) nodes_[i]->lock.unlock();
    }

   private:
    Node* nodes_[kMaxHeight + 1];
    int count_ = 0;
  };

  /// Pool pop + field reset (see ebrrq_list.h); lanes 0..top are stored by
  /// insert before publication, lanes above stay stale-but-unreachable.
  static Node* alloc_node(int tid, K key, V val, int top) {
    Node* n = EntryPool<Node>::instance().acquire(tid);
    n->key = key;
    n->val = val;
    n->top_level = top;
    n->marked.store(false, std::memory_order_relaxed);
    n->fully_linked.store(false, std::memory_order_relaxed);
    n->itime.store(Provider::kInfTs, std::memory_order_relaxed);
    n->dtime.store(Provider::kInfTs, std::memory_order_relaxed);
    n->limbo_next.store(nullptr, std::memory_order_relaxed);
    return n;
  }

  /// Heap path for sentinels (constructing thread's id unknown; see
  /// ebrrq_list.h).
  static Node* make_sentinel(K key) {
    Node* n = new Node(kPoolMalloced);
    n->key = key;
    n->top_level = kMaxHeight - 1;
    n->fully_linked.store(true, std::memory_order_relaxed);
    n->itime.store(0, std::memory_order_relaxed);
    return n;
  }

  int find(K key, Node** preds, Node** succs) const {
    int lf = -1;
    Node* pred = head_;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (lf == -1 && curr->key == key) lf = l;
      preds[l] = pred;
      succs[l] = curr;
    }
    return lf;
  }

  int random_level(int tid) {
    const uint64_t r = rngs_[tid]->next_u64();
    return std::countr_zero(r | (1ull << (kMaxHeight - 1)));
  }

  mutable Ebr ebr_;
  Provider prov_;
  Node* head_;
  Node* tail_;
  mutable CachePadded<Xoshiro256> rngs_[kMaxThreads];
};

}  // namespace bref
