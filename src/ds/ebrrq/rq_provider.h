#pragma once
// EBR-based range-query provider — reconstruction of Arbel-Raviv & Brown,
// "Harnessing epoch-based reclamation for efficient range queries"
// (PPoPP'18); the paper's EBR-RQ and EBR-RQ-LF competitors.
//
// Nodes carry insert/delete timestamps (itime/dtime). A range query acquires
// a snapshot timestamp `ts` by incrementing a global counter and includes a
// node iff itime <= ts < dtime. Two update/query coordination protocols:
//
//  * kLock (EBR-RQ): a readers-writer lock protects the counter. Updates
//    stamp under the lock in shared mode; range queries increment it in
//    exclusive mode, so every update is cleanly ordered before or after the
//    increment. This is the "contention on a global lock" profile the
//    bundling paper measures.
//  * kLockFree (EBR-RQ-LF): stamps are installed with DCSS (set the node's
//    timestamp to t only if the global counter still equals t), so a stamp
//    committed after a range query's fetch-add necessarily carries a larger
//    timestamp. Because there is no mutual exclusion, an insert stamped
//    before a query's fetch-add may become reachable only after the query's
//    traversal has passed its position; inserters therefore *report* their
//    node to every announced range query covering its key (step (2) of
//    rq_reconcile drains these reports), mirroring the original design's
//    update-side help.
//
// Because deletions physically unlink nodes mid-traversal, removers (a)
// announce the victim before unlinking and (b) park it in a per-thread
// limbo list that range queries scan for in-snapshot nodes they missed —
// the extra "hundreds of limbo nodes checked per query" overhead the
// bundling paper reports. Limbo entries are handed to EBR once no active or
// future range query can include them; with pooled nodes the EBR drain then
// recycles them to their owner's EntryPool inbox instead of the heap.
//
// Report/limbo lifecycle invariants (DESIGN.md §5 has the full writeup,
// including the two races fixed here):
//  * A report may sit in a slot only while that slot's query is live:
//    report_insert re-checks `ts` under `report_lock`, and rq_end stores
//    kNoRq and drains the slot under the same lock, so a straggler push
//    racing the query's completion is impossible (the old code cleared
//    stragglers only at the tid's *next* rq_begin — a thread that stopped
//    querying kept dangling NodeT* to nodes later freed through EBR).
//  * The limbo spinlocks are leaf locks: oldest_active_rq() — which spins
//    on another thread's kRqPending window — is snapshotted *before* the
//    limbo lock is taken, so a preempted query thread can no longer convoy
//    every rq_reconcile/limbo_size caller behind one prune.
//  * Pruning is cadence-driven (every kPruneEvery parks by that thread)
//    plus on-demand: flush_limbo(tid) drains every slot, so nodes stranded
//    by a thread that stopped updating (< kPruneEvery of them) still reach
//    EBR and, from there, their owner's pool.
//
// NodeT duck-typing requirements: fields `key`, `val`,
// `std::atomic<uint64_t> itime, dtime` initialised to kInfTs, an intrusive
// `std::atomic<NodeT*> limbo_next` link (owned by the provider while the
// node is parked; doubles as the EntryPool free-list link afterwards — the
// two uses never overlap), and `static void recycle(NodeT*)` routing the
// node back to its pool slot or the heap.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/dcss.h"
#include "common/rwlock.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "core/maintenance_signal.h"
#include "epoch/ebr.h"
#include "obs/metrics.h"

namespace bref {

enum class EbrRqMode { kLock, kLockFree };

/// Cross-instance obs gauges (ds layer): every live provider registers a
/// source. Free functions, not template members, so all NodeT
/// instantiations share one exposition series.
inline obs::GaugeSet& ebrrq_limbo_gauge() {
  static auto* g = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_ebrrq_limbo_nodes",
      "Nodes parked in EBR-RQ limbo lists (sum over live providers)");
  return *g;
}
inline obs::GaugeSet& ebrrq_limbo_checked_counter() {
  static auto* g = new obs::GaugeSet(
      obs::GaugeSet::Agg::kSum, "bref_ebrrq_limbo_nodes_checked_total",
      "Limbo nodes scanned by range queries (sum over live providers)", "",
      obs::MetricKind::kCounter);
  return *g;
}

template <typename NodeT, typename K, typename V>
class EbrRqProvider {
 public:
  /// "Not yet stamped" (bigger than any real timestamp; bit 63 stays clear
  /// so the word remains DCSS-compatible).
  static constexpr uint64_t kInfTs = 1ull << 62;

  EbrRqProvider(EbrRqMode mode, Ebr& ebr) : mode_(mode), ebr_(&ebr) {
    limbo_src_ = ebrrq_limbo_gauge().add(
        [this] { return static_cast<double>(limbo_size()); });
    checked_src_ = ebrrq_limbo_checked_counter().add(
        [this] { return static_cast<double>(limbo_nodes_checked()); });
  }

  ~EbrRqProvider() {
    // Unregister the obs sources first: the drain below writes limbo state
    // without taking the leaf locks (quiescent teardown), so no snapshot
    // may still be able to read it.
    limbo_src_.reset();
    checked_src_.reset();
    for (auto& lb : limbo_) {
      NodeT* n = lb->head;
      while (n != nullptr) {
        NodeT* nx = n->limbo_next.load(std::memory_order_relaxed);
        NodeT::recycle(n);
        n = nx;
      }
      lb->head = nullptr;
      lb->count = 0;
    }
    // rq_end drains reports under the lock that gates pushes, so at
    // quiescent destruction no slot may still hold one (a parked report
    // would be a dangling NodeT* the moment EBR frees the node).
    for (auto& rs : rq_slots_) {
      assert(rs->reports.empty() && "report leaked past rq_end");
      (void)rs;
    }
  }

  EbrRqProvider(const EbrRqProvider&) = delete;
  EbrRqProvider& operator=(const EbrRqProvider&) = delete;

  // ---- update side ------------------------------------------------------

  /// Stamp a fresh (still private) node's insert time and run the physical
  /// linking `lin()`. The stamp precedes the link so a reachable node is
  /// always stamped.
  template <typename LinFn>
  void insert_op(int tid, NodeT* n, LinFn&& lin) {
    hwm_.note(tid);
    auto& sl = *slots_[tid];
    sl.ins.store(n, std::memory_order_seq_cst);
    stamp(tid, n->itime);
    lin();
    if (mode_ == EbrRqMode::kLockFree) report_insert(n);
    sl.ins.store(nullptr, std::memory_order_release);
  }

  /// Stamp a victim's delete time, run `lin()` (mark + unlink) and park it
  /// in the limbo list.
  template <typename LinFn>
  void remove_op(int tid, NodeT* victim, LinFn&& lin) {
    hwm_.note(tid);
    auto& sl = *slots_[tid];
    sl.del0.store(victim, std::memory_order_seq_cst);
    stamp(tid, victim->dtime);
    lin();
    park_in_limbo(tid, victim);
    sl.del0.store(nullptr, std::memory_order_release);
  }

  /// Citrus two-children removal: one new node (the successor copy) and two
  /// victims change in one operation. The copy's itime takes the first
  /// victim's dtime so the moved key is never absent from any snapshot
  /// (overlaps are deduplicated by key on the query side).
  template <typename LinFn, typename UnlinkFn>
  void replace_op(int tid, NodeT* copy, NodeT* victim1, NodeT* victim2,
                  LinFn&& lin, UnlinkFn&& unlink) {
    hwm_.note(tid);
    auto& sl = *slots_[tid];
    sl.del0.store(victim1, std::memory_order_seq_cst);
    sl.del1.store(victim2, std::memory_order_seq_cst);
    const uint64_t t = stamp(tid, victim1->dtime);
    copy->itime.store(t, std::memory_order_release);  // private: plain store
    lin();
    if (mode_ == EbrRqMode::kLockFree) report_insert(copy);
    stamp(tid, victim2->dtime);
    unlink();  // deferred physical unlink (e.g. after RCU grace period)
    park_in_limbo(tid, victim1);
    park_in_limbo(tid, victim2);
    sl.del0.store(nullptr, std::memory_order_release);
    sl.del1.store(nullptr, std::memory_order_release);
  }

  // ---- range-query side --------------------------------------------------

  uint64_t rq_begin(int tid, K lo, K hi) {
    hwm_.note(tid);
    auto& rs = *rq_slots_[tid];
#ifndef NDEBUG
    {
      // rq_end drained under the lock gating pushes, so the slot is empty.
      std::lock_guard<Spinlock> g(rs.report_lock);
      assert(rs.reports.empty() && "stale report survived rq_end");
    }
#endif
    rs.lo.store(lo, std::memory_order_relaxed);
    rs.hi.store(hi, std::memory_order_relaxed);
    rs.ts.store(kRqPending, std::memory_order_seq_cst);
    uint64_t ts;
    if (mode_ == EbrRqMode::kLock) {
      rwlock_.lock();
      ts = ts_.fetch_add(1, std::memory_order_seq_cst);
      rwlock_.unlock();
    } else {
      ts = ts_.fetch_add(1, std::memory_order_seq_cst);
    }
    rs.ts.store(ts, std::memory_order_seq_cst);
    // The snapshot timestamp this query linearizes at, surfaced through the
    // structures' last_rq_timestamp(tid) -> RangeSnapshot::timestamp().
    *last_rq_ts_[tid] = ts;
    return ts;
  }

  void rq_end(int tid) {
    auto& rs = *rq_slots_[tid];
    if (mode_ == EbrRqMode::kLock) {
      // Lock mode never reports (insert_op gates report_insert on
      // kLockFree), so the slot is provably empty: keep the seed's single
      // release store on this hot path.
      rs.ts.store(kNoRq, std::memory_order_release);
      return;
    }
    // The kNoRq store and the report drain form one atomic step w.r.t.
    // report_insert (which re-checks ts under this lock). Without that, an
    // insert that read a live ts just before the store could push *after*
    // the drain, and the report — a raw NodeT* — would dangle until this
    // tid's next rq_begin, which may never come.
    std::lock_guard<Spinlock> g(rs.report_lock);
    rs.ts.store(kNoRq, std::memory_order_release);
    rs.reports.clear();
  }

  /// A trivially-empty query (lo > hi) linearizes anywhere; stamp "now" so
  /// RangeSnapshot::timestamp() stays meaningful without paying rq_begin.
  void note_trivial_rq(int tid) {
    hwm_.note(tid);
    *last_rq_ts_[tid] = ts_.load(std::memory_order_seq_cst);
  }

  /// Snapshot timestamp the calling thread's last range query fixed in
  /// rq_begin (kLock and kLockFree alike: the fetch-add result).
  uint64_t last_rq_timestamp(int tid) const { return *last_rq_ts_[tid]; }

  /// Snapshot membership test: itime <= ts < dtime. DCSS-helping reads in
  /// lock-free mode so a raw descriptor word is never misinterpreted.
  bool visible(const NodeT* n, uint64_t ts) const {
    uint64_t it, dt;
    if (mode_ == EbrRqMode::kLockFree) {
      it = dcss_.read(n->itime);
      dt = dcss_.read(n->dtime);
    } else {
      it = n->itime.load(std::memory_order_acquire);
      dt = n->dtime.load(std::memory_order_acquire);
    }
    return it <= ts && dt > ts;
  }

  /// After the structure traversal: fold in (1) nodes whose announced
  /// updates are in flight, (2) nodes reported to this query by completed
  /// inserts, (3) limbo nodes deleted after the snapshot that the traversal
  /// may have missed; then sort + dedupe by key.
  void rq_reconcile(int tid, uint64_t ts, K lo, K hi,
                    std::vector<std::pair<K, V>>& out) {
    const int n_threads = hwm_.get();
    for (int i = 0; i < n_threads; ++i) {
      auto& sl = *slots_[i];
      reconcile_slot(sl.ins, ts, lo, hi, out);
      reconcile_slot(sl.del0, ts, lo, hi, out);
      reconcile_slot(sl.del1, ts, lo, hi, out);
    }
    {
      auto& rs = *rq_slots_[tid];
      std::lock_guard<Spinlock> g(rs.report_lock);
      for (NodeT* n : rs.reports)
        if (n->key >= lo && n->key <= hi && visible(n, ts))
          out.emplace_back(n->key, n->val);
      rs.reports.clear();
    }
    for (int i = 0; i < n_threads; ++i) {
      auto& lb = *limbo_[i];
      std::lock_guard<Spinlock> g(lb.lock);
      for (NodeT* n = lb.head; n != nullptr;
           n = n->limbo_next.load(std::memory_order_relaxed)) {
        limbo_checked_.fetch_add(1, std::memory_order_relaxed);
        if (n->key >= lo && n->key <= hi && visible(n, ts))
          out.emplace_back(n->key, n->val);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              out.end());
  }

  // ---- limbo maintenance -------------------------------------------------

  /// On-demand drain of *every* thread's limbo slot: nodes no active or
  /// future range query can include are retired into `tid`'s EBR bag (and
  /// recycled to their owners' pools once the grace period elapses). The
  /// cadence-driven prune only fires every kPruneEvery parks *by the
  /// parking thread*, so a thread that stops updating strands its tail
  /// forever without this. Call while pinned. Returns #nodes retired.
  size_t flush_limbo(int tid) {
    hwm_.note(tid);
    const uint64_t oldest = oldest_active_rq();
    size_t n = 0;
    const int n_threads = hwm_.get();
    for (int i = 0; i < n_threads; ++i)
      n += prune_slot(*limbo_[i], oldest, tid);
    return n;
  }

  // ---- statistics --------------------------------------------------------
  uint64_t limbo_nodes_checked() const {
    return limbo_checked_.load(std::memory_order_relaxed);
  }
  size_t limbo_size() const {
    size_t n = 0;
    for (int i = 0; i < hwm_.get(); ++i) {
      auto& lb = *limbo_[i];
      std::lock_guard<Spinlock> g(lb.lock);
      n += lb.count;
    }
    return n;
  }
  /// Attach (nullptr: detach) the backlog signal bumped on every limbo
  /// park — the producer half of backlog-driven maintenance. The park
  /// path is the right producer here (not Ebr::retire): limbo_size() is
  /// what maintenance_backlog() reports, and nodes enter limbo at park
  /// time, long before the flush retires them into EBR.
  void set_maintenance_signal(MaintenanceSignal* s) noexcept {
    msig_.store(s, std::memory_order_release);
  }

  /// Reports currently parked across all slots (tests: must be zero once
  /// quiescent — every push is gated on a live query whose rq_end drains).
  size_t pending_reports() {
    size_t n = 0;
    for (int i = 0; i < hwm_.get(); ++i) {
      auto& rs = *rq_slots_[i];
      std::lock_guard<Spinlock> g(rs.report_lock);
      n += rs.reports.size();
    }
    return n;
  }

 private:
  static constexpr uint64_t kNoRq = ~0ull;
  static constexpr uint64_t kRqPending = ~0ull - 1;

  struct AnnounceSlots {
    std::atomic<NodeT*> ins{nullptr};
    std::atomic<NodeT*> del0{nullptr};
    std::atomic<NodeT*> del1{nullptr};
  };

  /// Intrusive LIFO of unlinked-but-maybe-still-in-snapshot nodes, linked
  /// through NodeT::limbo_next — no per-park vector churn, and pruning
  /// relinks in place instead of erase/partition copies.
  struct Limbo {
    Spinlock lock;
    NodeT* head = nullptr;
    size_t count = 0;
    uint64_t appended = 0;
  };

  struct RqSlot {
    std::atomic<uint64_t> ts{kNoRq};
    // Announced bounds, read racily by report_insert (which deliberately
    // tolerates stale values — reports are re-checked on drain). Atomics
    // with relaxed ordering make the benign race well-defined.
    std::atomic<K> lo{};
    std::atomic<K> hi{};
    Spinlock report_lock;
    std::vector<NodeT*> reports;
  };

  /// Stamp `field` with the current global timestamp. Lock mode: plain
  /// store under the shared lock. Lock-free mode: DCSS retry loop — the
  /// stamp commits only if the counter has not moved, so stamps and query
  /// fetch-adds are totally ordered.
  uint64_t stamp(int tid, std::atomic<uint64_t>& field) {
    if (mode_ == EbrRqMode::kLock) {
      rwlock_.lock_shared();
      const uint64_t t = ts_.load(std::memory_order_seq_cst);
      field.store(t, std::memory_order_seq_cst);
      rwlock_.unlock_shared();
      return t;
    }
    for (;;) {
      const uint64_t t = ts_.load(std::memory_order_seq_cst);
      if (dcss_.dcss(tid, ts_, t, field, kInfTs, t)) return t;
    }
  }

  /// Lock-free mode: hand a just-linked insert to every announced range
  /// query whose range covers it. Range/visibility are re-checked when the
  /// query drains its reports, so stale slot metadata is harmless.
  void report_insert(NodeT* n) {
    const int n_threads = hwm_.get();
    for (int i = 0; i < n_threads; ++i) {
      auto& rs = *rq_slots_[i];
      const uint64_t v = rs.ts.load(std::memory_order_seq_cst);
      if (v == kNoRq) continue;
      if (n->key < rs.lo.load(std::memory_order_relaxed) ||
          n->key > rs.hi.load(std::memory_order_relaxed))
        continue;
      std::lock_guard<Spinlock> g(rs.report_lock);
      // Re-check under the lock: rq_end's kNoRq store + drain happen under
      // it too, so a push here is guaranteed to be seen (and drained) by
      // the still-live query rather than parked forever.
      if (rs.ts.load(std::memory_order_relaxed) == kNoRq) continue;
      rs.reports.push_back(n);
    }
  }

  void reconcile_slot(std::atomic<NodeT*>& slot, uint64_t ts, K lo, K hi,
                      std::vector<std::pair<K, V>>& out) {
    NodeT* n = slot.load(std::memory_order_acquire);
    if (n == nullptr) return;
    if (n->key < lo || n->key > hi) return;
    // Wait for the in-flight operation to complete so (a) its stamps are
    // final and (b) its physical effect is globally visible before this
    // query returns.
    Backoff bo;
    while (slot.load(std::memory_order_acquire) == n) bo.pause();
    if (visible(n, ts)) out.emplace_back(n->key, n->val);
  }

  void park_in_limbo(int tid, NodeT* n) {
    auto& lb = *limbo_[tid];
    bool prune_due;
    {
      std::lock_guard<Spinlock> g(lb.lock);
      n->limbo_next.store(lb.head, std::memory_order_relaxed);
      lb.head = n;
      ++lb.count;
      prune_due = (++lb.appended % kPruneEvery == 0);
    }
    // Prune outside the append's critical section: oldest_active_rq spins
    // on kRqPending windows, and holding lb.lock across that spin convoyed
    // every rq_reconcile/limbo_size caller behind one preempted query.
    if (prune_due) {
      const uint64_t oldest = oldest_active_rq();
      prune_slot(lb, oldest, tid);
    }
    if (MaintenanceSignal* sig = msig_.load(std::memory_order_relaxed))
      sig->on_produce();
  }

  /// Move limbo nodes no active or future range query can include into EBR
  /// (which delays the recycle past any concurrent traversal). The caller
  /// must have snapshotted `oldest` with no limbo lock held. Returns the
  /// number of nodes retired into `retire_tid`'s bag.
  size_t prune_slot(Limbo& lb, uint64_t oldest, int retire_tid) {
    std::lock_guard<Spinlock> g(lb.lock);
    NodeT* keep = nullptr;
    size_t kept = 0;
    size_t pruned = 0;
    NodeT* n = lb.head;
    while (n != nullptr) {
      NodeT* nx = n->limbo_next.load(std::memory_order_relaxed);
      if (n->dtime.load(std::memory_order_acquire) > oldest) {
        n->limbo_next.store(keep, std::memory_order_relaxed);
        keep = n;
        ++kept;
      } else {
        ebr_->retire_recycle(retire_tid, n);
        ++pruned;
      }
      n = nx;
    }
    lb.head = keep;
    lb.count = kept;
    return pruned;
  }

  uint64_t oldest_active_rq() const {
    uint64_t oldest = ts_.load(std::memory_order_seq_cst);
    const int n_threads = hwm_.get();
    for (int i = 0; i < n_threads; ++i) {
      Backoff bo;
      uint64_t v;
      while ((v = rq_slots_[i]->ts.load(std::memory_order_seq_cst)) ==
             kRqPending)
        bo.pause();
      if (v != kNoRq && v < oldest) oldest = v;
    }
    return oldest;
  }

  static constexpr uint64_t kPruneEvery = 128;

  const EbrRqMode mode_;
  Ebr* ebr_;
  mutable DcssProvider dcss_;
  RWSpinlock rwlock_;
  TidHwm hwm_;
  std::atomic<uint64_t> ts_{1};  // 0 would collide with "before all time"
  mutable std::atomic<uint64_t> limbo_checked_{0};
  std::atomic<MaintenanceSignal*> msig_{nullptr};
  CachePadded<AnnounceSlots> slots_[kMaxThreads];
  mutable CachePadded<Limbo> limbo_[kMaxThreads];
  CachePadded<RqSlot> rq_slots_[kMaxThreads];
  CachePadded<uint64_t> last_rq_ts_[kMaxThreads] = {};
  // Last members: destroyed first, unregistering the obs callbacks before
  // the limbo state they read. limbo_size() takes only the limbo leaf
  // locks, which a snapshot may take under the registry lock (leaf-lock
  // ordering is preserved).
  obs::GaugeSet::Source limbo_src_;
  obs::GaugeSet::Source checked_src_;
};

}  // namespace bref
