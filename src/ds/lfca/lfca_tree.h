#pragma once
// Lock-free contention-adapting search tree (LFCA) with immutable-leaf
// range queries — Winblad, Sagonas & Jonsson, SPAA'18 (arXiv:1709.00722),
// rewritten in this repo's idiom (thread_registry tids, ebr.h reclamation,
// registry-derived capabilities).
//
// Shape: an internal tree of *route* nodes (immutable key, mutable child
// pointers) over *base* nodes, each owning an immutable sorted-array leaf
// (lfca_leaf.h). Every operation finds the base covering its key and CASes
// a replacement base in; there are no locks anywhere.
//
// Adaptation: each base carries a contention statistic. Failed CASes raise
// it; uncontended updates lower it; range queries spanning several bases
// lower it further. Above the high threshold the base splits under a new
// route node (more CAS points, less contention); below the low threshold
// it joins with a neighbor via the paper's two-phase protocol — an
// exclusive "secure" phase (claim parent/grandparent join_ids, draft the
// neighbor) and a help-capable "complete" phase (install the merged base,
// splice the parent route out). Stalled phases are helped or aborted by
// whichever thread trips over them, which is what makes the tree
// lock-free.
//
// Range queries: mark every base intersecting [lo, hi] as a *range base*
// sharing one result storage, in ascending key order; a marked base cannot
// be replaced until the query's result is set, and updates that hit one
// help the query finish first. Once all bases are marked, their immutable
// leaves are concatenated and CASed into the storage — the linearization
// point. Concurrent queries over an overlapping range help and share the
// result instead of re-marking (lfca_node.h documents the storage
// refcounting; DESIGN.md contrasts all this with bundle-chain traversal).
//
// Memory: displaced nodes and leaves are retired through EBR by the CAS
// winner that unlinked them. With `reclaim=false` (the paper family's
// leaky benchmark mode) operations skip epoch pinning and everything parks
// until destruction, mirroring the other techniques here.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "ds/lfca/lfca_node.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

/// Adaptation policy knobs (defaults are the SPAA'18 constants). Tests
/// tighten the thresholds to make splits/joins frequent and observable.
struct LfcaTuning {
  int cont_contrib = 250;      // stat increase per contended update
  int low_cont_contrib = 1;    // stat decrease per uncontended update
  int range_contrib = 100;     // extra decrease when an RQ spanned >1 base
  int high_threshold = 1000;   // split above this
  int low_threshold = -1000;   // join below this
};

template <typename K, typename V>
class LfcaTree {
 public:
  using Node = LfcaNode<K, V>;
  using Leaf = LfcaLeaf<K, V>;
  using Storage = LfcaResultStorage<K, V>;
  using Items = typename Storage::Items;

  explicit LfcaTree(bool reclaim = false, LfcaTuning tuning = LfcaTuning{})
      : reclaim_(reclaim), tuning_(tuning) {
    root_.store(new Node(LfcaNodeType::kNormal, new Leaf(), 0, nullptr),
                std::memory_order_relaxed);
  }

  ~LfcaTree() {
    free_subtree(root_.load(std::memory_order_relaxed));
    // Retired nodes parked in EBR bags are freed by ~Ebr() through the
    // same deleters (node-only vs node+leaf) they were retired with.
  }

  LfcaTree(const LfcaTree&) = delete;
  LfcaTree& operator=(const LfcaTree&) = delete;

  // -- point operations ----------------------------------------------------

  bool insert(int tid, K key, V val) {
    return do_update(tid, key, [&](const Leaf* leaf) {
      return leaf->with_insert(key, val);
    });
  }

  bool remove(int tid, K key) {
    return do_update(tid, key,
                     [&](const Leaf* leaf) { return leaf->with_remove(key); });
  }

  /// Wait-free: descend route nodes, binary-search the immutable leaf.
  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* base = find_base_node(root_.load(std::memory_order_acquire), key);
    return base->data->lookup(key, out);
  }

  // -- range query ---------------------------------------------------------

  /// Linearizable inclusive [lo, hi]: collect the immutable leaves of every
  /// base intersecting the range (all_in_range), then filter. The snapshot
  /// linearizes when its result storage is CASed from empty.
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    OptEbrGuard g(ebr_, tid, reclaim_);
    const Items* res = all_in_range(tid, lo, hi, nullptr);
    for (const auto& kv : *res)
      if (kv.first >= lo && kv.first <= hi) out.push_back(kv);
    return out.size();
  }

  // -- substrate access / options -----------------------------------------

  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }
  const LfcaTuning& tuning() const { return tuning_; }

  // -- adaptation introspection (tests; quiescent unless noted) ------------

  /// Splits / completed joins since construction (concurrency-safe reads).
  uint64_t splits_performed() const {
    return splits_.load(std::memory_order_relaxed);
  }
  uint64_t joins_performed() const {
    return joins_.load(std::memory_order_relaxed);
  }

  size_t route_count() const {
    return count_nodes(root_.load(std::memory_order_acquire), true);
  }
  size_t base_count() const {
    return count_nodes(root_.load(std::memory_order_acquire), false);
  }

  /// Test hooks: read / plant the contention statistic on the base
  /// covering `key`. Epoch-guarded like any operation, so a driver thread
  /// may plant statistics against live traffic; the statistic itself is a
  /// relaxed atomic the algorithm treats as approximate.
  int debug_stat_of(int tid, K key) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    return find_base_node(root_.load(std::memory_order_acquire), key)
        ->stat.load(std::memory_order_relaxed);
  }
  void debug_set_stat(int tid, K key, int stat) {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* base = find_base_node(root_.load(std::memory_order_acquire), key);
    base->stat.store(stat, std::memory_order_relaxed);
  }

  /// Run the adaptation check on the base covering `key` — exactly what an
  /// update performs after replacing it. Deterministic driver for the
  /// split/join machinery when paired with debug_set_stat.
  void maybe_adapt(int tid, K key) {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* base = find_base_node(root_.load(std::memory_order_acquire), key);
    adapt_if_needed(tid, base);
  }

  // -- quiescent introspection --------------------------------------------

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> out;
    collect(root_.load(std::memory_order_acquire), out);
    return out;
  }

  size_t size_slow() const { return to_vector().size(); }

  /// Route keys respect the search-tree bounds, every leaf is strictly
  /// sorted, and every leaf key lies inside its base's route interval.
  bool check_invariants() const {
    return check_node(root_.load(std::memory_order_acquire), false, K{},
                      false, K{});
  }

 private:
  enum class Contention { kUncontended, kContended };

  // ---- traversal ---------------------------------------------------------

  static Node* find_base_node(Node* n, K key) {
    while (n->is_route())
      n = key < n->key ? n->left.load(std::memory_order_acquire)
                       : n->right.load(std::memory_order_acquire);
    return n;
  }

  static Node* find_base_stack(Node* n, K key, std::vector<Node*>& s) {
    s.clear();
    while (n->is_route()) {
      s.push_back(n);
      n = key < n->key ? n->left.load(std::memory_order_acquire)
                       : n->right.load(std::memory_order_acquire);
    }
    s.push_back(n);
    return n;
  }

  static Node* leftmost_and_stack(Node* n, std::vector<Node*>& s) {
    while (n->is_route()) {
      s.push_back(n);
      n = n->left.load(std::memory_order_acquire);
    }
    s.push_back(n);
    return n;
  }

  /// Next base in ascending key order after the stack's top base: walk up
  /// past route nodes we left rightward (or that a join invalidated), then
  /// down the left spine of the next right subtree.
  static Node* find_next_base_stack(std::vector<Node*>& s) {
    Node* base = s.back();
    s.pop_back();
    if (s.empty()) return nullptr;
    Node* t = s.back();
    if (t->left.load(std::memory_order_acquire) == base)
      return leftmost_and_stack(t->right.load(std::memory_order_acquire), s);
    const K be_greater_than = t->key;
    while (!s.empty()) {
      t = s.back();
      if (t->valid.load(std::memory_order_acquire) &&
          t->key > be_greater_than)
        return leftmost_and_stack(t->right.load(std::memory_order_acquire),
                                  s);
      s.pop_back();
    }
    return nullptr;
  }

  static Node* leftmost(Node* n) {
    while (n->is_route()) n = n->left.load(std::memory_order_acquire);
    return n;
  }
  static Node* rightmost(Node* n) {
    while (n->is_route()) n = n->right.load(std::memory_order_acquire);
    return n;
  }

  /// Parent of route node `n` by key search; not_found() when `n` is no
  /// longer reachable, nullptr when `n` is the root.
  Node* parent_of(Node* n) const {
    Node* prev = nullptr;
    Node* curr = root_.load(std::memory_order_acquire);
    while (curr != n && curr->is_route()) {
      prev = curr;
      curr = n->key < curr->key ? curr->left.load(std::memory_order_acquire)
                                : curr->right.load(std::memory_order_acquire);
    }
    return curr == n ? prev : Node::not_found();
  }

  // ---- replacement & lifecycle ------------------------------------------

  /// Swing the parent's (or root's) pointer from `b` to `newb`. The caller
  /// that wins owns retiring `b`.
  bool try_replace(Node* b, Node* newb) {
    Node* expected = b;
    if (b->parent == nullptr)
      return root_.compare_exchange_strong(expected, newb,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
    if (b->parent->left.load(std::memory_order_acquire) == b)
      return b->parent->left.compare_exchange_strong(
          expected, newb, std::memory_order_acq_rel,
          std::memory_order_acquire);
    if (b->parent->right.load(std::memory_order_acquire) == b)
      return b->parent->right.compare_exchange_strong(
          expected, newb, std::memory_order_acq_rel,
          std::memory_order_acquire);
    return false;
  }

  /// A base can be replaced when no protocol still needs it frozen: plain
  /// bases always; join participants once their join aborted (main) or
  /// aborted/finished (neighbor); range bases once the query's result is
  /// set.
  bool is_replaceable(Node* n) const {
    switch (n->type) {
      case LfcaNodeType::kNormal:
        return true;
      case LfcaNodeType::kJoinMain:
        return n->neigh2.load(std::memory_order_acquire) ==
               Node::join_aborted();
      case LfcaNodeType::kJoinNeighbor: {
        Node* m2 = n->main_node->neigh2.load(std::memory_order_acquire);
        return m2 == Node::join_aborted() || m2 == Node::join_done();
      }
      case LfcaNodeType::kRange:
        return n->storage->result.load(std::memory_order_acquire) != nullptr;
      case LfcaNodeType::kRoute:
        return false;
    }
    return false;
  }

  /// Guarantee progress past a node frozen by someone else's protocol:
  /// abort a join still securing, push a secured join through its
  /// completion phase, or help a range query collect its snapshot.
  void help_if_needed(int tid, Node* n) {
    if (n->type == LfcaNodeType::kJoinNeighbor) n = n->main_node;
    if (n->type == LfcaNodeType::kJoinMain) {
      Node* n2 = n->neigh2.load(std::memory_order_acquire);
      if (n2 == Node::preparing()) {
        Node* expected = Node::preparing();
        n->neigh2.compare_exchange_strong(expected, Node::join_aborted(),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
      } else if (Node::is_real_neigh2(n2)) {
        complete_join(tid, n);
      }
    } else if (n->type == LfcaNodeType::kRange &&
               n->storage->result.load(std::memory_order_acquire) ==
                   nullptr) {
      all_in_range(tid, n->lo, n->hi, n->storage);
    }
  }

  // Retirement split: winners of an unlink CAS retire the displaced node.
  // "node_only" is for originals whose leaf migrated into a protocol copy
  // (join drafts, range marking). Disposal — which EBR runs after the
  // grace period — also unwinds the cross-node references: a range base
  // drops its storage ref, a join-neighbor drops its ref on the join-main,
  // and a join-main's own memory is only freed once both the tree link and
  // any neighbor reference are gone (see link_refs in lfca_node.h).
  static void drop_main_ref(Node* m) {
    if (m->link_refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete m;
  }
  static void dispose_node(Node* n, bool with_data) {
    if (n->type == LfcaNodeType::kRange) n->storage->drop_ref();
    if (with_data) delete n->data;
    switch (n->type) {
      case LfcaNodeType::kJoinNeighbor:
        drop_main_ref(n->main_node);
        delete n;
        break;
      case LfcaNodeType::kJoinMain:
        drop_main_ref(n);  // node memory freed by the last dropper
        break;
      default:
        delete n;
    }
  }
  static void delete_node_only(void* p) {
    dispose_node(static_cast<Node*>(p), /*with_data=*/false);
  }
  static void delete_node_and_data(void* p) {
    dispose_node(static_cast<Node*>(p), /*with_data=*/true);
  }
  void retire_node_only(int tid, Node* n) {
    ebr_.retire(tid, n, &LfcaTree::delete_node_only);
  }
  void retire_node_and_data(int tid, Node* n) {
    ebr_.retire(tid, n, &LfcaTree::delete_node_and_data);
  }

  // ---- contention statistics & adaptation -------------------------------

  int new_stat(Node* n, Contention info) const {
    const int stat = n->stat.load(std::memory_order_relaxed);
    int range_sub = 0;
    if (n->type == LfcaNodeType::kRange &&
        n->storage->more_than_one_base.load(std::memory_order_acquire))
      range_sub = tuning_.range_contrib;
    if (info == Contention::kContended && stat <= tuning_.high_threshold)
      return stat + tuning_.cont_contrib - range_sub;
    if (info == Contention::kUncontended && stat >= tuning_.low_threshold)
      return stat - tuning_.low_cont_contrib - range_sub;
    return stat;
  }

  void adapt_if_needed(int tid, Node* b) {
    if (!is_replaceable(b)) return;
    const int stat = b->stat.load(std::memory_order_relaxed);
    if (stat > tuning_.high_threshold)
      high_contention_adaptation(tid, b);
    else if (stat < tuning_.low_threshold)
      low_contention_adaptation(tid, b);
  }

  /// Split: replace the base with a route node over two fresh halves.
  void high_contention_adaptation(int tid, Node* b) {
    if (b->data->size() < 2) return;
    const K split = b->data->split_key();
    Node* r = new Node(split, nullptr, nullptr);
    Node* left = new Node(LfcaNodeType::kNormal, b->data->split_below(split),
                          0, r);
    Node* right = new Node(LfcaNodeType::kNormal,
                           b->data->split_at_or_above(split), 0, r);
    r->left.store(left, std::memory_order_relaxed);
    r->right.store(right, std::memory_order_relaxed);
    if (try_replace(b, r)) {
      retire_node_and_data(tid, b);
      splits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      delete left->data;
      delete right->data;
      delete left;
      delete right;
      delete r;
    }
  }

  /// Join: two-phase. secure_join claims the neighborhood exclusively;
  /// complete_join (help-capable) installs the merged base and splices the
  /// parent route node out.
  void low_contention_adaptation(int tid, Node* b) {
    Node* p = b->parent;
    if (p == nullptr) return;  // root base: nothing to join with
    if (p->left.load(std::memory_order_acquire) == b) {
      Node* m = secure_join(tid, b, /*left_side=*/true);
      if (m != nullptr) complete_join(tid, m);
    } else if (p->right.load(std::memory_order_acquire) == b) {
      Node* m = secure_join(tid, b, /*left_side=*/false);
      if (m != nullptr) complete_join(tid, m);
    }
  }

  /// Phase 1 (exclusive; only the initiator runs it — helpers may abort it
  /// via neigh2 but never advance it). Claims b as join-main, drafts the
  /// adjacent base of the sibling subtree as join-neighbor, claims parent
  /// and grandparent join_ids, then publishes the merged replacement
  /// through the release-CAS of neigh2 — which is also what makes the
  /// post-publication writes to neigh1/gparent/otherb visible to helpers.
  Node* secure_join(int tid, Node* b, bool left_side) {
    Node* p = b->parent;
    Node* n0 = left_side
                   ? leftmost(p->right.load(std::memory_order_acquire))
                   : rightmost(p->left.load(std::memory_order_acquire));
    if (!is_replaceable(n0)) return nullptr;

    // Claim b: replace it with a join-main copy (shares b's leaf).
    Node* m = new Node(LfcaNodeType::kJoinMain, b->data,
                       b->stat.load(std::memory_order_relaxed), p);
    auto& side = left_side ? p->left : p->right;
    Node* expected = b;
    if (!side.compare_exchange_strong(expected, m,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      delete m;
      return nullptr;
    }
    retire_node_only(tid, b);  // leaf ownership moved to m

    // Draft the neighbor: replace n0 with a join-neighbor copy. The copy
    // holds a reference on m's node memory (dropped when the copy is
    // disposed) so m stays dereferenceable as long as the copy is.
    Node* n1 =
        new Node(LfcaNodeType::kJoinNeighbor, n0->data,
                 n0->stat.load(std::memory_order_relaxed), n0->parent);
    n1->main_node = m;
    m->link_refs.fetch_add(1, std::memory_order_relaxed);
    if (!try_replace(n0, n1)) {
      m->link_refs.fetch_sub(1, std::memory_order_relaxed);
      delete n1;
      abort_join(m, nullptr, nullptr);
      return nullptr;
    }
    retire_node_only(tid, n0);  // leaf ownership moved to n1

    // Claim the parent and grandparent for this join.
    Node* expect_id = nullptr;
    if (!p->join_id.compare_exchange_strong(expect_id, m,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      abort_join(m, nullptr, nullptr);
      return nullptr;
    }
    Node* gparent = parent_of(p);
    if (gparent == Node::not_found()) {
      abort_join(m, p, nullptr);
      return nullptr;
    }
    if (gparent != nullptr) {
      expect_id = nullptr;
      if (!gparent->join_id.compare_exchange_strong(
              expect_id, m, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        abort_join(m, p, nullptr);
        return nullptr;
      }
    }

    // Publish the completion plan. These three writes happen after m is
    // reachable but are only read behind an acquire of neigh2 == n2.
    m->gparent = gparent;
    m->otherb = (left_side ? p->right : p->left)
                    .load(std::memory_order_acquire);
    m->neigh1 = n1;
    Node* joined_parent = m->otherb == n1 ? gparent : n1->parent;
    Node* n2 = new Node(LfcaNodeType::kNormal, Leaf::join(*m->data, *n1->data),
                        n1->stat.load(std::memory_order_relaxed),
                        joined_parent);
    expected = Node::preparing();
    if (m->neigh2.compare_exchange_strong(expected, n2,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
      return m;

    // A helper aborted us between the claims and the publish.
    delete n2->data;
    delete n2;
    clear_join_ids(m, p, gparent);
    return nullptr;
  }

  /// Abort a secured-but-unpublished join and release its claims. `p` /
  /// `gp` are the route nodes whose join_id this join already holds
  /// (nullptr when unclaimed).
  void abort_join(Node* m, Node* p, Node* gp) {
    Node* expected = Node::preparing();
    m->neigh2.compare_exchange_strong(expected, Node::join_aborted(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
    clear_join_ids(m, p, gp);
  }

  void clear_join_ids(Node* m, Node* p, Node* gp) {
    if (p != nullptr) {
      Node* expected = m;
      p->join_id.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
    }
    if (gp != nullptr) {
      Node* expected = m;
      gp->join_id.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
    }
  }

  /// Phase 2 (help-capable; every CAS has a unique winner who retires the
  /// displaced node): install n2 over the drafted neighbor, invalidate the
  /// parent route node, splice it out of the grandparent, release the
  /// grandparent's claim, mark the join done.
  void complete_join(int tid, Node* m) {
    Node* n2 = m->neigh2.load(std::memory_order_acquire);
    if (!Node::is_real_neigh2(n2)) return;  // done or aborted already
    if (try_replace(m->neigh1, n2))
      retire_node_and_data(tid, m->neigh1);  // n2 carries the merged leaf
    m->parent->valid.store(false, std::memory_order_release);
    Node* replacement = m->otherb == m->neigh1 ? n2 : m->otherb;
    bool spliced = false;
    if (m->gparent == nullptr) {
      Node* expected = m->parent;
      spliced = root_.compare_exchange_strong(expected, replacement,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
    } else if (m->gparent->left.load(std::memory_order_acquire) ==
               m->parent) {
      Node* expected = m->parent;
      spliced = m->gparent->left.compare_exchange_strong(
          expected, replacement, std::memory_order_acq_rel,
          std::memory_order_acquire);
      clear_join_ids(m, nullptr, m->gparent);
    } else if (m->gparent->right.load(std::memory_order_acquire) ==
               m->parent) {
      Node* expected = m->parent;
      spliced = m->gparent->right.compare_exchange_strong(
          expected, replacement, std::memory_order_acq_rel,
          std::memory_order_acquire);
      clear_join_ids(m, nullptr, m->gparent);
    }
    if (spliced) {
      retire_node_only(tid, m->parent);  // the route node (no leaf)
      retire_node_and_data(tid, m);      // m still owns the pre-merge leaf
      joins_.fetch_add(1, std::memory_order_relaxed);
    }
    m->neigh2.store(Node::join_done(), std::memory_order_release);
  }

  // ---- updates -----------------------------------------------------------

  /// Paper Fig. 6 skeleton. `fn(leaf)` returns the replacement leaf or
  /// nullptr for a no-change operation (insert of a present key / remove of
  /// an absent one), which needs no replacement: the answer linearizes at
  /// the traversal's read of the base while it was linked.
  template <typename LeafFn>
  bool do_update(int tid, K key, LeafFn&& fn) {
    Contention info = Contention::kUncontended;
    OptEbrGuard g(ebr_, tid, reclaim_);
    for (;;) {
      Node* base =
          find_base_node(root_.load(std::memory_order_acquire), key);
      if (is_replaceable(base)) {
        const Leaf* fresh = fn(base->data);
        if (fresh == nullptr) return false;
        Node* newb = new Node(LfcaNodeType::kNormal, fresh,
                              new_stat(base, info), base->parent);
        if (try_replace(base, newb)) {
          retire_node_and_data(tid, base);
          adapt_if_needed(tid, newb);
          return true;
        }
        delete fresh;
        delete newb;
      }
      info = Contention::kContended;
      help_if_needed(tid, base);
    }
  }

  // ---- range collection (paper Fig. 9) ----------------------------------

  Node* new_range_base(Node* b, K lo, K hi, Storage* st) const {
    Node* n = new Node(LfcaNodeType::kRange, b->data,
                       b->stat.load(std::memory_order_relaxed), b->parent);
    n->lo = lo;
    n->hi = hi;
    n->storage = st;
    return n;
  }

  /// Mark every base intersecting [lo, hi] (ascending key order) with one
  /// shared storage, then CAS the concatenation of their leaves into it.
  /// With `help_s` set, continue someone else's query instead. Returns the
  /// unfiltered union of the collected leaves; the caller slices [lo, hi].
  /// Must run under the caller's EBR guard: every pointer chased here
  /// (nodes from the stack, the storage, the returned items) is kept alive
  /// by the pin, not by ownership.
  const Items* all_in_range(int tid, K lo, K hi, Storage* help_s) {
    std::vector<Node*> s, backup_s, done;
    Storage* my_s = nullptr;
    Node* b;

  find_first:
    done.clear();
    b = find_base_stack(root_.load(std::memory_order_acquire), lo, s);
    if (help_s != nullptr) {
      if (b->type != LfcaNodeType::kRange || b->storage != help_s) {
        // The query's first base was already replaced, which (by the
        // marking protocol) implies its result is set.
        return help_s->result.load(std::memory_order_acquire);
      }
      my_s = help_s;
    } else if (is_replaceable(b)) {
      if (my_s == nullptr) my_s = new Storage();  // reused across retries
      Node* n = new_range_base(b, lo, hi, my_s);
      my_s->add_ref();
      if (!try_replace(b, n)) {
        my_s->drop_ref();
        delete n;
        goto find_first;
      }
      retire_node_only(tid, b);  // leaf ownership moved to n
      s.back() = n;
      b = n;
    } else if (b->type == LfcaNodeType::kRange && b->hi >= hi) {
      // An in-flight query already covers us: help it and share its
      // snapshot (its result is set inside our window — see DESIGN.md).
      Storage* other = b->storage;
      const K other_lo = b->lo;
      const K other_hi = b->hi;
      const Items* r = all_in_range(tid, other_lo, other_hi, other);
      if (my_s != nullptr) my_s->drop_ref();  // never published
      return r;
    } else {
      help_if_needed(tid, b);
      goto find_first;
    }

    for (;;) {
      done.push_back(b);
      backup_s = s;
      if (!b->data->empty() && b->data->max_key() >= hi) break;

    find_next:
      b = find_next_base_stack(s);
      if (b == nullptr) break;
      if (const Items* r = my_s->result.load(std::memory_order_acquire);
          r != nullptr) {
        // Someone finished the query while we walked.
        if (help_s == nullptr) my_s->drop_ref();
        return r;
      }
      if (b->type == LfcaNodeType::kRange && b->storage == my_s) continue;
      if (is_replaceable(b)) {
        Node* n = new_range_base(b, lo, hi, my_s);
        my_s->add_ref();
        if (try_replace(b, n)) {
          retire_node_only(tid, b);
          s.back() = n;
          b = n;
          continue;
        }
        my_s->drop_ref();
        delete n;
        s = backup_s;
        goto find_next;
      }
      help_if_needed(tid, b);
      s = backup_s;
      goto find_next;
    }

    // Concatenate the frozen leaves (ascending bases => already sorted).
    Items* candidate = new Items();
    size_t total = 0;
    for (Node* d : done) total += d->data->size();
    candidate->reserve(total);
    for (Node* d : done)
      candidate->insert(candidate->end(), d->data->items().begin(),
                        d->data->items().end());

    Items* expected = nullptr;
    const Items* result = candidate;
    if (my_s->result.compare_exchange_strong(expected, candidate,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      if (done.size() > 1)
        my_s->more_than_one_base.store(true, std::memory_order_release);
      // Feed the adaptation: a query that had to stitch many bases argues
      // for joins; pick one of them (round-robin stand-in for rand()).
      adapt_if_needed(
          tid, done[adapt_pick_.fetch_add(1, std::memory_order_relaxed) %
                    done.size()]);
    } else {
      delete candidate;
      result = expected;  // the winner's snapshot
    }
    if (help_s == nullptr) my_s->drop_ref();  // creation ref
    return result;
  }

  // ---- quiescent helpers -------------------------------------------------

  void collect(Node* n, std::vector<std::pair<K, V>>& out) const {
    if (n->is_route()) {
      collect(n->left.load(std::memory_order_acquire), out);
      collect(n->right.load(std::memory_order_acquire), out);
      return;
    }
    out.insert(out.end(), n->data->items().begin(), n->data->items().end());
  }

  size_t count_nodes(Node* n, bool routes) const {
    if (n->is_route())
      return (routes ? 1 : 0) +
             count_nodes(n->left.load(std::memory_order_acquire), routes) +
             count_nodes(n->right.load(std::memory_order_acquire), routes);
    return routes ? 0 : 1;
  }

  // Bounds are [lo, hi): lo inclusive, hi exclusive, each optional.
  bool check_node(Node* n, bool has_lo, K lo, bool has_hi, K hi) const {
    if (n->is_route()) {
      // Left subtree keys < key <= right subtree keys, inside the bounds.
      if (has_lo && n->key <= lo) return false;
      if (has_hi && n->key >= hi) return false;
      return check_node(n->left.load(std::memory_order_acquire), has_lo, lo,
                        true, n->key) &&
             check_node(n->right.load(std::memory_order_acquire), true,
                        n->key, has_hi, hi);
    }
    const auto& items = n->data->items();
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0 && items[i - 1].first >= items[i].first) return false;
      if (has_lo && items[i].first < lo) return false;
      if (has_hi && items[i].first >= hi) return false;
    }
    return true;
  }

  void free_subtree(Node* n) {
    if (n->is_route()) {
      free_subtree(n->left.load(std::memory_order_relaxed));
      free_subtree(n->right.load(std::memory_order_relaxed));
      delete n;
      return;
    }
    dispose_node(n, /*with_data=*/true);
  }

  std::atomic<Node*> root_{nullptr};
  mutable Ebr ebr_;
  const bool reclaim_;
  const LfcaTuning tuning_;
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> joins_{0};
  std::atomic<uint64_t> adapt_pick_{0};
};

}  // namespace bref
