#pragma once
// Node layout for the LFCA tree: one tagged node struct covering the five
// roles of the SPAA'18 algorithm (route, normal base, the two join roles,
// range base), the sentinel pointers the join protocol threads through
// `neigh2`, and the shared result storage of an in-flight range query.
//
// Publication discipline (what keeps this TSan-clean without suppressions):
//   * every non-atomic field of a node is written before the CAS that links
//     the node into the tree, with three exceptions — `neigh1`, `gparent`
//     and `otherb` of a join-main node, which are written after the node is
//     reachable but strictly before the release-CAS of `neigh2` to a real
//     pointer, and only ever read after an acquire load of `neigh2`
//     observes that pointer (complete_join's precondition);
//   * everything mutable after publication (`left`, `right`, `valid`,
//     `join_id`, `neigh2`, the result storage fields) is a std::atomic.
//
// Reclamation: nodes are retired through EBR by the winner of the CAS that
// unlinks them. A node usually owns its leaf, but the join/range protocols
// create copies that *share* the original's leaf — those originals are
// retired node-only and ownership transfers to the copy (see the
// `retire_*` helpers in lfca_tree.h). Range-query result storage is
// refcounted by the range-base nodes that reference it and dies with the
// EBR-free of the last one, so a thread that reached the storage through a
// pinned node can never see it freed.

#include <atomic>
#include <cstdint>
#include <vector>

#include "ds/lfca/lfca_leaf.h"

namespace bref {

enum class LfcaNodeType : uint8_t {
  kRoute,         // internal: key + two children
  kNormal,        // base: immutable leaf + contention statistics
  kJoinMain,      // base being merged with a neighbor (phase owner)
  kJoinNeighbor,  // the neighbor drafted into a join
  kRange,         // base frozen by an in-flight range query
};

template <typename K, typename V>
struct LfcaNode;

/// Shared state of one range query. `result` flips nullptr -> joined items
/// exactly once (CAS); `more_than_one_base` feeds the contention statistics
/// (queries spanning several bases push the tree toward joins). `refs`
/// counts the initiating query (one ref, dropped when all_in_range returns)
/// plus every range-base node published with this storage (dropped when the
/// node is EBR-freed); the zero transition deletes the storage.
template <typename K, typename V>
struct LfcaResultStorage {
  using Items = std::vector<std::pair<K, V>>;

  std::atomic<Items*> result{nullptr};
  std::atomic<bool> more_than_one_base{false};
  std::atomic<int> refs{1};  // creation ref, held by the initiating query

  ~LfcaResultStorage() { delete result.load(std::memory_order_relaxed); }

  void add_ref() { refs.fetch_add(1, std::memory_order_relaxed); }
  void drop_ref() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

template <typename K, typename V>
struct LfcaNode {
  using Leaf = LfcaLeaf<K, V>;
  using Storage = LfcaResultStorage<K, V>;

  const LfcaNodeType type;

  // -- base roles (normal / join-main / join-neighbor / range) -------------
  const Leaf* data = nullptr;       // immutable items of this base
  // Contention statistic. The algorithm treats it as approximate (set at
  // node creation, read by whoever replaces the node); relaxed atomics keep
  // the test hooks that plant statistics concurrently race-free.
  std::atomic<int> stat{0};
  LfcaNode* parent = nullptr;       // owning route node (nullptr: root)

  // -- range base ----------------------------------------------------------
  K lo{};
  K hi{};
  Storage* storage = nullptr;

  // -- join-main -----------------------------------------------------------
  // neigh2 encodes the join phase: kPreparing -> (kAborted | real n2
  // pointer) -> kJoinDone. neigh1/gparent/otherb are published by the
  // release-CAS to the real pointer (see header comment).
  LfcaNode* neigh1 = nullptr;       // expected neighbor (the drafted copy)
  std::atomic<LfcaNode*> neigh2{nullptr};
  LfcaNode* gparent = nullptr;      // grandparent at securing time
  LfcaNode* otherb = nullptr;       // parent's other branch at securing time

  // -- join-neighbor -------------------------------------------------------
  LfcaNode* main_node = nullptr;    // the join-main this neighbor serves

  // Join-main node-memory lifetime: 1 for the tree link plus 1 for a
  // published join-neighbor's main_node reference. Needed because an
  // *aborted* join leaves main and neighbor linked independently — the
  // main can be replaced and reclaimed while the neighbor (whose
  // replaceability check dereferences main_node->neigh2) lives on
  // arbitrarily long. The GC of the original Java implementation made this
  // a non-problem; here the last dropper frees the node (lfca_tree.h's
  // dispose_node).
  std::atomic<int> link_refs{1};

  // -- route ---------------------------------------------------------------
  const K key{};                    // split key: left < key <= right
  std::atomic<LfcaNode*> left{nullptr};
  std::atomic<LfcaNode*> right{nullptr};
  std::atomic<bool> valid{true};    // cleared when a join splices this out
  std::atomic<LfcaNode*> join_id{nullptr};  // join currently claiming this

  /// Base-node constructor (normal / join roles / range).
  LfcaNode(LfcaNodeType t, const Leaf* leaf, int stat_, LfcaNode* parent_)
      : type(t), data(leaf), parent(parent_) {
    stat.store(stat_, std::memory_order_relaxed);
  }

  /// Route-node constructor.
  LfcaNode(K key_, LfcaNode* left_, LfcaNode* right_)
      : type(LfcaNodeType::kRoute), key(key_) {
    left.store(left_, std::memory_order_relaxed);
    right.store(right_, std::memory_order_relaxed);
  }

  bool is_route() const { return type == LfcaNodeType::kRoute; }

  // -- neigh2 phase sentinels ---------------------------------------------
  // Real nodes are at least pointer-aligned, so low small integers can
  // never collide with one.
  static LfcaNode* preparing() { return nullptr; }
  static LfcaNode* join_done() { return reinterpret_cast<LfcaNode*>(1); }
  static LfcaNode* join_aborted() { return reinterpret_cast<LfcaNode*>(2); }
  static bool is_real_neigh2(const LfcaNode* p) {
    return reinterpret_cast<uintptr_t>(p) > 2;
  }

  /// parent_of()'s "no longer in the tree" sentinel (distinct domain from
  /// neigh2; only ever compared, never dereferenced).
  static LfcaNode* not_found() { return reinterpret_cast<LfcaNode*>(1); }
};

}  // namespace bref
