#pragma once
// Immutable leaf containers for the LFCA tree (Winblad, Sagonas & Jonsson,
// "Lock-free contention adapting search trees", SPAA'18; arXiv:1709.00722).
//
// Every base node of the tree owns one LfcaLeaf: a strictly-sorted,
// *immutable* array of (key, value) pairs. Updates never mutate a leaf —
// they build a replacement (with_insert / with_remove) and swing the base
// node via CAS, so readers can binary-search or copy a leaf with no
// synchronization beyond holding a pointer to it. This is the property the
// range queries lean on: once a query has collected the leaves of the base
// nodes covering [lo, hi], their contents are fixed, and joining them is a
// plain merge of private data (contrast with bundle chains, where the
// traversal must chase timestamped references; see DESIGN.md).
//
// The SPAA paper uses immutable treaps; sorted arrays keep the same
// interface (O(log n) lookup, O(n) copy-on-write update, O(1) max, linear
// split/join) with better constants at the leaf sizes the adaptation
// policy maintains (a few hundred elements before a split triggers).

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace bref {

template <typename K, typename V>
class LfcaLeaf {
 public:
  using Item = std::pair<K, V>;

  LfcaLeaf() = default;
  explicit LfcaLeaf(std::vector<Item> items) : items_(std::move(items)) {}

  LfcaLeaf(const LfcaLeaf&) = delete;
  LfcaLeaf& operator=(const LfcaLeaf&) = delete;

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<Item>& items() const { return items_; }

  /// Largest key; only meaningful when !empty() (range collection checks
  /// emptiness before asking).
  K max_key() const {
    assert(!items_.empty());
    return items_.back().first;
  }

  bool lookup(K key, V* out = nullptr) const {
    auto it = lower_bound(key);
    if (it == items_.end() || it->first != key) return false;
    if (out != nullptr) *out = it->second;
    return true;
  }

  /// Copy-on-write insert. Returns the new leaf, or nullptr when the key is
  /// already present (set semantics: the original value is kept and no
  /// replacement is needed).
  const LfcaLeaf* with_insert(K key, V val) const {
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) return nullptr;
    std::vector<Item> next;
    next.reserve(items_.size() + 1);
    next.insert(next.end(), items_.begin(), it);
    next.emplace_back(key, val);
    next.insert(next.end(), it, items_.end());
    return new LfcaLeaf(std::move(next));
  }

  /// Copy-on-write remove. Returns the new leaf, or nullptr when the key is
  /// absent (nothing to replace).
  const LfcaLeaf* with_remove(K key) const {
    auto it = lower_bound(key);
    if (it == items_.end() || it->first != key) return nullptr;
    std::vector<Item> next;
    next.reserve(items_.size() - 1);
    next.insert(next.end(), items_.begin(), it);
    next.insert(next.end(), it + 1, items_.end());
    return new LfcaLeaf(std::move(next));
  }

  /// Median key for a split (high-contention adaptation). Requires
  /// size() >= 2; both resulting halves are non-empty.
  K split_key() const {
    assert(items_.size() >= 2);
    return items_[items_.size() / 2].first;
  }

  /// Keys strictly below / at-or-above `key` as fresh leaves.
  const LfcaLeaf* split_below(K key) const {
    auto it = lower_bound(key);
    return new LfcaLeaf(std::vector<Item>(items_.begin(), it));
  }
  const LfcaLeaf* split_at_or_above(K key) const {
    auto it = lower_bound(key);
    return new LfcaLeaf(std::vector<Item>(it, items_.end()));
  }

  /// Merge two leaves (low-contention adaptation). Key sets are disjoint —
  /// the joined bases sit on opposite sides of a route key — but a full
  /// merge keeps this correct for any pair of sorted inputs.
  static const LfcaLeaf* join(const LfcaLeaf& a, const LfcaLeaf& b) {
    std::vector<Item> merged;
    merged.reserve(a.items_.size() + b.items_.size());
    std::merge(a.items_.begin(), a.items_.end(), b.items_.begin(),
               b.items_.end(), std::back_inserter(merged),
               [](const Item& x, const Item& y) { return x.first < y.first; });
    return new LfcaLeaf(std::move(merged));
  }

 private:
  typename std::vector<Item>::const_iterator lower_bound(K key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Item& item, K k) { return item.first < k; });
  }

  std::vector<Item> items_;
};

}  // namespace bref
