#pragma once
// Bundled lazy skip list (Section 5).
//
// Base algorithm: Herlihy-Lev-Luchangco-Shavit's optimistic skip list —
// wait-free contains, per-node locks, fullyLinked/marked flags. Only the
// bottom (data) layer carries bundles; index layers keep plain pointers and
// are used by range queries merely to reach the node preceding the range
// (the paper's key optimization).
//
// Linearization points: insert = setting fullyLinked; remove = setting
// marked. Both are book-ended by bundle preparation/finalization via
// linearize_update (Algorithm 1). Unlike HLLS, remove marks the victim
// *after* acquiring and validating all predecessor locks so the
// predecessor's bundle entry can carry the linearization timestamp; lock
// acquisition remains globally ordered by descending key, so the change
// cannot deadlock.

#include <bit>
#include <cassert>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/spinlock.h"
#include "core/bundle.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class BundledSkipList {
 public:
  static constexpr int kMaxHeight = 20;

  struct Node {
    const K key;
    V val;
    const int top_level;  // levels 0..top_level are linked
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    std::atomic<Node*> next[kMaxHeight];
    Bundle<Node> bundle;  // history of next[0] only (data layer)

    Node(K k, V v, int top) : key(k), val(v), top_level(top) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
  };

  explicit BundledSkipList(uint64_t relax_threshold = 1, bool reclaim = false)
      : gts_(relax_threshold), reclaim_(reclaim) {
    head_ = new Node(key_min_sentinel<K>(), V{}, kMaxHeight - 1);
    tail_ = new Node(key_max_sentinel<K>(), V{}, kMaxHeight - 1);
    for (int l = 0; l < kMaxHeight; ++l)
      head_->next[l].store(tail_, std::memory_order_relaxed);
    head_->fully_linked.store(true, std::memory_order_relaxed);
    tail_->fully_linked.store(true, std::memory_order_relaxed);
    head_->bundle.init(tail_, 0);
    tail_->bundle.init(nullptr, 0);
    for (int i = 0; i < kMaxThreads; ++i) rngs_[i]->reseed(0x5eed + i);
  }

  ~BundledSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  BundledSkipList(const BundledSkipList&) = delete;
  BundledSkipList& operator=(const BundledSkipList&) = delete;

  /// Wait-free lookup; never touches bundles (Section 3.4).
  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* pred = head_;
    Node* found = nullptr;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (curr->key == key) {
        found = curr;
        break;
      }
    }
    if (found == nullptr ||
        !found->fully_linked.load(std::memory_order_acquire) ||
        found->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = found->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    const int top = random_level(tid);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const int lf = find(key, preds, succs);
      if (lf != -1) {
        Node* found = succs[lf];
        if (!found->marked.load(std::memory_order_acquire)) {
          // Key present (wait until its insert linearizes, as in HLLS).
          while (!found->fully_linked.load(std::memory_order_acquire))
            cpu_relax();
          return false;
        }
        continue;  // being removed; retry
      }
      LockSet locks;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                !succs[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == succs[l];
      }
      if (!valid) continue;  // locks released by LockSet dtor
      Node* fresh = new Node(key, val, top);
      for (int l = 0; l <= top; ++l)
        fresh->next[l].store(succs[l], std::memory_order_relaxed);
      linearize_update<Node>(
          gts_, tid, {{&fresh->bundle, succs[0]}, {&preds[0]->bundle, fresh}},
          [&] {
            for (int l = 0; l <= top; ++l)
              preds[l]->next[l].store(fresh, std::memory_order_release);
            fresh->fully_linked.store(true, std::memory_order_release);
          });
      return true;
    }
  }

  bool remove(int tid, K key) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const int lf = find(key, preds, succs);
      if (lf == -1) return false;
      Node* victim = succs[lf];
      if (!victim->fully_linked.load(std::memory_order_acquire) ||
          victim->top_level != lf ||
          victim->marked.load(std::memory_order_acquire))
        return false;
      LockSet locks;
      locks.acquire(victim);
      if (victim->marked.load(std::memory_order_acquire))
        return false;  // lost the race to another remover
      const int top = victim->top_level;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == victim;
      }
      if (!valid) continue;
      Node* succ0 = victim->next[0].load(std::memory_order_acquire);
      linearize_update<Node>(
          gts_, tid, {{&preds[0]->bundle, succ0}},
          [&] { victim->marked.store(true, std::memory_order_release); });
      for (int l = top; l >= 0; --l)
        preds[l]->next[l].store(victim->next[l].load(std::memory_order_acquire),
                                std::memory_order_release);
      ebr_.retire(tid, victim);
      return true;
    }
  }

  /// Linearizable range query: index layers route to the data-layer node
  /// preceding the range; from there the walk uses bundles only.
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      // Trivially empty: linearizes anywhere, so stamp "now".
      *last_rq_ts_[tid] = gts_.read();
      return 0;
    }
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      const timestamp_t ts = rq_.begin(tid, gts_);
      find(lo, preds, succs);
      Node* pred = preds[0];  // data-layer node with key < lo
      auto d = pred->bundle.dereference(ts);
      if (!d.found) continue;  // pred newer than our snapshot: restart
      Node* curr = d.ptr;
      bool ok = true;
      while (curr != tail_ && curr->key < lo) {
        auto dn = curr->bundle.dereference(ts);
        if (!dn.found) {
          ok = false;
          break;
        }
        curr = dn.ptr;
      }
      if (!ok) continue;
      out.clear();
      uint64_t in_range_visits = 0;
      while (curr != tail_ && curr->key <= hi) {
        ++in_range_visits;
        out.emplace_back(curr->key, curr->val);
        auto dn = curr->bundle.dereference(ts);
        if (!dn.found) {
          ok = false;
          break;
        }
        curr = dn.ptr;
      }
      if (!ok) continue;
      rq_.end(tid);
      // Minimality (Sections 4-5): the in-range walk touches exactly the
      // snapshot's nodes.
      *rq_in_range_visits_[tid] = in_range_visits;
      *last_rq_ts_[tid] = ts;
      return out.size();
    }
  }

  /// Nodes the calling thread's last completed range query visited inside
  /// [lo, hi]; equals the result size by the minimality property.
  uint64_t last_rq_in_range_visits(int tid) const {
    return *rq_in_range_visits_[tid];
  }

  /// Snapshot timestamp the calling thread's last completed range query
  /// linearized at (surfaced as RangeSnapshot::timestamp()).
  timestamp_t last_rq_timestamp(int tid) const { return *last_rq_ts_[tid]; }

  /// Ablation of the index-assisted entry (Section 5): reach the range by
  /// walking the data layer through bundles from the head sentinel,
  /// ignoring the index layers entirely. Returns the identical snapshot;
  /// quantifies what the index-layer routing saves (O(n) bundle hops vs
  /// O(log n) plain-pointer hops to the range).
  size_t range_query_from_start(int tid, K lo, K hi,
                                std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      // Trivially empty: linearizes anywhere, so stamp "now".
      *last_rq_ts_[tid] = gts_.read();
      return 0;
    }
    OptEbrGuard g(ebr_, tid, reclaim_);
    for (;;) {
      const timestamp_t ts = rq_.begin(tid, gts_);
      Node* curr = head_;  // min sentinel: its bundle has a ts-0 entry
      bool ok = true;
      while (curr != tail_ && curr->key < lo) {
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      if (!ok) continue;
      out.clear();
      while (curr != tail_ && curr->key <= hi) {
        out.emplace_back(curr->key, curr->val);
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      if (!ok) continue;
      rq_.end(tid);
      *last_rq_ts_[tid] = ts;
      return out.size();
    }
  }

  /// Collect [lo, hi] at the externally fixed snapshot timestamp `ts`,
  /// APPENDING to `out` — the coordinated cross-shard protocol (see
  /// bundled_list.h for the full caller contract: tracker announce AND,
  /// when reclaiming, an EBR pin, both established before `ts` was read).
  /// Index layers route to the data-layer node preceding the range as
  /// usual; if that node postdates ts, re-enter through the head
  /// sentinel's bundle rather than restarting at a newer timestamp (there
  /// is none to take).
  size_t range_query_at(int tid, timestamp_t ts, K lo, K hi,
                        std::vector<std::pair<K, V>>& out) {
    (void)tid;
    if (lo > hi) return 0;
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    const size_t base = out.size();
    for (uint64_t attempts = 0;; ++attempts) {
      // Repeated failure = ts was never announced and the cleaner pruned
      // past it (contract violation); see bundled_list.h.
      assert(attempts < (1u << 20) &&
             "range_query_at: ts not announced in rq_tracker()?");
      out.resize(base);
      find(lo, preds, succs);
      Node* pred = preds[0];  // data-layer node with key < lo
      Node* curr = pred->bundle.dereference(ts).found ? pred : head_;
      bool ok = true;
      while (curr != tail_ && curr->key < lo) {
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      while (ok && curr != tail_ && curr->key <= hi) {
        out.emplace_back(curr->key, curr->val);
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      if (ok) return out.size() - base;
    }
  }

  // -- cleaner hook -------------------------------------------------------
  size_t prune_bundles(int tid) {
    const timestamp_t oldest = rq_.oldest_active(gts_);
    size_t n = 0;
    Ebr::Guard g(ebr_, tid);
    Node* curr = head_;
    while (curr != nullptr) {
      n += curr->bundle.reclaim_older(oldest, ebr_, tid);
      curr = curr->next[0].load(std::memory_order_acquire);
    }
    return n;
  }

  // -- substrate access ---------------------------------------------------
  GlobalTimestamp& global_timestamp() { return gts_; }
  RqTracker& rq_tracker() { return rq_; }
  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }

  /// Counters for this node type's bundle-entry pool (shared by every
  /// instance over the same K/V; see core/entry_pool.h).
  EntryPoolStats entry_pool_stats() const {
    return EntryPool<BundleEntry<Node>>::instance().stats();
  }
  /// Pooled vs malloc ablation toggle; flip only while quiescent.
  static void set_entry_pooling(bool on) {
    EntryPool<BundleEntry<Node>>::instance().set_pooling_enabled(on);
  }

  // -- test-only introspection (quiescent callers) --------------------------
  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }

  size_t size_slow() const { return to_vector().size(); }

  bool check_invariants() const {
    // Sorted data layer; every level-l chain is a subsequence of level l-1;
    // bundle heads match newest level-0 pointers; bundle entry chains are
    // timestamp-ordered newest-first.
    K prev = key_min_sentinel<K>();
    for (Node* n = head_; n != tail_;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n != head_) {
        if (n->key <= prev) return false;
        prev = n->key;
      }
      if (n->bundle.newest() != n->next[0].load(std::memory_order_acquire))
        return false;
      auto entries = n->bundle.snapshot_entries();
      for (size_t i = 1; i < entries.size(); ++i)
        if (entries[i - 1].first < entries[i].first) return false;
    }
    for (int l = 1; l < kMaxHeight; ++l) {
      K p = key_min_sentinel<K>();
      for (Node* n = head_->next[l].load(std::memory_order_acquire); n != tail_;
           n = n->next[l].load(std::memory_order_acquire)) {
        if (n->key <= p && p != key_min_sentinel<K>()) return false;
        p = n->key;
        if (n->top_level < l) return false;
      }
    }
    return true;
  }

  size_t total_bundle_entries() const {
    size_t n = 0;
    for (Node* c = head_; c != nullptr;
         c = c->next[0].load(std::memory_order_acquire))
      n += c->bundle.size();
    return n;
  }

 private:
  /// RAII holder for the per-operation lock set; deduplicates repeated
  /// nodes (a pred can serve several levels) and releases on destruction.
  class LockSet {
   public:
    void acquire(Node* n) {
      if (count_ > 0 && nodes_[count_ - 1] == n) return;
      for (int i = 0; i < count_; ++i)
        if (nodes_[i] == n) return;
      n->lock.lock();
      nodes_[count_++] = n;
    }
    ~LockSet() {
      for (int i = count_ - 1; i >= 0; --i) nodes_[i]->lock.unlock();
    }

   private:
    Node* nodes_[kMaxHeight + 1];
    int count_ = 0;
  };

  int find(K key, Node** preds, Node** succs) const {
    int lf = -1;
    Node* pred = head_;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (lf == -1 && curr->key == key) lf = l;
      preds[l] = pred;
      succs[l] = curr;
    }
    return lf;
  }

  int random_level(int tid) {
    const uint64_t r = rngs_[tid]->next_u64();
    const int lvl = std::countr_zero(r | (1ull << (kMaxHeight - 1)));
    return lvl;
  }

  GlobalTimestamp gts_;
  RqTracker rq_;
  mutable Ebr ebr_;
  const bool reclaim_;
  Node* head_;
  Node* tail_;
  mutable CachePadded<Xoshiro256> rngs_[kMaxThreads];
  CachePadded<uint64_t> rq_in_range_visits_[kMaxThreads] = {};
  CachePadded<timestamp_t> last_rq_ts_[kMaxThreads] = {};
};

}  // namespace bref
