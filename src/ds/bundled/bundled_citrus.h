#pragma once
// Bundled Citrus tree (Section 6).
//
// Base algorithm: the Citrus unbalanced internal BST (Arbel & Attiya,
// PODC'14) — traversals inside wait-free RCU read-side sections,
// fine-grained per-node locks with marked-flag validation, and the classic
// copy-the-successor removal for two-children nodes, with synchronize_rcu()
// before unlinking the moved successor. Every child link is a bundled
// reference (newest pointer + bundle).
//
// Bundles changed per operation:
//   insert:              pred.child[dir] -> new, new.left -> null,
//                        new.right -> null
//   remove (0/1 child):  pred.child[dir] -> spliced child
//   remove (2 children, succParent != curr):
//                        pred.child[dir] -> copy, copy.left -> curr.left,
//                        copy.right -> curr.right,
//                        succParent.left -> succ.right
//   remove (2 children, succParent == curr, i.e. succ == curr.right):
//                        pred.child[dir] -> copy, copy.left -> curr.left,
//                        copy.right -> succ.right
//
// Paper deviation (DESIGN.md §1): the paper says the successor's parent's
// bundle is "updated to be null"; we record the physically-correct splice
// (succ.right), which equals null exactly when the successor is a leaf —
// a literal null would orphan the successor's right subtree in snapshots.
//
// Range-query entry (DESIGN.md §1): we descend from the root *via bundles*
// rather than optimistically. In a tree, an optimistic descent can be
// routed by a copy node installed after the snapshot and miss keys that
// were since removed; under a total key order (list, skip list) the paper's
// optimistic entry is safe, here it is not.

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "core/bundle.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "ds/support.h"
#include "epoch/ebr.h"
#include "rcu/urcu.h"

namespace bref {

template <typename K, typename V>
class BundledCitrus {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> child[2];   // newest pointers; 0 = left, 1 = right
    std::atomic<uint64_t> tag[2];  // bumped on every child store; guards
                                   // null-child validation against ABA
    Bundle<Node> bundles[2];

    Node(K k, V v) : key(k), val(v) {
      child[0].store(nullptr, std::memory_order_relaxed);
      child[1].store(nullptr, std::memory_order_relaxed);
      tag[0].store(0, std::memory_order_relaxed);
      tag[1].store(0, std::memory_order_relaxed);
    }
  };

  explicit BundledCitrus(uint64_t relax_threshold = 1, bool reclaim = false)
      : gts_(relax_threshold), reclaim_(reclaim) {
    root_ = new Node(key_max_sentinel<K>(), V{});
    root_->bundles[0].init(nullptr, 0);
    root_->bundles[1].init(nullptr, 0);
  }

  ~BundledCitrus() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Node* l = n->child[0].load(std::memory_order_relaxed))
        stack.push_back(l);
      if (Node* r = n->child[1].load(std::memory_order_relaxed))
        stack.push_back(r);
      delete n;
    }
  }

  BundledCitrus(const BundledCitrus&) = delete;
  BundledCitrus& operator=(const BundledCitrus&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    const SearchResult r = search(tid, key);
    if (r.curr == nullptr) return false;
    if (out != nullptr) *out = r.curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key < key_max_sentinel<K>());
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const SearchResult r = search(tid, key);
      if (r.curr != nullptr) return false;
      std::lock_guard<Spinlock> lk(r.pred->lock);
      if (r.pred->marked.load(std::memory_order_acquire) ||
          r.pred->child[r.dir].load(std::memory_order_acquire) != nullptr ||
          r.pred->tag[r.dir].load(std::memory_order_acquire) != r.tag)
        continue;
      Node* fresh = new Node(key, val);
      linearize_update<Node>(
          gts_, tid,
          {{&r.pred->bundles[r.dir], fresh},
           {&fresh->bundles[0], nullptr},
           {&fresh->bundles[1], nullptr}},
          [&] {
            r.pred->child[r.dir].store(fresh, std::memory_order_release);
            r.pred->tag[r.dir].fetch_add(1, std::memory_order_relaxed);
          });
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const SearchResult r = search(tid, key);
      if (r.curr == nullptr) return false;
      Node* pred = r.pred;
      Node* curr = r.curr;
      const int dir = r.dir;
      std::unique_lock<Spinlock> lk_pred(pred->lock);
      std::unique_lock<Spinlock> lk_curr(curr->lock);
      if (pred->marked.load(std::memory_order_acquire) ||
          curr->marked.load(std::memory_order_acquire) ||
          pred->child[dir].load(std::memory_order_acquire) != curr)
        continue;
      Node* left = curr->child[0].load(std::memory_order_acquire);
      Node* right = curr->child[1].load(std::memory_order_acquire);
      if (left == nullptr || right == nullptr) {
        remove_simple(tid, pred, curr, dir, left != nullptr ? left : right);
        return true;
      }
      if (remove_two_children(tid, pred, curr, dir, left, right)) return true;
      // Successor validation failed: release and retry.
    }
  }

  /// Linearizable range query over [lo, hi]; result sorted by key.
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      // Trivially empty: linearizes anywhere, so stamp "now".
      *last_rq_ts_[tid] = gts_.read();
      return 0;
    }
    OptEbrGuard g(ebr_, tid, reclaim_);
    std::vector<Node*> stack;
    for (;;) {
      const timestamp_t ts = rq_.begin(tid, gts_);
      bool ok = true;
      // Descend via bundles to the root of the smallest subtree covering
      // [lo, hi] in the snapshot.
      auto d = root_->bundles[0].dereference(ts);
      if (!d.found) continue;
      Node* m = d.ptr;
      while (m != nullptr && (m->key < lo || m->key > hi)) {
        const int dir = (m->key < lo) ? 1 : 0;
        auto dn = m->bundles[dir].dereference(ts);
        if (!dn.found) {
          ok = false;
          break;
        }
        m = dn.ptr;
      }
      if (!ok) continue;
      out.clear();
      if (m != nullptr) {
        stack.clear();
        stack.push_back(m);
        while (!stack.empty()) {
          Node* n = stack.back();
          stack.pop_back();
          if (n->key >= lo && n->key <= hi) out.emplace_back(n->key, n->val);
          if (n->key > lo) {  // left subtree can intersect the range
            auto dl = n->bundles[0].dereference(ts);
            if (!dl.found) {
              ok = false;
              break;
            }
            if (dl.ptr != nullptr) stack.push_back(dl.ptr);
          }
          if (n->key < hi) {  // right subtree can intersect the range
            auto dr = n->bundles[1].dereference(ts);
            if (!dr.found) {
              ok = false;
              break;
            }
            if (dr.ptr != nullptr) stack.push_back(dr.ptr);
          }
        }
      }
      if (!ok) continue;
      std::sort(out.begin(), out.end());
      rq_.end(tid);
      *last_rq_ts_[tid] = ts;
      return out.size();
    }
  }

  /// Snapshot timestamp the calling thread's last completed range query
  /// linearized at (surfaced as RangeSnapshot::timestamp()).
  timestamp_t last_rq_timestamp(int tid) const { return *last_rq_ts_[tid]; }

  /// Collect [lo, hi] at the externally fixed snapshot timestamp `ts`,
  /// APPENDING to `out` — the coordinated cross-shard protocol (see
  /// bundled_list.h for the full caller contract: tracker announce AND,
  /// when reclaiming, an EBR pin, both established before `ts` was read).
  /// The descent is bundle-only from the root sentinel, exactly like
  /// range_query — the root's timestamp-0 entries always satisfy an
  /// announced ts, so the walk cannot fail to enter.
  size_t range_query_at(int tid, timestamp_t ts, K lo, K hi,
                        std::vector<std::pair<K, V>>& out) {
    (void)tid;
    if (lo > hi) return 0;
    std::vector<Node*> stack;
    const size_t base = out.size();
    for (uint64_t attempts = 0;; ++attempts) {
      // Repeated failure = ts was never announced and the cleaner pruned
      // past it (contract violation); see bundled_list.h.
      assert(attempts < (1u << 20) &&
             "range_query_at: ts not announced in rq_tracker()?");
      out.resize(base);
      bool ok = true;
      auto d = root_->bundles[0].dereference(ts);
      if (!d.found) continue;  // defensive; ts-0 root entry satisfies ts
      Node* m = d.ptr;
      while (m != nullptr && (m->key < lo || m->key > hi)) {
        const int dir = (m->key < lo) ? 1 : 0;
        auto dn = m->bundles[dir].dereference(ts);
        if (!dn.found) {
          ok = false;
          break;
        }
        m = dn.ptr;
      }
      if (!ok) continue;
      if (m != nullptr) {
        stack.clear();
        stack.push_back(m);
        while (!stack.empty()) {
          Node* n = stack.back();
          stack.pop_back();
          if (n->key >= lo && n->key <= hi) out.emplace_back(n->key, n->val);
          if (n->key > lo) {
            auto dl = n->bundles[0].dereference(ts);
            if (!dl.found) {
              ok = false;
              break;
            }
            if (dl.ptr != nullptr) stack.push_back(dl.ptr);
          }
          if (n->key < hi) {
            auto dr = n->bundles[1].dereference(ts);
            if (!dr.found) {
              ok = false;
              break;
            }
            if (dr.ptr != nullptr) stack.push_back(dr.ptr);
          }
        }
      }
      if (!ok) continue;
      std::sort(out.begin() + static_cast<ptrdiff_t>(base), out.end());
      return out.size() - base;
    }
  }

  // -- cleaner hook -------------------------------------------------------
  size_t prune_bundles(int tid) {
    const timestamp_t oldest = rq_.oldest_active(gts_);
    size_t n = 0;
    Ebr::Guard g(ebr_, tid);
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      n += node->bundles[0].reclaim_older(oldest, ebr_, tid);
      n += node->bundles[1].reclaim_older(oldest, ebr_, tid);
      if (Node* l = node->child[0].load(std::memory_order_acquire))
        stack.push_back(l);
      if (Node* r = node->child[1].load(std::memory_order_acquire))
        stack.push_back(r);
    }
    return n;
  }

  // -- substrate access ---------------------------------------------------
  GlobalTimestamp& global_timestamp() { return gts_; }
  RqTracker& rq_tracker() { return rq_; }
  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }

  /// Counters for this node type's bundle-entry pool (shared by every
  /// instance over the same K/V; see core/entry_pool.h).
  EntryPoolStats entry_pool_stats() const {
    return EntryPool<BundleEntry<Node>>::instance().stats();
  }
  /// Pooled vs malloc ablation toggle; flip only while quiescent.
  static void set_entry_pooling(bool on) {
    EntryPool<BundleEntry<Node>>::instance().set_pooling_enabled(on);
  }

  // -- test-only introspection (quiescent callers) --------------------------
  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    in_order(root_->child[0].load(std::memory_order_acquire), v);
    return v;
  }

  size_t size_slow() const { return to_vector().size(); }

  bool check_invariants() const {
    // BST order with interval bounds; bundle heads match newest children.
    return check_subtree(root_->child[0].load(std::memory_order_acquire),
                         key_min_sentinel<K>(), key_max_sentinel<K>()) &&
           root_->bundles[0].newest() ==
               root_->child[0].load(std::memory_order_acquire);
  }

  size_t total_bundle_entries() const {
    size_t n = root_->bundles[0].size() + root_->bundles[1].size();
    std::vector<Node*> stack;
    if (Node* t = root_->child[0].load(std::memory_order_acquire))
      stack.push_back(t);
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      n += node->bundles[0].size() + node->bundles[1].size();
      if (Node* l = node->child[0].load(std::memory_order_acquire))
        stack.push_back(l);
      if (Node* r = node->child[1].load(std::memory_order_acquire))
        stack.push_back(r);
    }
    return n;
  }

 private:
  struct SearchResult {
    Node* pred;
    Node* curr;  // null if key absent
    int dir;     // curr == pred->child[dir]
    uint64_t tag;
  };

  /// Wait-free traversal inside an RCU read-side critical section. Tags are
  /// read before children so a stale (tag, child) pair always fails
  /// validation rather than silently passing.
  SearchResult search(int tid, K key) const {
    Urcu::ReadGuard rg(rcu_, tid);
    Node* pred = root_;
    int dir = 0;
    uint64_t tag = pred->tag[0].load(std::memory_order_acquire);
    Node* curr = pred->child[0].load(std::memory_order_acquire);
    while (curr != nullptr && curr->key != key) {
      const int d = (key < curr->key) ? 0 : 1;
      pred = curr;
      dir = d;
      tag = pred->tag[d].load(std::memory_order_acquire);
      curr = pred->child[d].load(std::memory_order_acquire);
    }
    return {pred, curr, dir, tag};
  }

  void remove_simple(int tid, Node* pred, Node* curr, int dir, Node* splice) {
    linearize_update<Node>(
        gts_, tid, {{&pred->bundles[dir], splice}},
        [&] {
          curr->marked.store(true, std::memory_order_release);
          pred->child[dir].store(splice, std::memory_order_release);
          pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
        });
    ebr_.retire(tid, curr);
  }

  /// Two-children removal; caller holds pred and curr locks and has
  /// validated them. Returns false if successor validation failed.
  bool remove_two_children(int tid, Node* pred, Node* curr, int dir,
                           Node* left, Node* right) {
    // Locate the successor (leftmost node of the right subtree). The walk
    // runs over newest pointers; EBR pinning keeps the nodes alive and the
    // post-lock validation catches concurrent restructuring.
    Node* succ_parent = curr;
    Node* succ = right;
    for (;;) {
      Node* l = succ->child[0].load(std::memory_order_acquire);
      if (l == nullptr) break;
      succ_parent = succ;
      succ = l;
    }
    std::unique_lock<Spinlock> lk_sp;
    if (succ_parent != curr)
      lk_sp = std::unique_lock<Spinlock>(succ_parent->lock);
    std::unique_lock<Spinlock> lk_succ(succ->lock);
    bool valid = !succ->marked.load(std::memory_order_acquire) &&
                 succ->child[0].load(std::memory_order_acquire) == nullptr;
    if (succ_parent != curr) {
      valid = valid && !succ_parent->marked.load(std::memory_order_acquire) &&
              succ_parent->child[0].load(std::memory_order_acquire) == succ;
    }
    if (!valid) return false;

    Node* succ_right = succ->child[1].load(std::memory_order_acquire);
    Node* copy = new Node(succ->key, succ->val);
    if (succ_parent == curr) {
      // succ == curr->right: the copy replaces both curr and succ.
      copy->child[0].store(left, std::memory_order_relaxed);
      copy->child[1].store(succ_right, std::memory_order_relaxed);
      linearize_update<Node>(
          gts_, tid,
          {{&pred->bundles[dir], copy},
           {&copy->bundles[0], left},
           {&copy->bundles[1], succ_right}},
          [&] {
            curr->marked.store(true, std::memory_order_release);
            succ->marked.store(true, std::memory_order_release);
            pred->child[dir].store(copy, std::memory_order_release);
            pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
          });
      rcu_.synchronize();  // readers routed through curr/succ finish
    } else {
      copy->child[0].store(left, std::memory_order_relaxed);
      copy->child[1].store(right, std::memory_order_relaxed);
      linearize_update<Node>(
          gts_, tid,
          {{&pred->bundles[dir], copy},
           {&copy->bundles[0], left},
           {&copy->bundles[1], right},
           {&succ_parent->bundles[0], succ_right}},
          [&] {
            curr->marked.store(true, std::memory_order_release);
            succ->marked.store(true, std::memory_order_release);
            pred->child[dir].store(copy, std::memory_order_release);
            pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
          });
      // Wait for readers that may be en route to the successor's old
      // position, then physically unlink it (Citrus's RCU step).
      rcu_.synchronize();
      succ_parent->child[0].store(succ_right, std::memory_order_release);
      succ_parent->tag[0].fetch_add(1, std::memory_order_relaxed);
    }
    ebr_.retire(tid, curr);
    ebr_.retire(tid, succ);
    return true;
  }

  void in_order(Node* n, std::vector<std::pair<K, V>>& v) const {
    if (n == nullptr) return;
    in_order(n->child[0].load(std::memory_order_acquire), v);
    v.emplace_back(n->key, n->val);
    in_order(n->child[1].load(std::memory_order_acquire), v);
  }

  bool check_subtree(Node* n, K lo, K hi) const {
    if (n == nullptr) return true;
    if (n->key <= lo || n->key >= hi) return false;
    Node* l = n->child[0].load(std::memory_order_acquire);
    Node* r = n->child[1].load(std::memory_order_acquire);
    if (n->bundles[0].newest() != l || n->bundles[1].newest() != r)
      return false;
    // Both child bundles' entry chains must be timestamp-ordered
    // newest-first.
    for (int c = 0; c < 2; ++c) {
      auto entries = n->bundles[c].snapshot_entries();
      for (size_t i = 1; i < entries.size(); ++i)
        if (entries[i - 1].first < entries[i].first) return false;
    }
    return check_subtree(l, lo, n->key) && check_subtree(r, n->key, hi);
  }

  GlobalTimestamp gts_;
  RqTracker rq_;
  mutable Ebr ebr_;
  mutable Urcu rcu_;
  const bool reclaim_;
  Node* root_;
  CachePadded<timestamp_t> last_rq_ts_[kMaxThreads] = {};
};

}  // namespace bref
