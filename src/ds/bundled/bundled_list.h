#pragma once
// Bundled lazy sorted linked list (Section 4).
//
// Base algorithm: Heller et al.'s lazy list — wait-free contains, per-node
// spinlocks for updates, logical deletion via a marked flag. Bundling
// replaces the next pointer with a bundled reference: the newest pointer
// (`next`) plus a Bundle recording the pointer's history (Listing 2). Range
// queries fix a snapshot timestamp, traverse optimistically (newest
// pointers) up to the node preceding the range, then walk exclusively
// through bundles so they visit exactly the nodes belonging to the snapshot
// (the minimality property).
//
// Memory: physically removed nodes are parked in EBR; with reclamation
// enabled (`reclaim=true`) they are freed after a grace period, otherwise
// at destruction (the paper's leaky benchmark mode).

#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "core/bundle.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class BundledList {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> next{nullptr};  // newestNextPtr (Listing 2)
    Bundle<Node> bundle;               // nextPtrBundle

    Node(K k, V v) : key(k), val(v) {}
  };

  explicit BundledList(uint64_t relax_threshold = 1, bool reclaim = false)
      : gts_(relax_threshold), reclaim_(reclaim) {
    head_ = new Node(key_min_sentinel<K>(), V{});
    tail_ = new Node(key_max_sentinel<K>(), V{});
    head_->next.store(tail_, std::memory_order_relaxed);
    head_->bundle.init(tail_, 0);  // Figure 1: initial link at timestamp 0
    tail_->bundle.init(nullptr, 0);
  }

  ~BundledList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
    // Removed nodes parked in EBR bags are freed by ~Ebr().
  }

  BundledList(const BundledList&) = delete;
  BundledList& operator=(const BundledList&) = delete;

  /// Wait-free; identical to the unbundled lazy list (Section 3.4).
  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < key) curr = curr->next.load(std::memory_order_acquire);
    if (curr->key != key || curr->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = curr->val;
    return true;
  }

  /// Algorithm 4. Only the predecessor is locked (the lazy-list
  /// optimization the pending-entry wait exists to support).
  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      auto [pred, curr] = traverse(key);
      std::lock_guard<Spinlock> lk(pred->lock);
      if (!validate_links(pred, curr)) continue;
      if (curr->key == key) return false;
      Node* fresh = new Node(key, val);
      fresh->next.store(curr, std::memory_order_relaxed);
      // Two bundles change: the new node's (-> curr) and the predecessor's
      // (-> fresh); the linearization point is swinging pred->next.
      linearize_update<Node>(
          gts_, tid, {{&fresh->bundle, curr}, {&pred->bundle, fresh}},
          [&] { pred->next.store(fresh, std::memory_order_release); });
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      auto [pred, curr] = traverse(key);
      if (curr->key != key) return false;
      std::scoped_lock lk(pred->lock, curr->lock);
      if (!validate_links(pred, curr) ||
          curr->marked.load(std::memory_order_acquire))
        continue;
      Node* succ = curr->next.load(std::memory_order_acquire);
      // Linearization is the logical delete; pred's bundle records the
      // post-removal link with the same timestamp because the physical
      // unlink shares this critical section (Section 4). The removed
      // node's own bundle is left untouched.
      linearize_update<Node>(
          gts_, tid, {{&pred->bundle, succ}},
          [&] { curr->marked.store(true, std::memory_order_release); });
      pred->next.store(succ, std::memory_order_release);
      ebr_.retire(tid, curr);
      return true;
    }
  }

  /// Linearizable range query (Algorithm 3): inclusive [lo, hi].
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      // Trivially empty: linearizes anywhere, so stamp "now".
      *last_rq_ts_[tid] = gts_.read();
      return 0;
    }
    OptEbrGuard g(ebr_, tid, reclaim_);
    for (;;) {
      const timestamp_t ts = rq_.begin(tid, gts_);
      // Phase 1: optimistic traversal (newest pointers) to the node
      // preceding the range.
      Node* pred = head_;
      {
        Node* c = pred->next.load(std::memory_order_acquire);
        while (c->key < lo) {
          pred = c;
          c = c->next.load(std::memory_order_acquire);
        }
      }
      // Phase 2: enter the range strictly through bundles. If pred was
      // inserted after our snapshot, no entry satisfies ts -> restart.
      auto d = pred->bundle.dereference(ts);
      if (!d.found) continue;
      Node* curr = d.ptr;
      bool ok = true;
      while (curr != tail_ && curr->key < lo) {
        auto dn = curr->bundle.dereference(ts);
        if (!dn.found) {
          ok = false;
          break;
        }
        curr = dn.ptr;
      }
      if (!ok) continue;
      // Phase 3: collect the snapshot — exactly the nodes in range at ts.
      out.clear();
      uint64_t in_range_visits = 0;
      while (curr != tail_ && curr->key <= hi) {
        ++in_range_visits;
        out.emplace_back(curr->key, curr->val);
        auto dn = curr->bundle.dereference(ts);
        if (!dn.found) {
          ok = false;
          break;
        }
        curr = dn.ptr;
      }
      if (!ok) continue;
      rq_.end(tid);
      // Minimality (Section 4): within the range, the walk touches exactly
      // the snapshot's nodes — never multiple versions, never restarts.
      *rq_in_range_visits_[tid] = in_range_visits;
      *last_rq_ts_[tid] = ts;
      return out.size();
    }
  }

  /// Nodes the calling thread's last completed range query visited inside
  /// [lo, hi]; equals the result size by the minimality property (tested in
  /// tests/test_properties.cpp).
  uint64_t last_rq_in_range_visits(int tid) const {
    return *rq_in_range_visits_[tid];
  }

  /// Snapshot timestamp the calling thread's last completed range query
  /// linearized at (surfaced as RangeSnapshot::timestamp()).
  timestamp_t last_rq_timestamp(int tid) const { return *last_rq_ts_[tid]; }

  /// Ablation of the paper's entry-path optimization (Section 4): enter the
  /// range walking strictly through bundles from the head sentinel instead
  /// of the optimistic newest-pointer traversal. Returns the identical
  /// snapshot; every pre-range hop costs a bundle dereference, which is
  /// what bench/ablation_entry_path quantifies.
  size_t range_query_from_start(int tid, K lo, K hi,
                                std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) {
      // Trivially empty: linearizes anywhere, so stamp "now".
      *last_rq_ts_[tid] = gts_.read();
      return 0;
    }
    OptEbrGuard g(ebr_, tid, reclaim_);
    for (;;) {
      const timestamp_t ts = rq_.begin(tid, gts_);
      Node* curr = head_;  // min sentinel: its bundle has a ts-0 entry
      bool ok = true;
      while (curr != tail_ && curr->key < lo) {
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      if (!ok) continue;
      out.clear();
      while (curr != tail_ && curr->key <= hi) {
        out.emplace_back(curr->key, curr->val);
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      if (!ok) continue;
      rq_.end(tid);
      *last_rq_ts_[tid] = ts;
      return out.size();
    }
  }

  /// Collect [lo, hi] at the externally fixed snapshot timestamp `ts`,
  /// APPENDING to `out` — the shard layer's coordinated cross-shard range
  /// query (src/shard/sharded_set.h; capability: coordinated_rq). Caller
  /// preconditions, both established BEFORE `ts` was read off the shared
  /// clock: (1) an announce of `ts` in rq_tracker() — it fences the
  /// cleaner (any prune concurrent with it used a bound <= ts, so every
  /// node live at ts keeps an entry satisfying ts); (2) when reclaiming,
  /// an EBR pin on ebr() — a node removed after ts was then retired while
  /// the caller was pinned, so the walk cannot touch freed memory (the
  /// single-structure range_query gets both orderings by pinning and
  /// announcing before it reads the clock). Unlike range_query there is
  /// no newer timestamp to restart to: if the optimistic pre-seek lands
  /// on a pred inserted after ts, we re-enter through the head sentinel's
  /// bundle (whose timestamp-0 entry always satisfies an announced ts)
  /// instead.
  size_t range_query_at(int tid, timestamp_t ts, K lo, K hi,
                        std::vector<std::pair<K, V>>& out) {
    (void)tid;
    if (lo > hi) return 0;
    const size_t base = out.size();
    for (uint64_t attempts = 0;; ++attempts) {
      // Under the announce contract a restart can only come from the
      // bounded pre-seek race, never repeatedly: a walk that keeps
      // failing means the caller's ts was never announced and the
      // cleaner pruned past it — a contract violation, not a state to
      // spin in silently.
      assert(attempts < (1u << 20) &&
             "range_query_at: ts not announced in rq_tracker()?");
      out.resize(base);
      // Optimistic entry (Alg. 3 phase 1) to the node preceding the range.
      Node* pred = head_;
      {
        Node* c = pred->next.load(std::memory_order_acquire);
        while (c->key < lo) {
          pred = c;
          c = c->next.load(std::memory_order_acquire);
        }
      }
      // Phase 2 at the fixed ts; fall back to the sentinel when pred
      // postdates the snapshot.
      Node* curr = pred->bundle.dereference(ts).found ? pred : head_;
      bool ok = true;
      while (curr != tail_ && curr->key < lo) {
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      while (ok && curr != tail_ && curr->key <= hi) {
        out.emplace_back(curr->key, curr->val);
        auto d = curr->bundle.dereference(ts);
        if (!d.found) {
          ok = false;
          break;
        }
        curr = d.ptr;
      }
      // ok is an invariant given the announce contract (see above); the
      // retry is defensive, not a livelock risk under the protocol.
      if (ok) return out.size() - base;
    }
  }

  // -- cleaner hook (supplementary B) ------------------------------------
  /// Prune bundle entries no active range query can need. Returns the
  /// number of entries retired. `tid` must be a dedicated cleaner slot.
  size_t prune_bundles(int tid) {
    const timestamp_t oldest = rq_.oldest_active(gts_);
    size_t n = 0;
    Ebr::Guard g(ebr_, tid);
    Node* curr = head_;
    while (curr != nullptr) {
      n += curr->bundle.reclaim_older(oldest, ebr_, tid);
      curr = curr->next.load(std::memory_order_acquire);
    }
    return n;
  }

  // -- substrate access (benches, cleaner thread) -------------------------
  GlobalTimestamp& global_timestamp() { return gts_; }
  RqTracker& rq_tracker() { return rq_; }
  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }

  /// Counters for this node type's bundle-entry pool (shared by every
  /// instance over the same K/V; see core/entry_pool.h).
  EntryPoolStats entry_pool_stats() const {
    return EntryPool<BundleEntry<Node>>::instance().stats();
  }
  /// Pooled vs malloc ablation toggle; flip only while quiescent.
  static void set_entry_pooling(bool on) {
    EntryPool<BundleEntry<Node>>::instance().set_pooling_enabled(on);
  }

  // -- test-only introspection (quiescent callers) ------------------------
  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }

  size_t size_slow() const { return to_vector().size(); }

  /// Structural invariants: strictly sorted live chain, bundle heads match
  /// newest pointers, bundle timestamps strictly ordered.
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_; n != tail_;
         n = n->next.load(std::memory_order_acquire)) {
      if (n != head_ && n->key <= prev) return false;
      if (n != head_) prev = n->key;
      if (n->bundle.newest() != n->next.load(std::memory_order_acquire))
        return false;
      auto entries = n->bundle.snapshot_entries();
      for (size_t i = 1; i < entries.size(); ++i)
        if (entries[i - 1].first < entries[i].first) return false;
    }
    return true;
  }

  size_t total_bundle_entries() const {
    size_t n = 0;
    for (Node* c = head_; c != nullptr;
         c = c->next.load(std::memory_order_acquire))
      n += c->bundle.size();
    return n;
  }

 private:
  std::pair<Node*, Node*> traverse(K key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }

  bool validate_links(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  GlobalTimestamp gts_;
  RqTracker rq_;
  mutable Ebr ebr_;
  const bool reclaim_;
  Node* head_;
  Node* tail_;
  CachePadded<uint64_t> rq_in_range_visits_[kMaxThreads] = {};
  CachePadded<timestamp_t> last_rq_ts_[kMaxThreads] = {};
};

}  // namespace bref
