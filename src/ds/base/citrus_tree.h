#pragma once
// Citrus tree (Arbel & Attiya, PODC'14): RCU-protected internal BST with
// fine-grained locks, here with an *Unsafe* range query (plain DFS over
// current pointers, no consistency checks) — the paper's performance
// reference for the tree experiments.

#include <algorithm>
#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "ds/support.h"
#include "epoch/ebr.h"
#include "rcu/urcu.h"

namespace bref {

template <typename K, typename V>
class CitrusTreeUnsafe {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> child[2];
    std::atomic<uint64_t> tag[2];
    Node(K k, V v) : key(k), val(v) {
      child[0].store(nullptr, std::memory_order_relaxed);
      child[1].store(nullptr, std::memory_order_relaxed);
      tag[0].store(0, std::memory_order_relaxed);
      tag[1].store(0, std::memory_order_relaxed);
    }
  };

  explicit CitrusTreeUnsafe(bool reclaim = false) : reclaim_(reclaim) {
    root_ = new Node(key_max_sentinel<K>(), V{});
  }

  ~CitrusTreeUnsafe() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Node* l = n->child[0].load(std::memory_order_relaxed))
        stack.push_back(l);
      if (Node* r = n->child[1].load(std::memory_order_relaxed))
        stack.push_back(r);
      delete n;
    }
  }

  CitrusTreeUnsafe(const CitrusTreeUnsafe&) = delete;
  CitrusTreeUnsafe& operator=(const CitrusTreeUnsafe&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    const SearchResult r = search(tid, key);
    if (r.curr == nullptr) return false;
    if (out != nullptr) *out = r.curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key < key_max_sentinel<K>());
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const SearchResult r = search(tid, key);
      if (r.curr != nullptr) return false;
      std::lock_guard<Spinlock> lk(r.pred->lock);
      if (r.pred->marked.load(std::memory_order_acquire) ||
          r.pred->child[r.dir].load(std::memory_order_acquire) != nullptr ||
          r.pred->tag[r.dir].load(std::memory_order_acquire) != r.tag)
        continue;
      Node* fresh = new Node(key, val);
      r.pred->child[r.dir].store(fresh, std::memory_order_release);
      r.pred->tag[r.dir].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const SearchResult r = search(tid, key);
      if (r.curr == nullptr) return false;
      Node* pred = r.pred;
      Node* curr = r.curr;
      const int dir = r.dir;
      std::unique_lock<Spinlock> lk_pred(pred->lock);
      std::unique_lock<Spinlock> lk_curr(curr->lock);
      if (pred->marked.load(std::memory_order_acquire) ||
          curr->marked.load(std::memory_order_acquire) ||
          pred->child[dir].load(std::memory_order_acquire) != curr)
        continue;
      Node* left = curr->child[0].load(std::memory_order_acquire);
      Node* right = curr->child[1].load(std::memory_order_acquire);
      if (left == nullptr || right == nullptr) {
        Node* splice = left != nullptr ? left : right;
        curr->marked.store(true, std::memory_order_release);
        pred->child[dir].store(splice, std::memory_order_release);
        pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
        ebr_.retire(tid, curr);
        return true;
      }
      if (remove_two_children(tid, pred, curr, dir, left, right)) return true;
    }
  }

  /// NOT linearizable (Unsafe reference): DFS over current pointers.
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    OptEbrGuard g(ebr_, tid, reclaim_);
    Urcu::ReadGuard rg(rcu_, tid);
    std::vector<Node*> stack;
    if (Node* t = root_->child[0].load(std::memory_order_acquire))
      stack.push_back(t);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->key >= lo && n->key <= hi) out.emplace_back(n->key, n->val);
      if (n->key > lo)
        if (Node* l = n->child[0].load(std::memory_order_acquire))
          stack.push_back(l);
      if (n->key < hi)
        if (Node* r = n->child[1].load(std::memory_order_acquire))
          stack.push_back(r);
    }
    std::sort(out.begin(), out.end());
    return out.size();
  }

  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    in_order(root_->child[0].load(std::memory_order_acquire), v);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    return check_subtree(root_->child[0].load(std::memory_order_acquire),
                         key_min_sentinel<K>(), key_max_sentinel<K>());
  }

 private:
  struct SearchResult {
    Node* pred;
    Node* curr;
    int dir;
    uint64_t tag;
  };

  SearchResult search(int tid, K key) const {
    Urcu::ReadGuard rg(rcu_, tid);
    Node* pred = root_;
    int dir = 0;
    uint64_t tag = pred->tag[0].load(std::memory_order_acquire);
    Node* curr = pred->child[0].load(std::memory_order_acquire);
    while (curr != nullptr && curr->key != key) {
      const int d = (key < curr->key) ? 0 : 1;
      pred = curr;
      dir = d;
      tag = pred->tag[d].load(std::memory_order_acquire);
      curr = pred->child[d].load(std::memory_order_acquire);
    }
    return {pred, curr, dir, tag};
  }

  bool remove_two_children(int tid, Node* pred, Node* curr, int dir,
                           Node* left, Node* right) {
    Node* succ_parent = curr;
    Node* succ = right;
    for (;;) {
      Node* l = succ->child[0].load(std::memory_order_acquire);
      if (l == nullptr) break;
      succ_parent = succ;
      succ = l;
    }
    std::unique_lock<Spinlock> lk_sp;
    if (succ_parent != curr)
      lk_sp = std::unique_lock<Spinlock>(succ_parent->lock);
    std::unique_lock<Spinlock> lk_succ(succ->lock);
    bool valid = !succ->marked.load(std::memory_order_acquire) &&
                 succ->child[0].load(std::memory_order_acquire) == nullptr;
    if (succ_parent != curr) {
      valid = valid && !succ_parent->marked.load(std::memory_order_acquire) &&
              succ_parent->child[0].load(std::memory_order_acquire) == succ;
    }
    if (!valid) return false;

    Node* succ_right = succ->child[1].load(std::memory_order_acquire);
    Node* copy = new Node(succ->key, succ->val);
    if (succ_parent == curr) {
      copy->child[0].store(left, std::memory_order_relaxed);
      copy->child[1].store(succ_right, std::memory_order_relaxed);
      curr->marked.store(true, std::memory_order_release);
      succ->marked.store(true, std::memory_order_release);
      pred->child[dir].store(copy, std::memory_order_release);
      pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
      rcu_.synchronize();
    } else {
      copy->child[0].store(left, std::memory_order_relaxed);
      copy->child[1].store(right, std::memory_order_relaxed);
      curr->marked.store(true, std::memory_order_release);
      succ->marked.store(true, std::memory_order_release);
      pred->child[dir].store(copy, std::memory_order_release);
      pred->tag[dir].fetch_add(1, std::memory_order_relaxed);
      rcu_.synchronize();
      succ_parent->child[0].store(succ_right, std::memory_order_release);
      succ_parent->tag[0].fetch_add(1, std::memory_order_relaxed);
    }
    ebr_.retire(tid, curr);
    ebr_.retire(tid, succ);
    return true;
  }

  void in_order(Node* n, std::vector<std::pair<K, V>>& v) const {
    if (n == nullptr) return;
    in_order(n->child[0].load(std::memory_order_acquire), v);
    v.emplace_back(n->key, n->val);
    in_order(n->child[1].load(std::memory_order_acquire), v);
  }

  bool check_subtree(Node* n, K lo, K hi) const {
    if (n == nullptr) return true;
    if (n->key <= lo || n->key >= hi) return false;
    return check_subtree(n->child[0].load(std::memory_order_acquire), lo,
                         n->key) &&
           check_subtree(n->child[1].load(std::memory_order_acquire), n->key,
                         hi);
  }

  mutable Ebr ebr_;
  mutable Urcu rcu_;
  const bool reclaim_;
  Node* root_;
};

}  // namespace bref
