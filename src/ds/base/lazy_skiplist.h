#pragma once
// Optimistic lazy skip list (Herlihy-Lev-Luchangco-Shavit, SIROCCO'07) with
// an *Unsafe* range query (no consistency checks) — the paper's performance
// reference for the skip list experiments.

#include <bit>
#include <cassert>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/spinlock.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class LazySkipListUnsafe {
 public:
  static constexpr int kMaxHeight = 20;

  struct Node {
    const K key;
    V val;
    const int top_level;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    std::atomic<Node*> next[kMaxHeight];
    Node(K k, V v, int top) : key(k), val(v), top_level(top) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
  };

  explicit LazySkipListUnsafe(bool reclaim = false) : reclaim_(reclaim) {
    head_ = new Node(key_min_sentinel<K>(), V{}, kMaxHeight - 1);
    tail_ = new Node(key_max_sentinel<K>(), V{}, kMaxHeight - 1);
    for (int l = 0; l < kMaxHeight; ++l)
      head_->next[l].store(tail_, std::memory_order_relaxed);
    head_->fully_linked.store(true, std::memory_order_relaxed);
    tail_->fully_linked.store(true, std::memory_order_relaxed);
    for (int i = 0; i < kMaxThreads; ++i) rngs_[i]->reseed(0xf00d + i);
  }

  ~LazySkipListUnsafe() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  LazySkipListUnsafe(const LazySkipListUnsafe&) = delete;
  LazySkipListUnsafe& operator=(const LazySkipListUnsafe&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* pred = head_;
    Node* found = nullptr;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (curr->key == key) {
        found = curr;
        break;
      }
    }
    if (found == nullptr ||
        !found->fully_linked.load(std::memory_order_acquire) ||
        found->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = found->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    const int top = random_level(tid);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const int lf = find(key, preds, succs);
      if (lf != -1) {
        Node* found = succs[lf];
        if (!found->marked.load(std::memory_order_acquire)) {
          while (!found->fully_linked.load(std::memory_order_acquire))
            cpu_relax();
          return false;
        }
        continue;
      }
      LockSet locks;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                !succs[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == succs[l];
      }
      if (!valid) continue;
      Node* fresh = new Node(key, val, top);
      for (int l = 0; l <= top; ++l)
        fresh->next[l].store(succs[l], std::memory_order_relaxed);
      for (int l = 0; l <= top; ++l)
        preds[l]->next[l].store(fresh, std::memory_order_release);
      fresh->fully_linked.store(true, std::memory_order_release);
      return true;
    }
  }

  bool remove(int tid, K key) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    Node* victim = nullptr;
    bool is_marked = false;
    int top = -1;
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      const int lf = find(key, preds, succs);
      if (lf != -1) victim = succs[lf];
      if (!is_marked) {
        if (lf == -1 ||
            !victim->fully_linked.load(std::memory_order_acquire) ||
            victim->top_level != lf ||
            victim->marked.load(std::memory_order_acquire))
          return false;
        top = victim->top_level;
        victim->lock.lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->lock.unlock();
          return false;
        }
        victim->marked.store(true, std::memory_order_release);  // linearize
        is_marked = true;
      }
      {
        LockSet locks;
        bool valid = true;
        for (int l = 0; l <= top && valid; ++l) {
          locks.acquire(preds[l]);
          valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                  preds[l]->next[l].load(std::memory_order_acquire) == victim;
        }
        if (!valid) continue;
        for (int l = top; l >= 0; --l)
          preds[l]->next[l].store(
              victim->next[l].load(std::memory_order_acquire),
              std::memory_order_release);
        victim->lock.unlock();
        ebr_.retire(tid, victim);
        return true;
      }
    }
  }

  /// NOT linearizable (Unsafe reference).
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    find(lo, preds, succs);
    Node* curr = succs[0];
    while (curr != tail_ && curr->key <= hi) {
      if (!curr->marked.load(std::memory_order_acquire) &&
          curr->fully_linked.load(std::memory_order_acquire))
        out.emplace_back(curr->key, curr->val);
      curr = curr->next[0].load(std::memory_order_acquire);
    }
    return out.size();
  }

  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  class LockSet {
   public:
    void acquire(Node* n) {
      for (int i = 0; i < count_; ++i)
        if (nodes_[i] == n) return;
      n->lock.lock();
      nodes_[count_++] = n;
    }
    ~LockSet() {
      for (int i = count_ - 1; i >= 0; --i) nodes_[i]->lock.unlock();
    }

   private:
    Node* nodes_[kMaxHeight + 1];
    int count_ = 0;
  };

  int find(K key, Node** preds, Node** succs) const {
    int lf = -1;
    Node* pred = head_;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (lf == -1 && curr->key == key) lf = l;
      preds[l] = pred;
      succs[l] = curr;
    }
    return lf;
  }

  int random_level(int tid) {
    const uint64_t r = rngs_[tid]->next_u64();
    return std::countr_zero(r | (1ull << (kMaxHeight - 1)));
  }

  mutable Ebr ebr_;
  const bool reclaim_;
  Node* head_;
  Node* tail_;
  mutable CachePadded<Xoshiro256> rngs_[kMaxThreads];
};

}  // namespace bref
