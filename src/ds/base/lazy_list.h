#pragma once
// Lazy sorted linked list (Heller et al., OPODIS'05) with an *Unsafe* range
// query: the RQ traverses current pointers with no consistency checks. This
// is the paper's performance reference — primitive operations are
// linearizable, range queries are not.

#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "ds/support.h"
#include "epoch/ebr.h"

namespace bref {

template <typename K, typename V>
class LazyListUnsafe {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> next{nullptr};
    Node(K k, V v) : key(k), val(v) {}
  };

  explicit LazyListUnsafe(bool reclaim = false) : reclaim_(reclaim) {
    head_ = new Node(key_min_sentinel<K>(), V{});
    tail_ = new Node(key_max_sentinel<K>(), V{});
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~LazyListUnsafe() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  LazyListUnsafe(const LazyListUnsafe&) = delete;
  LazyListUnsafe& operator=(const LazyListUnsafe&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < key) curr = curr->next.load(std::memory_order_acquire);
    if (curr->key != key || curr->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      auto [pred, curr] = traverse(key);
      std::lock_guard<Spinlock> lk(pred->lock);
      if (!validate(pred, curr)) continue;
      if (curr->key == key) return false;
      Node* fresh = new Node(key, val);
      fresh->next.store(curr, std::memory_order_relaxed);
      pred->next.store(fresh, std::memory_order_release);
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      OptEbrGuard g(ebr_, tid, reclaim_);
      auto [pred, curr] = traverse(key);
      if (curr->key != key) return false;
      std::scoped_lock lk(pred->lock, curr->lock);
      if (!validate(pred, curr) ||
          curr->marked.load(std::memory_order_acquire))
        continue;
      curr->marked.store(true, std::memory_order_release);  // linearization
      pred->next.store(curr->next.load(std::memory_order_acquire),
                       std::memory_order_release);
      ebr_.retire(tid, curr);
      return true;
    }
  }

  /// NOT linearizable: no snapshot guarantee whatsoever (paper's Unsafe).
  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    OptEbrGuard g(ebr_, tid, reclaim_);
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < lo) curr = curr->next.load(std::memory_order_acquire);
    while (curr != tail_ && curr->key <= hi) {
      if (!curr->marked.load(std::memory_order_acquire))
        out.emplace_back(curr->key, curr->val);
      curr = curr->next.load(std::memory_order_acquire);
    }
    return out.size();
  }

  Ebr& ebr() { return ebr_; }
  bool reclaim_enabled() const { return reclaim_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  std::pair<Node*, Node*> traverse(K key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }
  bool validate(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  mutable Ebr ebr_;
  const bool reclaim_;
  Node* head_;
  Node* tail_;
};

}  // namespace bref
