#pragma once
// Snapcollector-style lazy skip list — the collector technique (see
// collector.h / sc_list.h) applied to the Herlihy-Lev-Luchangco-Shavit
// optimistic skip list, extending the paper's list-only Snapcollector
// baseline to a logarithmic structure. The point-operation algorithm is
// the standard HLLS one (wait-free contains, per-node locks,
// fullyLinked/marked flags); updates execute their linearization and
// report inside the collector's shared update gate, and range queries
// publish/collect/seal/reconstruct exactly as in the list.
//
// Reclamation: none (leaky), as in sc_list; reports may reference
// physically removed nodes, which the graveyard keeps valid.

#include <bit>
#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "ds/snapcollector/collector.h"
#include "ds/support.h"

namespace bref {

template <typename K, typename V>
class SnapCollectorSkipList {
 public:
  static constexpr int kMaxHeight = 20;

  struct Node {
    const K key;
    V val;
    const int top_level;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    std::atomic<Node*> next[kMaxHeight];

    Node(K k, V v, int top) : key(k), val(v), top_level(top) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
  };

  SnapCollectorSkipList() {
    head_ = new Node(key_min_sentinel<K>(), V{}, kMaxHeight - 1);
    tail_ = new Node(key_max_sentinel<K>(), V{}, kMaxHeight - 1);
    for (int l = 0; l < kMaxHeight; ++l)
      head_->next[l].store(tail_, std::memory_order_relaxed);
    head_->fully_linked.store(true, std::memory_order_relaxed);
    tail_->fully_linked.store(true, std::memory_order_relaxed);
    for (int i = 0; i < kMaxThreads; ++i) rngs_[i]->reseed(0xc0ffee + i);
  }

  ~SnapCollectorSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
    for (Node* n : graveyard_) delete n;
  }

  SnapCollectorSkipList(const SnapCollectorSkipList&) = delete;
  SnapCollectorSkipList& operator=(const SnapCollectorSkipList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    (void)tid;
    Node* pred = head_;
    Node* found = nullptr;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (curr->key == key) {
        found = curr;
        break;
      }
    }
    if (found == nullptr ||
        !found->fully_linked.load(std::memory_order_acquire) ||
        found->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = found->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    const int top = random_level(tid);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      const int lf = find(key, preds, succs);
      if (lf != -1) {
        Node* found = succs[lf];
        if (!found->marked.load(std::memory_order_acquire)) {
          while (!found->fully_linked.load(std::memory_order_acquire))
            cpu_relax();
          return false;
        }
        continue;
      }
      LockSet locks;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                !succs[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == succs[l];
      }
      if (!valid) continue;
      Node* fresh = new Node(key, val, top);
      for (int l = 0; l <= top; ++l)
        fresh->next[l].store(succs[l], std::memory_order_relaxed);
      {
        typename Core::UpdateWindow w(core_);
        for (int l = 0; l <= top; ++l)
          preds[l]->next[l].store(fresh, std::memory_order_release);
        // Linearization: fullyLinked, inside the report window.
        fresh->fully_linked.store(true, std::memory_order_release);
        core_.report(fresh, key, /*is_insert=*/true);
      }
      return true;
    }
  }

  bool remove(int tid, K key) {
    (void)tid;
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      const int lf = find(key, preds, succs);
      if (lf == -1) return false;
      Node* victim = succs[lf];
      if (!victim->fully_linked.load(std::memory_order_acquire) ||
          victim->top_level != lf ||
          victim->marked.load(std::memory_order_acquire))
        return false;
      LockSet locks;
      locks.acquire(victim);
      if (victim->marked.load(std::memory_order_acquire)) return false;
      const int top = victim->top_level;
      bool valid = true;
      for (int l = 0; l <= top && valid; ++l) {
        locks.acquire(preds[l]);
        valid = !preds[l]->marked.load(std::memory_order_acquire) &&
                preds[l]->next[l].load(std::memory_order_acquire) == victim;
      }
      if (!valid) continue;
      {
        typename Core::UpdateWindow w(core_);
        victim->marked.store(true, std::memory_order_release);  // linearize
        core_.report(victim, key, /*is_insert=*/false);
      }
      for (int l = top; l >= 0; --l)
        preds[l]->next[l].store(
            victim->next[l].load(std::memory_order_acquire),
            std::memory_order_release);
      {
        std::lock_guard<Spinlock> g(graveyard_lock_);
        graveyard_.push_back(victim);
      }
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    typename Core::Collector col;
    col.lo = lo;
    col.hi = hi;
    core_.publish(tid, &col);
    // Phase 1: index layers route to the range; collect unmarked
    // fully-linked data-layer nodes.
    Node* pred = head_;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < lo) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
    }
    Node* curr = pred->next[0].load(std::memory_order_acquire);
    while (curr != tail_ && curr->key <= hi) {
      if (curr->fully_linked.load(std::memory_order_acquire) &&
          !curr->marked.load(std::memory_order_acquire))
        col.collected.push_back(curr);
      curr = curr->next[0].load(std::memory_order_acquire);
    }
    // Phase 2: seal (linearization point), then phase 3: reconstruct.
    auto reports = core_.seal(tid, col);
    Core::reconstruct(col, std::move(reports), out);
    return out.size();
  }

  // -- test-only introspection (quiescent callers) ------------------------
  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }

  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != tail_;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    for (int l = 1; l < kMaxHeight; ++l) {
      K p = key_min_sentinel<K>();
      for (Node* n = head_->next[l].load(std::memory_order_acquire);
           n != tail_; n = n->next[l].load(std::memory_order_acquire)) {
        if (n->key <= p && p != key_min_sentinel<K>()) return false;
        p = n->key;
        if (n->top_level < l) return false;
      }
    }
    return true;
  }

 private:
  using Core = SnapCollectorCore<Node, K>;

  class LockSet {
   public:
    void acquire(Node* n) {
      for (int i = 0; i < count_; ++i)
        if (nodes_[i] == n) return;
      n->lock.lock();
      nodes_[count_++] = n;
    }
    ~LockSet() {
      for (int i = count_ - 1; i >= 0; --i) nodes_[i]->lock.unlock();
    }

   private:
    Node* nodes_[kMaxHeight + 1];
    int count_ = 0;
  };

  int find(K key, Node** preds, Node** succs) const {
    int lf = -1;
    Node* pred = head_;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        curr = curr->next[l].load(std::memory_order_acquire);
      }
      if (lf == -1 && curr->key == key) lf = l;
      preds[l] = pred;
      succs[l] = curr;
    }
    return lf;
  }

  int random_level(int tid) {
    const uint64_t r = rngs_[tid]->next_u64();
    return std::countr_zero(r | (1ull << (kMaxHeight - 1)));
  }

  Node* head_;
  Node* tail_;
  Core core_;
  Spinlock graveyard_lock_;
  std::vector<Node*> graveyard_;
  mutable CachePadded<Xoshiro256> rngs_[kMaxThreads];
};

}  // namespace bref
