#pragma once
// Snapcollector-style lazy list — a simplified reconstruction of Petrank &
// Timnat's iterator technique (DISC'13), the baseline the paper mentions
// but excludes from its plots as "significantly slower". The snapshot
// mechanism:
//
//  * A range query publishes a *collector*, traverses the list adding the
//    unmarked nodes it sees, then *seals* the collector — the query's
//    linearization point — and reconstructs the snapshot as
//        (collected nodes ∪ insert-reported nodes) ∖ delete-reported nodes
//    with node identity (pointers, not keys) disambiguating re-insertions.
//  * Every update, inside its critical section, reports the affected node
//    to every published collector covering its key.
//  * Updates hold a global lock in shared mode across their
//    linearize+report step and the seal takes it exclusively, so every
//    update is wholly before the seal (report delivered) or wholly after
//    (report dropped, update ordered after the query). The original paper
//    achieves this cut wait-free with helping; we use the lock since this
//    family is lock-based anyway — and the resulting serialization is part
//    of why Snapcollector loses, as the paper observes.
//
// Costs visible by construction: updates scan the collector announce array
// on every operation, queries allocate and seal report buffers, and
// reported nodes are revisited after traversal.
//
// Reclamation: none (leaky), matching how the paper benchmarks this
// family; nodes referenced by reports therefore remain valid.

#include <algorithm>
#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/rwlock.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "ds/snapcollector/collector.h"
#include "ds/support.h"

namespace bref {

template <typename K, typename V>
class SnapCollectorList {
 public:
  struct Node {
    const K key;
    V val;
    Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<Node*> next{nullptr};
    Node(K k, V v) : key(k), val(v) {}
  };

  SnapCollectorList() {
    head_ = new Node(key_min_sentinel<K>(), V{});
    tail_ = new Node(key_max_sentinel<K>(), V{});
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~SnapCollectorList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
    for (Node* n : graveyard_) delete n;
  }

  SnapCollectorList(const SnapCollectorList&) = delete;
  SnapCollectorList& operator=(const SnapCollectorList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) const {
    (void)tid;
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < key) curr = curr->next.load(std::memory_order_acquire);
    if (curr->key != key || curr->marked.load(std::memory_order_acquire))
      return false;
    if (out != nullptr) *out = curr->val;
    return true;
  }

  bool insert(int tid, K key, V val) {
    (void)tid;
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    for (;;) {
      auto [pred, curr] = traverse(key);
      std::lock_guard<Spinlock> lk(pred->lock);
      if (!validate(pred, curr)) continue;
      if (curr->key == key) return false;
      Node* fresh = new Node(key, val);
      fresh->next.store(curr, std::memory_order_relaxed);
      {
        typename Core::UpdateWindow w(core_);
        pred->next.store(fresh, std::memory_order_release);  // linearization
        core_.report(fresh, key, /*is_insert=*/true);
      }
      return true;
    }
  }

  bool remove(int tid, K key) {
    (void)tid;
    for (;;) {
      auto [pred, curr] = traverse(key);
      if (curr->key != key) return false;
      std::scoped_lock lk(pred->lock, curr->lock);
      if (!validate(pred, curr) ||
          curr->marked.load(std::memory_order_acquire))
        continue;
      {
        typename Core::UpdateWindow w(core_);
        curr->marked.store(true, std::memory_order_release);  // linearization
        core_.report(curr, key, /*is_insert=*/false);
      }
      pred->next.store(curr->next.load(std::memory_order_acquire),
                       std::memory_order_release);
      {
        std::lock_guard<Spinlock> g(graveyard_lock_);
        graveyard_.push_back(curr);
      }
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    typename Core::Collector col;
    col.lo = lo;
    col.hi = hi;
    core_.publish(tid, &col);
    // Phase 1: collect reachable unmarked nodes in range.
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr->key < lo) curr = curr->next.load(std::memory_order_acquire);
    while (curr != tail_ && curr->key <= hi) {
      if (!curr->marked.load(std::memory_order_acquire))
        col.collected.push_back(curr);
      curr = curr->next.load(std::memory_order_acquire);
    }
    // Phase 2: seal — the query's linearization point. The exclusive gate
    // waits out every update currently in its linearize+report section.
    auto reports = core_.seal(tid, col);
    // Phase 3: reconstruct — node identity resolves re-insertions.
    Core::reconstruct(col, std::move(reports), out);
    return out.size();
  }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire))
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next.load(std::memory_order_acquire); n != tail_;
         n = n->next.load(std::memory_order_acquire)) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  using Core = SnapCollectorCore<Node, K>;

  std::pair<Node*, Node*> traverse(K key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr->key < key) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }
  bool validate(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  Node* head_;
  Node* tail_;
  Core core_;
  Spinlock graveyard_lock_;
  std::vector<Node*> graveyard_;  // leaky-mode removed nodes
};

}  // namespace bref
