#pragma once
// The Snapcollector core (Petrank & Timnat, DISC'13 — simplified): the
// publish/report/seal machinery shared by the snapcollector list and skip
// list. See sc_list.h for the full protocol description and the
// serialization trade-off versus the authors' wait-free construction.
//
// Protocol summary:
//  * A range query publishes a Collector covering [lo, hi], traverses the
//    structure collecting unmarked nodes, then seals the collector under
//    the exclusive side of `update_gate` — its linearization point.
//  * Every update executes its linearization + report step under the
//    shared side of `update_gate`, delivering the affected node to every
//    published, unsealed collector covering its key. The gate guarantees
//    every update is wholly before the seal (report delivered) or wholly
//    after (ordered after the query).
//  * The query reconstructs (collected ∪ insert-reports) ∖ delete-reports,
//    with node identity (pointers) disambiguating re-insertions.

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/rwlock.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"

namespace bref {

template <typename Node, typename K>
class SnapCollectorCore {
 public:
  struct ReportEntry {
    Node* node;
    bool is_insert;
  };

  struct Collector {
    K lo{}, hi{};
    Spinlock report_lock;
    bool sealed = false;
    std::vector<ReportEntry> reports;
    std::vector<Node*> collected;
  };

  /// Scope guard for an update's linearize+report window (shared gate).
  class UpdateWindow {
   public:
    explicit UpdateWindow(SnapCollectorCore& core) : core_(core) {
      core_.update_gate_.lock_shared();
    }
    ~UpdateWindow() { core_.update_gate_.unlock_shared(); }
    UpdateWindow(const UpdateWindow&) = delete;
    UpdateWindow& operator=(const UpdateWindow&) = delete;

   private:
    SnapCollectorCore& core_;
  };

  /// Publish `col` as thread `tid`'s active collector.
  void publish(int tid, Collector* col) {
    hwm_.note(tid);
    collectors_[tid]->store(col, std::memory_order_seq_cst);
  }

  /// Seal and withdraw the collector; returns the reports captured before
  /// the seal. The exclusive gate waits out in-flight update windows. The
  /// withdrawal must happen *inside* the exclusive section: the collector
  /// is a stack object of the query, and an update window opening between
  /// the gate release and a later withdrawal could pick up the pointer
  /// and chase it after the query's frame is gone (use-after-scope, found
  /// by TSan once the blanket suppressions came off).
  std::vector<ReportEntry> seal(int tid, Collector& col) {
    std::vector<ReportEntry> reports;
    update_gate_.lock();
    {
      std::lock_guard<Spinlock> g(col.report_lock);
      col.sealed = true;
      reports.swap(col.reports);
    }
    collectors_[tid]->store(nullptr, std::memory_order_release);
    update_gate_.unlock();
    return reports;
  }

  /// Deliver a report to every published, unsealed collector whose range
  /// covers the key. Must be called inside an UpdateWindow.
  void report(Node* n, K key, bool is_insert) {
    const int n_threads = hwm_.get();
    for (int i = 0; i < n_threads; ++i) {
      Collector* col = collectors_[i]->load(std::memory_order_seq_cst);
      if (col == nullptr) continue;
      if (key < col->lo || key > col->hi) continue;
      std::lock_guard<Spinlock> g(col->report_lock);
      if (!col->sealed) col->reports.push_back({n, is_insert});
    }
  }

  /// Reconstruct the snapshot from a sealed collector's state into `out`
  /// as sorted unique (key, value) pairs.
  template <typename V>
  static void reconstruct(const Collector& col,
                          std::vector<ReportEntry> reports,
                          std::vector<std::pair<K, V>>& out) {
    std::vector<Node*> inserted, deleted;
    for (const ReportEntry& r : reports)
      (r.is_insert ? inserted : deleted).push_back(r.node);
    std::sort(deleted.begin(), deleted.end());
    auto is_deleted = [&](Node* n) {
      return std::binary_search(deleted.begin(), deleted.end(), n);
    };
    out.clear();
    out.reserve(col.collected.size());
    for (Node* n : col.collected)
      if (!is_deleted(n)) out.emplace_back(n->key, n->val);
    for (Node* n : inserted)
      if (!is_deleted(n)) out.emplace_back(n->key, n->val);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              out.end());
  }

 private:
  TidHwm hwm_;
  RWSpinlock update_gate_;
  CachePadded<std::atomic<Collector*>> collectors_[kMaxThreads];
};

}  // namespace bref
