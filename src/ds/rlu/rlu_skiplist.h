#pragma once
// RLU-protected skip list. RLU's commit atomicity replaces the HLLS
// marked/fullyLinked machinery: an update locks (clones) every predecessor
// whose pointer changes plus the victim, rewrites the copies, and commits.
// Traversals and range queries dereference through RLU and are linearized
// at their clock snapshot.

#include <bit>
#include <cassert>
#include <utility>
#include <vector>

#include "common/random.h"
#include "ds/support.h"
#include "rlu/rlu.h"

namespace bref {

template <typename K, typename V>
class RluSkipList {
 public:
  static constexpr int kMaxHeight = 20;

  struct Node {
    K key;
    V val;
    int top_level;
    Node* next[kMaxHeight];
    Node(K k, V v, int top) : key(k), val(v), top_level(top) {
      for (auto& n : next) n = nullptr;
    }
  };
  static_assert(std::is_trivially_copyable_v<Node>);

  RluSkipList() {
    head_ = rlu_.alloc<Node>(key_min_sentinel<K>(), V{}, kMaxHeight - 1);
    tail_ = rlu_.alloc<Node>(key_max_sentinel<K>(), V{}, kMaxHeight - 1);
    for (int l = 0; l < kMaxHeight; ++l) head_->next[l] = tail_;
    for (int i = 0; i < kMaxThreads; ++i) rngs_[i]->reseed(0xabba + i);
  }

  ~RluSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0];
      Rlu::dealloc_unsafe(n);
      n = nx;
    }
  }

  RluSkipList(const RluSkipList&) = delete;
  RluSkipList& operator=(const RluSkipList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) {
    Rlu::Session s(rlu_, tid);
    Node* pred = s.dereference(head_);
    Node* curr = nullptr;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      curr = s.dereference(pred->next[l]);
      while (curr->key < key) {
        pred = curr;
        curr = s.dereference(curr->next[l]);
      }
      if (curr->key == key) break;
    }
    const bool found = (curr != nullptr && curr->key == key);
    if (found && out != nullptr) *out = curr->val;
    s.unlock();
    return found;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    const int top = random_level(tid);
    for (;;) {
      Rlu::Session s(rlu_, tid);
      Node* preds[kMaxHeight];
      Node* succs[kMaxHeight];
      const bool found = find(s, key, preds, succs);
      if (found) {
        s.unlock();
        return false;
      }
      bool aborted = false;
      Node* wpreds[kMaxHeight];
      for (int l = 0; l <= top; ++l) {
        wpreds[l] = s.try_lock(preds[l]);
        if (wpreds[l] == nullptr ||
            wpreds[l]->next[l] != Rlu::Session::unwrap(succs[l])) {
          aborted = true;
          break;
        }
      }
      if (aborted) {
        s.abort();
        continue;
      }
      Node* fresh = rlu_.alloc<Node>(key, val, top);
      for (int l = 0; l <= top; ++l)
        fresh->next[l] = Rlu::Session::unwrap(succs[l]);
      for (int l = 0; l <= top; ++l) wpreds[l]->next[l] = fresh;
      s.unlock();
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Rlu::Session s(rlu_, tid);
      Node* preds[kMaxHeight];
      Node* succs[kMaxHeight];
      const bool found = find(s, key, preds, succs);
      if (!found) {
        s.unlock();
        return false;
      }
      Node* victim = succs[0];
      const int top = victim->top_level;
      Node* wvictim = s.try_lock(victim);
      if (wvictim == nullptr) {
        s.abort();
        continue;
      }
      bool aborted = false;
      Node* wpreds[kMaxHeight];
      for (int l = 0; l <= top; ++l) {
        wpreds[l] = s.try_lock(preds[l]);
        if (wpreds[l] == nullptr ||
            wpreds[l]->next[l] != Rlu::Session::unwrap(victim)) {
          aborted = true;
          break;
        }
      }
      if (aborted) {
        s.abort();
        continue;
      }
      for (int l = 0; l <= top; ++l) wpreds[l]->next[l] = wvictim->next[l];
      s.free_obj(victim);
      s.unlock();
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    Rlu::Session s(rlu_, tid);
    Node* pred = s.dereference(head_);
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = s.dereference(pred->next[l]);
      while (curr->key < lo) {
        pred = curr;
        curr = s.dereference(curr->next[l]);
      }
    }
    Node* curr = s.dereference(pred->next[0]);
    while (curr->key < lo) curr = s.dereference(curr->next[0]);
    while (curr->key <= hi && curr->key < key_max_sentinel<K>()) {
      out.emplace_back(curr->key, curr->val);
      curr = s.dereference(curr->next[0]);
    }
    s.unlock();
    return out.size();
  }

  Rlu& rlu() { return rlu_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next[0]; n->key < key_max_sentinel<K>();
         n = n->next[0])
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next[0]; n->key < key_max_sentinel<K>();
         n = n->next[0]) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  /// Populates preds/succs (RLU views); returns whether key was found at
  /// the data layer. Stored pointers inside views are original pointers.
  bool find(Rlu::Session& s, K key, Node** preds, Node** succs) {
    Node* pred = s.dereference(head_);
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      Node* curr = s.dereference(pred->next[l]);
      while (curr->key < key) {
        pred = curr;
        curr = s.dereference(curr->next[l]);
      }
      preds[l] = pred;
      succs[l] = curr;
    }
    return succs[0]->key == key;
  }

  int random_level(int tid) {
    const uint64_t r = rngs_[tid]->next_u64();
    return std::countr_zero(r | (1ull << (kMaxHeight - 1)));
  }

  Rlu rlu_;
  Node* head_;
  Node* tail_;
  mutable CachePadded<Xoshiro256> rngs_[kMaxThreads];
};

}  // namespace bref
