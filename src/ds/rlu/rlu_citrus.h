#pragma once
// RLU-protected internal BST (the RLU paper's "Citrus with RLU instead of
// RCU" variant). RLU's clone-on-lock replaces both Citrus's hand-rolled
// successor copy and its synchronize_rcu: a two-children removal simply
// rewrites the locked node's key/value from the successor inside the write
// log and unlinks the successor, all committed atomically.

#include <cassert>
#include <tuple>
#include <utility>
#include <vector>

#include "ds/support.h"
#include "rlu/rlu.h"

namespace bref {

template <typename K, typename V>
class RluCitrus {
 public:
  struct Node {
    K key;
    V val;
    Node* child[2];
    Node(K k, V v) : key(k), val(v), child{nullptr, nullptr} {}
  };
  static_assert(std::is_trivially_copyable_v<Node>);

  RluCitrus() { root_ = rlu_.alloc<Node>(key_max_sentinel<K>(), V{}); }

  ~RluCitrus() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->child[0] != nullptr) stack.push_back(n->child[0]);
      if (n->child[1] != nullptr) stack.push_back(n->child[1]);
      Rlu::dealloc_unsafe(n);
    }
  }

  RluCitrus(const RluCitrus&) = delete;
  RluCitrus& operator=(const RluCitrus&) = delete;

  bool contains(int tid, K key, V* out = nullptr) {
    Rlu::Session s(rlu_, tid);
    Node* curr = s.dereference(root_)->child[0] != nullptr
                     ? s.dereference(s.dereference(root_)->child[0])
                     : nullptr;
    while (curr != nullptr && curr->key != key) {
      Node* next = curr->child[key < curr->key ? 0 : 1];
      curr = next != nullptr ? s.dereference(next) : nullptr;
    }
    const bool found = (curr != nullptr);
    if (found && out != nullptr) *out = curr->val;
    s.unlock();
    return found;
  }

  bool insert(int tid, K key, V val) {
    assert(key < key_max_sentinel<K>());
    for (;;) {
      Rlu::Session s(rlu_, tid);
      auto [pred, curr, dir] = locate(s, key);
      if (curr != nullptr) {
        s.unlock();
        return false;
      }
      Node* wpred = s.try_lock(pred);
      if (wpred == nullptr || wpred->child[dir] != nullptr) {
        s.abort();
        continue;
      }
      wpred->child[dir] = rlu_.alloc<Node>(key, val);
      s.unlock();
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Rlu::Session s(rlu_, tid);
      auto [pred, curr, dir] = locate(s, key);
      if (curr == nullptr) {
        s.unlock();
        return false;
      }
      Node* wpred = s.try_lock(pred);
      Node* wcurr = (wpred != nullptr) ? s.try_lock(curr) : nullptr;
      if (wpred == nullptr || wcurr == nullptr ||
          wpred->child[dir] != Rlu::Session::unwrap(curr)) {
        s.abort();
        continue;
      }
      Node* left = wcurr->child[0];
      Node* right = wcurr->child[1];
      if (left == nullptr || right == nullptr) {
        wpred->child[dir] = (left != nullptr) ? left : right;
        s.free_obj(curr);
        s.unlock();
        return true;
      }
      // Two children: pull up the in-order successor's key/value into the
      // locked node's copy and unlink the successor.
      Node* sp = wcurr;  // view of successor's parent
      int sdir = 1;
      Node* sv_orig = right;
      Node* sv = s.dereference(sv_orig);
      while (sv->child[0] != nullptr) {
        sp = sv;
        sdir = 0;
        sv_orig = sv->child[0];
        sv = s.dereference(sv_orig);
      }
      Node* wsucc = s.try_lock(sv);
      if (wsucc == nullptr || wsucc->child[0] != nullptr) {
        s.abort();
        continue;
      }
      Node* wsp;
      if (sp == wcurr) {
        wsp = wcurr;
        sdir = 1;
      } else {
        wsp = s.try_lock(sp);
        if (wsp == nullptr || wsp->child[0] != Rlu::Session::unwrap(sv)) {
          s.abort();
          continue;
        }
        sdir = 0;
      }
      wcurr->key = wsucc->key;
      wcurr->val = wsucc->val;
      wsp->child[sdir] = wsucc->child[1];
      s.free_obj(sv);
      s.unlock();
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    Rlu::Session s(rlu_, tid);
    Node* top = s.dereference(root_)->child[0];
    if (top != nullptr) collect(s, s.dereference(top), lo, hi, out);
    s.unlock();
    return out.size();
  }

  Rlu& rlu() { return rlu_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    in_order(root_->child[0], v);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    return check_subtree(root_->child[0], key_min_sentinel<K>(),
                         key_max_sentinel<K>());
  }

 private:
  std::tuple<Node*, Node*, int> locate(Rlu::Session& s, K key) {
    Node* pred = s.dereference(root_);
    int dir = 0;
    Node* curr_orig = pred->child[0];
    Node* curr = curr_orig != nullptr ? s.dereference(curr_orig) : nullptr;
    while (curr != nullptr && curr->key != key) {
      const int d = (key < curr->key) ? 0 : 1;
      pred = curr;
      dir = d;
      curr_orig = curr->child[d];
      curr = curr_orig != nullptr ? s.dereference(curr_orig) : nullptr;
    }
    return {pred, curr, dir};
  }

  void collect(Rlu::Session& s, Node* n, K lo, K hi,
               std::vector<std::pair<K, V>>& out) {
    if (n->key > lo && n->child[0] != nullptr)
      collect(s, s.dereference(n->child[0]), lo, hi, out);
    if (n->key >= lo && n->key <= hi) out.emplace_back(n->key, n->val);
    if (n->key < hi && n->child[1] != nullptr)
      collect(s, s.dereference(n->child[1]), lo, hi, out);
  }

  void in_order(Node* n, std::vector<std::pair<K, V>>& v) const {
    if (n == nullptr) return;
    in_order(n->child[0], v);
    v.emplace_back(n->key, n->val);
    in_order(n->child[1], v);
  }

  bool check_subtree(Node* n, K lo, K hi) const {
    if (n == nullptr) return true;
    if (n->key <= lo || n->key >= hi) return false;
    return check_subtree(n->child[0], lo, n->key) &&
           check_subtree(n->child[1], n->key, hi);
  }

  Rlu rlu_;
  Node* root_;
};

}  // namespace bref
