#pragma once
// RLU-protected sorted linked list (the RLU paper's flagship structure and
// the bundling paper's RLU list competitor). All traversals run inside an
// RLU session and dereference through the RLU indirection; updates lock the
// affected nodes (clone-into-log) and commit, paying rlu_synchronize. Range
// queries are a read-only session: linearized at the clock snapshot taken
// by reader_lock, like bundling — with zero per-query overhead beyond
// dereference indirection, but at the cost of writers waiting for readers.

#include <cassert>
#include <utility>
#include <vector>

#include "ds/support.h"
#include "rlu/rlu.h"

namespace bref {

template <typename K, typename V>
class RluList {
 public:
  struct Node {
    K key;
    V val;
    Node* next;
    Node(K k, V v) : key(k), val(v), next(nullptr) {}
  };
  static_assert(std::is_trivially_copyable_v<Node>);

  RluList() {
    head_ = rlu_.alloc<Node>(key_min_sentinel<K>(), V{});
    tail_ = rlu_.alloc<Node>(key_max_sentinel<K>(), V{});
    head_->next = tail_;
  }

  ~RluList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next;
      Rlu::dealloc_unsafe(n);
      n = nx;
    }
  }

  RluList(const RluList&) = delete;
  RluList& operator=(const RluList&) = delete;

  bool contains(int tid, K key, V* out = nullptr) {
    Rlu::Session s(rlu_, tid);
    Node* curr = s.dereference(head_);
    while (curr->key < key) curr = s.dereference(curr->next);
    const bool found = (curr->key == key);
    if (found && out != nullptr) *out = curr->val;
    s.unlock();
    return found;
  }

  bool insert(int tid, K key, V val) {
    assert(key > key_min_sentinel<K>() && key < key_max_sentinel<K>());
    for (;;) {
      Rlu::Session s(rlu_, tid);
      Node* pred = s.dereference(head_);
      Node* curr = s.dereference(pred->next);
      while (curr->key < key) {
        pred = curr;
        curr = s.dereference(curr->next);
      }
      if (curr->key == key) {
        s.unlock();
        return false;
      }
      Node* wpred = s.try_lock(pred);
      if (wpred == nullptr) {
        s.abort();
        continue;
      }
      if (wpred->next != Rlu::Session::unwrap(curr)) {  // raced: retry
        s.abort();
        continue;
      }
      Node* fresh = rlu_.alloc<Node>(key, val);
      fresh->next = Rlu::Session::unwrap(curr);
      wpred->next = fresh;
      s.unlock();
      return true;
    }
  }

  bool remove(int tid, K key) {
    for (;;) {
      Rlu::Session s(rlu_, tid);
      Node* pred = s.dereference(head_);
      Node* curr = s.dereference(pred->next);
      while (curr->key < key) {
        pred = curr;
        curr = s.dereference(curr->next);
      }
      if (curr->key != key) {
        s.unlock();
        return false;
      }
      Node* wpred = s.try_lock(pred);
      Node* wcurr = (wpred != nullptr) ? s.try_lock(curr) : nullptr;
      if (wpred == nullptr || wcurr == nullptr) {
        s.abort();
        continue;
      }
      if (wpred->next != Rlu::Session::unwrap(curr)) {
        s.abort();
        continue;
      }
      wpred->next = wcurr->next;
      s.free_obj(curr);
      s.unlock();
      return true;
    }
  }

  size_t range_query(int tid, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    out.clear();
    if (lo > hi) return 0;
    Rlu::Session s(rlu_, tid);
    Node* curr = s.dereference(head_);
    while (curr->key < lo) curr = s.dereference(curr->next);
    while (curr->key <= hi && curr->key < key_max_sentinel<K>()) {
      out.emplace_back(curr->key, curr->val);
      curr = s.dereference(curr->next);
    }
    s.unlock();
    return out.size();
  }

  Rlu& rlu() { return rlu_; }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> v;
    for (Node* n = head_->next; n->key < key_max_sentinel<K>(); n = n->next)
      v.emplace_back(n->key, n->val);
    return v;
  }
  size_t size_slow() const { return to_vector().size(); }
  bool check_invariants() const {
    K prev = key_min_sentinel<K>();
    for (Node* n = head_->next; n->key < key_max_sentinel<K>(); n = n->next) {
      if (n->key <= prev) return false;
      prev = n->key;
    }
    return true;
  }

 private:
  Rlu rlu_;
  Node* head_;
  Node* tail_;
};

}  // namespace bref
