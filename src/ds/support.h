#pragma once
// Shared helpers for the ordered-set implementations.

#include <limits>

#include "epoch/ebr.h"

namespace bref {

/// Sentinel keys for head/tail (list, skip list) and the root sentinel
/// (Citrus). User keys must lie strictly between them.
template <typename K>
inline constexpr K key_min_sentinel() {
  return std::numeric_limits<K>::min();
}
template <typename K>
inline constexpr K key_max_sentinel() {
  return std::numeric_limits<K>::max();
}

/// EBR pin that only engages when reclamation is enabled. In leaky mode
/// (the paper's benchmark configuration) operations skip epoch traffic
/// entirely; removed nodes are still parked in EBR bags and reclaimed when
/// the structure is destroyed.
class OptEbrGuard {
 public:
  OptEbrGuard(Ebr& ebr, int tid, bool enabled)
      : ebr_(enabled ? &ebr : nullptr), tid_(tid) {
    if (ebr_) ebr_->pin(tid_);
  }
  ~OptEbrGuard() {
    if (ebr_) ebr_->unpin(tid_);
  }
  OptEbrGuard(const OptEbrGuard&) = delete;
  OptEbrGuard& operator=(const OptEbrGuard&) = delete;

 private:
  Ebr* ebr_;
  int tid_;
};

}  // namespace bref
