// bref-top — a live terminal view over a running bref-server, driven
// entirely by the METRICS wire op (Prometheus text exposition). Nothing
// here is hard-coded to a metric list: counters render as rates between
// scrapes, gauges as values, histograms as p50/p99/p999 reconstructed
// from their cumulative le-buckets — so new instrumentation shows up in
// bref-top the moment a subsystem registers it.
//
// Two trace-aware panes (ISSUE 10): a per-stage tail panel breaking the
// wire-path p99 into queue/execute/flush, and a rolling slowest-traces
// board built by harvesting histogram exemplars from each scrape and
// resolving new trace ids to full span timelines with TRACE_GET.
//
//   ./bref_top --port 7000 [--host 127.0.0.1] [--interval 1000] [--once]
//
// Start a server first, e.g.:  ./bench/fig7_server --duration 60000 ...
// or any program that runs net::Server.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/prom_validate.h"

using bref::net::Client;
using bref::obs::PromSeries;

namespace {

struct Family {
  std::string type;  // counter | gauge | histogram | untyped
};

// One histogram label-set: cumulative le-buckets + _sum/_count.
struct Hist {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  double sum = 0, count = 0;

  double quantile(double q) const {
    if (count <= 0) return 0;
    const double rank = q * count;
    double prev_le = 0, prev_cum = 0;
    for (const auto& [le, cum] : buckets) {
      if (cum >= rank) {
        const double span = cum - prev_cum;
        const double frac = span > 0 ? (rank - prev_cum) / span : 0;
        const double lo = prev_le, hi = std::isinf(le) ? prev_le * 2 : le;
        return lo + (hi - lo) * frac;
      }
      prev_le = std::isinf(le) ? prev_le : le;
      prev_cum = cum;
    }
    return prev_le;
  }
};

std::string key_of(const PromSeries& s, const std::string& strip_suffix) {
  std::string k = s.name;
  if (!strip_suffix.empty())
    k.resize(k.size() - strip_suffix.size());
  k += "{";
  bool first = true;
  for (const auto& [ln, lv] : s.labels) {
    if (ln == "le") continue;
    if (!first) k += ",";
    k += ln + "=" + lv;
    first = false;
  }
  k += "}";
  return k;
}

std::string suffix_of(const std::string& name,
                      const std::map<std::string, Family>& families,
                      std::string* base) {
  for (const char* suf : {"_bucket", "_sum", "_count"}) {
    const size_t n = std::strlen(suf);
    if (name.size() > n && name.compare(name.size() - n, n, suf) == 0) {
      const std::string b = name.substr(0, name.size() - n);
      auto it = families.find(b);
      if (it != families.end() && it->second.type == "histogram") {
        *base = b;
        return suf;
      }
    }
  }
  *base = name;
  return "";
}

std::map<std::string, Family> parse_types(const std::string& text) {
  std::map<std::string, Family> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const size_t sp = line.find(' ', 7);
    if (sp == std::string::npos) continue;
    out[line.substr(7, sp - 7)].type = line.substr(sp + 1);
  }
  return out;
}

double human(double v, const char** unit) {
  static const char* units[] = {"", "k", "M", "G"};
  int i = 0;
  while (std::fabs(v) >= 1000 && i < 3) {
    v /= 1000;
    ++i;
  }
  *unit = units[i];
  return v;
}

// -- slowest-traces pane -----------------------------------------------
//
// The METRICS scrape carries histogram exemplars: each op-latency bucket
// remembers the trace id of the last committed trace that landed in it.
// bref-top harvests those ids each refresh, resolves new ones to full
// span timelines with TRACE_GET, and keeps a rolling board of the
// slowest — a live "why is the tail slow" view with no extra server
// instrumentation.

/// One resolved trace on the rolling board.
struct SlowTrace {
  uint64_t total_ns = 0;
  std::string id_hex, op, stages;
};

/// Tools-grade field scrapers over the TRACE_GET JSON record. The record
/// shape is ours (Server::trace_record_json), so a find() is honest.
uint64_t json_u64(const std::string& j, const std::string& key, size_t from) {
  const size_t p = j.find("\"" + key + "\": ", from);
  if (p == std::string::npos) return 0;
  return std::strtoull(j.c_str() + p + key.size() + 4, nullptr, 10);
}

std::string json_str(const std::string& j, const std::string& key) {
  const size_t p = j.find("\"" + key + "\": \"");
  if (p == std::string::npos) return "";
  const size_t v = p + key.size() + 5;
  const size_t e = j.find('"', v);
  return e == std::string::npos ? "" : j.substr(v, e - v);
}

/// "queue 44.0 > execute 0.3 > flush 2.9" (durations in us, first 5
/// stages then an ellipsis) from the record's spans array.
std::string stage_summary(const std::string& rec) {
  std::string out;
  int n = 0;
  size_t pos = 0;
  while ((pos = rec.find("\"stage\": \"", pos)) != std::string::npos) {
    pos += 10;
    const size_t e = rec.find('"', pos);
    if (e == std::string::npos) break;
    if (++n > 5) {
      out += " >...";
      break;
    }
    const uint64_t dur = json_u64(rec, "dur_ns", e);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s%s %.1f", n > 1 ? " > " : "",
                  rec.substr(pos, e - pos).c_str(),
                  static_cast<double>(dur) / 1000.0);
    out += buf;
    pos = e;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0, interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc)
      host = argv[++i];
    else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc)
      port = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc)
      interval_ms = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--once") == 0)
      once = true;
  }
  if (port == 0) {
    std::fprintf(stderr,
                 "usage: bref_top --port N [--host H] [--interval MS] "
                 "[--once]\n");
    return 2;
  }

  try {
    Client c(host, static_cast<uint16_t>(port));
    std::map<std::string, double> prev_counters;
    std::map<uint64_t, SlowTrace> slow;  // rolling slowest, by trace id
    auto prev_t = std::chrono::steady_clock::now();
    for (;;) {
      const std::string text = c.metrics();
      std::string err;
      std::vector<PromSeries> series;
      if (!bref::obs::validate_prometheus(text, &err, &series)) {
        std::fprintf(stderr, "bref-top: bad exposition: %s\n", err.c_str());
        return 1;
      }
      const std::map<std::string, Family> families = parse_types(text);
      const auto now = std::chrono::steady_clock::now();
      const double dt =
          std::chrono::duration<double>(now - prev_t).count();
      prev_t = now;

      std::map<std::string, double> gauges, counters;
      std::map<std::string, Hist> hists;
      for (const PromSeries& s : series) {
        std::string base;
        const std::string suf = suffix_of(s.name, families, &base);
        if (!suf.empty()) {
          Hist& h = hists[key_of(s, suf)];
          if (suf == "_bucket") {
            double le = 0;
            for (const auto& [ln, lv] : s.labels)
              if (ln == "le")
                le = lv == "+Inf" ? INFINITY : std::strtod(lv.c_str(), nullptr);
            h.buckets.emplace_back(le, s.value);
          } else if (suf == "_sum") {
            h.sum = s.value;
          } else {
            h.count = s.value;
          }
          continue;
        }
        auto it = families.find(s.name);
        const std::string ty = it != families.end() ? it->second.type : "gauge";
        (ty == "counter" ? counters : gauges)[key_of(s, "")] = s.value;
      }

      // Harvest exemplar trace ids from the scrape and resolve the new
      // ones via TRACE_GET into the rolling slowest board.
      for (const PromSeries& s : series) {
        if (!s.has_exemplar) continue;
        uint64_t id = 0;
        for (const auto& [ln, lv] : s.exemplar_labels)
          if (ln == "trace_id") id = std::strtoull(lv.c_str(), nullptr, 16);
        if (id == 0 || slow.count(id)) continue;
        const auto rec = c.trace_get(id);
        if (!rec) continue;  // evicted between scrape and lookup
        SlowTrace st;
        st.total_ns = json_u64(*rec, "total_ns", 0);
        st.id_hex = json_str(*rec, "trace_id");
        st.op = json_str(*rec, "op");
        st.stages = stage_summary(*rec);
        slow.emplace(id, std::move(st));
      }
      while (slow.size() > 8) {  // keep only the 8 slowest
        auto victim = slow.begin();
        for (auto it2 = slow.begin(); it2 != slow.end(); ++it2)
          if (it2->second.total_ns < victim->second.total_ns) victim = it2;
        slow.erase(victim);
      }

      if (!once) std::printf("\x1b[2J\x1b[H");
      std::printf("bref-top — %s:%d, every %dms\n\n", host.c_str(), port,
                  interval_ms);
      std::printf("%-52s %14s\n", "GAUGE", "value");
      for (const auto& [k, v] : gauges)
        std::printf("%-52s %14.0f\n", k.c_str(), v);
      std::printf("\n%-52s %10s %10s\n", "COUNTER", "rate/s", "total");
      for (const auto& [k, v] : counters) {
        const double d = prev_counters.count(k) ? v - prev_counters[k] : 0;
        const char *u1, *u2;
        const double rate = human(dt > 0 ? d / dt : 0, &u1);
        const double tot = human(v, &u2);
        std::printf("%-52s %8.1f%-2s %8.1f%-2s\n", k.c_str(), rate, u1, tot,
                    u2);
        prev_counters[k] = v;
      }
      std::printf("\n%-52s %9s %9s %9s %9s\n", "HISTOGRAM", "count", "p50",
                  "p99", "p999");
      for (auto& [k, h] : hists) {
        std::sort(h.buckets.begin(), h.buckets.end());
        std::printf("%-52s %9.0f %9.2g %9.2g %9.2g\n", k.c_str(), h.count,
                    h.quantile(0.50), h.quantile(0.99), h.quantile(0.999));
      }
      // Per-stage tail panel: where inside the wire path the p99 lives
      // (queue = head-of-line wait, execute = structure work, flush =
      // write-side backpressure), in microseconds.
      std::printf("\n%-16s %11s %11s %11s\n", "STAGE", "p50us", "p99us",
                  "p999us");
      for (auto& [k, h] : hists) {
        const std::string pfx = "bref_net_stage_seconds{stage=";
        if (k.rfind(pfx, 0) != 0) continue;
        const std::string stage = k.substr(pfx.size(), k.size() - pfx.size() - 1);
        std::printf("%-16s %11.1f %11.1f %11.1f\n", stage.c_str(),
                    h.quantile(0.50) * 1e6, h.quantile(0.99) * 1e6,
                    h.quantile(0.999) * 1e6);
      }
      // Rolling slowest-traces pane: exemplar ids resolved via TRACE_GET.
      std::printf("\n%-18s %-6s %10s  %s\n", "SLOWEST TRACE", "op",
                  "totalus", "stages (us)");
      std::vector<const SlowTrace*> board;
      for (const auto& [id, st] : slow) board.push_back(&st);
      std::sort(board.begin(), board.end(),
                [](const SlowTrace* a, const SlowTrace* b) {
                  return a->total_ns > b->total_ns;
                });
      for (const SlowTrace* st : board)
        std::printf("%-18s %-6s %10.1f  %s\n", st->id_hex.c_str(),
                    st->op.c_str(), static_cast<double>(st->total_ns) / 1000.0,
                    st->stages.c_str());
      if (board.empty())
        std::printf("(none yet — tracing off, or no exemplars committed)\n");
      std::fflush(stdout);
      if (once) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bref-top: %s\n", e.what());
    return 1;
  }
}
