// tpcc_demo: MiniDB (the DBx1000 substitute) running the paper's TPC-C
// transaction mix with bundled skip-list indexes, printing per-profile
// transaction counts and index-operation throughput.
//
//   build/examples/tpcc_demo [seconds]
//
// MiniDB owns many indexes per warehouse; each transaction opens one RAII
// session bundle (db::Txn) whose single dense id covers every index it
// touches and is released on commit — the auto-acquiring form here takes
// the application path (ids from the global ThreadRegistry), while the
// benchmark drivers use the pinned begin_txn(tid) form.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "common/timing.h"
#include "db/tpcc.h"

int main(int argc, char** argv) {
  using namespace bref;
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;

  db::TpccScale scale;
  scale.warehouses = 2;
  scale.customers_per_district = 500;
  scale.initial_orders_per_district = 100;
  db::TpccDb<BundleSkipListSet> database(scale);
  std::printf("loaded %d warehouses, %d districts, %d customers/district\n",
              scale.warehouses,
              scale.warehouses * db::kDistrictsPerWarehouse,
              scale.customers_per_district);

  constexpr int kThreads = 4;
  std::vector<db::TpccStats> stats(kThreads);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  const auto t0 = now();
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(2026 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        db::Txn txn = database.begin_txn();
        database.run_mixed_txn(txn, rng, stats[t]);
        txn.commit();
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  stop = true;
  for (auto& w : workers) w.join();
  const double elapsed = elapsed_s(t0);

  db::TpccStats total;
  for (const auto& s : stats) {
    total.txn_new_order += s.txn_new_order;
    total.txn_payment += s.txn_payment;
    total.txn_delivery += s.txn_delivery;
    total.index_ops += s.index_ops;
    total.delivered_orders += s.delivered_orders;
  }
  const uint64_t txns =
      total.txn_new_order + total.txn_payment + total.txn_delivery;
  std::printf("ran %.2fs on %d threads\n", elapsed, kThreads);
  std::printf("  NEW_ORDER: %llu (%.1f%%)\n",
              (unsigned long long)total.txn_new_order,
              100.0 * total.txn_new_order / txns);
  std::printf("  PAYMENT:   %llu (%.1f%%)\n",
              (unsigned long long)total.txn_payment,
              100.0 * total.txn_payment / txns);
  std::printf("  DELIVERY:  %llu (%.1f%%), %llu orders delivered\n",
              (unsigned long long)total.txn_delivery,
              100.0 * total.txn_delivery / txns,
              (unsigned long long)total.delivered_orders);
  std::printf("  index ops: %.2f Mops/s\n", total.index_ops / elapsed / 1e6);
  db::Txn audit = database.begin_txn();
  std::printf("  undelivered new-orders remaining: %zu\n",
              database.undelivered_count(audit));
  return 0;
}
