// History audit: record a concurrent run against a bundled structure and
// verify it linearizable with the built-in Wing-Gong checker.
//
//   build/examples/history_audit
//
// Demonstrates the validation module (src/validation): RecordedSession
// wraps a thread session and logs every operation with its real-time
// window — range queries through RangeSnapshot, so each record carries the
// snapshot timestamp it linearized at (printed as @ts below) instead of
// reconstructing it by hand. check_linearizable() then searches for a
// witness order that replays legally against the sequential set
// specification. The same machinery backs tests/test_validation.cpp.
// Black-box: it works on any of the 17 implementations — swap the typedef
// below for, say, bref::RluCitrusSet and it still audits (techniques
// without snapshot timestamps simply record none).

#include <cstdio>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "validation/history.h"
#include "validation/model.h"
#include "validation/wing_gong.h"

namespace v = bref::validation;

int main() {
  using DS = bref::BundleSkipListSet;
  DS set;

  // Three threads hammer three hot keys with a mix of point ops and range
  // queries; every operation is recorded with its invocation/response
  // window. Each worker holds a RecordedSession — a recording wrapper over
  // the RAII thread-session API.
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 5;
  std::vector<v::ThreadLog> logs;
  for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      v::RecordedSession<DS> recorded(set, logs[t], t);
      bref::Xoshiro256 rng(2026 + t);
      bref::RangeSnapshot out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const v::KeyT k = 1 + static_cast<v::KeyT>(rng.next_range(3));
        switch (rng.next_range(4)) {
          case 0:
            recorded.insert(k, 100 * t + i);
            break;
          case 1:
            recorded.remove(k);
            break;
          case 2:
            recorded.contains(k);
            break;
          default:
            recorded.range_query(1, 3, out);
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  v::History history = v::merge(logs);
  std::printf("recorded %zu operations from %d threads:\n", history.size(),
              kThreads);
  for (const auto& op : history)
    std::printf("  [%llu, %llu] %s\n",
                static_cast<unsigned long long>(op.invoke_ns),
                static_cast<unsigned long long>(op.response_ns),
                v::describe(op).c_str());

  auto verdict = v::check_linearizable(history);
  if (verdict) {
    std::printf("\nlinearizable; witness order:\n");
    v::SetModel replay;
    for (int idx : verdict.witness) {
      const auto& op = history[static_cast<size_t>(idx)];
      replay.step(op);
      std::printf("  %s\n", v::describe(op).c_str());
    }
    std::printf("final state size: %zu (structure agrees: %s)\n",
                replay.state().size(),
                replay.state().size() == set.size_slow() ? "yes" : "NO");
    return 0;
  }
  std::printf("\nNOT linearizable:\n%s\n", verdict.message.c_str());
  return 1;
}
