// Quickstart: the bref::Set facade — a concurrent ordered map with
// linearizable range queries, chosen by name at run time.
//
//   build/examples/quickstart
//
// Demonstrates: Set::create + capability introspection, RAII thread
// sessions (no raw thread ids), RangeSnapshot results with the logical
// timestamp each snapshot linearized at, and capability-checked options.

#include <cstdio>
#include <thread>
#include <vector>

#include "api/any_set.h"
#include "api/set.h"

int main() {
  using namespace bref;

  // Pick an implementation from the registry by name; every name in
  // any_set_names() works here. Options are validated against the
  // implementation's capabilities.
  Set set = Set::create("Bundle-skiplist");
  std::printf("created %s (capabilities: %s)\n", set.name().c_str(),
              set.capabilities().to_string().c_str());

  // --- basic single-threaded usage -------------------------------------
  // A session binds this thread to the set; ids acquire/release via RAII.
  {
    auto s = set.session();
    for (KeyT k = 10; k <= 100; k += 10) s.insert(k, k * k);
    std::printf("contains(30) = %d\n", s.contains(30));
    std::printf("value at 40  = %lld\n",
                static_cast<long long>(s.get(40).value_or(-1)));
    s.remove(50);

    // Linearizable range query: an atomic snapshot of [20, 80], stamped
    // with the logical time it linearized at.
    RangeSnapshot snap = s.range_query(20, 80);
    std::printf("range [20,80] @ts=%llu:",
                static_cast<unsigned long long>(snap.timestamp()));
    for (const auto& [k, val] : snap) std::printf(" %lld", (long long)k);
    std::printf("\n");
  }

  // --- capability checking ----------------------------------------------
  // Options an implementation cannot honor are an error, never a no-op.
  try {
    (void)Set::create("RLU-list", {.reclaim = true});
  } catch (const UnsupportedOptionError& e) {
    std::printf("as expected: %s\n", e.what());
  }

  // --- concurrent usage --------------------------------------------------
  // Four writers churn disjoint stripes while a scanner takes snapshots;
  // each snapshot is a consistent cut whose timestamp only moves forward.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&set, w] {
      auto s = set.session();
      for (KeyT i = 0; i < 2000; ++i) {
        KeyT k = 1000 + w + i * 4;
        s.insert(k, k);
        if (i % 3 == 0) s.remove(k);
      }
    });
  }
  std::thread scanner([&set] {
    auto s = set.session();
    RangeSnapshot snap;
    timestamp_t prev_ts = 0;
    for (int i = 0; i < 50; ++i) {
      s.range_query(1000, 10000, snap);
      // Each snapshot is atomic: sorted, duplicate-free, consistent with
      // one point in logical time — and that point never runs backwards.
      if (snap.timestamp() < prev_ts) std::printf("TIME RAN BACKWARDS\n");
      prev_ts = snap.timestamp();
    }
    std::printf("last snapshot: %zu keys @ts=%llu\n", snap.size(),
                static_cast<unsigned long long>(snap.timestamp()));
  });
  for (auto& t : writers) t.join();
  scanner.join();

  auto s = set.session();
  RangeSnapshot fin = s.range_query(1000, 10000);
  std::printf("final [1000,10000] size: %zu (expected %d)\n", fin.size(),
              4 * (2000 - 2000 / 3 - 1));
  return 0;
}
