// Quickstart: the bundled skip list as a concurrent ordered map with
// linearizable range queries.
//
//   build/examples/quickstart
//
// Demonstrates: insert/contains/remove, range_query, and why the snapshot
// guarantee matters (a range query concurrent with updates never sees a
// half-applied batch... here we simply show the API and a consistent scan).

#include <cstdio>
#include <thread>
#include <vector>

#include "api/ordered_set.h"

int main() {
  using namespace bref;
  // A bundled skip list: keys and values are int64_t. Every operation
  // takes the calling thread's dense id (use tl_thread_id() in apps).
  BundleSkipListSet set;

  // --- basic single-threaded usage -------------------------------------
  const int tid = tl_thread_id();
  for (KeyT k = 10; k <= 100; k += 10) set.insert(tid, k, k * k);
  std::printf("contains(30) = %d\n", set.contains(tid, 30));
  ValT v = 0;
  set.contains(tid, 40, &v);
  std::printf("value at 40  = %lld\n", static_cast<long long>(v));
  set.remove(tid, 50);

  // Linearizable range query: an atomic snapshot of [20, 80].
  std::vector<std::pair<KeyT, ValT>> out;
  set.range_query(tid, 20, 80, out);
  std::printf("range [20,80]:");
  for (const auto& [k, val] : out) std::printf(" %lld", (long long)k);
  std::printf("\n");

  // --- concurrent usage --------------------------------------------------
  // Four writers churn disjoint stripes while a scanner takes snapshots;
  // each snapshot is a consistent cut (here we just report sizes).
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&set, w] {
      const int my_tid = tl_thread_id();
      for (KeyT i = 0; i < 2000; ++i) {
        KeyT k = 1000 + w + i * 4;
        set.insert(my_tid, k, k);
        if (i % 3 == 0) set.remove(my_tid, k);
      }
    });
  }
  std::thread scanner([&set] {
    const int my_tid = tl_thread_id();
    std::vector<std::pair<KeyT, ValT>> snap;
    for (int i = 0; i < 50; ++i) {
      set.range_query(my_tid, 1000, 10000, snap);
      // Each `snap` is an atomic snapshot: sorted, duplicate-free, and
      // consistent with one point in logical time.
    }
    std::printf("last snapshot size: %zu\n", snap.size());
  });
  for (auto& t : writers) t.join();
  scanner.join();

  set.range_query(tid, 1000, 10000, out);
  std::printf("final [1000,10000] size: %zu (expected %d)\n", out.size(),
              4 * (2000 - 2000 / 3 - 1));
  return 0;
}
