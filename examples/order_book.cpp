// order_book: a limit order book where market-data snapshots are
// linearizable range queries over the bundled Citrus tree.
//
// Bids and asks live in two ordered sets keyed by price level; matching
// threads add/cancel orders while a market-data thread publishes top-of-
// book depth snapshots. Because the range query is linearizable, a
// snapshot can never show a crossed book *from one side's perspective
// mid-update* — and the best-bid/best-ask it reports existed at one
// instant in logical time, reported as the Depth's per-side timestamps
// (RangeSnapshot::timestamp()). Threads talk to the book through RAII
// sessions; no raw thread ids cross the OrderBook API.
//
//   build/examples/order_book

#include <atomic>
#include <cstdio>
#include <iterator>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "api/session.h"
#include "common/random.h"

namespace {

using namespace bref;

class OrderBook {
 public:
  /// Per-thread handle to the book: one session per side, acquired RAII-
  /// style from the global registry when the handle is created.
  class Trader {
   public:
    explicit Trader(OrderBook& book)
        : bids_(book.bids_), asks_(book.asks_) {}

    void add_bid(KeyT price, ValT qty) { bids_.insert(price, qty); }
    void add_ask(KeyT price, ValT qty) { asks_.insert(price, qty); }
    void cancel_bid(KeyT price) { bids_.remove(price); }
    void cancel_ask(KeyT price) { asks_.remove(price); }

    /// Depth snapshot: best `levels` price levels on each side, from one
    /// consistent snapshot per side, each stamped with the logical time it
    /// linearized at.
    struct Depth {
      std::vector<std::pair<KeyT, ValT>> bids;  // descending from best bid
      std::vector<std::pair<KeyT, ValT>> asks;  // ascending from best ask
      timestamp_t bid_ts = 0;
      timestamp_t ask_ts = 0;
    };

    Depth snapshot(KeyT around, KeyT window, size_t levels) {
      Depth d;
      bids_.range_query(around - window, around + window, tmp_);
      d.bid_ts = tmp_.timestamp();
      for (auto it = std::make_reverse_iterator(tmp_.end());
           it != std::make_reverse_iterator(tmp_.begin()) &&
           d.bids.size() < levels;
           ++it)
        d.bids.push_back(*it);
      asks_.range_query(around - window, around + window, tmp_);
      d.ask_ts = tmp_.timestamp();
      for (auto it = tmp_.begin(); it != tmp_.end() && d.asks.size() < levels;
           ++it)
        d.asks.push_back(*it);
      return d;
    }

   private:
    TypedSession<BundleCitrusSet> bids_;
    TypedSession<BundleCitrusSet> asks_;
    RangeSnapshot tmp_;  // reusable buffer across snapshots
  };

  Trader trader() { return Trader(*this); }

 private:
  BundleCitrusSet bids_;
  BundleCitrusSet asks_;
};

}  // namespace

int main() {
  OrderBook book;
  constexpr KeyT kMid = 10000;

  // Seed resting liquidity: bids below mid, asks above.
  {
    auto t = book.trader();
    for (KeyT p = kMid - 500; p < kMid; p += 5) t.add_bid(p, 100);
    for (KeyT p = kMid + 5; p <= kMid + 500; p += 5) t.add_ask(p, 100);
  }

  std::atomic<bool> stop{false};
  std::atomic<long> snapshots{0};
  std::atomic<long> violations{0};

  // Market-data thread: publish depth, check it is sane.
  std::thread md([&] {
    auto trader = book.trader();
    while (!stop.load(std::memory_order_acquire)) {
      auto d = trader.snapshot(kMid, 600, 5);
      // Within one side's snapshot, levels must be strictly ordered.
      for (size_t i = 1; i < d.bids.size(); ++i)
        if (d.bids[i - 1].first <= d.bids[i].first) violations++;
      for (size_t i = 1; i < d.asks.size(); ++i)
        if (d.asks[i - 1].first >= d.asks[i].first) violations++;
      snapshots++;
    }
  });

  // Trading threads: add and cancel around the touch.
  std::vector<std::thread> traders;
  for (int t = 0; t < 3; ++t) {
    traders.emplace_back([&, t] {
      auto trader = book.trader();
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < 30000; ++i) {
        KeyT off = static_cast<KeyT>(rng.next_range(400));
        if (rng.next_range(2) == 0) {
          KeyT p = kMid - 1 - off;
          if (rng.next_range(3) != 0)
            trader.add_bid(p, 10 + rng.next_range(90));
          else
            trader.cancel_bid(p);
        } else {
          KeyT p = kMid + 1 + off;
          if (rng.next_range(3) != 0)
            trader.add_ask(p, 10 + rng.next_range(90));
          else
            trader.cancel_ask(p);
        }
      }
    });
  }
  for (auto& t : traders) t.join();
  stop = true;
  md.join();

  auto d = book.trader().snapshot(kMid, 600, 5);
  std::printf("published %ld depth snapshots, %ld ordering violations\n",
              snapshots.load(), violations.load());
  std::printf("final depth linearized at bid_ts=%llu ask_ts=%llu\n",
              (unsigned long long)d.bid_ts, (unsigned long long)d.ask_ts);
  std::printf("top of book:\n");
  for (size_t i = 0; i < d.bids.size() && i < d.asks.size(); ++i)
    std::printf("  bid %lld x%lld | ask %lld x%lld\n",
                (long long)d.bids[i].first, (long long)d.bids[i].second,
                (long long)d.asks[i].first, (long long)d.asks[i].second);
  return violations.load() == 0 ? 0 : 1;
}
