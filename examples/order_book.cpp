// order_book: a limit order book where market-data snapshots are
// linearizable range queries over the bundled Citrus tree.
//
// Bids and asks live in two ordered sets keyed by price level; matching
// threads add/cancel orders while a market-data thread publishes top-of-
// book depth snapshots. Because the range query is linearizable, a
// snapshot can never show a crossed book *from one side's perspective
// mid-update* — and the best-bid/best-ask it reports existed at one
// instant in logical time.
//
//   build/examples/order_book

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "common/random.h"

namespace {

using namespace bref;

class OrderBook {
 public:
  void add_bid(int tid, KeyT price, ValT qty) { bids_.insert(tid, price, qty); }
  void add_ask(int tid, KeyT price, ValT qty) { asks_.insert(tid, price, qty); }
  void cancel_bid(int tid, KeyT price) { bids_.remove(tid, price); }
  void cancel_ask(int tid, KeyT price) { asks_.remove(tid, price); }

  /// Depth snapshot: best `levels` price levels on each side, from one
  /// consistent snapshot per side.
  struct Depth {
    std::vector<std::pair<KeyT, ValT>> bids;  // descending from best bid
    std::vector<std::pair<KeyT, ValT>> asks;  // ascending from best ask
  };

  Depth snapshot(int tid, KeyT around, KeyT window, size_t levels) {
    Depth d;
    std::vector<std::pair<KeyT, ValT>> tmp;
    bids_.range_query(tid, around - window, around + window, tmp);
    for (auto it = tmp.rbegin(); it != tmp.rend() && d.bids.size() < levels;
         ++it)
      d.bids.push_back(*it);
    asks_.range_query(tid, around - window, around + window, tmp);
    for (auto it = tmp.begin(); it != tmp.end() && d.asks.size() < levels;
         ++it)
      d.asks.push_back(*it);
    return d;
  }

 private:
  BundleCitrusSet bids_;
  BundleCitrusSet asks_;
};

}  // namespace

int main() {
  OrderBook book;
  constexpr KeyT kMid = 10000;

  // Seed resting liquidity: bids below mid, asks above.
  for (KeyT p = kMid - 500; p < kMid; p += 5) book.add_bid(0, p, 100);
  for (KeyT p = kMid + 5; p <= kMid + 500; p += 5) book.add_ask(0, p, 100);

  std::atomic<bool> stop{false};
  std::atomic<long> snapshots{0};
  std::atomic<long> violations{0};

  // Market-data thread: publish depth, check it is sane.
  std::thread md([&] {
    const int tid = 5;
    while (!stop.load(std::memory_order_acquire)) {
      auto d = book.snapshot(tid, kMid, 600, 5);
      // Within one side's snapshot, levels must be strictly ordered.
      for (size_t i = 1; i < d.bids.size(); ++i)
        if (d.bids[i - 1].first <= d.bids[i].first) violations++;
      for (size_t i = 1; i < d.asks.size(); ++i)
        if (d.asks[i - 1].first >= d.asks[i].first) violations++;
      snapshots++;
    }
  });

  // Trading threads: add and cancel around the touch.
  std::vector<std::thread> traders;
  for (int t = 0; t < 3; ++t) {
    traders.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < 30000; ++i) {
        KeyT off = static_cast<KeyT>(rng.next_range(400));
        if (rng.next_range(2) == 0) {
          KeyT p = kMid - 1 - off;
          if (rng.next_range(3) != 0)
            book.add_bid(t, p, 10 + rng.next_range(90));
          else
            book.cancel_bid(t, p);
        } else {
          KeyT p = kMid + 1 + off;
          if (rng.next_range(3) != 0)
            book.add_ask(t, p, 10 + rng.next_range(90));
          else
            book.cancel_ask(t, p);
        }
      }
    });
  }
  for (auto& t : traders) t.join();
  stop = true;
  md.join();

  auto d = book.snapshot(0, kMid, 600, 5);
  std::printf("published %ld depth snapshots, %ld ordering violations\n",
              snapshots.load(), violations.load());
  std::printf("top of book:\n");
  for (size_t i = 0; i < d.bids.size() && i < d.asks.size(); ++i)
    std::printf("  bid %lld x%lld | ask %lld x%lld\n",
                (long long)d.bids[i].first, (long long)d.bids[i].second,
                (long long)d.asks[i].first, (long long)d.asks[i].second);
  return violations.load() == 0 ? 0 : 1;
}
