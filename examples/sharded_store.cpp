// sharded_store: the shard layer end to end — a ShardedSet of four bundled
// skip lists serving a mixed workload from pooled sessions, with the
// per-shard MaintenanceService reclaiming in the background and a reporting
// thread taking coordinated cross-shard snapshots (one shared timestamp
// per snapshot, however many shards it spans).
//
//   build/examples/sharded_store [seconds]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/set.h"
#include "common/random.h"
#include "common/timing.h"
#include "shard/maintenance.h"

int main(int argc, char** argv) {
  using namespace bref;
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  constexpr KeyT kKeys = 100000;
  constexpr int kWriters = 4;

  // Four bundled shards partitioning [0, kKeys], every update stamped by
  // ONE shared clock; reclamation on so maintenance has real work.
  ShardOptions so;
  so.shards = 4;
  so.key_lo = 0;
  so.key_hi = kKeys;
  so.inner = SetOptions{.reclaim = true};
  Set store{std::make_unique<ShardedSet>("Bundle-skiplist", so)};
  auto& sharded = dynamic_cast<ShardedSet&>(store.impl());
  std::printf("store: %zu x Bundle-skiplist, coordinated=%s\n",
              sharded.num_shards(), sharded.coordinated() ? "yes" : "no");

  // One background worker per shard: bundle pruning + epoch pushes, with
  // adaptive back-off. Pooled ids, because every thread here pools.
  MaintenanceService maint(sharded,
                           MaintenanceOptions{.pooled_tids = true});
  maint.start();

  // Partition-aware parallel preload: one loader per shard, each writing
  // its own shard's keys through that shard's SessionPool — direct shard
  // access is safe exactly when the loader respects the partition.
  {
    std::vector<std::thread> loaders;
    for (size_t i = 0; i < sharded.num_shards(); ++i) {
      loaders.emplace_back([&, i] {
        auto s = sharded.shard_pool(i).session();
        for (KeyT k = 1; k < kKeys; k += 2)
          if (sharded.shard_index(k) == i) s.insert(k, k);
      });
    }
    for (auto& l : loaders) l.join();
    std::printf("preloaded %zu keys (one loader per shard)\n",
                store.size_slow());
  }

  SessionPool pool(store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(7 + t);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto s = pool.session();
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(kKeys - 1));
        if (rng.next_range(2) == 0)
          s.insert(k, k);
        else
          s.remove(k);
        ++n;
      }
      writes.fetch_add(n, std::memory_order_relaxed);
    });
  }

  // Reporter: whole-keyspace snapshots. Each spans all four shards yet
  // linearizes at a single shared-clock instant — timestamp() proves it.
  std::thread reporter([&] {
    auto s = pool.session();
    RangeSnapshot snap;
    timestamp_t last_ts = 0;
    uint64_t snaps = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      s.range_query(0, kKeys, snap);
      if (!snap.has_timestamp() || snap.timestamp() < last_ts) {
        std::fprintf(stderr, "snapshot timestamps regressed!\n");
        std::abort();
      }
      last_ts = snap.timestamp();
      ++snaps;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::printf("reporter: %llu coordinated snapshots, last @ts=%llu "
                "(%zu keys live)\n",
                (unsigned long long)snaps, (unsigned long long)last_ts,
                snap.size());
  });

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  stop = true;
  for (auto& w : writers) w.join();
  reporter.join();
  maint.stop();

  const ShardedSetStats rq = sharded.stats();
  std::printf("writers: %llu updates; RQ routing: %llu coordinated / %llu "
              "single-shard (one timestamp per coordinated query: %s)\n",
              (unsigned long long)writes.load(),
              (unsigned long long)rq.coordinated_rqs,
              (unsigned long long)rq.single_shard_rqs,
              rq.timestamps_acquired == rq.coordinated_rqs ? "yes" : "NO");
  for (size_t i = 0; i < maint.workers(); ++i) {
    const ShardMaintenanceStats ms = maint.stats(i);
    std::printf("  shard %zu maintenance: %llu passes, %llu entries "
                "pruned, %llu idle backoffs\n",
                i, (unsigned long long)ms.passes,
                (unsigned long long)ms.bundle_entries_pruned,
                (unsigned long long)ms.idle_backoffs);
  }
  return 0;
}
