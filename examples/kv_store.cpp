// kv_store: a miniature RocksDB-style key-value store with PUT / GET /
// DELETE / SCAN — the motivating use case in the paper's introduction
// (key-value stores enriching PUT/GET APIs with range queries) — now
// served OVER THE WIRE: the index lives behind a bref-server (src/net/)
// and every store operation is a bref::net::Client call against it. SCAN
// is one RANGE request, whose reply carries the server-side snapshot and
// the logical timestamp it linearized at: one point in time, even while
// writers on other connections are active.
//
// The store maps string keys to string values: keys are interned to dense
// int64 ids through fixed-width decimal encoding (so SCANs follow
// lexicographic key order), values live in a client-side append-only log —
// the server's int64 value is the log slot. A writer thread ingests while
// the main thread runs consistent prefix scans.
//
//   build/examples/kv_store

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"

namespace {

using namespace bref;

/// Append-only value log; values referenced by index from the server.
class ValueLog {
 public:
  int64_t append(std::string v) {
    std::lock_guard<std::mutex> g(mu_);
    log_.push_back(std::move(v));
    return static_cast<int64_t>(log_.size() - 1);
  }
  std::string get(int64_t id) const {
    std::lock_guard<std::mutex> g(mu_);
    return log_[static_cast<size_t>(id)];
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> log_;
};

/// The demo uses fixed-width decimal keys, so numeric order equals
/// lexicographic order and SCAN(prefix) maps to one contiguous key range.
int64_t encode_key(const std::string& k) { return std::stoll(k); }

class MiniKv {
 public:
  explicit MiniKv(uint16_t port) : port_(port) {}

  void put(const std::string& key, std::string value) {
    net::Client& c = client();
    const int64_t id = log_.append(std::move(value));
    const int64_t k = encode_key(key);
    if (!c.insert(k, id)) {
      // Upsert: replace by delete+insert (values are immutable log slots),
      // batched into one wire transaction so the pair is one round trip
      // of frames executed back-to-back on the server's worker.
      c.txn_begin();
      c.txn_remove(k);
      c.txn_insert(k, id);
      c.txn_commit();
    }
  }

  bool get(const std::string& key, std::string* value_out) {
    const std::optional<ValT> id = client().get(encode_key(key));
    if (!id) return false;
    *value_out = log_.get(*id);
    return true;
  }

  bool erase(const std::string& key) {
    return client().remove(encode_key(key));
  }

  /// Consistent snapshot of all keys in [lo, hi]: one RANGE request; the
  /// reply is the server-side linearizable snapshot, stamped with its
  /// logical timestamp.
  std::vector<std::pair<std::string, std::string>> scan(
      const std::string& lo, const std::string& hi) {
    RangeSnapshot snap;
    client().range(encode_key(lo), encode_key(hi), snap);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(snap.size());
    char buf[32];
    for (const auto& [k, id] : snap) {
      std::snprintf(buf, sizeof buf, "%08" PRId64, k);
      out.emplace_back(buf, log_.get(id));
    }
    return out;
  }

 private:
  /// One connection per calling thread (the Client is not thread-safe),
  /// mirroring the one-session-per-thread discipline of the embedded API.
  /// Server-side this costs nothing per connection: each worker loop runs
  /// every one of its connections under a single session.
  net::Client& client() {
    static thread_local std::optional<net::Client> conn;
    if (!conn) conn.emplace(port_);
    return *conn;
  }

  uint16_t port_;
  ValueLog log_;
};

}  // namespace

int main() {
  // The store's index server: bundled skip list, range-sharded 4 ways,
  // background maintenance on. An ephemeral loopback port keeps the demo
  // self-contained; a real deployment sets opt.port.
  net::ServerOptions opt;
  opt.impl = "Bundle-skiplist";
  opt.shards = 4;
  opt.workers = 2;
  net::Server server(opt);
  server.start();
  std::printf("bref-server on 127.0.0.1:%u\n", server.port());

  MiniKv kv(server.port());
  char key[32];

  // Seed some user records.
  for (int i = 0; i < 1000; ++i) {
    std::snprintf(key, sizeof key, "%08d", i * 10);
    kv.put(key, "user-" + std::to_string(i));
  }
  std::string v;
  kv.get("00000100", &v);
  std::printf("GET 00000100 -> %s\n", v.c_str());

  // Concurrent ingest (its own connection) + scans.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    char k[32];
    for (int i = 0; i < 20000 && !stop; ++i) {
      std::snprintf(k, sizeof k, "%08d", 5 + (i * 7) % 10000);
      kv.put(k, "hot-" + std::to_string(i));
    }
  });
  size_t last = 0;
  for (int scan = 0; scan < 20; ++scan) {
    auto rows = kv.scan("00000000", "00001000");
    // The snapshot is sorted and duplicate-free by construction.
    for (size_t i = 1; i < rows.size(); ++i)
      if (rows[i - 1].first >= rows[i].first) {
        std::printf("SCAN ORDER VIOLATION\n");
        return 1;
      }
    last = rows.size();
  }
  stop = true;
  writer.join();
  std::printf("last scan [00000000,00001000] -> %zu rows\n", last);
  auto rows = kv.scan("00000990", "00001010");
  for (const auto& [k, val] : rows)
    std::printf("  %s = %s\n", k.c_str(), val.c_str());
  server.stop();
  return 0;
}
