// kv_store: a miniature RocksDB-style key-value store with PUT / GET /
// DELETE / SCAN built on the bref::Set facade (default: the bundled skip
// list) — the motivating use case in the paper's introduction (key-value
// stores enriching PUT/GET APIs with range queries). Each store operation
// runs inside an RAII ThreadSession; SCAN returns the keys of one
// RangeSnapshot, i.e. one point in logical time.
//
// The store maps string keys to string values: keys are interned to dense
// int64 ids through an ordered dictionary (so SCANs follow lexicographic
// key order for the demo's zero-padded keys), values live in a concurrent
// log. A writer pool ingests while readers run consistent prefix scans.
//
//   build/examples/kv_store

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/set.h"

namespace {

using namespace bref;

/// Append-only value log; values referenced by index from the index layer.
class ValueLog {
 public:
  int64_t append(std::string v) {
    std::lock_guard<std::mutex> g(mu_);
    log_.push_back(std::move(v));
    return static_cast<int64_t>(log_.size() - 1);
  }
  std::string get(int64_t id) const {
    std::lock_guard<std::mutex> g(mu_);
    return log_[static_cast<size_t>(id)];
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> log_;
};

/// The demo uses fixed-width decimal keys, so numeric order equals
/// lexicographic order and SCAN(prefix) maps to one contiguous key range.
int64_t encode_key(const std::string& k) { return std::stoll(k); }

class MiniKv {
 public:
  MiniKv() : index_(Set::create("Bundle-skiplist")) {}

  void put(const std::string& key, std::string value) {
    auto s = session();
    const int64_t id = log_.append(std::move(value));
    const int64_t k = encode_key(key);
    if (!s.insert(k, id)) {
      // Upsert: replace by delete+insert (values are immutable log slots).
      s.remove(k);
      s.insert(k, id);
    }
  }

  bool get(const std::string& key, std::string* value_out) {
    auto id = session().get(encode_key(key));
    if (!id) return false;
    *value_out = log_.get(*id);
    return true;
  }

  bool erase(const std::string& key) {
    return session().remove(encode_key(key));
  }

  /// Consistent snapshot of all keys in [lo, hi] — the linearizable range
  /// query is what makes this SCAN return one point in time even while
  /// writers are active.
  std::vector<std::pair<std::string, std::string>> scan(
      const std::string& lo, const std::string& hi) {
    RangeSnapshot snap =
        session().range_query(encode_key(lo), encode_key(hi));
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(snap.size());
    char buf[32];
    for (const auto& [k, id] : snap) {
      std::snprintf(buf, sizeof buf, "%08" PRId64, k);
      out.emplace_back(buf, log_.get(id));
    }
    return out;
  }

 private:
  /// Session on the caller's pooled per-thread id: as cheap as the old
  /// tl_thread_id() pattern (no registry round-trip after a thread's first
  /// call), but the id is *released* when the thread exits — a store
  /// serving short-lived connection threads no longer leaks id slots.
  ThreadSession session() { return pool_.session(); }

  Set index_;
  SessionPool pool_{index_};
  ValueLog log_;
};

}  // namespace

int main() {
  MiniKv kv;
  char key[32];

  // Seed some user records.
  for (int i = 0; i < 1000; ++i) {
    std::snprintf(key, sizeof key, "%08d", i * 10);
    kv.put(key, "user-" + std::to_string(i));
  }
  std::string v;
  kv.get("00000100", &v);
  std::printf("GET 00000100 -> %s\n", v.c_str());

  // Concurrent ingest + scans.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    char k[32];
    for (int i = 0; i < 20000 && !stop; ++i) {
      std::snprintf(k, sizeof k, "%08d", 5 + (i * 7) % 10000);
      kv.put(k, "hot-" + std::to_string(i));
    }
  });
  size_t last = 0;
  for (int scan = 0; scan < 20; ++scan) {
    auto rows = kv.scan("00000000", "00001000");
    // The snapshot is sorted and duplicate-free by construction.
    for (size_t i = 1; i < rows.size(); ++i)
      if (rows[i - 1].first >= rows[i].first) {
        std::printf("SCAN ORDER VIOLATION\n");
        return 1;
      }
    last = rows.size();
  }
  stop = true;
  writer.join();
  std::printf("last scan [00000000,00001000] -> %zu rows\n", last);
  auto rows = kv.scan("00000990", "00001010");
  for (const auto& [k, val] : rows)
    std::printf("  %s = %s\n", k.c_str(), val.c_str());
  return 0;
}
