// promcheck — validate Prometheus text exposition (format 0.0.4) from a
// file or stdin, without needing promtool in the image. CI pipes the
// server's METRICS reply through this to gate merges on exposition
// validity and layer coverage.
//
//   promcheck [file]                 validate; exit 0/1
//   promcheck [file] --require p...  additionally require >=1 sample whose
//                                    name starts with each prefix
//   promcheck [file] --summary      print per-family sample counts
//   promcheck [file] --require-exemplars p...
//                                    additionally require >=1 exemplar on a
//                                    sample whose name starts with each
//                                    prefix (bref-trace histogram buckets)
//
// Exemplar suffixes (`value # {trace_id="..."} v`) are validated as part
// of the exposition; --summary reports the total seen.
//
// With no file argument (or "-"), reads stdin.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/prom_validate.h"

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::vector<std::string> required;
  std::vector<std::string> required_exemplars;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0) {
      for (++i; i < argc && argv[i][0] != '-'; ++i) required.push_back(argv[i]);
      --i;
    } else if (std::strcmp(argv[i], "--require-exemplars") == 0) {
      for (++i; i < argc && argv[i][0] != '-'; ++i)
        required_exemplars.push_back(argv[i]);
      --i;
    } else if (std::strcmp(argv[i], "--summary") == 0) {
      summary = true;
    } else {
      path = argv[i];
    }
  }

  std::string text;
  std::FILE* f = (path == nullptr || std::strcmp(path, "-") == 0)
                     ? stdin
                     : std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "promcheck: cannot open %s\n", path);
    return 1;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  if (f != stdin) std::fclose(f);

  std::string err;
  std::vector<bref::obs::PromSeries> series;
  if (!bref::obs::validate_prometheus(text, &err, &series)) {
    std::fprintf(stderr, "promcheck: INVALID: %s\n", err.c_str());
    return 1;
  }

  int rc = 0;
  for (const std::string& prefix : required) {
    bool found = false;
    for (const auto& s : series)
      if (s.name.compare(0, prefix.size(), prefix) == 0) {
        found = true;
        break;
      }
    if (!found) {
      std::fprintf(stderr, "promcheck: no sample with prefix '%s'\n",
                   prefix.c_str());
      rc = 1;
    }
  }

  for (const std::string& prefix : required_exemplars) {
    bool found = false;
    for (const auto& s : series)
      if (s.has_exemplar &&
          s.name.compare(0, prefix.size(), prefix) == 0) {
        found = true;
        break;
      }
    if (!found) {
      std::fprintf(stderr, "promcheck: no exemplar with prefix '%s'\n",
                   prefix.c_str());
      rc = 1;
    }
  }

  size_t nexemplars = 0;
  for (const auto& s : series) nexemplars += s.has_exemplar ? 1 : 0;
  if (summary) {
    std::map<std::string, size_t> families;
    for (const auto& s : series) ++families[s.name];
    for (const auto& [name, count] : families)
      std::printf("%-48s %zu\n", name.c_str(), count);
    std::printf("%-48s %zu\n", "(exemplars)", nexemplars);
  }
  std::printf("promcheck: OK — %zu samples, %zu exemplars%s\n", series.size(),
              nexemplars,
              required.empty() ? "" : ", all required prefixes present");
  return rc;
}
