#!/usr/bin/env python3
"""Merge fig7_server trace-scenario JSON and enforce the ISSUE 10 gates.

Usage:
    trace_gate.py --trace trace.json --out BENCH_10.json

Input is a fig7_server --json document from `--scenario trace` (records
"trace-off" / "trace-on": the same point mix at the same offered rate,
first with tracing fully disabled — no client stamps, server capture
disarmed — then fully on, with every request frame carrying a trace
context under the default tail-biased capture policy). The script writes
one merged document with a "gates" object and exits nonzero if any gate
fails:

  * overhead:     trace-on p99 <= 1.03x trace-off p99 at matched achieved
                  rate (tracing must be cheap enough to leave on in
                  production; the achieved-rate match makes the p99s
                  comparable — an off-rate collapse would fake a pass)
  * slowest-10:   the trace-on record carries 10 slowest requests, each
                  with a non-empty per-stage span timeline including an
                  "execute" span (the capture path actually saw the tail)
  * no-loss:      trace scratch slots all returned (scratch_in_use == 0
                  in the server's final stats) and scratch exhaustion
                  never fired at this modest connection count

The overhead gate carries an absolute floor (100 us): on a fast runner
the baseline p99 can be tens of microseconds, where 3% is far below timer
and scheduler noise. A trace-on p99 within floor_us of the baseline
passes regardless of the ratio; above the floor the ratio must hold.

--trace accepts multiple JSON files (repeated paired runs): the gate
compares the BEST (min) p99 of each side across runs. A shared CI
runner can stall a whole run for 100+ ms — a stall that lands on either
side at random and dwarfs any tracing cost. Best-of-N compares the
achievable latency of each configuration, which is the quantity the
overhead budget is actually about; every run's records are still merged
into the output, so the noise stays visible in the trajectory.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def result(docs, prefix):
    """The best (min-p99) record matching `prefix` across all runs."""
    best = None
    for doc in docs:
        for r in doc.get("results", []):
            if r.get("mix", "").startswith(prefix):
                if best is None or r["p99_us"] < best["p99_us"]:
                    best = r
    if best is None:
        sys.exit(f"trace_gate: no '{prefix}*' record in input")
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace", required=True, nargs="+",
                    help="one or more fig7_server --scenario trace JSONs")
    ap.add_argument("--out", required=True)
    ap.add_argument("--max-overhead", type=float, default=0.03,
                    help="max fractional p99 overhead of trace-on")
    args = ap.parse_args()

    docs = [load(p) for p in args.trace]
    off = result(docs, "trace-off")
    on = result(docs, "trace-on")

    slowest = on.get("trace", {}).get("slowest", [])
    timelines_ok = len(slowest) == 10 and all(
        r.get("spans") and any(s.get("stage") == "execute" for s in r["spans"])
        for r in slowest
    )
    on_trace_stats = on.get("server", {}).get("trace", {})
    max_ratio = 1.0 + args.max_overhead

    gates = {
        "trace_overhead": {
            "p99_us_off": off["p99_us"],
            "p99_us_on": on["p99_us"],
            "achieved_off": off["achieved_rate"],
            "achieved_on": on["achieved_rate"],
            "max_ratio": max_ratio,
            "floor_us": 100.0,
            "ratio": on["p99_us"] / max(off["p99_us"], 1e-9),
            "rate_match": on["achieved_rate"] >= 0.95 * off["achieved_rate"],
            "pass": (
                on["p99_us"] <= max(max_ratio * off["p99_us"],
                                    off["p99_us"] + 100.0)
                and on["achieved_rate"] >= 0.95 * off["achieved_rate"]
            ),
        },
        "trace_slowest_10": {
            "count": len(slowest),
            "committed": on_trace_stats.get("committed"),
            "pass": timelines_ok,
        },
        "trace_no_loss": {
            "scratch_in_use": on_trace_stats.get("scratch_in_use"),
            "scratch_exhausted": on_trace_stats.get("scratch_exhausted"),
            "pass": on_trace_stats.get("scratch_in_use") == 0
            and on_trace_stats.get("scratch_exhausted") == 0,
        },
    }

    merged = {
        "schema": docs[0].get("schema", 1),
        "bench": "fig7_server",
        "config": docs[0].get("config", {}),
        "results": [r for d in docs for r in d.get("results", [])],
        "gates": gates,
    }
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")

    ok = True
    for name, g in gates.items():
        status = "PASS" if g["pass"] else "FAIL"
        ok = ok and g["pass"]
        detail = {k: v for k, v in g.items() if k != "pass" and k != "slowest"}
        print(f"trace_gate: {status} {name}: {detail}")
    if not ok:
        sys.exit(1)
    print(f"trace_gate: all gates pass -> {args.out}")


if __name__ == "__main__":
    main()
