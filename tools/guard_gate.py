#!/usr/bin/env python3
"""Merge fig7_server guard-scenario JSON and enforce the ISSUE 8 gates.

Usage:
    guard_gate.py --overload overload.json --scan scan.json --out BENCH_8.json

Inputs are fig7_server --json documents from `--scenario overload` (records
"overload-1x" / "overload-5x") and `--scenario scan` (records "scan-off" /
"scan-on"). The script writes one merged document with a "gates" object and
exits nonzero if any gate fails:

  * shed engaged:   overload-5x shed > 0 (admission control actually fired)
  * goodput holds:  overload-5x goodput >= 0.8x overload-1x goodput
                    (shedding degrades gracefully instead of collapsing)
  * accepted tail:  overload-5x p99-of-accepted <= 3x overload-1x p99
  * scan isolation: scan-on point p99 <= 2x scan-off point p99
                    (a whole-keyspace chunked RANGE stream no longer
                    multiplies the point tail)

The two tail-ratio gates carry an absolute floor (2 ms for overload, 1 ms
for scan): on a fast runner the unloaded baseline p99 can be tens of
microseconds, where a 2-3x ratio is scheduler noise rather than a guard
regression. A sub-floor absolute tail means the guard did its job
regardless of the ratio; above the floor the ratio must hold.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def result(doc, prefix):
    for r in doc.get("results", []):
        if r.get("mix", "").startswith(prefix):
            return r
    sys.exit(f"guard_gate: no '{prefix}*' record in input")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--overload", required=True)
    ap.add_argument("--scan", required=True)
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    ov, sc = load(args.overload), load(args.scan)
    o1 = result(ov, "overload-1x")
    o5 = result(ov, "overload-5x")
    s0 = result(sc, "scan-off")
    s1 = result(sc, "scan-on")

    gates = {
        "overload_shed": {
            "shed": o5["shed"],
            "shed_pct": o5["shed_pct"],
            "pass": o5["shed"] > 0,
        },
        "overload_goodput": {
            "goodput_1x": o1["goodput_rate"],
            "goodput_5x": o5["goodput_rate"],
            "min_ratio": 0.8,
            "ratio": o5["goodput_rate"] / max(o1["goodput_rate"], 1.0),
            "pass": o5["goodput_rate"] >= 0.8 * o1["goodput_rate"],
        },
        "overload_p99_of_accepted": {
            "p99_us_1x": o1["p99_us"],
            "p99_us_5x": o5["p99_us"],
            "max_ratio": 3.0,
            "floor_us": 2000.0,
            "ratio": o5["p99_us"] / max(o1["p99_us"], 1e-9),
            "pass": o5["p99_us"] <= max(3.0 * o1["p99_us"], 2000.0),
        },
        "scan_isolation": {
            "p99_us_off": s0["p99_us"],
            "p99_us_on": s1["p99_us"],
            "bg_scans": s1["bg_scans"],
            "chunked_rqs": s1["server"]["guard"]["chunked_rqs"]
            if "guard" in s1.get("server", {})
            else None,
            "max_ratio": 2.0,
            "floor_us": 1000.0,
            "ratio": s1["p99_us"] / max(s0["p99_us"], 1e-9),
            "pass": s1["p99_us"] <= max(2.0 * s0["p99_us"], 1000.0)
            and s1["bg_scans"] > 0,
        },
    }

    merged = {
        "schema": ov.get("schema", 1),
        "bench": "fig7_server",
        "config": ov.get("config", {}),
        "scan_config": sc.get("config", {}),
        "results": ov.get("results", []) + sc.get("results", []),
        "gates": gates,
    }
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")

    ok = True
    for name, g in gates.items():
        status = "PASS" if g["pass"] else "FAIL"
        ok = ok and g["pass"]
        detail = {k: v for k, v in g.items() if k != "pass"}
        print(f"guard_gate: {status} {name}: {detail}")
    if not ok:
        sys.exit(1)
    print(f"guard_gate: all gates pass -> {args.out}")


if __name__ == "__main__":
    main()
