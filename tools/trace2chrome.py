#!/usr/bin/env python3
"""Convert bref TRACE_DUMP / TRACE_GET JSON to chrome://tracing format.

Usage:
    trace2chrome.py dump.json [-o trace.json]
    bref_client --trace-dump | trace2chrome.py - -o trace.json

Input is either a TRACE_DUMP document ({"records": [...]}), a bare
TRACE_GET record ({"trace_id": ..., "spans": [...]}), or a fig7_server
--json/BENCH_10.json document (records are pulled from each result's
"trace"."slowest" array). Output is the Chrome Trace Event JSON array
format: load it at chrome://tracing or https://ui.perfetto.dev.

Each request becomes one row (tid = trace id) under a per-worker process
(pid = worker); stage spans are complete ("X") events placed at their
absolute time, so concurrent requests line up on a shared wall-clock
axis and queueing shows as horizontal whitespace before "execute".
Span aux counters (shard fan-out width, scan-chunk pump iterations,
bytes) ride in args. Chrome wants microseconds; we keep nanosecond
resolution via fractional us.
"""

import argparse
import json
import sys

# Stable colors per stage so timelines read at a glance.
STAGE_COLOR = {
    "queue": "thread_state_runnable",
    "admission": "light_memory_dump",
    "execute": "thread_state_running",
    "shard_pin": "detailed_memory_dump",
    "shard_collect": "thread_state_iowait",
    "scan_chunk": "rail_animation",
    "flush": "cq_build_passed",
    "shed": "terrible",
    "error": "terrible",
}


def iter_records(doc):
    """Yield trace records from any of the accepted document shapes."""
    if isinstance(doc, dict) and "records" in doc:  # TRACE_DUMP
        yield from doc["records"]
    elif isinstance(doc, dict) and "spans" in doc:  # bare TRACE_GET
        yield doc
    elif isinstance(doc, dict) and "results" in doc:  # fig7 / BENCH json
        for r in doc["results"]:
            yield from r.get("trace", {}).get("slowest", [])
    else:
        sys.exit("trace2chrome: unrecognized input document shape")


def convert(doc):
    events = []
    pids = set()
    for rec in iter_records(doc):
        tid = int(rec["trace_id"], 16)
        pid = rec.get("worker", 0)
        base_us = rec.get("start_ns", 0) / 1000.0
        if pid not in pids:
            pids.add(pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": f"bref worker {pid}"},
            })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": f"req {rec['trace_id']} ({rec.get('op', '?')})"},
        })
        for span in rec.get("spans", []):
            ev = {
                "ph": "X",
                "name": span["stage"],
                "pid": pid,
                "tid": tid,
                "ts": base_us + span["start_ns"] / 1000.0,
                "dur": span["dur_ns"] / 1000.0,
                "args": {"aux8": span.get("aux8", 0),
                         "aux16": span.get("aux16", 0)},
            }
            cname = STAGE_COLOR.get(span["stage"])
            if cname:
                ev["cname"] = cname
            events.append(ev)
        # One enclosing span for the whole request so collapsed rows
        # still show the end-to-end extent.
        events.append({
            "ph": "X",
            "name": f"request:{rec.get('op', '?')}",
            "pid": pid,
            "tid": tid,
            "ts": base_us,
            "dur": rec.get("total_ns", 0) / 1000.0,
            "args": {"trace_id": rec["trace_id"],
                     "flags": rec.get("flags", 0)},
        })
    return events


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input", help="dump/record/bench JSON file, or - for stdin")
    ap.add_argument("-o", "--out", default="-",
                    help="output file (default stdout)")
    args = ap.parse_args()

    raw = sys.stdin.read() if args.input == "-" else open(args.input).read()
    events = convert(json.loads(raw))
    if not events:
        sys.exit("trace2chrome: no trace records in input")
    out = {"traceEvents": events, "displayTimeUnit": "ns"}
    if args.out == "-":
        json.dump(out, sys.stdout)
        print()
    else:
        with open(args.out, "w") as f:
            json.dump(out, f)
            f.write("\n")
        n = sum(1 for e in events if e["ph"] == "X")
        print(f"trace2chrome: wrote {n} spans to {args.out} "
              f"(open at chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)


if __name__ == "__main__":
    main()
