#!/usr/bin/env python3
"""Merge a fig6_sharded sweep and enforce the ISSUE 9 gates.

Usage:
    shard_gate.py --fig6 fig6.json --out BENCH_9.json [--min-ratio 0.95]
                  [--hi-ratio 1.5] [--hi-shards 8] [--hi-threads 16]

Input is a fig6_sharded --json document. Sharded records (impl
"Sharded<K>-<impl>") carry "speedup_vs_unsharded" against the unsharded
baseline re-measured at the same (threads, zipf) point, plus
"crossover_threads" per K. The script writes one document with a "gates"
object and exits nonzero if any gate fails:

  * no_regression: sharding must pay for itself EVERYWHERE — every sweep
    point (all K, threads, zipf) holds speedup >= --min-ratio. The default
    0.95 leaves room for run-to-run noise; the intent is "sharded never
    loses", the ISSUE 9 inversion (0.8x at 8 shards / 2 threads) fails it.
  * scaling_win: at >= --hi-shards shards and >= --hi-threads threads the
    speedup must reach --hi-ratio (default 1.5x) — sharding must not just
    break even but win where the paper says contention splits K ways.
    Marked "skipped" (passing) when the sweep has no such point, e.g. CI
    runners with too few cores to drive 16 threads honestly.

The merged doc also summarizes per-(K, mix) crossover thread counts so the
perf trajectory shows WHERE sharding starts winning, not just that it does.
"""

import argparse
import json
import re
import sys

SHARDED = re.compile(r"^Sharded(\d+)-")


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fig6", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--min-ratio", type=float, default=0.95)
    ap.add_argument("--hi-ratio", type=float, default=1.5)
    ap.add_argument("--hi-shards", type=int, default=8)
    ap.add_argument("--hi-threads", type=int, default=16)
    args = ap.parse_args()

    doc = load(args.fig6)
    cells = []
    for r in doc.get("results", []):
        m = SHARDED.match(r.get("impl", ""))
        if not m or "speedup_vs_unsharded" not in r:
            continue
        cells.append(
            {
                "impl": r["impl"],
                "shards": int(m.group(1)),
                "threads": r["threads"],
                "mix": r.get("mix", ""),
                "mops": r["mops"],
                "baseline_mops": r.get("baseline_mops"),
                "speedup": r["speedup_vs_unsharded"],
                "crossover_threads": r.get("crossover_threads"),
            }
        )
    if not cells:
        sys.exit("shard_gate: no sharded records with speedup_vs_unsharded")

    worst = min(cells, key=lambda c: c["speedup"])
    no_regression = {
        "min_ratio": args.min_ratio,
        "worst_speedup": worst["speedup"],
        "worst_point": {
            "shards": worst["shards"],
            "threads": worst["threads"],
            "mix": worst["mix"],
        },
        "points": len(cells),
        "pass": worst["speedup"] >= args.min_ratio,
    }

    hi = [
        c
        for c in cells
        if c["shards"] >= args.hi_shards and c["threads"] >= args.hi_threads
    ]
    if hi:
        best = max(hi, key=lambda c: c["speedup"])
        scaling_win = {
            "hi_ratio": args.hi_ratio,
            "hi_shards": args.hi_shards,
            "hi_threads": args.hi_threads,
            "best_speedup": best["speedup"],
            "best_point": {
                "shards": best["shards"],
                "threads": best["threads"],
                "mix": best["mix"],
            },
            "pass": best["speedup"] >= args.hi_ratio,
        }
    else:
        scaling_win = {
            "hi_ratio": args.hi_ratio,
            "hi_shards": args.hi_shards,
            "hi_threads": args.hi_threads,
            "skipped": "no sweep point at >= %d shards and >= %d threads"
            % (args.hi_shards, args.hi_threads),
            "pass": True,
        }

    crossover = {}
    for c in cells:
        key = "K=%d %s" % (c["shards"], c["mix"])
        if key not in crossover:
            crossover[key] = c["crossover_threads"]

    merged = {
        "schema": doc.get("schema", 1),
        "bench": "fig6_sharded",
        "config": doc.get("config", {}),
        "results": doc.get("results", []),
        "crossover_threads": crossover,
        "gates": {"no_regression": no_regression, "scaling_win": scaling_win},
    }
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")

    ok = True
    for name, g in merged["gates"].items():
        status = "SKIP" if "skipped" in g else ("PASS" if g["pass"] else "FAIL")
        ok = ok and g["pass"]
        detail = {k: v for k, v in g.items() if k != "pass"}
        print(f"shard_gate: {status} {name}: {detail}")
    print(f"shard_gate: crossover {crossover}")
    if not ok:
        sys.exit(1)
    print(f"shard_gate: all gates pass -> {args.out}")


if __name__ == "__main__":
    main()
