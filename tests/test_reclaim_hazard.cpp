// Hazard-pointer substrate tests: protection semantics, scan thresholds,
// amortized reclamation, and a use-after-free hunt under concurrent
// publish/retire churn (the classic HP torture test).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "reclaim/hazard.h"
#include "test_util.h"

namespace bref {
namespace {

struct Box {
  std::atomic<int64_t> payload{0};
  explicit Box(int64_t v) : payload(v) {}
  Box() = default;
  // Poison on destruction: a reader that observes -1 through a pointer it
  // protected has proof the node was freed while protected. (Reads after
  // delete are UB; in practice the page stays mapped and the poison is
  // visible, which is what makes the churn test below effective even
  // without ASan.)
  ~Box() { payload.store(-1, std::memory_order_release); }
};

TEST(HazardPointers, UnprotectedRetiredNodesAreFreedByScan) {
  HazardPointers<Box, 2> hp;
  for (int i = 0; i < 8; ++i) hp.retire(0, new Box(i));
  hp.scan(0);
  EXPECT_EQ(hp.retired_count(0), 0u);
  EXPECT_EQ(hp.freed_count(), 8u);
}

TEST(HazardPointers, ProtectedNodeSurvivesScan) {
  HazardPointers<Box, 2> hp;
  std::atomic<Box*> src{new Box(42)};
  Box* p = hp.protect(0, 0, src);
  ASSERT_EQ(p, src.load());
  hp.retire(1, p);
  hp.scan(1);
  EXPECT_EQ(hp.retired_count(1), 1u);  // parked, not freed
  EXPECT_EQ(p->payload.load(), 42);    // still valid to dereference
  hp.clear(0);
  hp.scan(1);
  EXPECT_EQ(hp.retired_count(1), 0u);
  EXPECT_EQ(hp.freed_count(), 1u);
}

TEST(HazardPointers, ProtectRevalidatesUntilStable) {
  // protect() must never return a value that differs from the source at
  // announce time; swap the source concurrently and check the returned
  // pointer was the source's value at some protected instant.
  HazardPointers<Box, 1> hp;
  std::atomic<Box*> src{new Box(0)};
  std::atomic<bool> stop{false};
  Box* boxes[2] = {src.load(), new Box(1)};
  std::thread flipper([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed))
      src.store(boxes[(i++) & 1], std::memory_order_release);
  });
  for (int i = 0; i < 20000; ++i) {
    Box* p = hp.protect(1, 0, src);
    ASSERT_TRUE(p == boxes[0] || p == boxes[1]);
    // The slot must now hold exactly p.
    hp.clear(1);
  }
  stop = true;
  flipper.join();
  delete boxes[0];
  delete boxes[1];
}

TEST(HazardPointers, ScanThresholdScalesWithThreads) {
  HazardPointers<Box, 2> hp;
  hp.announce(0, 0, nullptr);
  const size_t t1 = hp.scan_threshold();
  hp.announce(7, 0, nullptr);  // raises the tid high-water mark to 8
  const size_t t8 = hp.scan_threshold();
  EXPECT_EQ(t1, 2u * 1u * 2u);
  EXPECT_EQ(t8, 2u * 8u * 2u);
}

TEST(HazardPointers, RetireTriggersAmortizedScan) {
  HazardPointers<Box, 2> hp;
  hp.announce(0, 0, nullptr);  // hwm = 1 -> threshold = 4
  for (int i = 0; i < 3; ++i) hp.retire(0, new Box(i));
  EXPECT_EQ(hp.freed_count(), 0u);  // below threshold: nothing freed yet
  hp.retire(0, new Box(3));         // hits threshold -> auto-scan
  EXPECT_EQ(hp.freed_count(), 4u);
}

TEST(HazardPointers, UseAfterFreeHuntUnderChurn) {
  // One shared slot is repeatedly swapped; readers protect-then-read,
  // writers swap-and-retire. ASan (or a poisoned payload) flags any
  // protection hole. Payload equality with the node's creation stamp
  // detects reuse-after-free even without a sanitizer.
  HazardPointers<Box, 1> hp;
  std::atomic<Box*> shared{new Box(1000)};
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  constexpr int kReaders = 2;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const int tid = r;
      while (!stop.load(std::memory_order_relaxed)) {
        Box* p = hp.protect(tid, 0, shared);
        // Freed boxes get payload -1 before delete (see writer); any read
        // of -1 is a protection violation.
        if (p->payload.load(std::memory_order_acquire) < 0)
          violations.fetch_add(1);
        hp.clear(tid);
      }
    });
  }
  std::thread writer([&] {
    const int tid = kReaders;
    for (int i = 0; i < 30000; ++i) {
      Box* fresh = new Box(1000 + i);
      Box* old = shared.exchange(fresh, std::memory_order_acq_rel);
      hp.retire(tid, old);  // freed by scan only once no slot protects it
    }
    stop = true;
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  hp.clear(0);
  hp.clear(1);
  hp.scan(kReaders);
  EXPECT_GT(hp.freed_count(), 0u);
  delete shared.load();  // the final swapped-in box was never retired
}

}  // namespace
}  // namespace bref
