// Unit and stress tests for the substrates: EBR, userspace RCU, RLU.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "epoch/ebr.h"
#include "rcu/urcu.h"
#include "rlu/rlu.h"
#include "test_util.h"

namespace bref {
namespace {

// ---------- EBR ----------

TEST(Ebr, RetiredObjectsFreedOnTeardown) {
  std::atomic<int> frees{0};
  struct Obj {
    std::atomic<int>* ctr;
    ~Obj() { ctr->fetch_add(1); }
  };
  {
    Ebr ebr;
    ebr.pin(0);
    for (int i = 0; i < 10; ++i) ebr.retire(0, new Obj{&frees});
    ebr.unpin(0);
    EXPECT_EQ(frees.load(), 0);  // nothing freed yet (no epoch pressure)
  }
  EXPECT_EQ(frees.load(), 10);  // destructor drains all bags
}

TEST(Ebr, EpochAdvancesWhenAllQuiescent) {
  Ebr ebr;
  ebr.pin(0);
  uint64_t e = ebr.epoch();
  ebr.unpin(0);
  EXPECT_TRUE(ebr.try_advance(e));
  EXPECT_EQ(ebr.epoch(), e + 1);
}

TEST(Ebr, EpochBlockedByPinnedThreadInOldEpoch) {
  Ebr ebr;
  ebr.pin(0);  // announces epoch e
  uint64_t e = ebr.epoch();
  EXPECT_TRUE(ebr.try_advance(e));  // pinned thread IS in epoch e: ok
  // Now thread 0 is still announcing e while global is e+1: blocked.
  EXPECT_FALSE(ebr.try_advance(e + 1));
  ebr.unpin(0);
  EXPECT_TRUE(ebr.try_advance(e + 1));
}

TEST(Ebr, GracePeriodProtectsPinnedReaders) {
  // An object retired while another thread is pinned must not be freed
  // until that thread unpins and two epochs pass.
  Ebr ebr;
  std::atomic<int> frees{0};
  struct Obj {
    std::atomic<int>* ctr;
    ~Obj() { ctr->fetch_add(1); }
  };
  ebr.pin(1);  // long-running reader
  ebr.pin(0);
  ebr.retire(0, new Obj{&frees});
  ebr.unpin(0);
  // Try hard to advance + trigger frees from thread 0's perspective.
  for (int i = 0; i < 10; ++i) {
    ebr.try_advance(ebr.epoch());
    ebr.pin(0);
    ebr.unpin(0);
  }
  EXPECT_EQ(frees.load(), 0);  // reader still pinned: epoch stuck
  ebr.unpin(1);
  for (int i = 0; i < 10; ++i) {
    ebr.try_advance(ebr.epoch());
    ebr.pin(0);
    ebr.unpin(0);
  }
  EXPECT_EQ(frees.load(), 1);
}

TEST(Ebr, ConcurrentRetireStress) {
  std::atomic<long> live{0};
  struct Obj {
    std::atomic<long>* ctr;
    explicit Obj(std::atomic<long>* c) : ctr(c) { ctr->fetch_add(1); }
    ~Obj() { ctr->fetch_sub(1); }
  };
  {
    Ebr ebr;
    testutil::run_threads(4, [&](int tid) {
      for (int i = 0; i < 5000; ++i) {
        ebr.pin(tid);
        ebr.retire(tid, new Obj(&live));
        ebr.unpin(tid);
      }
    });
    EXPECT_EQ(ebr.retired(), 4u * 5000u);
    EXPECT_GT(ebr.freed(), 0u);  // epochs advanced during the run
  }
  EXPECT_EQ(live.load(), 0);  // no leaks, no double frees
}

// ---------- URCU ----------

TEST(Urcu, SynchronizeWithNoReadersReturnsImmediately) {
  Urcu rcu;
  rcu.synchronize();
  SUCCEED();
}

TEST(Urcu, SynchronizeWaitsForActiveReader) {
  Urcu rcu;
  std::atomic<bool> sync_done{false};
  std::atomic<bool> release{false};
  rcu.read_lock(0);
  std::thread writer([&] {
    rcu.synchronize();
    sync_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(sync_done.load());
  release = true;
  rcu.read_unlock(0);
  writer.join();
  EXPECT_TRUE(sync_done.load());
}

TEST(Urcu, ReaderStartedAfterSnapshotDoesNotBlockSync) {
  Urcu rcu;
  // Reader enters and exits completely; then a second read section starts.
  rcu.read_lock(0);
  rcu.read_unlock(0);
  rcu.read_lock(0);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    rcu.synchronize();  // sees reader's CURRENT section; must wait for it
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  rcu.read_unlock(0);
  writer.join();
}

TEST(Urcu, GracePeriodStress) {
  // Classic RCU usage: writer swaps a pointer, synchronizes, then frees.
  // Readers must never observe freed memory (checked via a canary).
  Urcu rcu;
  struct Box {
    long canary = 42;
  };
  std::atomic<Box*> ptr{new Box};
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::thread writer([&] {
    for (int i = 0; i < 300; ++i) {
      Box* fresh = new Box;
      Box* old = ptr.exchange(fresh, std::memory_order_acq_rel);
      rcu.synchronize();
      old->canary = -1;  // poison before free to catch stragglers
      delete old;
    }
    stop = true;
  });
  testutil::run_threads(3, [&](int tid) {
    while (!stop.load(std::memory_order_acquire)) {
      rcu.read_lock(tid + 1);
      Box* b = ptr.load(std::memory_order_acquire);
      if (b->canary != 42) bad.fetch_add(1);
      rcu.read_unlock(tid + 1);
    }
  });
  writer.join();
  delete ptr.load();
  EXPECT_EQ(bad.load(), 0);
}

// ---------- RLU ----------

struct Cell {
  long value;
};

TEST(Rlu, ReadSeesInitialValue) {
  Rlu rlu;
  Cell* c = rlu.alloc<Cell>(Cell{7});
  Rlu::Session s(rlu, 0);
  EXPECT_EQ(s.dereference(c)->value, 7);
  s.unlock();
  Rlu::dealloc_unsafe(c);
}

TEST(Rlu, CommitPublishesWrite) {
  Rlu rlu;
  Cell* c = rlu.alloc<Cell>(Cell{1});
  {
    Rlu::Session s(rlu, 0);
    Cell* w = s.try_lock(c);
    ASSERT_NE(w, nullptr);
    w->value = 2;
    s.unlock();
  }
  {
    Rlu::Session s(rlu, 1);
    EXPECT_EQ(s.dereference(c)->value, 2);
    s.unlock();
  }
  EXPECT_EQ(rlu.total_commits(), 1u);
  Rlu::dealloc_unsafe(c);
}

TEST(Rlu, AbortDiscardsWrite) {
  Rlu rlu;
  Cell* c = rlu.alloc<Cell>(Cell{1});
  {
    Rlu::Session s(rlu, 0);
    Cell* w = s.try_lock(c);
    ASSERT_NE(w, nullptr);
    w->value = 99;
    s.abort();
  }
  {
    Rlu::Session s(rlu, 1);
    EXPECT_EQ(s.dereference(c)->value, 1);
    s.unlock();
  }
  EXPECT_EQ(rlu.total_aborts(), 1u);
  Rlu::dealloc_unsafe(c);
}

TEST(Rlu, WriterSeesOwnCopy) {
  Rlu rlu;
  Cell* c = rlu.alloc<Cell>(Cell{5});
  Rlu::Session s(rlu, 0);
  Cell* w = s.try_lock(c);
  w->value = 6;
  EXPECT_EQ(s.dereference(c)->value, 6);  // own uncommitted write visible
  s.unlock();
  Rlu::dealloc_unsafe(c);
}

TEST(Rlu, ConflictingLockFails) {
  Rlu rlu;
  Cell* c = rlu.alloc<Cell>(Cell{5});
  Rlu::Session s0(rlu, 0);
  ASSERT_NE(s0.try_lock(c), nullptr);
  {
    Rlu::Session s1(rlu, 1);
    EXPECT_EQ(s1.try_lock(c), nullptr);  // held by thread 0
    s1.abort();
  }
  s0.unlock();
  Rlu::dealloc_unsafe(c);
}

TEST(Rlu, MultiObjectCommitIsAtomicUnderReaders) {
  // Invariant: a + b == 100 under transfers; readers within one session
  // must always observe the invariant.
  Rlu rlu;
  Cell* a = rlu.alloc<Cell>(Cell{50});
  Cell* b = rlu.alloc<Cell>(Cell{50});
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread writer([&] {
    Xoshiro256 rng(1);
    for (int i = 0; i < 2000; ++i) {
      for (;;) {
        Rlu::Session s(rlu, 0);
        Cell* wa = s.try_lock(a);
        Cell* wb = wa != nullptr ? s.try_lock(b) : nullptr;
        if (wa == nullptr || wb == nullptr) {
          s.abort();
          continue;
        }
        long d = static_cast<long>(rng.next_range(10)) - 5;
        wa->value += d;
        wb->value -= d;
        s.unlock();
        break;
      }
    }
    stop = true;
  });
  testutil::run_threads(3, [&](int tid) {
    while (!stop.load(std::memory_order_acquire)) {
      Rlu::Session s(rlu, tid + 1);
      long sum = s.dereference(a)->value + s.dereference(b)->value;
      if (sum != 100) violations.fetch_add(1);
      s.unlock();
    }
  });
  writer.join();
  EXPECT_EQ(violations.load(), 0);
  Rlu::dealloc_unsafe(a);
  Rlu::dealloc_unsafe(b);
}

TEST(Rlu, FreedObjectsReclaimedSafely) {
  Rlu rlu;
  // Chain a -> b -> c; unlink b and free it while readers walk the chain.
  struct Link {
    long id;
    Link* next;
  };
  Link* c = rlu.alloc<Link>(Link{3, nullptr});
  Link* b = rlu.alloc<Link>(Link{2, c});
  Link* a = rlu.alloc<Link>(Link{1, b});
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Rlu::Session s(rlu, 1);
      Link* n = s.dereference(a);
      long prev = 0;
      while (n != nullptr) {
        if (n->id <= prev) bad.fetch_add(1);
        prev = n->id;
        n = n->next != nullptr ? s.dereference(n->next) : nullptr;
      }
      s.unlock();
    }
  });
  {
    Rlu::Session s(rlu, 0);
    Link* wa = s.try_lock(a);
    ASSERT_NE(wa, nullptr);
    wa->next = c;
    s.free_obj(b);
    s.unlock();
  }
  // Force the deferred free (double-buffered: needs one more commit).
  {
    Rlu::Session s(rlu, 0);
    Link* wa = s.try_lock(a);
    wa->id = 1;
    s.unlock();
  }
  stop = true;
  reader.join();
  EXPECT_EQ(bad.load(), 0);
  Rlu::dealloc_unsafe(a);
  Rlu::dealloc_unsafe(c);
}

TEST(Rlu, ConcurrentCountersStress) {
  Rlu rlu;
  constexpr int kCells = 8;
  Cell* cells[kCells];
  for (auto& c : cells) c = rlu.alloc<Cell>(Cell{0});
  constexpr int kThreads = 4;
  constexpr int kIncs = 2000;
  testutil::run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(tid + 10);
    for (int i = 0; i < kIncs; ++i) {
      int target = static_cast<int>(rng.next_range(kCells));
      for (;;) {
        Rlu::Session s(rlu, tid);
        Cell* w = s.try_lock(cells[target]);
        if (w == nullptr) {
          s.abort();
          continue;
        }
        w->value += 1;
        s.unlock();
        break;
      }
    }
  });
  long total = 0;
  {
    Rlu::Session s(rlu, 0);
    for (auto* c : cells) total += s.dereference(c)->value;
    s.unlock();
  }
  EXPECT_EQ(total, long(kThreads) * kIncs);
  for (auto* c : cells) Rlu::dealloc_unsafe(c);
}

}  // namespace
}  // namespace bref
