// Value-parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P)
// over the implementation registry, driven through the bref::Set facade:
//
//   * AllImplsProperty  - every implementation x the core set properties
//                         (model equivalence, RQ slicing, idempotence).
//   * LinRqProperty     - linearizable implementations x concurrent
//                         happens-before visibility properties.
//   * RelaxationSweep   - relaxation-capable implementations x relax
//                         threshold T: point ops stay linearizable
//                         (per-key audit) and quiescent range queries stay
//                         exact for every T — only concurrent RQ freshness
//                         is traded away (Fig. 5).
//   * ReclaimSweep      - reclamation-capable implementations x
//                         reclamation on/off.
//
// The two option sweeps enumerate the ImplRegistry filtered by the
// capability under test instead of naming implementations, so a new
// technique with the capability (LFCA was the first) is swept with no test
// edits.
//
// These complement the typed suites (compile-time enumeration) with
// combinatorial run-time sweeps the typed machinery cannot express.
// Worker threads hold ThreadSessions pinned to their dense ids.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "api/any_set.h"
#include "api/set.h"
#include "common/random.h"
#include "test_util.h"
#include "validation/history.h"
#include "validation/wing_gong.h"

namespace bref {
namespace {

// ---------------------------------------------------------------------------
// AllImplsProperty: name-parameterized over every implementation.
// ---------------------------------------------------------------------------

class AllImplsProperty : public ::testing::TestWithParam<std::string> {
 protected:
  Set ds = Set::create(GetParam());
  ThreadSession s = ds.session(0);
};

TEST_P(AllImplsProperty, MatchesModelThroughRandomOps) {
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(31);
  for (int i = 0; i < 2000; ++i) {
    const KeyT k = 1 + static_cast<KeyT>(rng.next_range(150));
    const ValT v = static_cast<ValT>(rng.next_u64() % 1000);
    switch (rng.next_range(3)) {
      case 0:
        EXPECT_EQ(s.insert(k, v), model.emplace(k, v).second);
        break;
      case 1:
        EXPECT_EQ(s.remove(k), model.erase(k) > 0);
        break;
      default: {
        ValT got = 0;
        const auto it = model.find(k);
        EXPECT_EQ(s.contains(k, &got), it != model.end());
        if (it != model.end()) {
          EXPECT_EQ(got, it->second);
        }
        break;
      }
    }
  }
  EXPECT_TRUE(testutil::matches_model(ds, model));
  EXPECT_TRUE(ds.check_invariants());
}

TEST_P(AllImplsProperty, QuiescentRangeQueryIsExactModelSlice) {
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(37);
  for (int i = 0; i < 600; ++i) {
    const KeyT k = 1 + static_cast<KeyT>(rng.next_range(400));
    if (rng.next_range(4) == 0) {
      s.remove(k);
      model.erase(k);
    } else {
      if (s.insert(k, k * 3)) model.emplace(k, k * 3);
    }
  }
  RangeSnapshot out;
  for (int i = 0; i < 40; ++i) {
    const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(400));
    const KeyT hi = lo + static_cast<KeyT>(rng.next_range(120));
    s.range_query(lo, hi, out);
    std::vector<std::pair<KeyT, ValT>> expect;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it)
      expect.emplace_back(it->first, it->second);
    EXPECT_EQ(out, expect) << "[" << lo << "," << hi << "] on " << GetParam();
  }
}

TEST_P(AllImplsProperty, EmptyAndSingletonRangeEdgeCases) {
  RangeSnapshot out;
  out.buffer().assign({{1, 1}});            // stale garbage
  EXPECT_EQ(s.range_query(10, 20, out), 0u);  // empty structure
  EXPECT_TRUE(out.empty());                   // out must be cleared
  EXPECT_EQ(s.range_query(20, 10, out), 0u);  // inverted bounds
  ASSERT_TRUE(s.insert(15, 150));
  EXPECT_EQ(s.range_query(15, 15, out), 1u);  // singleton inclusive
  EXPECT_EQ(out.front(), (std::pair<KeyT, ValT>{15, 150}));
  EXPECT_EQ(s.range_query(16, 20, out), 0u);  // just above
  EXPECT_EQ(s.range_query(10, 14, out), 0u);  // just below
}

TEST_P(AllImplsProperty, InsertRemoveIdempotenceAtBoundaries) {
  EXPECT_FALSE(s.remove(7));  // remove from empty
  EXPECT_TRUE(s.insert(7, 70));
  EXPECT_FALSE(s.insert(7, 71));  // duplicate keeps original value
  EXPECT_EQ(s.get(7), std::optional<ValT>(70));
  EXPECT_TRUE(s.remove(7));
  EXPECT_FALSE(s.remove(7));
  EXPECT_FALSE(s.contains(7));
  EXPECT_EQ(ds.size_slow(), 0u);
}

TEST_P(AllImplsProperty, RegistryMetadataConsistent) {
  EXPECT_EQ(ds.name(), GetParam());
  ImplDescriptor desc;
  ASSERT_TRUE(ImplRegistry::instance().find(GetParam(), &desc));
  EXPECT_EQ(ds.capabilities().linearizable_rq, desc.caps.linearizable_rq);
  EXPECT_EQ(ds.capabilities().linearizable_rq,
            GetParam().rfind("Unsafe-", 0) != 0);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllImplsProperty, ::testing::ValuesIn(any_set_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---------------------------------------------------------------------------
// LinRqProperty: concurrent visibility for linearizable implementations.
// ---------------------------------------------------------------------------

class LinRqProperty : public ::testing::TestWithParam<std::string> {
 protected:
  Set ds = Set::create(GetParam());
};

TEST_P(LinRqProperty, CompletedUpdateVisibleToLaterRangeQuery) {
  // Herlihy-Wing real-time order: an update that returned before the RQ
  // started must be in (or out of) the snapshot accordingly. One writer
  // alternates insert/remove of a sentinel key and immediately range-
  // queries; interfering churn runs on *other* keys.
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread churn([&] {
    ThreadSession cs = ds.session(1);
    Xoshiro256 rng(3);
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT k = 100 + static_cast<KeyT>(rng.next_range(200));
      if ((i++ & 1) != 0)
        cs.insert(k, k);
      else
        cs.remove(k);
    }
  });
  ThreadSession s = ds.session(0);
  RangeSnapshot out;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(s.insert(50, i));
    s.range_query(40, 60, out);
    bool seen = false;
    for (const auto& [k, v] : out) seen |= (k == 50);
    if (!seen) violations.fetch_add(1);
    ASSERT_TRUE(s.remove(50));
    s.range_query(40, 60, out);
    for (const auto& [k, v] : out)
      if (k == 50) violations.fetch_add(1);
  }
  stop = true;
  churn.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(LinRqProperty, ConcurrentBurstsPassWingGongAudit) {
  // Short recorded bursts over 3 hot keys, audited exhaustively. This is
  // the registry-driven twin of the typed RecordedAudit suite.
  for (int burst = 0; burst < 15; ++burst) {
    validation::History pre;
    for (auto& [k, v] : ds.to_vector()) {
      validation::Op op;
      op.kind = validation::OpKind::kInsert;
      op.key = k;
      op.val = v;
      op.result = true;
      op.invoke_ns = 2 * pre.size();
      op.response_ns = 2 * pre.size() + 1;
      pre.push_back(op);
    }
    std::vector<validation::ThreadLog> logs;
    for (int t = 0; t < 3; ++t) logs.emplace_back(t);
    testutil::run_threads(3, [&](int t) {
      ThreadSession s = ds.session(t);
      Xoshiro256 rng(burst * 17 + t + 1);
      RangeSnapshot out;
      for (int i = 0; i < 4; ++i) {
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(3));
        const uint64_t t0 = validation::now_ns();
        switch (rng.next_range(4)) {
          case 0: {
            const bool r = s.insert(k, burst * 10 + i);
            logs[t].record_point(validation::OpKind::kInsert, k,
                                 burst * 10 + i, r, t0,
                                 validation::now_ns());
            break;
          }
          case 1: {
            const bool r = s.remove(k);
            logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                                 validation::now_ns());
            break;
          }
          case 2: {
            ValT v = 0;
            const bool r = s.contains(k, &v);
            logs[t].record_point(validation::OpKind::kContains, k, r ? v : 0,
                                 r, t0, validation::now_ns());
            break;
          }
          default: {
            s.range_query(1, 3, out);
            // Snapshot form: keeps the rq_ts stamp in the audited Op.
            logs[t].record_rq(out, t0, validation::now_ns());
            break;
          }
        }
      }
    });
    validation::History h = validation::merge(logs);
    h.insert(h.end(), pre.begin(), pre.end());
    // @ts-aware form: where the implementation reports snapshot timestamps
    // (Bundle and the EBR-RQ family), the witness must also order range
    // queries by their stamps; elsewhere it degrades to the plain check.
    auto verdict = validation::check_linearizable_with_ts(h);
    ASSERT_TRUE(verdict.linearizable)
        << GetParam() << " burst " << burst << ": " << verdict.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, LinRqProperty,
    ::testing::ValuesIn(any_set_linearizable_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---------------------------------------------------------------------------
// RelaxationSweep: relaxation-capable implementations x threshold T (the
// Fig. 5 knob), enumerated from the registry.
// ---------------------------------------------------------------------------

struct RelaxParam {
  std::string impl;
  uint64_t relax_t;
};

std::vector<RelaxParam> relaxation_sweep_params() {
  std::vector<RelaxParam> out;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.caps.relaxation)
      for (uint64_t t : {1, 2, 5, 50}) out.push_back({d.name, t});
  return out;
}

class RelaxationSweep : public ::testing::TestWithParam<RelaxParam> {
 protected:
  Set ds = Set::create(GetParam().impl,
                       SetOptions{.relax_threshold = GetParam().relax_t});
};

TEST_P(RelaxationSweep, QuiescentRangeQueriesStayExact) {
  // Relaxation postpones globalTs advances; once updates are quiescent the
  // newest entry of every bundle satisfies any snapshot, so range queries
  // must still be exact — for every T including "never advance"-like ones.
  std::map<KeyT, ValT> model;
  ThreadSession s = ds.session(0);
  Xoshiro256 rng(GetParam().relax_t * 7 + 1);
  for (int i = 0; i < 800; ++i) {
    const KeyT k = 1 + static_cast<KeyT>(rng.next_range(300));
    if (rng.next_range(3) == 0) {
      s.remove(k);
      model.erase(k);
    } else if (s.insert(k, k + 5)) {
      model.emplace(k, k + 5);
    }
  }
  RangeSnapshot out;
  s.range_query(1, 300, out);
  std::vector<std::pair<KeyT, ValT>> expect(model.begin(), model.end());
  EXPECT_EQ(out, expect);
  EXPECT_TRUE(ds.check_invariants());
}

TEST_P(RelaxationSweep, PointOpsRemainLinearizableUnderRelaxation) {
  // Fig. 5 trades only RQ freshness; insert/remove/contains never consult
  // timestamps, so their histories must stay linearizable for any T.
  // Audited per key (point ops on distinct keys commute).
  std::vector<validation::ThreadLog> logs;
  for (int t = 0; t < 3; ++t) logs.emplace_back(t);
  testutil::run_threads(3, [&](int t) {
    ThreadSession s = ds.session(t);
    Xoshiro256 rng(GetParam().relax_t * 13 + t);
    for (int i = 0; i < 400; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(8));
      const uint64_t t0 = validation::now_ns();
      switch (rng.next_range(3)) {
        case 0: {
          const bool r = s.insert(k, t * 1000 + i);
          logs[t].record_point(validation::OpKind::kInsert, k, t * 1000 + i,
                               r, t0, validation::now_ns());
          break;
        }
        case 1: {
          const bool r = s.remove(k);
          logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                               validation::now_ns());
          break;
        }
        default: {
          // Presence-only read: record without the value so per-key
          // auditing doesn't need to thread written values through.
          const bool r = s.contains(k, nullptr);
          logs[t].record_point(validation::OpKind::kContains, k, 0, r, t0,
                               validation::now_ns());
          break;
        }
      }
    }
  });
  validation::History h = validation::merge(logs);
  // Strip values from the audit (concurrent inserts of the same key with
  // different values make value-tracking ambiguous for presence checks).
  for (auto& op : h) op.val = 0;
  auto verdict = validation::check_per_key(h);
  EXPECT_TRUE(verdict.linearizable) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(
    RegistryTimesT, RelaxationSweep,
    ::testing::ValuesIn(relaxation_sweep_params()),
    [](const ::testing::TestParamInfo<RelaxParam>& info) {
      std::string n = info.param.impl;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + "_T" + std::to_string(info.param.relax_t);
    });

// ---------------------------------------------------------------------------
// ReclaimSweep: reclamation-capable implementations x reclamation on/off
// (the Table 1 knob), enumerated from the registry. The assertions check
// snapshot consistency, so the filter also requires linearizable_rq — the
// Unsafe baselines can reclaim but exist to violate exactly this.
// ---------------------------------------------------------------------------

struct ReclaimParam {
  std::string impl;
  bool reclaim;
};

std::vector<ReclaimParam> reclaim_sweep_params() {
  std::vector<ReclaimParam> out;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.caps.reclamation && d.caps.linearizable_rq)
      for (bool r : {false, true}) out.push_back({d.name, r});
  return out;
}

class ReclaimSweep : public ::testing::TestWithParam<ReclaimParam> {
 protected:
  Set ds = Set::create(GetParam().impl,
                       SetOptions{.reclaim = GetParam().reclaim});
};

TEST_P(ReclaimSweep, ChurnWithRangeQueriesKeepsSnapshotsConsistent) {
  constexpr KeyT kSpace = 500;
  {
    ThreadSession s = ds.session(0);
    for (KeyT k = 1; k <= kSpace; k += 2) s.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<long> failures{0};
  std::thread rq_thread([&] {
    ThreadSession s = ds.session(3);
    RangeSnapshot out;
    Xoshiro256 rng(23);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(kSpace - 50));
      s.range_query(lo, lo + 50, out);
      if (!testutil::sorted_in_range(out, lo, lo + 50)) failures.fetch_add(1);
    }
  });
  testutil::run_threads(2, [&](int tid) {
    ThreadSession s = ds.session(tid);
    Xoshiro256 rng(tid + 41);
    for (int i = 0; i < 3000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  stop = true;
  rq_thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(ds.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    RegistryTimesReclaim, ReclaimSweep,
    ::testing::ValuesIn(reclaim_sweep_params()),
    [](const ::testing::TestParamInfo<ReclaimParam>& info) {
      std::string n = info.param.impl;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + (info.param.reclaim ? "_reclaim" : "_leaky");
    });

// ---------------------------------------------------------------------------
// Minimality (the paper's core claim #2): a bundled range query traverses
// exactly the nodes of its snapshot inside the range — never multiple
// versions of a key, never revisits — regardless of concurrent updates.
// Verified against the structures' in-range visit counters.
// ---------------------------------------------------------------------------

template <typename DS>
void expect_rq_minimality_under_churn() {
  DS ds;
  constexpr KeyT kSpace = 2000;
  for (KeyT k = 1; k <= kSpace; k += 2) ds.insert(0, k, k);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::atomic<uint64_t> rqs_done{0};
  std::thread rq_thread([&] {
    std::vector<std::pair<KeyT, ValT>> out;
    Xoshiro256 rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(kSpace - 200));
      ds.range_query(3, lo, lo + 200, out);
      if (ds.last_rq_in_range_visits(3) != out.size())
        violations.fetch_add(1);
      rqs_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  testutil::run_threads(2, [&](int tid) {
    Xoshiro256 rng(tid + 61);
    for (int i = 0; i < 6000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (rng.next_range(2) == 0)
        ds.insert(tid, k, k);
      else
        ds.remove(tid, k);
    }
  });
  stop = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(rqs_done.load(), 0u);
}

TEST(RqMinimality, ListVisitsExactlyTheSnapshotInRange) {
  expect_rq_minimality_under_churn<BundleListSet>();
}

TEST(RqMinimality, SkipListVisitsExactlyTheSnapshotInRange) {
  expect_rq_minimality_under_churn<BundleSkipListSet>();
}

// ---------------------------------------------------------------------------
// Snapshot timestamps under concurrency: monotone per querying thread and
// consistent with the structure's global clock.
// ---------------------------------------------------------------------------

TEST(SnapshotTimestamp, MonotoneUnderConcurrentUpdates) {
  Set ds = Set::create("Bundle-skiplist");
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    ThreadSession s = ds.session(1);
    Xoshiro256 rng(9);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(500));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  ThreadSession s = ds.session(0);
  RangeSnapshot snap;
  timestamp_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    s.range_query(1, 500, snap);
    ASSERT_TRUE(snap.has_timestamp());
    ASSERT_GE(snap.timestamp(), prev) << "snapshot time ran backwards";
    prev = snap.timestamp();
  }
  stop = true;
  churn.join();
}

}  // namespace
}  // namespace bref
