// Linearizability-focused tests for range queries.
//
// The workhorse is the prefix/suffix-closure property: when each updater
// thread inserts (or removes) the keys of a private stripe in a known
// order, any linearizable snapshot must contain, per stripe, exactly a
// prefix (resp. leave exactly a suffix) of that order — a hole proves the
// query mixed two points in time. The Unsafe variants are excluded: they
// exist to demonstrate precisely this violation.
//
// A second family forces the paper's Section 3.3 interleaving with sync
// hooks: an update stalls after its linearization point but before
// finalizing its bundles; a contains() already sees the key, so a
// subsequent range query must block on the pending entry and include it.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sync_hooks.h"
#include "test_util.h"

namespace bref {
namespace {

constexpr int kUpdaters = 3;

template <typename DS>
class RqLinearizability : public ::testing::Test {
 protected:
  DS ds;
};

TYPED_TEST_SUITE(RqLinearizability, testutil::LinearizableSetTypes);

// Per-stripe prefix check: stripe keys are 1+t, 1+t+S, 1+t+2S, ... inserted
// in ascending order by thread t (stride S = kUpdaters).
::testing::AssertionResult stripes_are_prefixes(
    const std::vector<std::pair<KeyT, ValT>>& out, KeyT max_index) {
  // seen[t] collects stripe indices for thread t.
  std::vector<std::vector<KeyT>> seen(kUpdaters);
  for (const auto& [k, v] : out) {
    KeyT t = (k - 1) % kUpdaters;
    seen[t].push_back((k - 1) / kUpdaters);
  }
  for (int t = 0; t < kUpdaters; ++t) {
    for (size_t i = 0; i < seen[t].size(); ++i) {
      if (seen[t][i] != static_cast<KeyT>(i))
        return ::testing::AssertionFailure()
               << "stripe " << t << " has a hole: index " << seen[t][i]
               << " at position " << i << " (snapshot mixed two times)";
      if (seen[t][i] > max_index)
        return ::testing::AssertionFailure()
               << "stripe " << t << " contains unexpected index";
    }
  }
  return ::testing::AssertionSuccess();
}

TYPED_TEST(RqLinearizability, InsertOnlySnapshotsArePrefixClosed) {
  constexpr KeyT kPerThread = 800;
  std::atomic<bool> done{false};
  std::atomic<long> violations{0};
  std::thread rq_thread([&] {
    TypedSession<TypeParam> s(this->ds, kUpdaters);
    RangeSnapshot out;
    while (!done.load(std::memory_order_acquire)) {
      s.range_query(1, kUpdaters * kPerThread + 1, out);
      if (!testutil::sorted_in_range(out, 1, kUpdaters * kPerThread + 1) ||
          !stripes_are_prefixes(out.items(), kPerThread)) {
        violations.fetch_add(1);
      }
    }
  });
  testutil::run_sessions<TypeParam>(this->ds, kUpdaters, [&](auto& s) {
    for (KeyT i = 0; i < kPerThread; ++i)
      ASSERT_TRUE(s.insert(1 + s.tid() + i * kUpdaters, i));
  });
  done = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(this->ds.size_slow(), size_t(kUpdaters) * kPerThread);
}

TYPED_TEST(RqLinearizability, RemoveOnlySnapshotsAreSuffixClosed) {
  constexpr KeyT kPerThread = 600;
  for (int t = 0; t < kUpdaters; ++t)
    for (KeyT i = 0; i < kPerThread; ++i)
      ASSERT_TRUE(this->ds.insert(0, 1 + t + i * kUpdaters, i));
  std::atomic<bool> done{false};
  std::atomic<long> violations{0};
  std::thread rq_thread([&] {
    TypedSession<TypeParam> s(this->ds, kUpdaters);
    RangeSnapshot out;
    while (!done.load(std::memory_order_acquire)) {
      s.range_query(1, kUpdaters * kPerThread + 1, out);
      // Removals go in ascending stripe order, so what remains of each
      // stripe must be a contiguous suffix: indices i..kPerThread-1.
      std::vector<std::vector<KeyT>> seen(kUpdaters);
      for (const auto& [k, v] : out)
        seen[(k - 1) % kUpdaters].push_back((k - 1) / kUpdaters);
      for (int t = 0; t < kUpdaters; ++t) {
        for (size_t i = 1; i < seen[t].size(); ++i)
          if (seen[t][i] != seen[t][i - 1] + 1) violations.fetch_add(1);
        if (!seen[t].empty() && seen[t].back() != kPerThread - 1)
          violations.fetch_add(1);
      }
    }
  });
  testutil::run_sessions<TypeParam>(this->ds, kUpdaters, [&](auto& s) {
    for (KeyT i = 0; i < kPerThread; ++i)
      ASSERT_TRUE(s.remove(1 + s.tid() + i * kUpdaters));
  });
  done = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(this->ds.size_slow(), 0u);
}

TYPED_TEST(RqLinearizability, InsertOnlySnapshotSizesAreMonotonic) {
  constexpr KeyT kPerThread = 600;
  std::atomic<bool> done{false};
  std::atomic<long> violations{0};
  std::thread rq_thread([&] {
    TypedSession<TypeParam> s(this->ds, kUpdaters);
    RangeSnapshot out;
    size_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      size_t n = s.range_query(1, kUpdaters * kPerThread + 1, out);
      if (n < prev) violations.fetch_add(1);  // sets only grow
      prev = n;
    }
  });
  testutil::run_sessions<TypeParam>(this->ds, kUpdaters, [&](auto& s) {
    for (KeyT i = 0; i < kPerThread; ++i)
      s.insert(1 + s.tid() + i * kUpdaters, i);
  });
  done = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
}

TYPED_TEST(RqLinearizability, SingleKeyChurnNeverDuplicated) {
  // One key flaps while neighbours are stable; every snapshot must contain
  // the stable neighbours exactly once and the flapping key at most once.
  // (Exercises EBR-RQ's announce/limbo dedupe in particular.)
  constexpr KeyT kFlap = 500;
  TypedSession<TypeParam> s0(this->ds, 0);
  s0.insert(kFlap - 10, 1);
  s0.insert(kFlap + 10, 2);
  std::atomic<bool> done{false};
  std::atomic<long> violations{0};
  std::thread rq_thread([&] {
    TypedSession<TypeParam> s(this->ds, 1);
    RangeSnapshot out;
    while (!done.load(std::memory_order_acquire)) {
      s.range_query(kFlap - 10, kFlap + 10, out);
      int stable = 0, flap = 0;
      for (const auto& [k, v] : out) {
        if (k == kFlap - 10 || k == kFlap + 10) ++stable;
        if (k == kFlap) ++flap;
      }
      if (stable != 2 || flap > 1 || out.size() != size_t(stable + flap))
        violations.fetch_add(1);
    }
  });
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(s0.insert(kFlap, i));
    ASSERT_TRUE(s0.remove(kFlap));
  }
  done = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
}

// ---- The paper's Section 3.3 interleaving, forced via sync hooks --------
// (White-box scenarios below stay on the raw implementation interface: they
// orchestrate exact interleavings around bundle internals, beneath the
// session facade.)

// Gate shared between the stalled updater and the test body.
std::atomic<bool> g_stall_enabled{false};
std::atomic<bool> g_in_stall{false};
std::atomic<bool> g_release_stall{false};

void stall_before_finalize() {
  if (!g_stall_enabled.load(std::memory_order_acquire)) return;
  g_in_stall.store(true, std::memory_order_release);
  while (!g_release_stall.load(std::memory_order_acquire)) cpu_relax();
}

template <typename DS>
void pending_entry_scenario() {
  DS ds;
  ds.insert(0, 10, 1);
  ds.insert(0, 30, 3);
  g_stall_enabled = false;
  g_in_stall = false;
  g_release_stall = false;
  SyncHooks::before_finalize.store(&stall_before_finalize);
  g_stall_enabled = true;
  // T1: insert 20, stalling after the linearization point but before the
  // bundles are finalized.
  std::thread t1([&] { ds.insert(1, 20, 2); });
  while (!g_in_stall.load(std::memory_order_acquire)) cpu_relax();
  g_stall_enabled = false;  // only T1's insert stalls
  // The insert has linearized: contains() must already see it.
  EXPECT_TRUE(ds.contains(2, 20));
  // A range query covering 20 must now include it; it will block on the
  // pending bundle entry until T1 finalizes.
  std::atomic<bool> rq_done{false};
  std::vector<std::pair<KeyT, ValT>> out;
  std::thread t2([&] {
    ds.range_query(2, 15, 25, out);
    rq_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(rq_done.load()) << "range query did not wait for the "
                                  "linearized-but-unfinalized insert";
  g_release_stall = true;
  t1.join();
  t2.join();
  SyncHooks::reset();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 20);
}

TEST(PendingEntryScenario, BundledListWaitsAndIncludesKey) {
  pending_entry_scenario<BundleListSet>();
}
TEST(PendingEntryScenario, BundledSkipListWaitsAndIncludesKey) {
  pending_entry_scenario<BundleSkipListSet>();
}
TEST(PendingEntryScenario, BundledCitrusWaitsAndIncludesKey) {
  pending_entry_scenario<BundleCitrusSet>();
}

// ---- Algorithm 2 line 8: updates serialize behind a pending bundle ------
// Writer A stalls with its bundle entries still PENDING (between the
// linearization point and finalize). Writer B, updating a bundle A touched,
// must block inside PrepareBundle until A finalizes — otherwise B's entry
// could be ordered under A's and break the bundle's timestamp sorting.
// (In the lazy list this window is reachable because inserts lock only the
// predecessor: B can lock A's fresh node before A finalizes its bundle.)

TEST(PendingEntryScenario, ConcurrentUpdateWaitsForPendingBundle) {
  BundleListSet ds;
  ds.insert(0, 10, 1);
  ds.insert(0, 40, 4);
  g_stall_enabled = false;
  g_in_stall = false;
  g_release_stall = false;
  SyncHooks::before_finalize.store(&stall_before_finalize);
  g_stall_enabled = true;
  // A: insert 20 — prepares bundles of node(20) and node(10), linearizes,
  // then stalls with both entries PENDING.
  std::thread a([&] { ds.insert(1, 20, 2); });
  while (!g_in_stall.load(std::memory_order_acquire)) cpu_relax();
  g_stall_enabled = false;
  // B: insert 30 — pred is the (reachable, lockable) node 20 whose bundle
  // head is PENDING; B must block in prepare until A finalizes.
  std::atomic<bool> b_done{false};
  std::thread b([&] {
    ds.insert(2, 30, 3);
    b_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(b_done.load())
      << "update did not wait for the pending bundle entry";
  g_release_stall = true;
  a.join();
  b.join();
  SyncHooks::reset();
  EXPECT_TRUE(b_done.load());
  // Both updates landed and every bundle is strictly timestamp-ordered.
  EXPECT_TRUE(ds.check_invariants());
  std::vector<std::pair<KeyT, ValT>> out;
  ds.range_query(0, 0, 50, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1].first, 20);
  EXPECT_EQ(out[2].first, 30);
}

// ---- Citrus remove: the three structural cases (Section 6) --------------
// Each case is driven quiescently and verified through a full-range
// snapshot, which exercises the bundles the remove had to fix up (pred's
// child bundle, and for the two-children case the successor copy's two
// bundles plus the successor parent's splice).

class CitrusRemoveCases : public ::testing::Test {
 protected:
  // Keys chosen so the unbalanced Citrus tree takes a known shape:
  // insert order 50, 30, 70, 20, 40, 60, 80 gives a perfect 3-level tree.
  void build() {
    for (KeyT k : {50, 30, 70, 20, 40, 60, 80}) s.insert(k, k * 10);
  }
  std::vector<KeyT> snapshot_keys() {
    RangeSnapshot out;
    rq.range_query(0, 100, out);
    std::vector<KeyT> keys;
    for (auto& [k, v] : out) keys.push_back(k);
    return keys;
  }
  BundleCitrusSet ds;
  TypedSession<BundleCitrusSet> s{ds, 0};
  TypedSession<BundleCitrusSet> rq{ds, 1};
};

TEST_F(CitrusRemoveCases, LeafRemoval) {
  build();
  ASSERT_TRUE(s.remove(20));  // leaf
  EXPECT_EQ(snapshot_keys(), (std::vector<KeyT>{30, 40, 50, 60, 70, 80}));
  EXPECT_TRUE(ds.check_invariants());
}

TEST_F(CitrusRemoveCases, SingleChildSplice) {
  build();
  ASSERT_TRUE(s.remove(20));  // make 30 a single-child node (right=40)
  ASSERT_TRUE(s.remove(30));  // splice: pred(50).left -> 40
  EXPECT_EQ(snapshot_keys(), (std::vector<KeyT>{40, 50, 60, 70, 80}));
  EXPECT_TRUE(ds.check_invariants());
  ValT v = 0;
  EXPECT_TRUE(s.contains(40, &v));
  EXPECT_EQ(v, 400);
}

TEST_F(CitrusRemoveCases, TwoChildrenSuccessorMove) {
  build();
  // 50 has two children; its successor is 60 (leftmost of right subtree),
  // whose parent 70 != 50 — the four-bundle case: pred->copy, copy's two
  // child bundles, and 70's left-bundle splice to null.
  ASSERT_TRUE(s.remove(50));
  EXPECT_EQ(snapshot_keys(), (std::vector<KeyT>{20, 30, 40, 60, 70, 80}));
  EXPECT_TRUE(ds.check_invariants());
  // The moved successor keeps its value and remains fully functional.
  ValT v = 0;
  EXPECT_TRUE(s.contains(60, &v));
  EXPECT_EQ(v, 600);
  ASSERT_TRUE(s.insert(55, 550));
  EXPECT_EQ(snapshot_keys(), (std::vector<KeyT>{20, 30, 40, 55, 60, 70, 80}));
}

TEST_F(CitrusRemoveCases, TwoChildrenSuccessorIsDirectChild) {
  build();
  ASSERT_TRUE(s.remove(60));  // make 70's left null; succ(70)=80 direct
  ASSERT_TRUE(s.remove(70));  // two children? left=null now -> splice
  // 70 had only child 80 after 60's removal: single-child case again.
  EXPECT_EQ(snapshot_keys(), (std::vector<KeyT>{20, 30, 40, 50, 80}));
  // Now force a true direct-successor case: remove 30 (children 20, 40;
  // successor 40 is its direct right child).
  ASSERT_TRUE(s.remove(30));
  EXPECT_EQ(snapshot_keys(), (std::vector<KeyT>{20, 40, 50, 80}));
  EXPECT_TRUE(ds.check_invariants());
}

}  // namespace
}  // namespace bref
