// The observability suite: registry registration + snapshot shape, the
// log₂-histogram bucket math checked against exact sorted-sample
// quantiles, merge-on-read under an 8-thread recording storm (the TSan
// job runs this suite), Prometheus text exposition validated by the
// checked-in parser (including exemplar suffixes), GaugeSet instance
// churn, and the bref-trace layer: scratch builders, slot-pool
// accounting, the seqlock ring/board under a concurrent reader, the
// tail-biased capture policy, and histogram exemplars.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"
#include "obs/prom_validate.h"
#include "obs/trace.h"

namespace {

using namespace bref;
using namespace bref::obs;

// ---- bucket math -----------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(bucket_of(0), 0);
  EXPECT_EQ(bucket_of(1), 1);
  EXPECT_EQ(bucket_of(2), 2);
  EXPECT_EQ(bucket_of(3), 2);
  EXPECT_EQ(bucket_of(4), 3);
  EXPECT_EQ(bucket_of(7), 3);
  EXPECT_EQ(bucket_of(8), 4);
  EXPECT_EQ(bucket_of((1ull << 62) + 5), 63);
  EXPECT_EQ(bucket_of(~0ull), 63);  // clamped into the last bucket
}

// Interpolated quantiles from the log₂ buckets must land within one
// bucket width of the exact sorted-sample quantile — the accuracy bound
// DESIGN.md §7 claims.
TEST(Histogram, QuantilesTrackExactWithinBucketWidth) {
  Xoshiro256 rng(42);
  HistogramSnapshot h;
  std::vector<uint64_t> exact;
  for (int i = 0; i < 200000; ++i) {
    // Latency-shaped: a lognormal-ish body with a uniform far tail.
    const uint64_t v = (i % 100 == 0)
                           ? 1000000 + rng.next_range(9000000)
                           : 1000 + rng.next_range(200000);
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double est = h.quantile(q);
    const double ref = static_cast<double>(
        exact[static_cast<size_t>(q * (exact.size() - 1))]);
    // One log₂ bucket spans [2^(i-1), 2^i): a factor-of-two window.
    EXPECT_LE(est, ref * 2.0 + 1) << "q=" << q;
    EXPECT_GE(est, ref / 2.0 - 1) << "q=" << q;
  }
  EXPECT_NEAR(h.mean(),
              static_cast<double>(std::accumulate(exact.begin(), exact.end(),
                                                  uint64_t{0})) /
                  exact.size(),
              1e-6);
}

TEST(Histogram, SnapshotDeltaIsExact) {
  HistogramSnapshot a, b;
  for (uint64_t v : {1u, 5u, 5u, 100u}) a.record(v);
  b = a;
  for (uint64_t v : {7u, 9u}) b.record(v);
  b -= a;
  EXPECT_EQ(b.count, 2u);
  EXPECT_EQ(b.sum, 16u);
  EXPECT_EQ(b.buckets[bucket_of(7)] + b.buckets[bucket_of(9)], 2u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  HistogramSnapshot h;
  EXPECT_EQ(h.quantile(0.99), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

// ---- merge-on-read under concurrency ---------------------------------------

TEST(Registry, EightThreadRecordingMergesLosslessly) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  Counter& c = registry().counter("bref_test_merge_total", "test counter");
  Histogram& h =
      registry().histogram("bref_test_merge_seconds", "test histogram");
  const uint64_t before_c = c.value();
  const HistogramSnapshot before_h = h.snapshot();
  constexpr int kThreads = 8;
  constexpr uint64_t kPer = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        c.add(t);
        h.record(t, i % 1024);
      }
    });
  }
  for (auto& th : ts) th.join();
  // Quiescent now: merge-on-read must see every recorded event (the
  // approximation is only ever about in-flight increments).
  EXPECT_EQ(c.value() - before_c, kThreads * kPer);
  HistogramSnapshot after = h.snapshot();
  after -= before_h;
  EXPECT_EQ(after.count, kThreads * kPer);
}

// ---- registry identity + snapshot shape ------------------------------------

TEST(Registry, FindOrCreateReturnsSameInstance) {
  Counter& a = registry().counter("bref_test_identity_total", "help");
  Counter& b = registry().counter("bref_test_identity_total", "help");
  EXPECT_EQ(&a, &b);
  // Different labels = different series.
  Counter& c =
      registry().counter("bref_test_identity_total", "help", "k=\"v\"");
  EXPECT_NE(&a, &c);
}

TEST(Registry, JsonSnapshotContainsRegisteredSeries) {
  registry().counter("bref_test_json_total", "help").bump(3);
  registry().histogram("bref_test_json_seconds", "help").observe(1000);
  const std::string j = registry().json();
  EXPECT_NE(j.find("\"bref_test_json_total\""), std::string::npos);
  EXPECT_NE(j.find("\"bref_test_json_seconds\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

// ---- Prometheus exposition --------------------------------------------------

TEST(Prometheus, ExpositionValidatesAndCarriesSamples) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  registry()
      .counter("bref_test_prom_total", "prom test", "op=\"get\"")
      .bump(7);
  registry()
      .histogram("bref_test_prom_seconds", "prom test hist", "", 1e9)
      .observe(1500);  // 1.5µs
  const std::string text = registry().prometheus();
  std::string err;
  std::vector<PromSeries> series;
  ASSERT_TRUE(validate_prometheus(text, &err, &series)) << err;
  bool saw_counter = false, saw_inf = false;
  for (const auto& s : series) {
    if (s.name == "bref_test_prom_total") {
      saw_counter = true;
      EXPECT_GE(s.value, 7.0);
    }
    if (s.name == "bref_test_prom_seconds_bucket")
      for (const auto& [k, v] : s.labels)
        if (k == "le" && v == "+Inf") saw_inf = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_inf);
}

TEST(Prometheus, ValidatorRejectsMalformedPayloads) {
  std::string err;
  EXPECT_FALSE(validate_prometheus("9bad_name 1\n", &err));
  EXPECT_FALSE(validate_prometheus("m{l=unquoted} 1\n", &err));
  EXPECT_FALSE(validate_prometheus("m 1\nm 2\n# TYPE m counter\n", &err))
      << "TYPE after samples must fail";
  EXPECT_FALSE(validate_prometheus("m notanumber\n", &err));
  // Histogram with decreasing cumulative counts.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_count 5\n",
      &err));
  // Histogram missing +Inf.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n", &err));
}

// ---- GaugeSet instance churn ------------------------------------------------

TEST(GaugeSet, SourcesComeAndGoWithInstances) {
  static GaugeSet& gs = *new GaugeSet(GaugeSet::Agg::kSum,
                                      "bref_test_gaugeset", "churn test");
  EXPECT_EQ(gs.read(), 0.0);
  {
    GaugeSet::Source a = gs.add([] { return 3.0; });
    GaugeSet::Source b = gs.add([] { return 4.0; });
    EXPECT_EQ(gs.read(), 7.0);
    // Moves keep exactly one live registration.
    GaugeSet::Source c = std::move(a);
    EXPECT_EQ(gs.read(), 7.0);
  }
  EXPECT_EQ(gs.read(), 0.0) << "dead instances must leave no residue";
  GaugeSet::Source d = gs.add([] { return 9.0; });
  EXPECT_EQ(gs.read(), 9.0);
  d.reset();
  EXPECT_EQ(gs.read(), 0.0);
}

TEST(GaugeSet, MaxAggregationPicksLargest) {
  static GaugeSet& gs = *new GaugeSet(GaugeSet::Agg::kMax,
                                      "bref_test_gaugeset_max", "max test");
  GaugeSet::Source a = gs.add([] { return 2.0; });
  GaugeSet::Source b = gs.add([] { return 11.0; });
  GaugeSet::Source c = gs.add([] { return 5.0; });
  EXPECT_EQ(gs.read(), 11.0);
}

// ---- trace scratch builder --------------------------------------------------

TEST(TraceScratch, BuildsRecordWithRelativeSpans) {
  TraceScratch t;
  t.open(/*trace_id=*/0xabcd, /*op=*/3, /*worker=*/1, /*start_ns=*/1000,
         /*flags=*/kTraceClientStamped);
  t.stamp(TraceStage::kQueue, 1000, 1500);
  t.stamp(TraceStage::kExecute, 1500, 2500, /*aux8=*/0, /*aux16=*/2);
  t.finish(3000);
  const TraceRecord& r = t.record();
  EXPECT_EQ(r.trace_id, 0xabcdu);
  EXPECT_EQ(r.start_ns, 1000u);
  EXPECT_EQ(r.total_ns, 2000u);
  EXPECT_EQ(r.flags, kTraceClientStamped);
  ASSERT_EQ(r.nspans, 2);
  EXPECT_EQ(r.spans[0].stage, static_cast<uint8_t>(TraceStage::kQueue));
  EXPECT_EQ(r.spans[0].start_ns, 0u);
  EXPECT_EQ(r.spans[0].dur_ns, 500u);
  EXPECT_EQ(r.spans[1].start_ns, 500u);
  EXPECT_EQ(r.spans[1].dur_ns, 1000u);
  EXPECT_EQ(r.spans[1].aux16, 2);
}

TEST(TraceScratch, OverflowSetsTruncatedInsteadOfWriting) {
  TraceScratch t;
  t.open(1, 0, 0, 0, 0);
  for (int i = 0; i < kTraceMaxSpans + 5; ++i)
    t.stamp(TraceStage::kExecute, i, i + 1);
  const TraceRecord& r = t.record();
  EXPECT_EQ(r.nspans, kTraceMaxSpans);
  EXPECT_NE(r.flags & kTraceTruncated, 0);
}

TEST(TraceScratch, CoalesceExtendsLastSameStageSpan) {
  TraceScratch t;
  t.open(1, 0, 0, 100, 0);
  // 200 scan-chunk slices must stay ONE span with a slice count.
  for (int i = 0; i < 200; ++i)
    t.stamp_coalesce(TraceStage::kScanChunk, 100 + i * 10, 110 + i * 10);
  const TraceRecord& r = t.record();
  ASSERT_EQ(r.nspans, 1);
  EXPECT_EQ(r.spans[0].stage, static_cast<uint8_t>(TraceStage::kScanChunk));
  EXPECT_EQ(r.spans[0].aux16, 200);
  EXPECT_EQ(r.spans[0].dur_ns, 2000u);  // first start -> last end
}

// ---- scratch slot pool ------------------------------------------------------

TEST(TraceSlots, AcquireExhaustReleaseAccounting) {
  TraceSlots pool;
  std::vector<TraceScratch*> held;
  for (int i = 0; i < TraceSlots::kSlots; ++i) {
    TraceScratch* s = pool.acquire();
    ASSERT_NE(s, nullptr);
    held.push_back(s);
  }
  EXPECT_EQ(pool.in_use(), TraceSlots::kSlots);
  EXPECT_EQ(pool.acquire(), nullptr) << "exhausted pool must not block";
  for (TraceScratch* s : held) pool.release(s);
  EXPECT_EQ(pool.in_use(), 0) << "chaos-suite invariant: all slots return";
  EXPECT_NE(pool.acquire(), nullptr);
}

// ---- committed ring + board -------------------------------------------------

namespace {
TraceRecord make_record(uint64_t id, uint64_t total_ns) {
  TraceScratch t;
  t.open(id, 0, 0, id * 3, 0);
  t.stamp(TraceStage::kExecute, id * 3, id * 3 + total_ns);
  t.finish(id * 3 + total_ns);
  return t.record();
}
}  // namespace

TEST(TraceRing, WindowKeepsNewestAndCountsEvictions) {
  TraceRing ring;
  const uint64_t n = TraceRing::kCapacity + 300;
  for (uint64_t i = 1; i <= n; ++i) ring.push(make_record(i, i));
  EXPECT_EQ(ring.committed(), n);
  EXPECT_EQ(ring.dropped(), n - TraceRing::kCapacity);
  std::vector<TraceRecord> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), TraceRing::kCapacity);
  EXPECT_EQ(out.front().trace_id, n - TraceRing::kCapacity + 1);
  EXPECT_EQ(out.back().trace_id, n);
  TraceRecord r;
  EXPECT_TRUE(ring.find(n, r));
  EXPECT_EQ(r.total_ns, n);
  EXPECT_FALSE(ring.find(1, r)) << "evicted by the window";
}

TEST(TraceBoard, KeepsAllTimeSlowestAgainstChurn) {
  TraceBoard board;
  // One very slow early record, then a flood of fast ones.
  board.offer(make_record(999, 1'000'000));
  for (uint64_t i = 1; i <= 4096; ++i) board.offer(make_record(i, i % 100));
  TraceRecord r;
  EXPECT_TRUE(board.find(999, r)) << "the board is immune to ring churn";
  EXPECT_EQ(r.total_ns, 1'000'000u);
  std::vector<TraceRecord> out;
  board.snapshot(out);
  ASSERT_LE(out.size(), static_cast<size_t>(TraceBoard::kBoardSlots));
  bool has_slowest = false;
  for (const auto& rec : out) has_slowest |= rec.trace_id == 999;
  EXPECT_TRUE(has_slowest);
}

// The seqlock contract: one producer pushing, concurrent readers must
// never observe a torn record (every field derived from trace_id).
TEST(TraceRing, SeqlockReadersNeverObserveTornRecords) {
  TraceRing ring;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::vector<TraceRecord> out;
    TraceRecord r;
    while (!stop.load(std::memory_order_relaxed)) {
      out.clear();
      ring.snapshot(out);
      for (const TraceRecord& rec : out) {
        ASSERT_EQ(rec.start_ns, rec.trace_id * 3);
        ASSERT_EQ(rec.total_ns, rec.trace_id * 7);
        ASSERT_EQ(rec.nspans, 1);
      }
      ring.find(1, r);  // exercise the lookup path under churn too
    }
  });
  for (uint64_t i = 1; i <= 200'000; ++i) ring.push(make_record(i, i * 7));
  stop.store(true);
  reader.join();
  EXPECT_EQ(ring.committed(), 200'000u);
}

// ---- capture policy ---------------------------------------------------------

TEST(TracePolicy, ReservoirHonorsRateAndZeroDisables) {
  const uint32_t old = trace_sample_every().load();
  trace_sample_every().store(10);
  // Drain whatever countdown this thread carried in, then count over a
  // fresh window: ~one commit per 10 completions.
  for (int i = 0; i < 11; ++i) trace_reservoir_fires();
  int hits = 0;
  for (int i = 0; i < 100; ++i) hits += trace_reservoir_fires() ? 1 : 0;
  EXPECT_GE(hits, 9);
  EXPECT_LE(hits, 11);
  trace_sample_every().store(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(trace_reservoir_fires());
  trace_sample_every().store(old);
}

TEST(TracePolicy, ThresholdCommitsTheTailRegardlessOfSampling) {
  const uint32_t old_every = trace_sample_every().load();
  const uint64_t old_thr = trace_threshold_ns().load();
  trace_sample_every().store(0);  // reservoir off: threshold decides alone
  trace_threshold_ns().store(1'000'000);
  EXPECT_TRUE(trace_should_commit(1'000'000));
  EXPECT_TRUE(trace_should_commit(5'000'000));
  EXPECT_FALSE(trace_should_commit(999'999));
  trace_threshold_ns().store(0);  // 0 = commit everything
  EXPECT_TRUE(trace_should_commit(1));
  trace_threshold_ns().store(kTraceThresholdOff);
  EXPECT_FALSE(trace_should_commit(~0ull)) << "off + no reservoir = never";
  EXPECT_FALSE(trace_armed());
  trace_sample_every().store(old_every);
  trace_threshold_ns().store(old_thr);
}

// ---- thread-local stamping hook ---------------------------------------------

TEST(TraceHook, StampsOnlyWhileScopeActive) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  TraceScratch t;
  t.open(7, 0, 0, 0, 0);
  trace_stage(TraceStage::kShardPin, 0, 10);  // no scope: dropped
  {
    CurrentTraceScope scope(&t);
    trace_stage(TraceStage::kShardPin, 0, 10, 0, 4);
    {
      CurrentTraceScope inner(nullptr);  // nested suppression
      trace_stage(TraceStage::kShardCollect, 10, 20);
    }
    trace_stage(TraceStage::kShardCollect, 10, 30);
  }
  trace_stage(TraceStage::kFlush, 30, 40);  // scope gone: dropped
  const TraceRecord& r = t.record();
  ASSERT_EQ(r.nspans, 2);
  EXPECT_EQ(r.spans[0].stage, static_cast<uint8_t>(TraceStage::kShardPin));
  EXPECT_EQ(r.spans[0].aux16, 4);
  EXPECT_EQ(r.spans[1].stage, static_cast<uint8_t>(TraceStage::kShardCollect));
}

// ---- histogram exemplars ----------------------------------------------------

TEST(Exemplars, BucketRemembersLastCommittedTrace) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  Histogram& h = registry().histogram("bref_test_exemplar_seconds",
                                      "exemplar test", "", 1e9);
  h.observe(1500);
  h.set_exemplar(1500, 0xdeadbeefull);
  uint64_t value = 0, id = 0;
  ASSERT_TRUE(h.exemplar(bucket_of(1500), &value, &id));
  EXPECT_EQ(value, 1500u);
  EXPECT_EQ(id, 0xdeadbeefull);
  EXPECT_FALSE(h.exemplar(bucket_of(1ull << 40), &value, &id))
      << "untouched bucket has no exemplar";
  // Id 0 means "no trace" and must never install.
  Histogram& h2 = registry().histogram("bref_test_exemplar2_seconds",
                                       "exemplar test", "", 1e9);
  h2.set_exemplar(1500, 0);
  EXPECT_FALSE(h2.exemplar(bucket_of(1500), &value, &id));
}

TEST(Exemplars, ExpositionCarriesThemAndValidates) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  Histogram& h = registry().histogram("bref_test_exemplar_prom_seconds",
                                      "exemplar exposition test", "", 1e9);
  h.observe(2000);
  h.set_exemplar(2000, 0x1234ull);
  const std::string text = registry().prometheus();
  EXPECT_NE(text.find("# {trace_id=\"0000000000001234\"}"), std::string::npos);
  std::string err;
  std::vector<PromSeries> series;
  ASSERT_TRUE(validate_prometheus(text, &err, &series)) << err;
  bool saw = false;
  for (const auto& s : series)
    if (s.has_exemplar && s.name == "bref_test_exemplar_prom_seconds_bucket") {
      saw = true;
      ASSERT_EQ(s.exemplar_labels.size(), 1u);
      EXPECT_EQ(s.exemplar_labels[0].first, "trace_id");
      EXPECT_EQ(s.exemplar_labels[0].second, "0000000000001234");
      EXPECT_NEAR(s.exemplar_value, 2000.0 / 1e9, 1e-12);
    }
  EXPECT_TRUE(saw);
}

TEST(Exemplars, ValidatorRejectsMalformedSuffixes) {
  std::string err;
  EXPECT_FALSE(validate_prometheus("m 1 # trace_id=\"x\" 2\n", &err))
      << "exemplar labels must be braced";
  EXPECT_FALSE(validate_prometheus("m 1 # {trace_id=x} 2\n", &err))
      << "exemplar label values must be quoted";
  EXPECT_FALSE(validate_prometheus("m 1 # {trace_id=\"x\"} nope\n", &err))
      << "exemplar value must parse";
  EXPECT_TRUE(validate_prometheus("m 1 # {trace_id=\"x\"} 2\n", &err)) << err;
  EXPECT_TRUE(validate_prometheus("m 1 # {trace_id=\"x\"} 2 1700000000\n",
                                  &err))
      << err;
}

}  // namespace
