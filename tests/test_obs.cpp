// The observability suite: registry registration + snapshot shape, the
// log₂-histogram bucket math checked against exact sorted-sample
// quantiles, merge-on-read under an 8-thread recording storm (the TSan
// job runs this suite), Prometheus text exposition validated by the
// checked-in parser, GaugeSet instance churn, and the flight recorder's
// ring wraparound + sampling countdown.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"
#include "obs/prom_validate.h"
#include "obs/trace.h"

namespace {

using namespace bref;
using namespace bref::obs;

// ---- bucket math -----------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(bucket_of(0), 0);
  EXPECT_EQ(bucket_of(1), 1);
  EXPECT_EQ(bucket_of(2), 2);
  EXPECT_EQ(bucket_of(3), 2);
  EXPECT_EQ(bucket_of(4), 3);
  EXPECT_EQ(bucket_of(7), 3);
  EXPECT_EQ(bucket_of(8), 4);
  EXPECT_EQ(bucket_of((1ull << 62) + 5), 63);
  EXPECT_EQ(bucket_of(~0ull), 63);  // clamped into the last bucket
}

// Interpolated quantiles from the log₂ buckets must land within one
// bucket width of the exact sorted-sample quantile — the accuracy bound
// DESIGN.md §7 claims.
TEST(Histogram, QuantilesTrackExactWithinBucketWidth) {
  Xoshiro256 rng(42);
  HistogramSnapshot h;
  std::vector<uint64_t> exact;
  for (int i = 0; i < 200000; ++i) {
    // Latency-shaped: a lognormal-ish body with a uniform far tail.
    const uint64_t v = (i % 100 == 0)
                           ? 1000000 + rng.next_range(9000000)
                           : 1000 + rng.next_range(200000);
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double est = h.quantile(q);
    const double ref = static_cast<double>(
        exact[static_cast<size_t>(q * (exact.size() - 1))]);
    // One log₂ bucket spans [2^(i-1), 2^i): a factor-of-two window.
    EXPECT_LE(est, ref * 2.0 + 1) << "q=" << q;
    EXPECT_GE(est, ref / 2.0 - 1) << "q=" << q;
  }
  EXPECT_NEAR(h.mean(),
              static_cast<double>(std::accumulate(exact.begin(), exact.end(),
                                                  uint64_t{0})) /
                  exact.size(),
              1e-6);
}

TEST(Histogram, SnapshotDeltaIsExact) {
  HistogramSnapshot a, b;
  for (uint64_t v : {1u, 5u, 5u, 100u}) a.record(v);
  b = a;
  for (uint64_t v : {7u, 9u}) b.record(v);
  b -= a;
  EXPECT_EQ(b.count, 2u);
  EXPECT_EQ(b.sum, 16u);
  EXPECT_EQ(b.buckets[bucket_of(7)] + b.buckets[bucket_of(9)], 2u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  HistogramSnapshot h;
  EXPECT_EQ(h.quantile(0.99), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

// ---- merge-on-read under concurrency ---------------------------------------

TEST(Registry, EightThreadRecordingMergesLosslessly) {
  Counter& c = registry().counter("bref_test_merge_total", "test counter");
  Histogram& h =
      registry().histogram("bref_test_merge_seconds", "test histogram");
  const uint64_t before_c = c.value();
  const HistogramSnapshot before_h = h.snapshot();
  constexpr int kThreads = 8;
  constexpr uint64_t kPer = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        c.add(t);
        h.record(t, i % 1024);
      }
    });
  }
  for (auto& th : ts) th.join();
  // Quiescent now: merge-on-read must see every recorded event (the
  // approximation is only ever about in-flight increments).
  EXPECT_EQ(c.value() - before_c, kThreads * kPer);
  HistogramSnapshot after = h.snapshot();
  after -= before_h;
  EXPECT_EQ(after.count, kThreads * kPer);
}

// ---- registry identity + snapshot shape ------------------------------------

TEST(Registry, FindOrCreateReturnsSameInstance) {
  Counter& a = registry().counter("bref_test_identity_total", "help");
  Counter& b = registry().counter("bref_test_identity_total", "help");
  EXPECT_EQ(&a, &b);
  // Different labels = different series.
  Counter& c =
      registry().counter("bref_test_identity_total", "help", "k=\"v\"");
  EXPECT_NE(&a, &c);
}

TEST(Registry, JsonSnapshotContainsRegisteredSeries) {
  registry().counter("bref_test_json_total", "help").bump(3);
  registry().histogram("bref_test_json_seconds", "help").observe(1000);
  const std::string j = registry().json();
  EXPECT_NE(j.find("\"bref_test_json_total\""), std::string::npos);
  EXPECT_NE(j.find("\"bref_test_json_seconds\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

// ---- Prometheus exposition --------------------------------------------------

TEST(Prometheus, ExpositionValidatesAndCarriesSamples) {
  registry()
      .counter("bref_test_prom_total", "prom test", "op=\"get\"")
      .bump(7);
  registry()
      .histogram("bref_test_prom_seconds", "prom test hist", "", 1e9)
      .observe(1500);  // 1.5µs
  const std::string text = registry().prometheus();
  std::string err;
  std::vector<PromSeries> series;
  ASSERT_TRUE(validate_prometheus(text, &err, &series)) << err;
  bool saw_counter = false, saw_inf = false;
  for (const auto& s : series) {
    if (s.name == "bref_test_prom_total") {
      saw_counter = true;
      EXPECT_GE(s.value, 7.0);
    }
    if (s.name == "bref_test_prom_seconds_bucket")
      for (const auto& [k, v] : s.labels)
        if (k == "le" && v == "+Inf") saw_inf = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_inf);
}

TEST(Prometheus, ValidatorRejectsMalformedPayloads) {
  std::string err;
  EXPECT_FALSE(validate_prometheus("9bad_name 1\n", &err));
  EXPECT_FALSE(validate_prometheus("m{l=unquoted} 1\n", &err));
  EXPECT_FALSE(validate_prometheus("m 1\nm 2\n# TYPE m counter\n", &err))
      << "TYPE after samples must fail";
  EXPECT_FALSE(validate_prometheus("m notanumber\n", &err));
  // Histogram with decreasing cumulative counts.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_count 5\n",
      &err));
  // Histogram missing +Inf.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n", &err));
}

// ---- GaugeSet instance churn ------------------------------------------------

TEST(GaugeSet, SourcesComeAndGoWithInstances) {
  static GaugeSet& gs = *new GaugeSet(GaugeSet::Agg::kSum,
                                      "bref_test_gaugeset", "churn test");
  EXPECT_EQ(gs.read(), 0.0);
  {
    GaugeSet::Source a = gs.add([] { return 3.0; });
    GaugeSet::Source b = gs.add([] { return 4.0; });
    EXPECT_EQ(gs.read(), 7.0);
    // Moves keep exactly one live registration.
    GaugeSet::Source c = std::move(a);
    EXPECT_EQ(gs.read(), 7.0);
  }
  EXPECT_EQ(gs.read(), 0.0) << "dead instances must leave no residue";
  GaugeSet::Source d = gs.add([] { return 9.0; });
  EXPECT_EQ(gs.read(), 9.0);
  d.reset();
  EXPECT_EQ(gs.read(), 0.0);
}

TEST(GaugeSet, MaxAggregationPicksLargest) {
  static GaugeSet& gs = *new GaugeSet(GaugeSet::Agg::kMax,
                                      "bref_test_gaugeset_max", "max test");
  GaugeSet::Source a = gs.add([] { return 2.0; });
  GaugeSet::Source b = gs.add([] { return 11.0; });
  GaugeSet::Source c = gs.add([] { return 5.0; });
  EXPECT_EQ(gs.read(), 11.0);
}

// ---- flight recorder --------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewestTailOldestFirst) {
  TraceRing ring;
  const uint64_t n = TraceRing::kCapacity + 904;
  for (uint64_t i = 0; i < n; ++i) {
    TraceSpan s;
    s.end_ns = i;
    ring.push(s);
  }
  uint64_t total = 0;
  const std::vector<TraceSpan> out = ring.dump(&total);
  EXPECT_EQ(total, n);
  ASSERT_EQ(out.size(), TraceRing::kCapacity);
  EXPECT_EQ(out.front().end_ns, n - TraceRing::kCapacity);
  EXPECT_EQ(out.back().end_ns, n - 1);
  for (size_t i = 1; i < out.size(); ++i)
    ASSERT_EQ(out[i].end_ns, out[i - 1].end_ns + 1);
}

TEST(TraceSampling, CountdownHonorsRateAndZeroDisables) {
  const uint32_t old = trace_sample_every().load();
  trace_sample_every().store(10);
  // Drain whatever countdown this thread carried in, then count over a
  // fresh window: exactly one sample per 10 decisions.
  for (int i = 0; i < 11; ++i) trace_should_sample();
  int hits = 0;
  for (int i = 0; i < 100; ++i) hits += trace_should_sample() ? 1 : 0;
  EXPECT_GE(hits, 9);
  EXPECT_LE(hits, 11);
  trace_sample_every().store(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(trace_should_sample());
  trace_sample_every().store(old);
}

TEST(TraceRing, ConcurrentPushersNeverTearSpans) {
  TraceRing ring;
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (uint64_t i = 0; i < 5000; ++i) {
        TraceSpan s;
        // op/worker carry the writer id; a torn span would mix them.
        s.op = static_cast<uint8_t>(t);
        s.worker = static_cast<uint8_t>(t);
        s.end_ns = i;
        ring.push(s);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed))
      for (const TraceSpan& s : ring.dump()) ASSERT_EQ(s.op, s.worker);
  });
  for (auto& th : ts) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(ring.pushed(), kThreads * 5000u);
}

}  // namespace
