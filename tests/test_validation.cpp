// Unit tests for the history-validation module: the sequential SetModel,
// the Wing-Gong exhaustive checker, and the per-key decomposition. Crafted
// histories with known verdicts, then randomized recorded runs against the
// real structures (both as a sanity check of the recorder and as an
// end-to-end linearizability audit).

#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"
#include "validation/history.h"
#include "validation/model.h"
#include "validation/wing_gong.h"

namespace bref::validation {
namespace {

// Builders for hand-crafted ops. Windows are expressed as small integers;
// op A precedes op B in real time iff A.response < B.invoke.
Op ins(KeyT k, ValT v, bool res, uint64_t inv, uint64_t rsp, int tid = 0) {
  Op o;
  o.kind = OpKind::kInsert;
  o.tid = tid;
  o.key = k;
  o.val = v;
  o.result = res;
  o.invoke_ns = inv;
  o.response_ns = rsp;
  return o;
}
Op rem(KeyT k, bool res, uint64_t inv, uint64_t rsp, int tid = 0) {
  Op o;
  o.kind = OpKind::kRemove;
  o.tid = tid;
  o.key = k;
  o.result = res;
  o.invoke_ns = inv;
  o.response_ns = rsp;
  return o;
}
Op ctn(KeyT k, bool res, uint64_t inv, uint64_t rsp, int tid = 0, ValT v = 0) {
  Op o;
  o.kind = OpKind::kContains;
  o.tid = tid;
  o.key = k;
  o.val = v;
  o.result = res;
  o.invoke_ns = inv;
  o.response_ns = rsp;
  return o;
}
Op rq(KeyT lo, KeyT hi, std::vector<std::pair<KeyT, ValT>> res, uint64_t inv,
      uint64_t rsp, int tid = 0) {
  Op o;
  o.kind = OpKind::kRangeQuery;
  o.tid = tid;
  o.key = lo;
  o.hi = hi;
  o.rq_result = std::move(res);
  o.invoke_ns = inv;
  o.response_ns = rsp;
  return o;
}

// ---------- SetModel ----------

TEST(SetModel, InsertRemoveContainsSemantics) {
  SetModel m;
  EXPECT_TRUE(m.step(ins(5, 50, true, 0, 1)));
  EXPECT_FALSE(m.step(ins(5, 51, true, 0, 1)));   // duplicate insert=true
  EXPECT_TRUE(m.step(ins(5, 51, false, 0, 1)));   // duplicate insert=false
  EXPECT_TRUE(m.step(ctn(5, true, 0, 1, 0, 50)));   // value must match
  EXPECT_FALSE(m.step(ctn(5, true, 0, 1, 0, 51)));  // stale value rejected
  EXPECT_FALSE(m.step(ctn(5, false, 0, 1)));      // present: false illegal
  EXPECT_TRUE(m.step(rem(5, true, 0, 1)));
  EXPECT_FALSE(m.step(rem(5, true, 0, 1)));       // already gone
  EXPECT_TRUE(m.step(rem(5, false, 0, 1)));
  EXPECT_TRUE(m.step(ctn(5, false, 0, 1)));
}

TEST(SetModel, RangeQuerySemantics) {
  SetModel m;
  ASSERT_TRUE(m.step(ins(1, 10, true, 0, 1)));
  ASSERT_TRUE(m.step(ins(3, 30, true, 0, 1)));
  ASSERT_TRUE(m.step(ins(9, 90, true, 0, 1)));
  EXPECT_TRUE(m.step(rq(1, 5, {{1, 10}, {3, 30}}, 0, 1)));
  EXPECT_FALSE(m.step(rq(1, 5, {{1, 10}}, 0, 1)));           // missing 3
  EXPECT_FALSE(m.step(rq(1, 5, {{1, 10}, {3, 31}}, 0, 1)));  // wrong value
  EXPECT_FALSE(m.step(rq(1, 9, {{1, 10}, {3, 30}}, 0, 1)));  // missing 9
  EXPECT_TRUE(m.step(rq(4, 8, {}, 0, 1)));                   // empty window
  EXPECT_FALSE(m.step(rq(4, 8, {{9, 90}}, 0, 1)));           // out of range
}

TEST(SetModel, UndoRestoresExactState) {
  SetModel m;
  ASSERT_TRUE(m.step(ins(7, 70, true, 0, 1)));
  const uint64_t fp = m.fingerprint();
  Op overwrite = rem(7, true, 0, 1);
  SetModel::Undo u = m.prepare_undo(overwrite);
  ASSERT_TRUE(m.step(overwrite));
  EXPECT_NE(m.fingerprint(), fp);
  m.apply_undo(u);
  EXPECT_EQ(m.fingerprint(), fp);
  EXPECT_EQ(m.state().at(7), 70);
}

// ---------- Wing-Gong checker: known verdicts ----------

TEST(WingGong, SequentialHistoryIsLinearizable) {
  History h{ins(1, 1, true, 0, 1), ctn(1, true, 2, 3, 0, 1),
            rem(1, true, 4, 5), ctn(1, false, 6, 7)};
  auto r = check_linearizable(h);
  EXPECT_TRUE(r) << r.message;
  ASSERT_EQ(r.witness.size(), 4u);
}

TEST(WingGong, ReadMustNotPrecedeItsWrite) {
  // contains(1)=true completes strictly before insert(1) begins: no order
  // can satisfy both real time and semantics.
  History h{ctn(1, true, 0, 1, 0, 1), ins(1, 1, true, 2, 3)};
  EXPECT_FALSE(check_linearizable(h));
}

TEST(WingGong, ConcurrentReadMayLinearizeEitherSide) {
  // contains(1) overlaps insert(1): both results are legal.
  EXPECT_TRUE(check_linearizable({ctn(1, true, 0, 10, 1, 7),
                                  ins(1, 7, true, 5, 6)}));
  EXPECT_TRUE(check_linearizable({ctn(1, false, 0, 10, 1), //
                                  ins(1, 7, true, 5, 6)}));
}

TEST(WingGong, NewOldInversionIsCaught) {
  // Classic non-linearizable pattern: a later (real-time) read observes an
  // older state than an earlier read. r1 sees the insert, then r2 (strictly
  // after r1) misses it.
  History h{ins(1, 1, true, 0, 20),        // overlaps both reads
            ctn(1, true, 2, 3, 1, 1),      // r1: sees it
            ctn(1, false, 5, 6, 2)};       // r2: after r1, misses it
  EXPECT_FALSE(check_linearizable(h));
}

TEST(WingGong, DoubleSuccessfulInsertIsCaught) {
  History h{ins(4, 1, true, 0, 5, 1), ins(4, 2, true, 0, 5, 2)};
  EXPECT_FALSE(check_linearizable(h));
}

TEST(WingGong, RangeQueryAtomicityViolationIsCaught) {
  // Two inserts overlap two range queries; each query observes exactly one
  // of the inserts. Every per-key projection is individually explainable
  // (each insert is concurrent with both reads of its key), but no single
  // linearization point can explain both snapshots: whichever insert
  // linearizes first is missed by the query that saw only the other.
  History h{ins(1, 1, true, 0, 10), ins(3, 3, true, 0, 10),
            rq(0, 5, {{1, 1}}, 2, 3, 1),     // sees 1 but not 3
            rq(0, 5, {{3, 3}}, 2, 3, 2)};    // sees 3 but not 1
  EXPECT_FALSE(check_linearizable(h));
  // The per-key decomposition alone cannot reject this (documented
  // limitation: RQs break key independence).
  EXPECT_TRUE(check_per_key(h));
}

TEST(WingGong, RangeQueryTornSnapshotAcrossConcurrentUpdates) {
  // insert(2) strictly precedes insert(4); an RQ that reports 4 but not 2
  // cannot be linearized anywhere.
  History h{ins(2, 2, true, 0, 1), ins(4, 4, true, 2, 3),
            rq(0, 9, {{4, 4}}, 4, 5)};
  EXPECT_FALSE(check_linearizable(h));
}

TEST(WingGong, WitnessReplaysLegally) {
  History h{ins(2, 2, true, 0, 10, 1), ctn(2, true, 3, 4, 2, 2),
            rem(2, true, 11, 12, 1), rq(0, 9, {}, 13, 14, 2)};
  auto r = check_linearizable(h);
  ASSERT_TRUE(r) << r.message;
  SetModel m;
  for (int idx : r.witness) ASSERT_TRUE(m.step(h[static_cast<size_t>(idx)]));
}

TEST(WingGong, LongSequentialHistoriesUseWidthBoundedSearch) {
  // 300 interleaved ops across 3 lanes — far beyond the 64-op mask search;
  // the per-thread-prefix representation handles it.
  History h;
  SetModel truth;
  uint64_t t = 0;
  Xoshiro256 rng(12);
  for (int i = 0; i < 300; ++i) {
    const int tid = i % 3;
    const KeyT k = static_cast<KeyT>(rng.next_range(6));
    const bool present = truth.state().count(k) != 0;
    Op o = rng.next_range(2) == 0 ? ins(k, 0, !present, t, t + 1, tid)
                                  : rem(k, present, t, t + 1, tid);
    ASSERT_TRUE(truth.step(o));
    h.push_back(o);
    t += 2;
  }
  auto r = check_linearizable(h);
  EXPECT_TRUE(r) << r.message;
  ASSERT_EQ(r.witness.size(), h.size());
}

TEST(WingGong, LongHistoryViolationStillCaught) {
  // A sequential 100-op prefix, then a read that contradicts the state.
  History h;
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) {
    h.push_back(ins(i, i, true, t, t + 1, i % 3));
    t += 2;
  }
  h.push_back(ctn(50, false, t, t + 1, 0));  // key 50 was inserted: illegal
  EXPECT_FALSE(check_linearizable(h));
}

TEST(WingGong, OverlappingSameTidOpsFallBackToMaskSearch) {
  // Two same-tid ops with overlapping windows break the per-thread
  // sequencing invariant; the general search still decides small cases.
  History h{ins(1, 1, true, 0, 10, 0), ctn(1, true, 5, 6, 0, 1)};
  EXPECT_TRUE(check_linearizable(h));
  History big(65, ctn(1, false, 0, 10, 0));  // overlapping *and* oversized
  EXPECT_FALSE(check_linearizable(big));
}

// ---------- per-key projections ----------

TEST(PerKey, ProjectsRangeQueryReturnsAndAbsences) {
  History h{ins(1, 1, true, 0, 1), ins(5, 5, true, 0, 1), rem(5, true, 2, 3),
            rq(0, 9, {{1, 1}}, 4, 5)};
  auto proj = per_key_projections(h);
  ASSERT_EQ(proj.size(), 2u);
  // Key 1: insert + projected contains(true).
  EXPECT_EQ(proj[1].size(), 2u);
  // Key 5: insert + remove + projected contains(false) from the RQ.
  EXPECT_EQ(proj[5].size(), 3u);
  EXPECT_TRUE(check_per_key(h));
}

TEST(PerKey, CatchesMissedUpdateViaAbsenceProjection) {
  // insert(5) completed before the RQ started, but the RQ omits key 5.
  History h{ins(5, 5, true, 0, 1), rq(0, 9, {}, 2, 3)};
  EXPECT_FALSE(check_per_key(h));
  EXPECT_FALSE(check_linearizable(h));
}

TEST(PerKey, LongPointHistoryChecksQuickly) {
  // 300 ops on 10 keys: far beyond the exhaustive checker, fine per key.
  History h;
  uint64_t t = 0;
  SetModel truth;
  Xoshiro256 rng(99);
  for (int i = 0; i < 300; ++i) {
    KeyT k = static_cast<KeyT>(rng.next_range(10));
    bool present = truth.state().count(k) != 0;
    Op o;
    switch (rng.next_range(3)) {
      case 0:
        o = ins(k, k * 10, !present, t, t + 1);
        break;
      case 1:
        o = rem(k, present, t, t + 1);
        break;
      default:
        o = ctn(k, present, t, t + 1, 0, present ? k * 10 : 0);
        break;
    }
    ASSERT_TRUE(truth.step(o));
    h.push_back(o);
    t += 2;
  }
  EXPECT_TRUE(check_per_key(h));
}

// ---------- end-to-end recorded audits over the real structures ----------

template <typename DS>
class RecordedAudit : public ::testing::Test {
 protected:
  DS ds;
};

TYPED_TEST_SUITE(RecordedAudit, bref::testutil::LinearizableSetTypes);

TYPED_TEST(RecordedAudit, ConcurrentBurstsAreLinearizable) {
  // Many short bursts: 3 threads x 4 ops over 3 hot keys, each burst
  // checked exhaustively. Narrow key range maximizes contention. The set
  // carries state across bursts; each burst's history is seeded with the
  // pre-burst contents as completed inserts that precede everything.
  constexpr int kBursts = 60;
  constexpr int kThreads = 3;
  RecordedSet<TypeParam> rec(this->ds);
  for (int burst = 0; burst < kBursts; ++burst) {
    History pre;
    for (auto& [k, v] : this->ds.to_vector())
      pre.push_back(ins(k, v, true, 0, 1));
    std::vector<ThreadLog> logs;
    for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);
    bref::testutil::run_threads(kThreads, [&](int t) {
      Xoshiro256 rng(burst * 31 + t);
      std::vector<std::pair<KeyT, ValT>> out;
      for (int i = 0; i < 4; ++i) {
        KeyT k = 1 + static_cast<KeyT>(rng.next_range(3));
        switch (rng.next_range(4)) {
          case 0:
            rec.insert(logs[t], t, k, k + 100 * burst);
            break;
          case 1:
            rec.remove(logs[t], t, k);
            break;
          case 2:
            rec.contains(logs[t], t, k);
            break;
          default:
            rec.range_query(logs[t], t, 1, 3, out);
            break;
        }
      }
    });
    History h = merge(logs);
    // Seed ops get windows strictly before every recorded op, so every
    // linearization replays them first.
    uint64_t min_invoke = ~0ull;
    for (const auto& op : h) min_invoke = std::min(min_invoke, op.invoke_ns);
    for (size_t i = 0; i < pre.size(); ++i) {
      pre[i].invoke_ns = 2 * i;
      pre[i].response_ns = 2 * i + 1;
      ASSERT_LT(pre[i].response_ns, min_invoke);
    }
    h.insert(h.end(), pre.begin(), pre.end());
    auto r = check_linearizable(h);
    EXPECT_TRUE(r.linearizable) << "burst " << burst << ": " << r.message;
    if (!r.linearizable) break;
  }
}

}  // namespace
}  // namespace bref::validation
