// The EBR-RQ family after its modernization pass: snapshot timestamps
// surfaced through last_rq_timestamp -> RangeSnapshot::timestamp(), the
// report/limbo lifecycle fixes (rq_end drains reports under the lock that
// gates pushes; flush_limbo rescues nodes stranded below the prune
// cadence), and the pooled allocation-free node path (EntryPool-backed
// nodes with EBR-integrated recycling, mirroring the bundle entries of
// tests/test_entry_pool.cpp).
//
// Runs in the regular, ASan (free-node poisoning: a recycled node still
// reachable by a pinned reader faults loudly) and TSan (the new
// report-lock/limbo-lock protocols) CI jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/entry_pool.h"
#include "test_util.h"
#include "validation/wing_gong.h"

namespace bref {
namespace {

// list + skiplist in both coordination modes — the four configurations the
// @ts audits must cover per the modernization issue (citrus rides through
// the same provider and is exercised by the family-wide suites).
using EbrRqFamily = ::testing::Types<EbrRqListSet, EbrRqSkipListSet,
                                     EbrRqLfListSet, EbrRqLfSkipListSet>;

template <typename DS>
class EbrRqTs : public ::testing::Test {
 protected:
  DS ds;
};

TYPED_TEST_SUITE(EbrRqTs, EbrRqFamily);

// ---------------------------------------------------------------------------
// Snapshot timestamps.
// ---------------------------------------------------------------------------

TYPED_TEST(EbrRqTs, SnapshotTimestampSurfacesAndIsStrictlyMonotone) {
  TypedSession<TypeParam> s(this->ds, 0);
  for (KeyT k = 1; k <= 20; ++k) s.insert(k, k);
  RangeSnapshot a, b;
  s.range_query(1, 20, a);
  ASSERT_TRUE(a.has_timestamp());
  EXPECT_EQ(a.timestamp(), this->ds.last_rq_timestamp(0));
  EXPECT_EQ(a.size(), 20u);
  // Every rq_begin fetch-adds the counter, so stamps are unique and
  // strictly increasing — per thread and globally.
  s.range_query(1, 20, b);
  ASSERT_TRUE(b.has_timestamp());
  EXPECT_GT(b.timestamp(), a.timestamp());
  // Trivially-empty queries still stamp a meaningful "now".
  RangeSnapshot c;
  s.range_query(10, 5, c);
  ASSERT_TRUE(c.has_timestamp());
  EXPECT_GE(c.timestamp(), b.timestamp());
}

TYPED_TEST(EbrRqTs, TimestampsStayMonotoneUnderConcurrentUpdates) {
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    TypedSession<TypeParam> s(this->ds, 1);
    Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(300));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  TypedSession<TypeParam> s(this->ds, 0);
  RangeSnapshot snap;
  timestamp_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    s.range_query(1, 300, snap);
    ASSERT_TRUE(snap.has_timestamp());
    ASSERT_GT(snap.timestamp(), prev) << "snapshot time ran backwards";
    prev = snap.timestamp();
  }
  stop = true;
  churn.join();
}

// Prefix closure (the linearizability workhorse of test_linearizability,
// here so the ASan job covers it for the family too): when each updater
// inserts its stripe in a known order, any linearizable snapshot must
// contain a per-stripe prefix — a hole proves the query mixed two points
// in time. The snapshot's @ts must also track the insert count: with u
// inserts completed before rq_begin, the stamp can never precede them.
TYPED_TEST(EbrRqTs, InsertOnlySnapshotsArePrefixClosedWithSaneStamps) {
  constexpr int kUpd = 2;
  constexpr KeyT kPerThread = 500;
  std::atomic<bool> done{false};
  std::atomic<long> violations{0};
  std::thread rq_thread([&] {
    TypedSession<TypeParam> s(this->ds, kUpd);
    RangeSnapshot out;
    while (!done.load(std::memory_order_acquire)) {
      s.range_query(1, kUpd * kPerThread + 1, out);
      std::vector<std::vector<KeyT>> seen(kUpd);
      for (const auto& [k, v] : out)
        seen[(k - 1) % kUpd].push_back((k - 1) / kUpd);
      for (int t = 0; t < kUpd; ++t)
        for (size_t i = 0; i < seen[t].size(); ++i)
          if (seen[t][i] != static_cast<KeyT>(i)) violations.fetch_add(1);
      if (!out.has_timestamp()) violations.fetch_add(1);
    }
  });
  testutil::run_sessions<TypeParam>(this->ds, kUpd, [&](auto& s) {
    for (KeyT i = 0; i < kPerThread; ++i)
      ASSERT_TRUE(s.insert(1 + s.tid() + i * kUpd, i));
  });
  done = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(this->ds.size_slow(), size_t{kUpd} * kPerThread);
}

// The @ts Wing&Gong audit: short recorded bursts whose range queries carry
// the snapshot timestamp; the checker must find a witness linearization in
// which stamped queries take effect in @ts order (and the stamps must not
// contradict real time). This is the first time the timestamp-based audits
// run against a non-Bundle technique.
TYPED_TEST(EbrRqTs, RecordedBurstsPassTimestampedWingGongAudit) {
  for (int burst = 0; burst < 12; ++burst) {
    validation::History pre;
    for (auto& [k, v] : this->ds.to_vector()) {
      validation::Op op;
      op.kind = validation::OpKind::kInsert;
      op.key = k;
      op.val = v;
      op.result = true;
      op.invoke_ns = 2 * pre.size();
      op.response_ns = 2 * pre.size() + 1;
      pre.push_back(op);
    }
    std::vector<validation::ThreadLog> logs;
    for (int t = 0; t < 3; ++t) logs.emplace_back(t);
    testutil::run_threads(3, [&](int t) {
      validation::RecordedSession<TypeParam> s(this->ds, logs[t], t);
      Xoshiro256 rng(burst * 23 + t + 1);
      RangeSnapshot out;
      for (int i = 0; i < 4; ++i) {
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(3));
        switch (rng.next_range(4)) {
          case 0:
            s.insert(k, burst * 10 + i);
            break;
          case 1:
            s.remove(k);
            break;
          case 2:
            s.contains(k);
            break;
          default:
            s.range_query(1, 3, out);
            break;
        }
      }
    });
    validation::History h = validation::merge(logs);
    h.insert(h.end(), pre.begin(), pre.end());
    auto verdict = validation::check_linearizable_with_ts(h);
    ASSERT_TRUE(verdict.linearizable)
        << "burst " << burst << ": " << verdict.message;
  }
}

// ---------------------------------------------------------------------------
// Report lifecycle (satellite bugfix #1): a report may sit in a slot only
// while its query is live. Quiescently, every slot must be empty — before
// the fix, an insert racing a query's completion could park a dangling
// NodeT* until that tid's next rq_begin, which may never come.
// ---------------------------------------------------------------------------

TEST(EbrRqReports, NoReportOutlivesItsQuery) {
  EbrRqLfListSet ds;  // reports exist only in lock-free mode
  for (KeyT k = 2; k <= 400; k += 2) ds.insert(0, k, k);
  std::atomic<bool> stop{false};
  std::thread rq_thread([&] {
    TypedSession<EbrRqLfListSet> s(ds, 2);
    RangeSnapshot out;
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(350));
      s.range_query(lo, lo + 50, out);
    }
  });
  testutil::run_threads(2, [&](int tid) {
    TypedSession<EbrRqLfListSet> s(ds, tid);
    Xoshiro256 rng(17 + tid);
    for (int i = 0; i < 8000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(400));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  stop = true;
  rq_thread.join();
  EXPECT_EQ(ds.provider().pending_reports(), 0u)
      << "a report survived its query's rq_end";
}

// ---------------------------------------------------------------------------
// Limbo drain (satellite bugfix #3): nodes stranded below the kPruneEvery
// cadence are rescued by flush_limbo and flow through EBR back to their
// owners' pools. Under ASan the pooled-free poisoning turns any
// recycled-too-early access into an immediate fault.
// ---------------------------------------------------------------------------

TEST(EbrRqLimbo, FlushDrainsNodesStrandedBelowThePruneCadence) {
  EbrRqListSet ds;
  constexpr KeyT kN = 60;  // < kPruneEvery: cadence pruning never fires
  for (KeyT k = 1; k <= kN; ++k) ASSERT_TRUE(ds.insert(0, k, k));
  for (KeyT k = 1; k <= kN; ++k) ASSERT_TRUE(ds.remove(0, k));
  EXPECT_EQ(ds.provider().limbo_size(), size_t{kN})
      << "expected every removed node stranded in limbo";
  // No active queries: everything is reclaimable, and the flush may be
  // driven by any thread (here a different one than the remover).
  EXPECT_EQ(ds.flush_limbo(1), size_t{kN});
  EXPECT_EQ(ds.provider().limbo_size(), 0u);
  // Two quiesces ripen the retire bags; the nodes recycle (pool) or free
  // (malloc bypass) — either way they leave EBR custody.
  const uint64_t freed_before = ds.ebr().freed();
  ds.ebr().quiesce(1);
  ds.ebr().quiesce(1);
  EXPECT_GE(ds.ebr().freed(), freed_before + kN);
  EXPECT_TRUE(ds.check_invariants());
  EXPECT_EQ(ds.size_slow(), 0u);
}

TEST(EbrRqLimbo, FlushKeepsNodesAnActiveQueryMayStillNeed) {
  EbrRqListSet ds;
  for (KeyT k = 1; k <= 40; ++k) ASSERT_TRUE(ds.insert(0, k, k));
  // Freeze a query's announced timestamp by hand (white-box: begin without
  // end), then remove — the victims' dtimes exceed the frozen snapshot, so
  // a flush must not retire them.
  ds.provider().rq_begin(2, 1, 40);
  for (KeyT k = 1; k <= 40; ++k) ASSERT_TRUE(ds.remove(0, k));
  EXPECT_EQ(ds.flush_limbo(1), 0u);
  EXPECT_EQ(ds.provider().limbo_size(), 40u);
  ds.provider().rq_end(2);
  EXPECT_EQ(ds.flush_limbo(1), 40u);
  EXPECT_EQ(ds.provider().limbo_size(), 0u);
}

// ---------------------------------------------------------------------------
// Pooled nodes: the acceptance regression, mirroring
// EntryPool.SteadyStateUpdatePathHasZeroPoolMisses for bundles. Once warm,
// a churning EBR-RQ structure whose pruned limbo nodes recycle through EBR
// performs zero pool misses — the update path stops touching the
// allocator. Single-threaded with an explicit flush/quiesce cadence so the
// recycle pipeline (limbo -> EBR bag -> owner inbox) drains
// deterministically (see the bundle test's comment for why).
// ---------------------------------------------------------------------------

TEST(EbrRqPool, SteadyStateUpdatePathHasZeroPoolMisses) {
  using DS = EbrRqListSet;
  DS::set_node_pooling(true);
  DS ds;
  Xoshiro256 rng(41);
  auto round = [&] {
    for (int i = 0; i < 200; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(256));
      if (rng.next_range(2) == 0)
        ds.insert(0, k, k);
      else
        ds.remove(0, k);
    }
    ds.flush_limbo(0);
    // Nothing is pinned between operations, so each quiesce advances the
    // epoch; two rounds ripen and drain every bag back to the pool inbox.
    ds.ebr().quiesce(0);
  };
  for (int r = 0; r < 30; ++r) round();  // warm-up: size the pool
  const EntryPoolStats warm = DS::node_pool_stats();
  ASSERT_GT(warm.hits + warm.misses, 0u);
  for (int r = 0; r < 60; ++r) round();  // steady state
  EntryPoolStats steady = DS::node_pool_stats();
  steady -= warm;
  EXPECT_EQ(steady.misses, 0u)
      << "steady-state EBR-RQ updates hit the allocator " << steady.misses
      << " times (hits=" << steady.hits << ")";
  EXPECT_GT(steady.hits, 0u);
  EXPECT_GT(steady.recycled, 0u) << "no node was ever recycled";
  EXPECT_TRUE(ds.check_invariants());
}

TEST(EbrRqPool, MallocBypassTagsNodesAndRoundTrips) {
  using DS = EbrRqSkipListSet;
  // Mixed-origin structures tear down cleanly: nodes born under bypass
  // carry kPoolMalloced and route back to delete, pooled ones to their
  // slot — the toggle can never mismatch an acquire with a release.
  DS::set_node_pooling(false);
  {
    DS ds;
    for (KeyT k = 1; k <= 32; ++k) ds.insert(0, k, k);
    DS::set_node_pooling(true);
    for (KeyT k = 33; k <= 64; ++k) ds.insert(0, k, k);
    for (KeyT k = 1; k <= 64; k += 2) ds.remove(0, k);
    ds.flush_limbo(0);
    ds.ebr().quiesce(0);
    ds.ebr().quiesce(0);
    EXPECT_TRUE(ds.check_invariants());
    EXPECT_EQ(ds.size_slow(), 32u);
  }
  DS::set_node_pooling(true);
}

// ---------------------------------------------------------------------------
// Concurrent smoke over the whole new machinery: churn + queries + an
// external flusher thread driving flush_limbo from outside the update
// path. TSan exercises the report-lock re-check and the intrusive limbo
// relinking; ASan the pool poisoning under the highest recycle pressure.
// ---------------------------------------------------------------------------

TYPED_TEST(EbrRqTs, ChurnQueriesAndExternalFlushStayConsistent) {
  constexpr KeyT kSpace = 500;
  for (KeyT k = 1; k <= kSpace; k += 2) this->ds.insert(0, k, k);
  std::atomic<bool> stop{false};
  std::atomic<long> failures{0};
  std::thread rq_thread([&] {
    TypedSession<TypeParam> s(this->ds, 2);
    RangeSnapshot out;
    Xoshiro256 rng(23);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(kSpace - 50));
      s.range_query(lo, lo + 50, out);
      if (!testutil::sorted_in_range(out, lo, lo + 50)) failures.fetch_add(1);
    }
  });
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      this->ds.flush_limbo(3);
      this->ds.ebr().quiesce(3);
    }
  });
  testutil::run_threads(2, [&](int tid) {
    TypedSession<TypeParam> s(this->ds, tid);
    Xoshiro256 rng(tid + 41);
    for (int i = 0; i < 6000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  stop = true;
  rq_thread.join();
  flusher.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(this->ds.check_invariants());
  // Quiescent: one flush drains whatever the last cadence window left.
  this->ds.flush_limbo(0);
  EXPECT_EQ(this->ds.provider().limbo_size(), 0u);
}

// ---------------------------------------------------------------------------
// Registry surface: all six EBR-RQ entries advertise rq_timestamp, and the
// facade delivers stamped snapshots through the application-facing
// SessionPool path.
// ---------------------------------------------------------------------------

TEST(EbrRqCapabilities, AllSixRegistryEntriesReportRqTimestamp) {
  int seen = 0;
  for (const auto& d : ImplRegistry::instance().descriptors()) {
    if (d.technique != "EBR-RQ" && d.technique != "EBR-RQ-LF") continue;
    ++seen;
    EXPECT_TRUE(d.caps.rq_timestamp) << d.name;
    Set s = Set::create(d.name);
    auto sess = s.session(0);
    for (KeyT k = 1; k <= 8; ++k) sess.insert(k, k);
    RangeSnapshot snap = sess.range_query(1, 8);
    EXPECT_TRUE(snap.has_timestamp()) << d.name;
    EXPECT_EQ(snap.size(), 8u);
  }
  EXPECT_EQ(seen, 6);
}

TEST(EbrRqCapabilities, PooledSessionsSeeStampedSnapshots) {
  Set s = Set::create("EBR-RQ-skiplist");
  {
    auto sess = s.session(0);
    for (KeyT k = 1; k <= 100; ++k) sess.insert(k, k);
  }
  std::atomic<long> missing_ts{0};
  testutil::run_pooled(s.impl(), 4, [&](ThreadSession& sess) {
    RangeSnapshot out;
    for (int i = 0; i < 50; ++i) {
      sess.range_query(1, 100, out);
      if (!out.has_timestamp() || out.size() != 100) missing_ts.fetch_add(1);
    }
  });
  EXPECT_EQ(missing_ts.load(), 0);
}

}  // namespace
}  // namespace bref
