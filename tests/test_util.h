#pragma once
// Shared helpers for the test suite: thread/session harness, reference-
// model checking, and the canonical list of implementation types.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "api/range_snapshot.h"
#include "api/session.h"
#include "api/set.h"
#include "common/random.h"

namespace bref::testutil {

/// Run `fn(tid)` on `n` threads and join.
inline void run_threads(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(n);
  for (int i = 0; i < n; ++i) ts.emplace_back(fn, i);
  for (auto& t : ts) t.join();
}

/// Run `fn(session)` on `n` threads, each with a TypedSession pinned to its
/// dense id 0..n-1 — the session-era twin of run_threads for typed suites.
template <typename DS>
void run_sessions(DS& ds, int n,
                  const std::function<void(TypedSession<DS>&)>& fn) {
  run_threads(n, [&](int tid) {
    TypedSession<DS> s(ds, tid);
    fn(s);
  });
}

/// Run `fn(session)` on `n` threads whose dense ids come from the
/// per-OS-thread SessionPool cache — the application-facing id discipline
/// (the tl_thread_id() successor), as opposed to run_sessions' hand-pinned
/// ids. Use when a test should exercise the same path real callers take;
/// note pooled ids are recycled through the global ThreadRegistry, so do
/// not mix with hand-pinned ids that could collide.
inline void run_pooled(AnyOrderedSet& set, int n,
                       const std::function<void(ThreadSession&)>& fn) {
  SessionPool pool(set);
  run_threads(n, [&](int) {
    ThreadSession s = pool.session();
    fn(s);
  });
}

/// Compare a quiescent structure against a reference map.
template <typename DS>
::testing::AssertionResult matches_model(DS& ds,
                                         const std::map<KeyT, ValT>& model) {
  auto v = ds.to_vector();
  if (v.size() != model.size())
    return ::testing::AssertionFailure()
           << "size mismatch: ds=" << v.size() << " model=" << model.size();
  auto it = model.begin();
  for (size_t i = 0; i < v.size(); ++i, ++it) {
    if (v[i].first != it->first)
      return ::testing::AssertionFailure()
             << "key mismatch at " << i << ": ds=" << v[i].first
             << " model=" << it->first;
    if (v[i].second != it->second)
      return ::testing::AssertionFailure()
             << "val mismatch at key " << v[i].first << ": ds=" << v[i].second
             << " model=" << it->second;
  }
  return ::testing::AssertionSuccess();
}

/// Result sanity: strictly sorted by key and within [lo, hi].
inline ::testing::AssertionResult sorted_in_range(
    const std::vector<std::pair<KeyT, ValT>>& v, KeyT lo, KeyT hi) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i].first < lo || v[i].first > hi)
      return ::testing::AssertionFailure()
             << "key " << v[i].first << " outside [" << lo << "," << hi << "]";
    if (i > 0 && v[i - 1].first >= v[i].first)
      return ::testing::AssertionFailure()
             << "not strictly sorted at index " << i << ": " << v[i - 1].first
             << " >= " << v[i].first;
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult sorted_in_range(const RangeSnapshot& snap,
                                                  KeyT lo, KeyT hi) {
  return sorted_in_range(snap.items(), lo, hi);
}

/// All implementations (typed-test type list). Mirrors the ImplRegistry's
/// builtin table; test_registry.cpp pins the two views against each other.
using AllSetTypes = ::testing::Types<
    BundleListSet, BundleSkipListSet, BundleCitrusSet, UnsafeListSet,
    UnsafeSkipListSet, UnsafeCitrusSet, EbrRqListSet, EbrRqSkipListSet,
    EbrRqCitrusSet, EbrRqLfListSet, EbrRqLfSkipListSet, EbrRqLfCitrusSet,
    RluListSet, RluSkipListSet, RluCitrusSet, SnapCollectorListSet,
    SnapCollectorSkipListSet, LfcaTreeSet>;

/// Implementations with linearizable range queries (Unsafe excluded).
using LinearizableSetTypes = ::testing::Types<
    BundleListSet, BundleSkipListSet, BundleCitrusSet, EbrRqListSet,
    EbrRqSkipListSet, EbrRqCitrusSet, EbrRqLfListSet, EbrRqLfSkipListSet,
    EbrRqLfCitrusSet, RluListSet, RluSkipListSet, RluCitrusSet,
    SnapCollectorListSet, SnapCollectorSkipListSet, LfcaTreeSet>;

}  // namespace bref::testutil
