// The network front-end suite: wire-protocol round trips, partial/short
// reads, pipelined batches, malformed/oversized frame handling, the
// connection:session mapping (many connections must not consume
// ThreadRegistry slots), shutdown hygiene (no leaked fds or sessions),
// transaction semantics, and the acceptance audit — a concurrent mixed
// workload over loopback whose RANGE snapshots (server-stamped
// timestamps) pass the timestamp-aware Wing–Gong linearizability check.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/thread_registry.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/prom_validate.h"
#include "validation/wing_gong.h"

namespace {

using namespace bref;
using namespace bref::net;

ServerOptions small_opts(int workers = 2, size_t shards = 4) {
  ServerOptions o;
  o.workers = workers;
  o.shards = shards;
  o.key_lo = 0;
  o.key_hi = 1 << 16;
  return o;
}

size_t open_fds() {
  size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

// ---- protocol: encode/split/decode ----------------------------------------

TEST(Protocol, RequestFramesRoundTrip) {
  std::vector<uint8_t> b;
  encode_get(b, 42);
  encode_insert(b, -7, 1234567890123456789LL);
  encode_remove(b, 99);
  encode_range(b, 10, 20);
  encode_txn_begin(b);
  encode_txn_op(b, Op::kInsert, 5, 50);
  encode_txn_op(b, Op::kRemove, 6);
  encode_txn_commit(b);
  encode_txn_abort(b);
  encode_ping(b);
  encode_stats(b);

  size_t off = 0, advance = 0;
  FrameView f;
  auto next = [&] {
    EXPECT_EQ(split_frame(b.data(), b.size(), off, kDefaultMaxFrame, &f,
                          &advance),
              SplitResult::kFrame);
    off += advance;
  };
  next();
  EXPECT_EQ(f.op(), Op::kGet);
  EXPECT_EQ(get_i64(f.body), 42);
  next();
  EXPECT_EQ(f.op(), Op::kInsert);
  EXPECT_EQ(get_i64(f.body), -7);
  EXPECT_EQ(get_i64(f.body + 8), 1234567890123456789LL);
  next();
  EXPECT_EQ(f.op(), Op::kRemove);
  next();
  EXPECT_EQ(f.op(), Op::kRange);
  EXPECT_EQ(get_i64(f.body), 10);
  EXPECT_EQ(get_i64(f.body + 8), 20);
  next();
  EXPECT_EQ(f.op(), Op::kTxnBegin);
  EXPECT_EQ(f.body_len, 0u);
  next();
  EXPECT_EQ(f.op(), Op::kTxnOp);
  EXPECT_EQ(static_cast<Op>(f.body[0]), Op::kInsert);
  EXPECT_EQ(get_i64(f.body + 1), 5);
  EXPECT_EQ(get_i64(f.body + 9), 50);
  next();
  EXPECT_EQ(f.op(), Op::kTxnOp);
  EXPECT_EQ(static_cast<Op>(f.body[0]), Op::kRemove);
  next();
  EXPECT_EQ(f.op(), Op::kTxnCommit);
  next();
  EXPECT_EQ(f.op(), Op::kTxnAbort);
  next();
  EXPECT_EQ(f.op(), Op::kPing);
  next();
  EXPECT_EQ(f.op(), Op::kStats);
  EXPECT_EQ(off, b.size());
}

TEST(Protocol, ResponseDecodeRoundTrip) {
  std::vector<uint8_t> b;
  encode_val_response(b, 77);
  encode_range_response(b, 123,
                        {{1, 10}, {2, 20}, {3, 30}});
  encode_status(b, Status::kNo);
  encode_text_response(b, "{\"x\": 1}");

  size_t off = 0, advance = 0;
  FrameView f;
  Reply r;
  ASSERT_EQ(split_frame(b.data(), b.size(), off, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kFrame);
  off += advance;
  ASSERT_TRUE(decode_reply(Op::kGet, f, &r));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.val, 77);

  ASSERT_EQ(split_frame(b.data(), b.size(), off, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kFrame);
  off += advance;
  ASSERT_TRUE(decode_reply(Op::kRange, f, &r));
  EXPECT_EQ(r.ts, 123u);
  ASSERT_EQ(r.items.size(), 3u);
  EXPECT_EQ(r.items[1], (std::pair<KeyT, ValT>{2, 20}));

  ASSERT_EQ(split_frame(b.data(), b.size(), off, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kFrame);
  off += advance;
  ASSERT_TRUE(decode_reply(Op::kRemove, f, &r));
  EXPECT_EQ(r.status, Status::kNo);

  ASSERT_EQ(split_frame(b.data(), b.size(), off, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kFrame);
  off += advance;
  ASSERT_TRUE(decode_reply(Op::kStats, f, &r));
  EXPECT_EQ(r.text, "{\"x\": 1}");
}

// A frame delivered one byte at a time parses exactly once, at the final
// byte — the short-read path every TCP consumer must survive.
TEST(Protocol, PartialFramesNeedMoreUntilComplete) {
  std::vector<uint8_t> full;
  encode_insert(full, 11, 22);
  FrameView f;
  size_t advance = 0;
  for (size_t n = 0; n < full.size(); ++n)
    EXPECT_EQ(split_frame(full.data(), n, 0, kDefaultMaxFrame, &f, &advance),
              SplitResult::kNeedMore)
        << "prefix of " << n << " bytes";
  EXPECT_EQ(split_frame(full.data(), full.size(), 0, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kFrame);
  EXPECT_EQ(advance, full.size());
}

TEST(Protocol, PoisonedFramingDetected) {
  // Declared length over the cap.
  std::vector<uint8_t> b;
  put_u32(b, kDefaultMaxFrame + 1);
  b.resize(b.size() + 8, 0);
  FrameView f;
  size_t advance = 0;
  EXPECT_EQ(split_frame(b.data(), b.size(), 0, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kOversized);
  // Declared length zero (no opcode byte).
  b.clear();
  put_u32(b, 0);
  EXPECT_EQ(split_frame(b.data(), b.size(), 0, kDefaultMaxFrame, &f,
                        &advance),
            SplitResult::kBadLength);
}

// ---- server: basic ops over loopback --------------------------------------

TEST(Server, PointOpsRangeAndPing) {
  Server srv(small_opts());
  srv.start();
  Client c(srv.port());
  EXPECT_TRUE(c.ping());
  EXPECT_TRUE(c.insert(10, 100));
  EXPECT_FALSE(c.insert(10, 100));  // duplicate
  EXPECT_TRUE(c.insert(20, 200));
  EXPECT_EQ(c.get(10).value_or(-1), 100);
  EXPECT_FALSE(c.get(11).has_value());
  RangeSnapshot snap;
  EXPECT_EQ(c.range(0, 1000, snap), 2u);
  EXPECT_EQ(snap.items(),
            (std::vector<std::pair<KeyT, ValT>>{{10, 100}, {20, 200}}));
  EXPECT_TRUE(snap.has_timestamp());  // bundled backing stamps snapshots
  EXPECT_TRUE(c.remove(10));
  EXPECT_FALSE(c.remove(10));
  EXPECT_EQ(c.range(0, 1000, snap), 1u);
  const std::string stats = c.stats();
  EXPECT_NE(stats.find("\"frames\""), std::string::npos);
  EXPECT_NE(stats.find("\"maintenance\""), std::string::npos);
  srv.stop();
}

TEST(Server, PipelinedBatchAnswersInOrder) {
  Server srv(small_opts());
  srv.start();
  Client c(srv.port());
  Pipeline p(c);
  for (KeyT k = 1; k <= 32; ++k) p.insert(k, k * 10);
  for (KeyT k = 1; k <= 32; ++k) p.get(k);
  p.range(1, 32);
  p.ping();
  const std::vector<Reply> rs = p.collect();
  ASSERT_EQ(rs.size(), 66u);
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(rs[i].status, Status::kOk);
  for (size_t i = 32; i < 64; ++i) {
    EXPECT_EQ(rs[i].status, Status::kOk);
    EXPECT_EQ(rs[i].val, static_cast<ValT>((i - 31) * 10));
  }
  EXPECT_EQ(rs[64].items.size(), 32u);
  EXPECT_EQ(rs[65].status, Status::kOk);
  // The whole batch went out in one write; the server must have executed
  // multiple frames per epoll wave.
  const ServerStats st = srv.stats();
  EXPECT_GE(st.frames, 66u);
  EXPECT_LT(st.batches, st.frames);
  srv.stop();
}

// A body-malformed frame gets an error response but the stream stays in
// sync: the same connection keeps working.
TEST(Server, MalformedBodyKeepsConnectionAlive) {
  Server srv(small_opts());
  srv.start();
  Client c(srv.port());
  // GET with a 4-byte body (should be 8).
  std::vector<uint8_t> raw;
  put_u32(raw, 1 + 4);
  raw.push_back(static_cast<uint8_t>(Op::kGet));
  put_u32(raw, 7);
  c.write_all(raw.data(), raw.size());
  Reply r = c.read_reply(Op::kGet);
  EXPECT_EQ(r.status, Status::kErrMalformed);
  // Unknown opcode, framing intact.
  raw.clear();
  put_u32(raw, 1);
  raw.push_back(200);
  c.write_all(raw.data(), raw.size());
  r = c.read_reply(Op::kPing);
  EXPECT_EQ(r.status, Status::kErrMalformed);
  // Connection still serves real traffic.
  EXPECT_TRUE(c.ping());
  EXPECT_TRUE(c.insert(1, 1));
  EXPECT_GE(srv.stats().protocol_errors, 2u);
  srv.stop();
}

// An oversized declared length poisons the stream: error reply, then the
// server closes that connection — but the loop and other connections
// survive.
TEST(Server, OversizedFrameClosesConnectionNotLoop) {
  Server srv(small_opts());
  srv.start();
  Client witness(srv.port());
  ASSERT_TRUE(witness.insert(5, 55));
  Client bad(srv.port());
  std::vector<uint8_t> raw;
  put_u32(raw, kDefaultMaxFrame + 7);
  raw.push_back(static_cast<uint8_t>(Op::kGet));
  bad.write_all(raw.data(), raw.size());
  Reply r = bad.read_reply(Op::kGet);
  EXPECT_EQ(r.status, Status::kErrTooLarge);
  EXPECT_THROW(bad.read_reply(Op::kPing), ClientError);  // server closed
  // The same worker keeps serving the witness and fresh connections.
  EXPECT_TRUE(witness.ping());
  EXPECT_EQ(witness.get(5).value_or(-1), 55);
  Client fresh(srv.port());
  EXPECT_TRUE(fresh.ping());
  srv.stop();
}

TEST(Server, TxnBufferCommitAbortSemantics) {
  Server srv(small_opts());
  srv.start();
  Client c(srv.port());
  // TXN ops outside a transaction are state errors.
  EXPECT_FALSE(c.txn_insert(1, 1));
  EXPECT_FALSE(c.txn_abort());
  EXPECT_TRUE(c.txn_commit().empty());

  // Buffered ops are invisible until commit.
  ASSERT_TRUE(c.txn_begin());
  EXPECT_FALSE(c.txn_begin());  // nested begin rejected
  EXPECT_TRUE(c.txn_insert(100, 1));
  EXPECT_TRUE(c.txn_insert(101, 2));
  EXPECT_TRUE(c.txn_get(100));
  EXPECT_TRUE(c.txn_remove(999));
  EXPECT_FALSE(c.get(100).has_value()) << "txn op applied before commit";
  const std::vector<TxnOpResult> rs = c.txn_commit();
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_EQ(rs[0].status, Status::kOk);   // insert 100
  EXPECT_EQ(rs[1].status, Status::kOk);   // insert 101
  EXPECT_EQ(rs[2].status, Status::kOk);   // get 100 sees the earlier insert
  EXPECT_EQ(rs[2].val, 1);
  EXPECT_EQ(rs[3].status, Status::kNo);   // remove of absent key
  EXPECT_EQ(c.get(100).value_or(-1), 1);

  // Abort discards.
  ASSERT_TRUE(c.txn_begin());
  EXPECT_TRUE(c.txn_insert(500, 5));
  EXPECT_TRUE(c.txn_abort());
  EXPECT_FALSE(c.get(500).has_value());
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.txns_committed, 1u);
  EXPECT_EQ(st.txns_aborted, 1u);
  srv.stop();
}

// ---- the connection:session mapping ---------------------------------------

// Many concurrent connections over few workers must not consume
// ThreadRegistry slots: sessions belong to worker loops, not connections.
TEST(SessionMapping, ConnectionsDoNotConsumeThreadSlots) {
  const int idle = ThreadRegistry::instance().in_use();
  Server srv(small_opts(/*workers=*/2));
  srv.start();
  // Worker session guards plus registry-tracked maintenance workers draw
  // ids at start; connections must not add a single one on top.
  const int started = ThreadRegistry::instance().in_use();
  EXPECT_GT(started, idle);
  std::vector<Client> conns;
  for (int i = 0; i < 100; ++i) conns.emplace_back(srv.port());
  for (auto& c : conns) ASSERT_TRUE(c.ping());
  EXPECT_EQ(srv.connections(), 100u);
  EXPECT_EQ(ThreadRegistry::instance().in_use(), started);
  conns.clear();
  srv.stop();
  EXPECT_EQ(ThreadRegistry::instance().in_use(), idle);
}

// Registry exhaustion is a clean error, not UB (the SessionPool-hardening
// regression): try_acquire degrades to -1, acquire throws.
TEST(SessionMapping, RegistryExhaustionIsACleanError) {
  auto& reg = ThreadRegistry::instance();
  std::vector<int> held;
  for (;;) {
    const int tid = reg.try_acquire();
    if (tid < 0) break;
    held.push_back(tid);
  }
  EXPECT_EQ(reg.in_use(), kMaxThreads);
  EXPECT_THROW(reg.acquire(), ThreadSlotsExhaustedError);
  {
    SessionGuard g;  // the non-throwing guard reports failure instead
    EXPECT_FALSE(g.acquired());
  }
  // A server cannot start without worker sessions — and says so.
  Server srv(small_opts());
  EXPECT_THROW(srv.start(), ThreadSlotsExhaustedError);
  for (int tid : held) reg.release(tid);
  // After release the same server object starts fine.
  srv.start();
  Client c(srv.port());
  EXPECT_TRUE(c.ping());
  srv.stop();
}

// ---- shutdown hygiene ------------------------------------------------------

TEST(Shutdown, ReleasesSessionsAndFdsAndRestarts) {
  const int tids_before = ThreadRegistry::instance().in_use();
  const size_t fds_before = open_fds();
  for (int cycle = 0; cycle < 3; ++cycle) {
    Server srv(small_opts());
    srv.start();
    std::vector<Client> conns;
    for (int i = 0; i < 8; ++i) conns.emplace_back(srv.port());
    for (int i = 0; i < 8; ++i) {
      // Distinct key per connection: a duplicate insert answers `no`.
      ASSERT_TRUE(conns[i].insert(cycle * 100 + i + 1, 1));
      ASSERT_TRUE(conns[i].ping());
    }
    srv.stop();
    // stop() is idempotent and the server restartable.
    srv.stop();
    srv.start();
    Client c(srv.port());
    ASSERT_TRUE(c.ping());
    srv.stop();
  }
  EXPECT_EQ(ThreadRegistry::instance().in_use(), tids_before);
  EXPECT_EQ(open_fds(), fds_before);
}

// In-flight pipelined responses are flushed before stop() closes the
// connection: a client that wrote a batch and then sees the server stop
// still gets every response.
TEST(Shutdown, DrainsBufferedFramesOnStop) {
  Server srv(small_opts());
  srv.start();
  Client c(srv.port());
  Pipeline p(c);
  for (KeyT k = 1; k <= 64; ++k) p.insert(k, k);
  p.flush();
  // Give the wave a moment to land in the worker's buffers, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread stopper([&] { srv.stop(); });
  const std::vector<Reply> rs = p.collect();
  stopper.join();
  ASSERT_EQ(rs.size(), 64u);
  for (const Reply& r : rs) EXPECT_EQ(r.status, Status::kOk);
}

// ---- observability over the wire -------------------------------------------

// The BENCH_6 regression: a mid-run stats document reported
// "connections": 0 while 64 clients were actively driving the server.
// Live connections must be visible WHILE they are connected, from both
// the stats document and the Prometheus gauge, and the peak must survive
// the connections going away.
TEST(Observability, LiveConnectionsVisibleUnderLoad) {
  Server srv(small_opts(/*workers=*/2));
  srv.start();
  std::vector<Client> conns;
  for (int i = 0; i < 64; ++i) conns.emplace_back(srv.port());
  for (auto& c : conns) ASSERT_TRUE(c.ping());
  // Mid-run, with every connection still open:
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.connections, 64u);
  EXPECT_GE(st.connections_peak, 64u);
  const std::string doc = srv.stats_json();
  EXPECT_EQ(doc.find("\"connections\": 0,"), std::string::npos)
      << "live connections invisible in mid-run stats:\n"
      << doc;
  // The same truth through the metrics path.
  std::string err;
  std::vector<bref::obs::PromSeries> series;
  ASSERT_TRUE(
      bref::obs::validate_prometheus(conns[0].metrics(), &err, &series))
      << err;
  double gauge = -1, peak = -1;
  for (const auto& s : series) {
    if (s.name == "bref_net_connections") gauge = s.value;
    if (s.name == "bref_net_connections_peak") peak = s.value;
  }
  EXPECT_EQ(gauge, 64.0);
  EXPECT_GE(peak, 64.0);
  // Peak survives the connections; the live gauge follows them down.
  conns.clear();
  for (int spin = 0; spin < 200 && srv.stats().connections != 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(srv.stats().connections, 0u);
  EXPECT_GE(srv.stats().connections_peak, 64u);
  srv.stop();
}

// METRICS must answer valid Prometheus text exposition covering every
// instrumented layer: net (server), shard (router), epoch (EBR), core
// (entry pool) — the CI validator's acceptance gate, as a unit test.
TEST(Observability, MetricsOpCoversAllLayers) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  Server srv(small_opts(/*workers=*/2, /*shards=*/4));
  srv.start();
  Client c(srv.port());
  for (KeyT k = 1; k <= 200; ++k) c.insert(k, k);
  RangeSnapshot snap;
  c.range(1, 200, snap);
  const std::string text = c.metrics();
  std::string err;
  ASSERT_TRUE(bref::obs::validate_prometheus(text, &err)) << err;
  EXPECT_TRUE(bref::obs::has_metric_prefix(text, "bref_net_"));
  EXPECT_TRUE(bref::obs::has_metric_prefix(text, "bref_shard_"));
  EXPECT_TRUE(bref::obs::has_metric_prefix(text, "bref_epoch_"));
  EXPECT_TRUE(bref::obs::has_metric_prefix(text, "bref_entry_pool_"));
  // Stage attribution flows: the wire path must have recorded per-stage
  // samples for the traffic above.
  std::vector<bref::obs::PromSeries> series;
  ASSERT_TRUE(bref::obs::validate_prometheus(text, &err, &series)) << err;
  double stage_count = 0;
  for (const auto& s : series)
    if (s.name == "bref_net_stage_seconds_count") stage_count += s.value;
  EXPECT_GT(stage_count, 0.0);
  srv.stop();
}

// End-to-end bref-trace: a client-stamped request captured under a
// commit-everything policy must resolve via TRACE_GET to a complete span
// timeline — queue through flush, including the coordinated shard
// fan-out and chunked-scan stages for a wide RANGE.
TEST(Observability, TraceGetResolvesStampedRequestTimeline) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  Server srv(small_opts(/*workers=*/2, /*shards=*/4));
  srv.start();
  ClientOptions co;
  co.trace = true;
  Client c("127.0.0.1", srv.port(), co);
  ASSERT_TRUE(c.trace_config(/*sample_every=*/0, /*threshold_us=*/0));
  for (KeyT k = 1; k <= 100; ++k) ASSERT_TRUE(c.insert(k, k));
  // The whole keyspace: wider than scan_chunk_keys, so this runs as a
  // chunked scan — pin fan-out, per-slice collects, pump iterations.
  RangeSnapshot snap;
  c.range(0, 1 << 16, snap);
  const uint64_t id = c.last_trace_id();
  ASSERT_NE(id, 0u);
  std::optional<std::string> tl = c.trace_get(id);
  ASSERT_TRUE(tl.has_value()) << "commit-all policy must keep the trace";
  char idhex[32];
  std::snprintf(idhex, sizeof idhex, "%016llx",
                static_cast<unsigned long long>(id));
  EXPECT_NE(tl->find(idhex), std::string::npos) << *tl;
  for (const char* stage : {"\"queue\"", "\"admission\"", "\"execute\"",
                            "\"shard_pin\"", "\"shard_collect\"",
                            "\"scan_chunk\"", "\"flush\""})
    EXPECT_NE(tl->find(stage), std::string::npos)
        << stage << " missing in\n"
        << *tl;
  // Pipelined frames are stamped too: ids parallel the batch, every one
  // resolvable (this also proves split_frame handles back-to-back
  // flagged frames in one buffer).
  Pipeline p(c);
  for (KeyT k = 1; k <= 8; ++k) p.get(k);
  const std::vector<uint64_t> ids = p.trace_ids();
  ASSERT_EQ(ids.size(), 8u);
  const std::vector<Reply> rs = p.collect();
  ASSERT_EQ(rs.size(), 8u);
  for (const Reply& r : rs) EXPECT_EQ(r.status, Status::kOk);
  ASSERT_NE(ids.back(), 0u);
  EXPECT_TRUE(c.trace_get(ids.back()).has_value());
  // The dump carries the policy knobs and the committed records.
  const std::string dump = c.trace_dump();
  EXPECT_NE(dump.find("\"sample_every\": 0"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"threshold_ns\": 0"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"op\": \"range\""), std::string::npos) << dump;
  ASSERT_TRUE(c.trace_config(128, 1000));  // restore defaults
  srv.stop();
}

// The acceptance-criteria loop, as a unit test: exemplars on the per-op
// latency histogram must carry trace ids that TRACE_GET resolves to
// complete timelines.
TEST(Observability, ExemplarsResolveToCommittedTimelines) {
  if (!obs::kEnabled) GTEST_SKIP() << "recording compiled out (BREF_OBS=OFF)";
  Server srv(small_opts(/*workers=*/2));
  srv.start();
  ClientOptions co;
  co.trace = true;
  Client c("127.0.0.1", srv.port(), co);
  ASSERT_TRUE(c.trace_config(/*sample_every=*/0, /*threshold_us=*/0));
  for (KeyT k = 1; k <= 300; ++k) ASSERT_TRUE(c.insert(k, k));
  const std::string text = c.metrics();
  std::string err;
  std::vector<bref::obs::PromSeries> series;
  ASSERT_TRUE(bref::obs::validate_prometheus(text, &err, &series)) << err;
  size_t with_exemplar = 0, resolved = 0;
  for (const auto& s : series) {
    if (!s.has_exemplar || s.name != "bref_net_op_seconds_bucket") continue;
    ++with_exemplar;
    ASSERT_EQ(s.exemplar_labels.size(), 1u);
    ASSERT_EQ(s.exemplar_labels[0].first, "trace_id");
    const uint64_t id =
        std::stoull(s.exemplar_labels[0].second, nullptr, 16);
    if (std::optional<std::string> tl = c.trace_get(id); tl.has_value()) {
      EXPECT_NE(tl->find("\"spans\""), std::string::npos);
      ++resolved;
    }
  }
  ASSERT_GT(with_exemplar, 0u) << text;
  // Stale exemplars from earlier servers in this process may no longer
  // resolve; the ones this run committed must.
  EXPECT_GT(resolved, 0u);
  ASSERT_TRUE(c.trace_config(128, 1000));
  srv.stop();
}

// Wire compatibility: a client that never stamps speaks the old framing
// byte-for-byte, and TRACE_GET for an unknown id answers kNo.
TEST(Observability, UntracedClientsAndUnknownTraceIdsBehave) {
  Server srv(small_opts());
  srv.start();
  Client plain(srv.port());
  ASSERT_TRUE(plain.ping());
  ASSERT_TRUE(plain.insert(1, 1));
  EXPECT_EQ(plain.last_trace_id(), 0u);
  EXPECT_FALSE(plain.trace_get(0xdeadbeefdeadbeefull).has_value());
  srv.stop();
}

// ---- acceptance: loopback linearizability audit ----------------------------

// Concurrent clients run a mixed point/range workload over the server;
// RANGE responses carry server-side snapshot timestamps (one shared clock
// across the 4 shards), so the history must pass the timestamp-aware
// Wing–Gong check: linearizable AND stamped queries in @ts order.
TEST(Linearizability, LoopbackMixedWorkloadAuditsCleanWithTimestamps) {
  constexpr int kThreads = 6;
  ServerOptions o = small_opts(/*workers=*/3, /*shards=*/4);
  o.key_hi = 8;  // keys 1..7 spread over all four shards
  Server srv(o);
  srv.start();
  for (int burst = 0; burst < 10; ++burst) {
    // Pre-history: the surviving content of earlier bursts.
    validation::History pre;
    {
      Client c(srv.port());
      RangeSnapshot now;
      c.range(0, 8, now);
      for (const auto& [k, v] : now) {
        validation::Op op;
        op.kind = validation::OpKind::kInsert;
        op.key = k;
        op.val = v;
        op.result = true;
        op.invoke_ns = 2 * pre.size();
        op.response_ns = 2 * pre.size() + 1;
        pre.push_back(op);
      }
    }
    std::vector<validation::ThreadLog> logs;
    for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        Client c(srv.port());
        Xoshiro256 rng(burst * 131 + t + 1);
        RangeSnapshot out;
        for (int i = 0; i < 3; ++i) {
          const KeyT k = 1 + static_cast<KeyT>(rng.next_range(7));
          const uint64_t t0 = validation::now_ns();
          switch (rng.next_range(4)) {
            case 0: {
              const ValT v = burst * 100 + t * 10 + i;
              const bool r = c.insert(k, v);
              logs[t].record_point(validation::OpKind::kInsert, k, v, r, t0,
                                   validation::now_ns());
              break;
            }
            case 1: {
              const bool r = c.remove(k);
              logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                                   validation::now_ns());
              break;
            }
            case 2: {
              const std::optional<ValT> v = c.get(k);
              logs[t].record_point(validation::OpKind::kContains, k,
                                   v.value_or(0), v.has_value(), t0,
                                   validation::now_ns());
              break;
            }
            default: {
              // Spans every shard -> coordinated single-timestamp path.
              c.range(1, 8, out);
              logs[t].record_rq(out, t0, validation::now_ns());
              break;
            }
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    validation::History h = validation::merge(logs);
    h.insert(h.end(), pre.begin(), pre.end());
    const auto verdict = validation::check_linearizable_with_ts(h);
    ASSERT_TRUE(verdict.linearizable)
        << "burst " << burst << ": " << verdict.message;
  }
  // The audit must have exercised the wire RANGE path with stamps.
  const ServerStats st = srv.stats();
  EXPECT_GT(st.frames, 0u);
  srv.stop();
}

// ---- client robustness (ISSUE 8 regressions) -------------------------------

// A peer dying mid-pipeline must never block collect() forever: every
// read site is deadline-bounded and fails with a typed NetError (or the
// batch completes, if the server's stop() drain delivered everything).
TEST(ClientRobustness, ServerDeathMidPipelineReturnsWithinDeadline) {
  Server srv(small_opts());
  srv.start();
  ClientOptions copt;
  copt.op_deadline_ms = 4'000;
  copt.recv_timeout_ms = 200;
  Client c(srv.port(), copt);
  ASSERT_TRUE(c.ping());
  Pipeline p(c);
  for (int i = 0; i < 20'000; ++i) p.insert(i, i);
  p.flush();
  std::thread killer([&] { srv.stop(); });
  const uint64_t t0 = Client::now_ms();
  try {
    p.collect();
  } catch (const NetError& e) {
    EXPECT_TRUE(e.kind() == NetErrorKind::kEof ||
                e.kind() == NetErrorKind::kReset ||
                e.kind() == NetErrorKind::kTimeout)
        << net::to_string(e.kind());
  }
  EXPECT_LT(Client::now_ms() - t0, 10'000u);
  killer.join();
}

// A peer that accepts the connection but never answers (black hole) must
// surface as kTimeout at the op deadline, not an indefinite recv block.
TEST(ClientRobustness, BlackHolePeerTimesOutInsteadOfHanging) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t alen = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen);

  ClientOptions copt;
  copt.op_deadline_ms = 600;
  copt.recv_timeout_ms = 100;
  Client c(ntohs(addr.sin_port), copt);
  const uint64_t t0 = Client::now_ms();
  try {
    c.get(1);
    FAIL() << "expected kTimeout against a black-hole peer";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kTimeout) << net::to_string(e.kind());
  }
  const uint64_t took = Client::now_ms() - t0;
  EXPECT_GE(took, 500u);    // honored the deadline...
  EXPECT_LT(took, 5'000u);  // ...and did not sit past it
  ::close(lfd);
}

}  // namespace
