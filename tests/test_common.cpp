// Unit tests for src/common: padding, locks, RNGs, registry, DCSS.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/dcss.h"
#include "common/random.h"
#include "common/rwlock.h"
#include "common/spinlock.h"
#include "common/thread_registry.h"
#include "test_util.h"

#include <mutex>

namespace bref {
namespace {

// ---------- CachePadded ----------

TEST(CachePadded, AlignmentAndSize) {
  EXPECT_EQ(alignof(CachePadded<int>), kCacheLine);
  EXPECT_GE(sizeof(CachePadded<int>), kCacheLine);
  EXPECT_EQ(sizeof(CachePadded<char[200]>) % kCacheLine, 0u);
  CachePadded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<uintptr_t>(&arr[i]);
    auto b = reinterpret_cast<uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLine);
  }
}

TEST(CachePadded, AccessOperators) {
  CachePadded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.value, 42);
}

// ---------- Spinlock ----------

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  int counter = 0;
  constexpr int kIters = 20000;
  testutil::run_threads(4, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      lock.lock();
      ++counter;
      lock.unlock();
    }
  });
  EXPECT_EQ(counter, 4 * kIters);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// ---------- RWSpinlock ----------

TEST(RWSpinlock, ReadersShareWriterExcludes) {
  RWSpinlock lock;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<long> shared_value{0};
  std::atomic<bool> writer_inside{false};
  std::atomic<bool> violation{false};
  testutil::run_threads(4, [&](int tid) {
    for (int i = 0; i < 5000; ++i) {
      if (tid == 0) {
        lock.lock();
        if (readers_inside.load() != 0) violation = true;
        writer_inside = true;
        shared_value.fetch_add(1);
        writer_inside = false;
        lock.unlock();
      } else {
        lock.lock_shared();
        int r = readers_inside.fetch_add(1) + 1;
        int m = max_readers.load();
        while (r > m && !max_readers.compare_exchange_weak(m, r)) {
        }
        if (writer_inside.load()) violation = true;
        readers_inside.fetch_sub(1);
        lock.unlock_shared();
      }
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(shared_value.load(), 5000);
  EXPECT_GE(max_readers.load(), 1);
}

// ---------- Xoshiro256 ----------

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal_ac = true;
  for (int i = 0; i < 64; ++i) {
    uint64_t x = a.next_u64();
    EXPECT_EQ(x, b.next_u64());
    if (x != c.next_u64()) all_equal_ac = false;
  }
  EXPECT_FALSE(all_equal_ac);
}

TEST(Xoshiro, RangeBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_range(17), 17u);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, RangeIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 10, kSamples = 100000;
  int hist[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) hist[rng.next_range(kBuckets)]++;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(hist[b], kSamples / kBuckets / 2);
    EXPECT_LT(hist[b], kSamples / kBuckets * 2);
  }
}

// ---------- ZipfGenerator ----------

TEST(Zipf, BoundsAndSkew) {
  ZipfGenerator z(1000, 0.99, 5);
  int first = 0;
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = z.next();
    ASSERT_LT(v, 1000u);
    if (v == 0) ++first;
  }
  // Item 0 should be far hotter than uniform (50 expected under uniform).
  EXPECT_GT(first, 1000);
}

// ---------- ThreadRegistry / TidHwm ----------

TEST(ThreadRegistry, DenseUniqueIds) {
  ThreadRegistry reg;
  std::set<int> ids;
  std::mutex mu;
  testutil::run_threads(8, [&](int) {
    int id = reg.acquire();
    std::lock_guard<std::mutex> g(mu);
    ids.insert(id);
  });
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 7);
}

TEST(ThreadRegistry, ReleaseRecyclesIds) {
  ThreadRegistry reg;
  const int a = reg.acquire();
  const int b = reg.acquire();
  EXPECT_EQ(reg.in_use(), 2);
  reg.release(a);
  EXPECT_EQ(reg.in_use(), 1);
  EXPECT_EQ(reg.acquire(), a);  // recycled, not a fresh slot
  reg.release(a);
  reg.release(b);
  EXPECT_EQ(reg.in_use(), 0);
  EXPECT_EQ(reg.registered(), 2);  // high-water mark unchanged
}

TEST(TidHwm, TracksMaximum) {
  TidHwm h;
  EXPECT_EQ(h.get(), 0);
  h.note(3);
  EXPECT_EQ(h.get(), 4);
  h.note(1);
  EXPECT_EQ(h.get(), 4);
  h.note(10);
  EXPECT_EQ(h.get(), 11);
}

// ---------- DCSS ----------

TEST(Dcss, SucceedsWhenBothMatch) {
  DcssProvider d;
  std::atomic<uint64_t> a1{5}, a2{10};
  EXPECT_TRUE(d.dcss(0, a1, 5, a2, 10, 11));
  EXPECT_EQ(d.read(a2), 11u);
}

TEST(Dcss, FailsOnControlMismatch) {
  DcssProvider d;
  std::atomic<uint64_t> a1{5}, a2{10};
  EXPECT_FALSE(d.dcss(0, a1, 6, a2, 10, 11));
  EXPECT_EQ(d.read(a2), 10u);
}

TEST(Dcss, FailsOnDataMismatch) {
  DcssProvider d;
  std::atomic<uint64_t> a1{5}, a2{10};
  EXPECT_FALSE(d.dcss(0, a1, 5, a2, 9, 11));
  EXPECT_EQ(d.read(a2), 10u);
}

TEST(Dcss, SequentialReuse) {
  DcssProvider d;
  std::atomic<uint64_t> a1{0}, a2{0};
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(d.dcss(0, a1, 0, a2, i, i + 1));
  }
  EXPECT_EQ(d.read(a2), 1000u);
}

// Stress: counters advance only when the control word has the agreed value;
// a control-flipper thread forces retries and helping.
TEST(Dcss, ConcurrentStress) {
  DcssProvider d;
  std::atomic<uint64_t> control{0};
  std::atomic<uint64_t> data{0};
  constexpr int kThreads = 4;
  constexpr uint64_t kIncs = 4000;
  std::atomic<uint64_t> successes{0};
  testutil::run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(tid + 1);
    for (uint64_t i = 0; i < kIncs; ++i) {
      if (tid == 0 && i % 8 == 0) {
        control.fetch_add(1, std::memory_order_seq_cst);
        continue;
      }
      for (;;) {
        uint64_t c = control.load();
        uint64_t v = d.read(data);
        if (d.dcss(tid, control, c, data, v, v + 1)) {
          successes.fetch_add(1);
          break;
        }
      }
    }
  });
  EXPECT_EQ(d.read(data), successes.load());
}

// ---------- Backoff ----------

TEST(Backoff, PausesWithoutHanging) {
  Backoff bo(2, 16);
  for (int i = 0; i < 12; ++i) bo.pause();
  bo.reset();
  bo.pause();
  SUCCEED();
}

}  // namespace
}  // namespace bref
