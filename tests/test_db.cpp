// MiniDB / TPC-C substrate tests: generator properties, load-time
// invariants, per-transaction effects, and concurrent delivery exactness
// (no order delivered twice — the reason DELIVERY needs a linearizable
// range query + remove).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "db/tpcc.h"
#include "db/tpcc_gen.h"
#include "test_util.h"

namespace bref {
namespace {

using db::TpccDb;
using db::TpccScale;
using db::TpccStats;

TEST(TpccGen, NurandStaysInBounds) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = db::nurand(rng, 1023, 0, 2999);
    EXPECT_LE(v, 2999u);
  }
}

TEST(TpccGen, NurandIsNonUniform) {
  // NURand concentrates mass; the most popular value should beat the
  // uniform expectation by a wide margin over [0, 999].
  Xoshiro256 rng(2);
  int hist[1000] = {};
  for (int i = 0; i < 100000; ++i) hist[db::nurand(rng, 255, 0, 999)]++;
  int max_count = 0;
  for (int c : hist) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 300);  // uniform expectation is 100
}

TEST(TpccGen, LastnameSyllables) {
  // TPC-C 4.3.2.3: concatenate the syllables indexed by the hundreds, tens
  // and units digits of the number.
  EXPECT_EQ(db::tpcc_lastname(0), "BARBARBAR");
  EXPECT_EQ(db::tpcc_lastname(371), "PRICALLYOUGHT");
  EXPECT_EQ(db::tpcc_lastname(999), "EINGEINGEING");
}

TEST(TpccGen, KeyEncodingsAreOrderPreservingPerDistrict) {
  EXPECT_LT(db::order_key(0, 0, 5), db::order_key(0, 0, 6));
  EXPECT_LT(db::order_key(0, 0, 1000000), db::order_key(0, 1, 1));
  EXPECT_LT(db::orderline_key(1, 2, 7, 3), db::orderline_key(1, 2, 7, 4));
  EXPECT_LT(db::orderline_key(1, 2, 7, 15), db::orderline_key(1, 2, 8, 0));
  EXPECT_LT(db::customer_name_key(0, 0, 5, 99),
            db::customer_name_key(0, 0, 6, 0));
}

TEST(TpccDb, LoadPopulatesIndexes) {
  TpccScale scale{1, 100, 20};
  TpccDb<BundleSkipListSet> dbi(scale);
  EXPECT_EQ(dbi.customer_index.size_slow(),
            size_t(db::kDistrictsPerWarehouse) * 100);
  EXPECT_EQ(dbi.customer_name_index.size_slow(),
            size_t(db::kDistrictsPerWarehouse) * 100);
  EXPECT_EQ(dbi.order_index.size_slow(),
            size_t(db::kDistrictsPerWarehouse) * 20);
  EXPECT_EQ(dbi.neworder_index.size_slow(),
            size_t(db::kDistrictsPerWarehouse) * 20);
  db::Txn audit = dbi.begin_txn(0);
  EXPECT_EQ(dbi.undelivered_count(audit),
            size_t(db::kDistrictsPerWarehouse) * 20);
}

TEST(TpccDb, NewOrderCreatesConsistentRows) {
  TpccScale scale{1, 50, 0};
  TpccDb<BundleListSet> dbi(scale);
  Xoshiro256 rng(3);
  TpccStats st;
  for (int i = 0; i < 20; ++i) {
    db::Txn txn = dbi.begin_txn(0);
    dbi.run_new_order(txn, rng, st);
  }
  EXPECT_EQ(st.txn_new_order, 20u);
  EXPECT_EQ(dbi.order_index.size_slow(), 20u);
  EXPECT_EQ(dbi.neworder_index.size_slow(), 20u);
  // Order lines per order within [5, 15] and consistent with o.ol_cnt.
  auto orders = dbi.order_index.to_vector();
  size_t total_lines = 0;
  for (const auto& [k, v] : orders) {
    auto* o = reinterpret_cast<db::OrderRow*>(v);
    EXPECT_GE(o->ol_cnt, 5);
    EXPECT_LE(o->ol_cnt, 15);
    total_lines += o->ol_cnt;
  }
  EXPECT_EQ(dbi.orderline_index.size_slow(), total_lines);
  EXPECT_GT(st.index_ops, 20u * 2);
}

TEST(TpccDb, PaymentByNameFindsLoadedCustomers) {
  TpccScale scale{1, 1000, 0};  // first 1000 customers cover all names
  TpccDb<BundleSkipListSet> dbi(scale);
  Xoshiro256 rng(4);
  TpccStats st;
  for (int i = 0; i < 200; ++i) {
    db::Txn txn = dbi.begin_txn(0);
    dbi.run_payment(txn, rng, st);
  }
  EXPECT_EQ(st.txn_payment, 200u);
  EXPECT_EQ(st.payment_name_misses, 0u)
      << "name index lookup failed although every name is present";
}

TEST(TpccDb, DeliveryDeliversOldestFirst) {
  TpccScale scale{1, 50, 30};
  TpccDb<BundleCitrusSet> dbi(scale);
  Xoshiro256 rng(5);
  TpccStats st;
  db::Txn txn = dbi.begin_txn(0);
  const size_t before = dbi.undelivered_count(txn);
  dbi.run_delivery(txn, rng, st);
  EXPECT_EQ(st.txn_delivery, 1u);
  EXPECT_EQ(dbi.undelivered_count(txn),
            before - st.delivered_orders);
  EXPECT_GT(st.delivered_orders, 0u);
}

TEST(TpccDb, ConcurrentDeliveriesNeverDeliverTwice) {
  // The crux of the DELIVERY profile: with linearizable RQ + remove, each
  // order is delivered at most once even under concurrent deliveries.
  TpccScale scale{2, 50, 200};
  TpccDb<BundleSkipListSet> dbi(scale);
  constexpr int kThreads = 4;
  std::vector<TpccStats> stats(kThreads);
  testutil::run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(100 + tid);
    for (int i = 0; i < 40; ++i) {
      db::Txn txn = dbi.begin_txn(tid);
      dbi.run_delivery(txn, rng, stats[tid]);
    }
  });
  uint64_t delivered = 0;
  for (auto& s : stats) delivered += s.delivered_orders;
  const size_t initial =
      size_t(scale.warehouses) * db::kDistrictsPerWarehouse * 200;
  db::Txn audit = dbi.begin_txn(0);
  EXPECT_EQ(dbi.undelivered_count(audit), initial - delivered);
  EXPECT_LE(delivered, initial);
}

TEST(TpccDb, MixedWorkloadConservesOrders) {
  TpccScale scale{1, 100, 50};
  TpccDb<EbrRqSkipListSet> dbi(scale);
  constexpr int kThreads = 3;
  std::vector<TpccStats> stats(kThreads);
  testutil::run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(7 + tid);
    for (int i = 0; i < 300; ++i) {
      db::Txn txn = dbi.begin_txn(tid);
      dbi.run_mixed_txn(txn, rng, stats[tid]);
    }
  });
  uint64_t created = 0, delivered = 0;
  for (auto& s : stats) {
    created += s.txn_new_order;
    delivered += s.delivered_orders;
  }
  const size_t initial = size_t(db::kDistrictsPerWarehouse) * 50;
  db::Txn audit = dbi.begin_txn(0);
  EXPECT_EQ(dbi.undelivered_count(audit), initial + created - delivered);
  EXPECT_TRUE(dbi.neworder_index.check_invariants());
  EXPECT_TRUE(dbi.orderline_index.check_invariants());
}

TEST(TpccDb, OrderStatusFindsCustomersLatestOrder) {
  TpccScale scale{1, 30, 0};
  TpccDb<BundleSkipListSet> dbi(scale);
  Xoshiro256 rng(6);
  TpccStats st;
  // Create some orders first so ORDER_STATUS has something to find.
  for (int i = 0; i < 60; ++i) {
    db::Txn txn = dbi.begin_txn(0);
    dbi.run_new_order(txn, rng, st);
  }
  const uint64_t ops_before = st.index_ops;
  for (int i = 0; i < 50; ++i) {
    db::Txn txn = dbi.begin_txn(0);
    dbi.run_order_status(txn, rng, st);
  }
  EXPECT_EQ(st.txn_order_status, 50u);
  // Read-only: no index mutations.
  EXPECT_EQ(dbi.order_index.size_slow(), 60u);
  // Each ORDER_STATUS performs at least the customer lookup.
  EXPECT_GE(st.index_ops - ops_before, 50u);
}

TEST(TpccDb, StockLevelCountsDistinctLowStockItems) {
  TpccScale scale{1, 30, 0};
  TpccDb<BundleCitrusSet> dbi(scale);
  Xoshiro256 rng(8);
  TpccStats st;
  for (int i = 0; i < 40; ++i) {
    db::Txn txn = dbi.begin_txn(0);
    dbi.run_new_order(txn, rng, st);
  }
  // Drain some stock below any threshold so low_stock_seen can fire.
  auto lines = dbi.orderline_index.to_vector();
  ASSERT_FALSE(lines.empty());
  for (const auto& [k, v] : lines) {
    auto* line = reinterpret_cast<db::OrderLineRow*>(v);
    dbi.stock(0, line->i_id).quantity.store(0, std::memory_order_relaxed);
  }
  const size_t ol_before = dbi.orderline_index.size_slow();
  for (int i = 0; i < 30; ++i) {
    db::Txn txn = dbi.begin_txn(0);
    dbi.run_stock_level(txn, rng, st);
  }
  EXPECT_EQ(st.txn_stock_level, 30u);
  EXPECT_GT(st.low_stock_seen, 0u);
  EXPECT_EQ(dbi.orderline_index.size_slow(), ol_before);  // read-only
}

TEST(TpccDb, FullMixRunsAllFiveProfiles) {
  TpccScale scale{1, 100, 30};
  TpccDb<BundleSkipListSet> dbi(scale);
  constexpr int kThreads = 3;
  std::vector<TpccStats> stats(kThreads);
  testutil::run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(17 + tid);
    for (int i = 0; i < 400; ++i) {
      db::Txn txn = dbi.begin_txn(tid);
      dbi.run_full_mix_txn(txn, rng, stats[tid]);
    }
  });
  TpccStats sum;
  uint64_t created = 0, delivered = 0;
  for (auto& s : stats) {
    sum.txn_new_order += s.txn_new_order;
    sum.txn_payment += s.txn_payment;
    sum.txn_order_status += s.txn_order_status;
    sum.txn_delivery += s.txn_delivery;
    sum.txn_stock_level += s.txn_stock_level;
    created += s.txn_new_order;
    delivered += s.delivered_orders;
  }
  // All five profiles fire under the spec mix (1200 txns total).
  EXPECT_GT(sum.txn_new_order, 0u);
  EXPECT_GT(sum.txn_payment, 0u);
  EXPECT_GT(sum.txn_order_status, 0u);
  EXPECT_GT(sum.txn_delivery, 0u);
  EXPECT_GT(sum.txn_stock_level, 0u);
  // Order conservation still holds with the read-only profiles in the mix.
  const size_t initial = size_t(db::kDistrictsPerWarehouse) * 30;
  db::Txn audit = dbi.begin_txn(0);
  EXPECT_EQ(dbi.undelivered_count(audit), initial + created - delivered);
}

TEST(TpccTxn, SessionBundleReleasesIdOnCommitAbortAndScopeExit) {
  // One dense id covers all five indexes for the transaction's lifetime
  // and goes back to the global registry at commit/abort/scope exit — the
  // sessions-era contract that replaced the raw-tid convention.
  TpccScale scale{1, 30, 5};
  TpccDb<BundleListSet> dbi(scale);
  auto& reg = ThreadRegistry::instance();
  const int baseline = reg.in_use();
  Xoshiro256 rng(12);
  TpccStats st;
  {
    db::Txn txn = dbi.begin_txn();  // auto-acquired
    EXPECT_TRUE(txn.open());
    EXPECT_EQ(reg.in_use(), baseline + 1);
    dbi.run_new_order(txn, rng, st);
    dbi.run_payment(txn, rng, st);
    txn.commit();
    EXPECT_FALSE(txn.open());
    EXPECT_EQ(reg.in_use(), baseline);  // released at commit, not scope end
  }
  EXPECT_EQ(reg.in_use(), baseline);
  {
    db::Txn txn = dbi.begin_txn();
    txn.abort();  // abort releases too (MiniDB applies eagerly; no undo)
    EXPECT_EQ(reg.in_use(), baseline);
  }
  {
    db::Txn txn = dbi.begin_txn();
    dbi.run_new_order(txn, rng, st);
    // No explicit commit: scope exit ends the bundle.
  }
  EXPECT_EQ(reg.in_use(), baseline);
  // Pinned ids are borrowed, never released (the benchmark convention).
  {
    db::Txn txn = dbi.begin_txn(7);
    EXPECT_EQ(txn.tid(), 7);
    EXPECT_EQ(reg.in_use(), baseline);
  }
  EXPECT_EQ(reg.in_use(), baseline);
}

TEST(TpccDb, WorksWithEveryIndexFamily) {
  // Smoke: one mixed transaction burst per representative index type.
  TpccScale scale{1, 60, 20};
  auto burst = [&](auto* dbi) {
    Xoshiro256 rng(9);
    TpccStats st;
    for (int i = 0; i < 50; ++i) {
      db::Txn txn = dbi->begin_txn(0);
      dbi->run_mixed_txn(txn, rng, st);
    }
    EXPECT_GT(st.index_ops, 0u);
  };
  {
    TpccDb<UnsafeCitrusSet> d(scale);
    burst(&d);
  }
  {
    TpccDb<EbrRqLfCitrusSet> d(scale);
    burst(&d);
  }
  {
    TpccDb<RluSkipListSet> d(scale);
    burst(&d);
  }
  {
    TpccDb<RluListSet> d(scale);
    burst(&d);
  }
}

}  // namespace
}  // namespace bref
