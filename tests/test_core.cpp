// Unit tests for the bundling core: global timestamp (incl. relaxation),
// Bundle prepare/finalize/dereference/pruning, linearize_update, RqTracker.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/bundle.h"
#include "core/bundle_cleaner.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "core/sync_hooks.h"
#include "epoch/ebr.h"
#include "test_util.h"

namespace bref {
namespace {

struct FakeNode {
  int id;
};

// ---------- GlobalTimestamp ----------

TEST(GlobalTimestamp, StartsAtZeroAndAdvances) {
  GlobalTimestamp gts;
  EXPECT_EQ(gts.read(), 0u);
  EXPECT_EQ(gts.advance(), 1u);
  EXPECT_EQ(gts.advance(), 2u);
  EXPECT_EQ(gts.read(), 2u);
}

TEST(GlobalTimestamp, LinearizableModeAdvancesEveryUpdate) {
  GlobalTimestamp gts(1);
  EXPECT_EQ(gts.update_ts(0), 1u);
  EXPECT_EQ(gts.update_ts(3), 2u);
  EXPECT_EQ(gts.read(), 2u);
}

TEST(GlobalTimestamp, RelaxedModeAdvancesEveryTth) {
  GlobalTimestamp gts(/*T=*/5);
  int advances = 0;
  timestamp_t prev = gts.read();
  for (int i = 0; i < 25; ++i) {
    gts.update_ts(0);
    if (gts.read() != prev) {
      ++advances;
      prev = gts.read();
    }
  }
  EXPECT_EQ(advances, 5);  // 25 updates / T=5
}

TEST(GlobalTimestamp, RelaxedCountersArePerThread) {
  GlobalTimestamp gts(/*T=*/4);
  for (int i = 0; i < 3; ++i) gts.update_ts(0);
  EXPECT_EQ(gts.read(), 0u);
  for (int i = 0; i < 3; ++i) gts.update_ts(1);
  EXPECT_EQ(gts.read(), 0u);  // neither thread hit its threshold
  gts.update_ts(0);
  EXPECT_EQ(gts.read(), 1u);
}

TEST(GlobalTimestamp, InfiniteRelaxationNeverAdvances) {
  GlobalTimestamp gts(GlobalTimestamp::kRelaxInfinite);
  for (int i = 0; i < 100; ++i) gts.update_ts(0);
  EXPECT_EQ(gts.read(), 0u);
}

TEST(GlobalTimestamp, ConcurrentAdvanceIsAtomic) {
  GlobalTimestamp gts;
  constexpr int kThreads = 4, kIncs = 10000;
  testutil::run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIncs; ++i) gts.advance();
  });
  EXPECT_EQ(gts.read(), uint64_t(kThreads) * kIncs);
}

// ---------- Bundle ----------

TEST(Bundle, InitAndNewest) {
  Bundle<FakeNode> b;
  FakeNode n{1};
  b.init(&n, 0);
  EXPECT_EQ(b.newest(), &n);
  EXPECT_EQ(b.size(), 1u);
}

TEST(Bundle, DereferenceRespectsTimestamps) {
  Bundle<FakeNode> b;
  FakeNode n0{0}, n1{1}, n2{2};
  b.init(&n0, 0);
  auto* e1 = b.prepare(0, &n1);
  Bundle<FakeNode>::finalize(e1, 5);
  auto* e2 = b.prepare(0, &n2);
  Bundle<FakeNode>::finalize(e2, 9);

  EXPECT_EQ(b.dereference(0).ptr, &n0);
  EXPECT_EQ(b.dereference(4).ptr, &n0);
  EXPECT_EQ(b.dereference(5).ptr, &n1);  // inclusive boundary
  EXPECT_EQ(b.dereference(8).ptr, &n1);
  EXPECT_EQ(b.dereference(9).ptr, &n2);
  EXPECT_EQ(b.dereference(1000).ptr, &n2);
  EXPECT_TRUE(b.dereference(0).found);
}

TEST(Bundle, DereferenceNotFoundBeforeFirstEntry) {
  Bundle<FakeNode> b;
  FakeNode n{7};
  auto* e = b.prepare(0, &n);
  Bundle<FakeNode>::finalize(e, 3);
  auto d = b.dereference(2);
  EXPECT_FALSE(d.found);  // link did not exist at ts=2 -> RQ must restart
}

TEST(Bundle, EntriesSortedNewestFirst) {
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  for (timestamp_t t = 1; t <= 8; ++t)
    Bundle<FakeNode>::finalize(b.prepare(0, &n), t);
  auto entries = b.snapshot_entries();
  ASSERT_EQ(entries.size(), 9u);
  for (size_t i = 1; i < entries.size(); ++i)
    EXPECT_GT(entries[i - 1].first, entries[i].first);
}

TEST(Bundle, FinalizeClampsToKeepOrderUnderRelaxation) {
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  Bundle<FakeNode>::finalize(b.prepare(0, &n), 7);
  // A relaxed-mode thread with a stale clock tries to stamp 3 after 7.
  Bundle<FakeNode>::finalize(b.prepare(0, &n), 3);
  auto entries = b.snapshot_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 7u);  // clamped up
  EXPECT_EQ(entries[1].first, 7u);
}

TEST(Bundle, DereferenceBlocksOnPendingHead) {
  Bundle<FakeNode> b;
  FakeNode n0{0}, n1{1};
  b.init(&n0, 0);
  auto* pending = b.prepare(0, &n1);
  std::atomic<bool> started{false}, done{false};
  FakeNode* seen = nullptr;
  std::thread reader([&] {
    started = true;
    seen = b.dereference(10).ptr;  // must wait for the pending entry
    done = true;
  });
  while (!started) cpu_relax();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());  // still blocked on PENDING
  Bundle<FakeNode>::finalize(pending, 4);
  reader.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(seen, &n1);
}

TEST(Bundle, PrepareBlocksBehindPendingHead) {
  Bundle<FakeNode> b;
  FakeNode n0{0}, n1{1}, n2{2};
  b.init(&n0, 0);
  auto* first = b.prepare(0, &n1);
  std::atomic<bool> done{false};
  std::thread competitor([&] {
    auto* e = b.prepare(1, &n2);  // must wait until `first` finalizes
    Bundle<FakeNode>::finalize(e, 9);
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  Bundle<FakeNode>::finalize(first, 4);
  competitor.join();
  auto entries = b.snapshot_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 9u);
  EXPECT_EQ(entries[1].first, 4u);
}

TEST(Bundle, ReclaimOlderKeepsCoveringEntry) {
  Ebr ebr;
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  for (timestamp_t t = 1; t <= 10; ++t)
    Bundle<FakeNode>::finalize(b.prepare(0, &n), t);
  // Oldest active RQ is at ts=6: keep entries 7..10 plus the covering
  // entry 6; retire 0..5 (6 entries).
  ebr.pin(0);
  size_t reclaimed = b.reclaim_older(6, ebr, 0);
  ebr.unpin(0);
  EXPECT_EQ(reclaimed, 6u);
  auto entries = b.snapshot_entries();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries.back().first, 6u);
  // Dereference at the oldest snapshot still works.
  EXPECT_TRUE(b.dereference(6).found);
}

TEST(Bundle, ReclaimOlderNoopWhenNothingStale) {
  Ebr ebr;
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 5);
  ebr.pin(0);
  EXPECT_EQ(b.reclaim_older(3, ebr, 0), 0u);  // nothing satisfies ts=3
  EXPECT_EQ(b.reclaim_older(5, ebr, 0), 0u);  // covering entry only
  ebr.unpin(0);
  EXPECT_EQ(b.size(), 1u);
}

TEST(Bundle, ReclaimSkipsPendingHead) {
  Ebr ebr;
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  Bundle<FakeNode>::finalize(b.prepare(0, &n), 2);
  auto* pending = b.prepare(0, &n);
  ebr.pin(0);
  EXPECT_EQ(b.reclaim_older(10, ebr, 0), 0u);
  ebr.unpin(0);
  Bundle<FakeNode>::finalize(pending, 3);
}

// ---------- linearize_update ----------

TEST(LinearizeUpdate, OrdersPrepareAdvanceLinearizeFinalize) {
  GlobalTimestamp gts;
  Bundle<FakeNode> b1, b2;
  FakeNode n1{1}, n2{2};
  b1.init(&n1, 0);
  b2.init(&n2, 0);
  bool linearized = false;
  timestamp_t ts = linearize_update<FakeNode>(
      gts, 0, {{&b1, &n2}, {&b2, &n1}}, [&] { linearized = true; });
  EXPECT_TRUE(linearized);
  EXPECT_EQ(ts, 1u);
  EXPECT_EQ(b1.newest(), &n2);
  EXPECT_EQ(b2.newest(), &n1);
  EXPECT_EQ(b1.snapshot_entries()[0].first, 1u);
  EXPECT_EQ(b2.snapshot_entries()[0].first, 1u);
}

TEST(LinearizeUpdate, HooksFire) {
  GlobalTimestamp gts;
  Bundle<FakeNode> b;
  FakeNode n{1};
  b.init(&n, 0);
  static std::atomic<int> fired;
  fired = 0;
  SyncHooks::after_prepare.store([] { fired.fetch_add(1); });
  SyncHooks::before_finalize.store([] { fired.fetch_add(10); });
  linearize_update<FakeNode>(gts, 0, {{&b, &n}}, [] {});
  SyncHooks::reset();
  EXPECT_EQ(fired.load(), 11);
}

// ---------- RqTracker ----------

TEST(RqTracker, BeginPublishesSnapshot) {
  GlobalTimestamp gts;
  RqTracker rq;
  gts.advance();
  gts.advance();
  EXPECT_EQ(rq.begin(0, gts), 2u);
  EXPECT_EQ(rq.active_count(), 1);
  rq.end(0);
  EXPECT_EQ(rq.active_count(), 0);
}

TEST(RqTracker, OldestActiveIsMinOfAnnouncedAndClock) {
  GlobalTimestamp gts;
  RqTracker rq;
  for (int i = 0; i < 7; ++i) gts.advance();
  EXPECT_EQ(rq.oldest_active(gts), 7u);  // no active RQ: current clock
  rq.begin(2, gts);                      // announces 7
  for (int i = 0; i < 5; ++i) gts.advance();
  EXPECT_EQ(rq.oldest_active(gts), 7u);  // pinned by the active RQ
  rq.end(2);
  EXPECT_EQ(rq.oldest_active(gts), 12u);
}

namespace rq_pending_test {
std::atomic<bool> release{false};
}  // namespace rq_pending_test

TEST(RqTracker, OldestActiveWaitsOutPendingAnnounce) {
  GlobalTimestamp gts;
  RqTracker rq;
  for (int i = 0; i < 5; ++i) gts.advance();  // clock = 5
  rq_pending_test::release = false;
  // Stall the query between reading the clock and publishing its value —
  // the exact window the PENDING protocol exists for.
  SyncHooks::rq_mid_announce.store(
      +[] {
        while (!rq_pending_test::release.load(std::memory_order_acquire))
          cpu_relax();
      },
      std::memory_order_relaxed);
  std::thread query([&] { EXPECT_EQ(rq.begin(1, gts), 5u); });
  // Wait until the query has posted PENDING (counted as active).
  while (rq.active_count() == 0) cpu_relax();
  SyncHooks::reset();  // only the already-in-flight announce should stall
  for (int i = 0; i < 5; ++i) gts.advance();  // clock = 10
  std::atomic<timestamp_t> observed{RqTracker::kNone};
  std::thread scanner([&] {
    observed.store(rq.oldest_active(gts), std::memory_order_release);
  });
  // The scanner must be stuck waiting out the PENDING slot. (Timing-based,
  // but one-sided: a slow scanner can only make this check vacuous, never
  // fail it.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(observed.load(), RqTracker::kNone);
  rq_pending_test::release = true;
  scanner.join();
  query.join();
  // Without the pending wait the scanner would have returned clock=10 and
  // let the cleaner invalidate the query's snapshot at 5.
  EXPECT_EQ(observed.load(), 5u);
  rq.end(1);  // query stays active until the scan is checked
}

// ---------- BundleCleaner (on a real structure) ----------

TEST(BundleCleaner, PrunesQuiescentListToMinimalEntries) {
  BundleListSet list;
  for (KeyT k = 1; k <= 50; ++k) list.insert(0, k, k);
  for (KeyT k = 1; k <= 50; k += 2) list.remove(0, k);
  const size_t before = list.total_bundle_entries();
  {
    BundleCleaner<BundleListSet> cleaner(list, std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_GT(cleaner.passes(), 0u);
    EXPECT_GT(cleaner.entries_reclaimed(), 0u);
  }
  const size_t after = list.total_bundle_entries();
  EXPECT_LT(after, before);
  // Quiescent cleanup leaves exactly one entry per live bundle
  // (head sentinel + 25 live nodes + tail).
  EXPECT_EQ(after, list.size_slow() + 2);
  EXPECT_TRUE(list.check_invariants());
}

// ---------- range-query entry-path ablation ----------
// range_query_from_start() (all-bundle traversal from the head sentinel)
// must produce the same snapshots as the shipped optimistic-entry path;
// only the cost differs (bench/ablation_entry_path).

template <typename DS>
void expect_entry_paths_agree_quiescent() {
  DS ds;
  Xoshiro256 rng(11);
  for (int i = 0; i < 400; ++i) {
    KeyT k = 1 + static_cast<KeyT>(rng.next_range(1000));
    if (rng.next_range(3) == 0)
      ds.remove(0, k);
    else
      ds.insert(0, k, k * 7);
  }
  std::vector<std::pair<KeyT, ValT>> a, b;
  for (int i = 0; i < 50; ++i) {
    KeyT lo = 1 + static_cast<KeyT>(rng.next_range(1000));
    KeyT hi = lo + static_cast<KeyT>(rng.next_range(200));
    ds.range_query(0, lo, hi, a);
    ds.range_query_from_start(0, lo, hi, b);
    EXPECT_EQ(a, b) << "range [" << lo << "," << hi << "]";
  }
}

TEST(EntryPathAblation, ListPathsReturnIdenticalSnapshots) {
  expect_entry_paths_agree_quiescent<BundleListSet>();
}

TEST(EntryPathAblation, SkipListPathsReturnIdenticalSnapshots) {
  expect_entry_paths_agree_quiescent<BundleSkipListSet>();
}

template <typename DS>
void expect_from_start_consistent_under_churn() {
  DS ds;
  constexpr KeyT kSpace = 1000;
  for (KeyT k = 1; k <= kSpace; k += 2) ds.insert(0, k, k);
  std::atomic<bool> stop{false};
  std::atomic<long> failures{0};
  std::thread rq_thread([&] {
    std::vector<std::pair<KeyT, ValT>> out;
    Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      KeyT lo = 1 + static_cast<KeyT>(rng.next_range(kSpace - 60));
      ds.range_query_from_start(2, lo, lo + 60, out);
      if (!testutil::sorted_in_range(out, lo, lo + 60)) failures.fetch_add(1);
    }
  });
  testutil::run_threads(2, [&](int tid) {
    Xoshiro256 rng(tid * 7 + 3);
    for (int i = 0; i < 4000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (rng.next_range(2) == 0)
        ds.insert(tid, k, k);
      else
        ds.remove(tid, k);
    }
  });
  stop = true;
  rq_thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(ds.check_invariants());
}

TEST(EntryPathAblation, ListFromStartConsistentUnderChurn) {
  expect_from_start_consistent_under_churn<BundleListSet>();
}

TEST(EntryPathAblation, SkipListFromStartConsistentUnderChurn) {
  expect_from_start_consistent_under_churn<BundleSkipListSet>();
}

}  // namespace
}  // namespace bref
